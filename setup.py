"""Legacy shim: enables `pip install -e .` on environments whose setuptools
predates PEP-660 editable wheels (the offline image ships no `wheel`)."""
from setuptools import setup

setup()

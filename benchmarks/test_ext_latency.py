"""Extension bench: the latency cost of coverage.

The paper's performance analysis is bandwidth-only.  The executable model
also exposes the *latency* penalty of the EIB detour: covered packets
cross the bus (plus arbitration) instead of the fabric.  This bench
prints mean latency for direct vs covered traffic over increasing load.
"""

from repro.router import ComponentKind, Router, RouterConfig
from repro.traffic import wire_uniform_load

LOADS = (0.15, 0.30, 0.50)


def run_pair(load: float, seed: int = 4):
    healthy = Router(RouterConfig(n_linecards=6, seed=seed))
    wire_uniform_load(healthy, load)
    healthy.run(until=0.005)

    faulty = Router(RouterConfig(n_linecards=6, seed=seed))
    wire_uniform_load(faulty, load)
    faulty.run(until=0.001)
    faulty.inject_fault(0, ComponentKind.SRU)
    faulty.run(until=0.005)
    return healthy, faulty


def test_coverage_latency_cost(benchmark):
    healthy, faulty = benchmark(run_pair, 0.30)
    assert healthy.stats.latency.mean > 0.0
    # Coverage is engaged and lossless, but not free in latency.
    assert faulty.stats.covered_deliveries > 0
    assert faulty.stats.latency.mean > healthy.stats.latency.mean

    print("\n=== Latency under coverage (DRA N=6, LC0 SRU failed at t=1ms) ===")
    print(
        f"{'load':>6} {'healthy mean':>13} {'faulty mean':>12} "
        f"{'penalty':>9} {'covered pkts':>13}"
    )
    for load in LOADS:
        h, f = run_pair(load)
        penalty = f.stats.latency.mean / h.stats.latency.mean
        print(
            f"{load:>6.0%} {h.stats.latency.mean * 1e6:>11.2f}us "
            f"{f.stats.latency.mean * 1e6:>10.2f}us "
            f"{penalty:>8.2f}x {f.stats.covered_deliveries:>13}"
        )
        # Coverage is lossless up to in-flight packets (at 50% load the
        # EIB backlog grows the in-flight population, so assert on drops,
        # not on the instantaneous delivered/offered ratio).
        assert f.stats.dropped < 0.001 * f.stats.offered

"""Extension bench: performability and heterogeneous-load degradation.

Two syntheses the paper's figures stop short of:

* **performability** -- the Figure 8 bandwidth reward weighted by the
  Figure 7 fault-state probabilities, i.e. the expected delivered
  fraction over the router's whole life;
* **heterogeneous loads** -- Figure 8 with a realistic load skew, where
  the worst single fault turns out to be a *cool* card (the binding
  quantity is the surviving headroom pool, not the faulty card's demand).
"""

import numpy as np

from repro.core.hetero import HeterogeneousPerformanceModel
from repro.core.parameters import RepairPolicy
from repro.core.performability import PerformabilityModel
from repro.core.performance import PerformanceModel

SKEWED_LOADS = (0.15, 0.30, 0.70, 0.50, 0.15, 0.30)


def run_study():
    perf = PerformabilityModel(
        PerformanceModel(n=6), RepairPolicy.half_day()
    )
    steady = {load: perf.steady_state(load) for load in (0.15, 0.50, 0.70)}
    hetero = HeterogeneousPerformanceModel(SKEWED_LOADS)
    singles = [hetero.degradation([lc]).aggregate_percent for lc in range(6)]
    return steady, singles


def test_performability_and_hetero(benchmark):
    steady, singles = benchmark(run_study)

    for res in steady.values():
        assert res.expected_degradation_percent > 99.0
        assert res.state_probabilities[0] > 0.99
    # Worst single fault under skew: a 15%-loaded card, not the 70% one.
    worst = int(np.argmin(singles))
    assert SKEWED_LOADS[worst] == min(SKEWED_LOADS)

    print("\n=== Performability: expected % of required bandwidth delivered ===")
    print(f"{'load':>6} {'E[%]':>10} {'P(any fault)':>13}")
    for load, res in steady.items():
        print(
            f"{load:>6.0%} {res.expected_degradation_percent:>10.5f} "
            f"{res.any_fault_probability:>13.2e}"
        )

    print("\n=== Heterogeneous loads: single-fault service % (N=6) ===")
    print(f"{'faulty LC':>10} {'its load':>9} {'service %':>10}")
    for lc, pct in enumerate(singles):
        print(f"{lc:>10} {SKEWED_LOADS[lc]:>9.0%} {pct:>9.1f}%")

"""Ablation: the three readings of the Figure 5(b) model.

DESIGN.md decisions 2-3 identified two textual ambiguities; this bench
quantifies how much each reading moves the results, and shows that only
``paper`` reproduces the quoted Figure 7 nines.
"""

import numpy as np

from repro.core import DRAConfig, RepairPolicy, dra_availability, dra_reliability

TIMES = np.array([40_000.0, 100_000.0, 150_000.0])
VARIANTS = ("paper", "strict", "extended")


def run_all_variants(n=3, m=2):
    out = {}
    for variant in VARIANTS:
        cfg = DRAConfig(n=n, m=m, variant=variant)
        out[variant] = {
            "reliability": dra_reliability(cfg, TIMES).reliability,
            "nines_fast": dra_availability(cfg, RepairPolicy.three_hours()).nines,
            "nines_slow": dra_availability(cfg, RepairPolicy.half_day()).nines,
        }
    return out


def test_ablation_model_variants(benchmark):
    results = benchmark(run_all_variants)

    # Only the paper variant reproduces Figure 7's quoted values.
    assert results["paper"]["nines_fast"] == 8
    assert results["paper"]["nines_slow"] == 7
    # Each stricter reading is pointwise more pessimistic.
    for t_idx in range(len(TIMES)):
        r = [results[v]["reliability"][t_idx] for v in VARIANTS]
        assert r[0] >= r[1] >= r[2]

    print("\n=== Ablation: model-variant impact (N=3, M=2) ===")
    header = f"{'variant':>10} {'9s mu=1/3':>10} {'9s mu=1/12':>11}" + "".join(
        f"  R({t:.0f}h)" for t in TIMES
    )
    print(header)
    for variant in VARIANTS:
        res = results[variant]
        cells = "".join(f"  {v:9.4f}" for v in res["reliability"])
        print(
            f"{variant:>10} {res['nines_fast']:>10} {res['nines_slow']:>11}{cells}"
        )

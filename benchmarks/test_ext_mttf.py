"""Extension bench: MTTF table over the paper's configuration families.

Compresses Figure 6 to scalars: mean time to LC failure for BDR and each
DRA (N, M), with the improvement factor.  Shows the same diminishing
returns the paper reads off the curves.
"""

from repro.core import DRAConfig, bdr_mttf, dra_mttf, mttf_improvement
from repro.analysis.sweep import FIG6_CONFIGS
from repro.validate import FLOAT_EPS


def run_table():
    rows = [("BDR", bdr_mttf().hours, 1.0)]
    for n, m in FIG6_CONFIGS:
        cfg = DRAConfig(n=n, m=m)
        res = dra_mttf(cfg)
        rows.append((res.label, res.hours, mttf_improvement(cfg)))
    return rows


def test_mttf_table(benchmark):
    rows = benchmark(run_table)

    by_label = {label: hours for label, hours, _ in rows}
    # BDR MTTF is 1/(2 lambda) computed in a handful of float ops, so the
    # budget is a few ulps of the 5e4-hour result, not a magic epsilon.
    assert abs(by_label["BDR"] - 50_000.0) <= 16 * 50_000 * FLOAT_EPS
    # Diminishing returns in N at M=2.
    gain_34 = by_label["DRA(N=4,M=2)"] - by_label["DRA(N=3,M=2)"]
    gain_89 = by_label["DRA(N=9,M=2)"] - by_label["DRA(N=8,M=2)"]
    assert gain_34 > gain_89 > 0.0

    print("\n=== MTTF of one linecard (hours; derived from the Fig. 5 chains) ===")
    print(f"{'config':>14} {'MTTF (h)':>12} {'years':>8} {'vs BDR':>8}")
    for label, hours, ratio in rows:
        print(f"{label:>14} {hours:>12.0f} {hours / 8766:>8.1f} {ratio:>7.2f}x")

"""Monte Carlo cross-validation bench (beyond the paper).

Times the structure-function estimator and prints Markov-vs-MC curves --
the reproduction's independent check that the Figure 5(b) chain structure
is right.
"""

import numpy as np

from repro.core import DRAConfig, dra_reliability
from repro.montecarlo import structure_function_reliability

TIMES = np.array([10_000.0, 40_000.0, 100_000.0])
N_SAMPLES = 100_000


def run_mc(cfg, seed=0):
    return structure_function_reliability(
        cfg, TIMES, N_SAMPLES, np.random.default_rng(seed)
    )


def test_structure_function_crossval(benchmark):
    cfg = DRAConfig(n=6, m=3, variant="extended")
    mc = benchmark(run_mc, cfg)
    exact = dra_reliability(cfg, TIMES).reliability
    assert mc.within(exact, z=5.0)

    print("\n=== Monte Carlo vs Markov (DRA N=6, M=3, extended variant) ===")
    print(f"{'t (hours)':>12} {'Markov':>10} {'MC':>10} {'MC stderr':>10}")
    for t, e, m, s in zip(TIMES, exact, mc.reliability, mc.std_error):
        print(f"{t:>12.0f} {e:>10.5f} {m:>10.5f} {s:>10.5f}")

"""DES coverage bench (beyond the paper): the executable router.

Runs identical fault scenarios on the DRA and BDR routers and prints the
delivery ratios -- the behavioural counterpart of the paper's Figure 8
'who keeps serving' claim.  Also times a standard DRA coverage run
(~25k packets through the full protocol stack).
"""

from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.traffic import wire_uniform_load


def run_des(mode, fault_kind, *, load=0.3, seed=2):
    router = Router(RouterConfig(n_linecards=6, mode=mode, seed=seed))
    wire_uniform_load(router, load)
    router.run(until=0.001)
    if fault_kind is not None:
        router.inject_fault(0, fault_kind)
    router.run(until=0.006)
    return router


def test_des_dra_coverage_run(benchmark):
    router = benchmark(run_des, RouterMode.DRA, ComponentKind.SRU)
    assert router.stats.delivery_ratio > 0.99
    assert router.stats.covered_deliveries > 0

    rows = []
    for fault in (None, ComponentKind.SRU, ComponentKind.LFE):
        dra = run_des(RouterMode.DRA, fault)
        bdr_fault = fault if fault is not ComponentKind.PDLU else ComponentKind.SRU
        bdr = run_des(RouterMode.BDR, bdr_fault)
        rows.append((fault.value if fault else "none", dra.stats, bdr.stats))

    print("\n=== DES: delivery ratio under an LC0 component fault (N=6, L=30%) ===")
    print(f"{'fault':>8} {'DRA':>10} {'BDR':>10} {'DRA covered':>12} {'remote lookups':>15}")
    for fault, dra_s, bdr_s in rows:
        print(
            f"{fault:>8} {dra_s.delivery_ratio:>10.4f} {bdr_s.delivery_ratio:>10.4f} "
            f"{dra_s.covered_deliveries:>12} {dra_s.remote_lookups:>15}"
        )
        if fault != "none":
            assert dra_s.delivery_ratio > bdr_s.delivery_ratio

"""Figure 7 regeneration: steady-state LC availability in nines notation.

Paper values (asserted): BDR 9^4 / 9^3 (mu = 1/3 / 1/12); DRA(3, 2)
9^8 / 9^7; saturation at 9^9 / 9^8 for all M >= 4.
"""

from repro.analysis import availability_sweep, format_availability_table
from repro.analysis.sweep import FIG7_CONFIGS


def run_sweep():
    return availability_sweep(configs=FIG7_CONFIGS)


def test_fig7_availability_sweep(benchmark):
    records = benchmark(run_sweep)

    def nines(label, mu):
        for r in records:
            if r.label == label and abs(r.x - mu) < 1e-12:
                return r.get("nines")
        raise KeyError((label, mu))

    assert nines("BDR", 1 / 3) == 4
    assert nines("BDR", 1 / 12) == 3
    assert nines("DRA(N=3,M=2)", 1 / 3) == 8
    assert nines("DRA(N=3,M=2)", 1 / 12) == 7
    for m in (4, 6, 8):
        assert nines(f"DRA(N=9,M={m})", 1 / 3) == 9
        assert nines(f"DRA(N=9,M={m})", 1 / 12) == 8

    print("\n=== Figure 7: steady-state availability ===")
    print(format_availability_table(records))

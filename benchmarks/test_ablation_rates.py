"""Ablation: sensitivity of the results to the assumed failure rates.

The paper takes its rates from one Cisco OC-48 datasheet.  This bench
prints (a) the elasticity tornado of steady-state unavailability over
the four atomic rates and (b) how the Figure 7 nines move when all rates
are scaled jointly -- the robustness check a reviewer would ask for.
"""

from repro.core import (
    DRAConfig,
    FailureRates,
    RepairPolicy,
    dra_availability,
    unavailability_elasticities,
)

CFG = DRAConfig(n=9, m=4)
SCALES = (0.1, 0.5, 1.0, 2.0, 10.0)


def run_ablation():
    tornado = unavailability_elasticities(CFG)
    nines_by_scale = {}
    for scale in SCALES:
        rates = FailureRates().scaled(scale)
        nines_by_scale[scale] = (
            dra_availability(CFG, RepairPolicy.three_hours(), rates).nines,
            dra_availability(CFG, RepairPolicy.half_day(), rates).nines,
        )
    return tornado, nines_by_scale


def test_rate_sensitivity_ablation(benchmark):
    tornado, nines_by_scale = benchmark(run_ablation)

    by_field = {r.field: r.elasticity for r in tornado}
    # The paper's qualitative finding in rate form.
    assert by_field["lam_lpi"] > by_field["lam_lpd"]
    # Two-failure structure: elasticities sum to ~2.
    assert abs(sum(by_field.values()) - 2.0) < 0.05  # dra: noqa[DRA301] reason=0.05 is a modeling bound on the two-failure approximation, not a float-precision tolerance
    # Scaling all rates by k scales two-failure unavailability by ~k^2:
    # each 10x of rates costs about two nines.
    assert nines_by_scale[1.0][0] - nines_by_scale[10.0][0] == 2

    print("\n=== Elasticity tornado: d(log U) / d(log lambda), DRA(9, 4), mu=1/3 ===")
    for r in tornado:
        bar = "#" * int(round(abs(r.elasticity) * 40))
        print(f"  {r.field:>8} {r.elasticity:+6.3f} {bar}")

    print("\n=== Figure 7 nines under joint rate scaling ===")
    print(f"{'rate scale':>11} {'nines mu=1/3':>13} {'nines mu=1/12':>14}")
    for scale in SCALES:
        fast, slow = nines_by_scale[scale]
        print(f"{scale:>11.1f} {fast:>13} {slow:>14}")

"""Extension bench: three-way architecture comparison on the DES.

BDR (no redundancy) vs SPARED (one standby LC per protocol, the
alternative the paper's Section 3 prices out) vs DRA, under the identical
fault scenario.  Prints the delivery timeline: BDR never recovers, SPARED
recovers after the failover delay, DRA's coverage engages within
microseconds and loses almost nothing.
"""

from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.traffic import wire_uniform_load

PHASES = [
    ("pre-fault", 0.001),
    ("fault window", 0.003),
    ("steady after", 0.006),
]
SWAP_DELAY = 1e-3


def run_mode(mode: RouterMode, seed: int = 17):
    router = Router(
        RouterConfig(
            n_linecards=6,
            mode=mode,
            spare_swap_delay_s=SWAP_DELAY,
            seed=seed,
        )
    )
    wire_uniform_load(router, 0.3)
    phase_ratios = []
    prev_offered = prev_delivered = 0
    for label, until in PHASES:
        if label == "fault window":
            router.inject_fault(0, ComponentKind.SRU)
        router.run(until=until)
        offered = router.stats.offered - prev_offered
        delivered = router.stats.delivered - prev_delivered
        prev_offered, prev_delivered = router.stats.offered, router.stats.delivered
        phase_ratios.append(delivered / offered if offered else 1.0)
    return router, phase_ratios


def test_three_way_recovery(benchmark):
    router, dra_phases = benchmark(run_mode, RouterMode.DRA)
    assert dra_phases[1] > 0.99  # coverage engages within the fault window

    results = {RouterMode.DRA: dra_phases}
    for mode in (RouterMode.SPARED, RouterMode.BDR):
        _, phases = run_mode(mode)
        results[mode] = phases

    # Fault-window ordering: DRA > SPARED > BDR.
    assert results[RouterMode.DRA][1] > results[RouterMode.SPARED][1]
    assert results[RouterMode.SPARED][1] > results[RouterMode.BDR][1]
    # After the swap, SPARED is healthy again; BDR still bleeding.
    assert results[RouterMode.SPARED][2] > 0.99
    assert results[RouterMode.BDR][2] < 0.75

    print("\n=== Delivery ratio by phase (LC0 SRU fails at t=1ms; swap 1ms) ===")
    print(f"{'mode':>8}" + "".join(f"{label:>16}" for label, _ in PHASES))
    for mode, phases in results.items():
        print(f"{mode.value:>8}" + "".join(f"{p:>15.2%} " for p in phases))

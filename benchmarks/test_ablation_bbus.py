"""Ablation: EIB data-line capacity (B_BUS) in the Figure 8 model.

The paper never states B_BUS and its figure shows no bus-capacity kink,
implying a non-binding value.  This bench sweeps binding capacities and
shows where the kink would appear -- justifying the non-binding default
recorded in DESIGN.md.
"""

import numpy as np

from repro.core.performance import PerformanceModel

B_BUS_VALUES = (5.0, 10.0, 20.0, None)  # Gbps; None = non-binding default
LOAD = 0.5
N = 6


def run_bbus_sweep():
    out = {}
    for b_bus in B_BUS_VALUES:
        model = PerformanceModel(n=N, b_bus=b_bus)
        out[b_bus] = [model.degradation_percent(x, LOAD) for x in range(1, N)]
    return out


def test_ablation_bus_capacity(benchmark):
    results = benchmark(run_bbus_sweep)

    unbound = results[None]
    # A 20 Gbps bus is already non-binding for this load (same series).
    np.testing.assert_allclose(results[20.0], unbound)
    # A 5 Gbps bus caps X_faulty = 1 at required 5 Gbps -> exactly 100%,
    # but binds from the aggregate side as faults accumulate.
    assert results[5.0][0] == 100.0
    assert results[5.0][2] < unbound[2]

    print(f"\n=== Ablation: B_BUS impact on Figure 8 (N={N}, L={LOAD:.0%}) ===")
    print(f"{'X_faulty':>9}" + "".join(
        f"{('B=' + str(b) + 'G') if b else 'unbound':>12}" for b in B_BUS_VALUES
    ))
    for x in range(1, N):
        row = "".join(f"{results[b][x - 1]:>11.1f}%" for b in B_BUS_VALUES)
        print(f"{x:>9}{row}")

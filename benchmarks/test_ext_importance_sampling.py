"""Extension bench: Figure 7 verified by rare-event simulation.

Naive Monte Carlo cannot see a 1e-9 unavailability; balanced failure
biasing can.  This bench times the estimator and prints exact-vs-IS for
the paper's quoted configurations, confirming the nines by a method
completely independent of the linear-algebra solvers.
"""

import numpy as np

from repro.core import DRAConfig, RepairPolicy, dra_availability
from repro.core.availability import build_dra_availability_chain
from repro.core.nines import count_nines
from repro.core.states import Failed
from repro.montecarlo import unavailability_importance_sampling

CASES = [
    (DRAConfig(n=3, m=2), RepairPolicy.three_hours(), 8),
    (DRAConfig(n=3, m=2), RepairPolicy.half_day(), 7),
    (DRAConfig(n=9, m=4), RepairPolicy.three_hours(), 9),
]
N_CYCLES = 30_000


def run_case(cfg, repair, seed=0):
    chain = build_dra_availability_chain(cfg, repair)
    return unavailability_importance_sampling(
        chain, Failed, N_CYCLES, np.random.default_rng(seed)
    )


def test_importance_sampling_verifies_nines(benchmark):
    cfg, repair, _ = CASES[0]
    result = benchmark(run_case, cfg, repair)
    exact = 1.0 - dra_availability(cfg, repair).availability
    assert result.consistent_with(exact, z=6.0)

    print("\n=== Rare-event verification of Figure 7 (balanced failure biasing) ===")
    print(
        f"{'config':>14} {'mu':>6} {'exact U':>12} {'IS estimate':>12} "
        f"{'stderr':>10} {'nines (exact/IS)':>17}"
    )
    for cfg, repair, expected_nines in CASES:
        res = run_case(cfg, repair)
        exact_u = 1.0 - dra_availability(cfg, repair).availability
        mu_str = "1/3" if abs(repair.mu - 1 / 3) < 1e-12 else "1/12"
        n_exact = count_nines(1.0 - exact_u)
        n_is = count_nines(res.availability)
        print(
            f"{f'N={cfg.n},M={cfg.m}':>14} {mu_str:>6} {exact_u:>12.3e} "
            f"{res.unavailability:>12.3e} {res.std_error:>10.1e} "
            f"{f'{n_exact} / {n_is}':>17}"
        )
        assert res.consistent_with(exact_u, z=6.0)
        assert n_exact == expected_nines

"""Figure 8 regeneration: bandwidth available to faulty LCs (N = 6).

Paper shape (asserted): 100% of required bandwidth at L = 15% for every
X_faulty <= 5; monotone degradation with load and fault count; < 10% at
the worst case (X_faulty = 5, L = 70%).
"""


from repro.analysis import format_performance_table, performance_sweep
from repro.analysis.sweep import FIG8_LOADS


def run_sweep():
    return performance_sweep(loads=FIG8_LOADS, n=6)


def test_fig8_performance_degradation(benchmark):
    records = benchmark(run_sweep)

    by = {(r.get("load"), r.x): r.value for r in records}
    for x in range(1, 6):
        assert by[(0.15, float(x))] == 100.0
    assert by[(0.70, 5.0)] < 10.0
    # Monotone in X_faulty for each load.
    for load in FIG8_LOADS:
        series = [by[(load, float(x))] for x in range(1, 6)]
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
    # Monotone in load for each X_faulty.
    for x in range(1, 6):
        col = [by[(load, float(x))] for load in FIG8_LOADS]
        assert all(b <= a + 1e-9 for a, b in zip(col, col[1:]))

    print("\n=== Figure 8: % of required bandwidth available to faulty LCs (N=6) ===")
    print(format_performance_table(records))

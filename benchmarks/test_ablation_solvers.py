"""Ablation: transient-solver choice for the dependability chains.

Times each solver on the largest Figure 6 configuration and verifies they
agree to tight tolerance -- the evidence behind ``expm_multiply`` being
the default in :mod:`repro.core.reliability`.
"""

import numpy as np
import pytest

from repro.core import DRAConfig
from repro.core.reliability import build_dra_reliability_chain
from repro.core.states import AllHealthy
from repro.markov import transient_distribution, uniformized_distribution
from repro.analysis.sweep import FIG6_TIME_GRID

CFG = DRAConfig(n=9, m=8)  # largest paper configuration: 73 states


def solve(method):
    chain = build_dra_reliability_chain(CFG)
    pi0 = chain.initial_distribution(AllHealthy)
    if method == "uniformization":
        return uniformized_distribution(chain, FIG6_TIME_GRID, pi0)
    return transient_distribution(chain, FIG6_TIME_GRID, pi0, method=method)


@pytest.mark.parametrize(
    "method", ["expm_multiply", "expm", "ode", "uniformization"]
)
def test_ablation_transient_solvers(benchmark, method):
    result = benchmark(solve, method)
    reference = solve("expm")
    np.testing.assert_allclose(result, reference, atol=5e-6)
    print(
        f"\nsolver={method}: {result.shape[0]} time points x "
        f"{result.shape[1]} states, max |delta| vs dense expm = "
        f"{np.abs(result - reference).max():.2e}"
    )

"""Figure 6 regeneration: LC reliability under BDR and DRA.

Paper series: BDR plus DRA with {M=2, N=3..9} and {N=9, M=4..8} over
0..100,000 hours.  The bench times the full sweep (26 chains solved on a
51-point grid) and prints the table at the paper's landmark hours.

Expected shape (asserted): BDR < 0.5 at 40k h; DRA(9, >=4) > 0.95 at
40k h; every DRA curve above BDR.
"""


from repro.analysis import format_reliability_table, reliability_sweep
from repro.analysis.sweep import FIG6_CONFIGS, FIG6_TIME_GRID

LANDMARKS = [0.0, 20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0]


def run_sweep():
    return reliability_sweep(times=FIG6_TIME_GRID, configs=FIG6_CONFIGS)


def test_fig6_reliability_sweep(benchmark):
    records = benchmark(run_sweep)

    by = {(r.label, r.x): r.value for r in records}
    assert by[("BDR", 40_000.0)] < 0.5
    for m in (4, 6, 8):
        assert by[(f"DRA(N=9,M={m})", 40_000.0)] > 0.95
    for label in {r.label for r in records} - {"BDR"}:
        for t in LANDMARKS[1:]:
            assert by[(label, t)] > by[("BDR", t)]

    print("\n=== Figure 6: LC reliability R(t) ===")
    print(
        format_reliability_table(
            [r for r in records if r.label in (
                "BDR", "DRA(N=3,M=2)", "DRA(N=6,M=2)", "DRA(N=9,M=2)",
                "DRA(N=9,M=4)", "DRA(N=9,M=8)",
            )],
            time_points=LANDMARKS,
        )
    )

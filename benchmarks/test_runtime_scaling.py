"""Parallel-runtime scaling bench (beyond the paper).

Exercises the `repro.runtime` parallel paths end to end: the Figure 6
sweep fanned over a process pool, a 1e6-trial structure-function Monte
Carlo batch, and the warm-cache path. Prints the jobs→wall-time scaling
ladder, re-checks the bit-identity guarantee on every ladder rung, and
-- on hosts with at least 4 cores -- asserts the ≥2x wall-clock speedup
at 4 workers (on smaller hosts the pool can only add overhead, so the
assertion is informational only there).
"""

import os

import numpy as np

from repro.analysis.sweep import reliability_sweep
from repro.core import DRAConfig
from repro.runtime import (
    ResultCache,
    Stopwatch,
    parallel_reliability_sweep,
    parallel_structure_function_reliability,
)

TIMES = np.linspace(0.0, 100_000.0, 21)
MC_TRIALS = 1_000_000
JOBS_LADDER = (1, 2, 4)


def _print_ladder(title, unit, rows):
    base = rows[0][1]
    print(f"\n=== {title} ===")
    print(f"{'jobs':>5} {'wall (s)':>10} {unit + '/s':>14} {'speedup':>8}")
    for jobs, wall, items in rows:
        rate = items / wall if wall else 0.0
        print(f"{jobs:>5} {wall:>10.3f} {rate:>14,.0f} {base / wall:>7.2f}x")
    return base / rows[-1][1]


def _assert_speedup_if_multicore(speedup_at_max):
    if (os.cpu_count() or 1) >= 4:
        assert speedup_at_max >= 2.0, (
            f"expected >=2x speedup at {JOBS_LADDER[-1]} workers on a "
            f"{os.cpu_count()}-core host, got {speedup_at_max:.2f}x"
        )


def test_mc_batch_scaling(benchmark):
    cfg = DRAConfig(n=9, m=4)
    reference = None
    rows = []
    for jobs in JOBS_LADDER:
        with Stopwatch() as sw:
            est = parallel_structure_function_reliability(
                cfg, TIMES, MC_TRIALS, 2024, jobs=jobs
            )
        rows.append((jobs, sw.elapsed, MC_TRIALS))
        if reference is None:
            reference = est.reliability
        else:
            assert np.array_equal(reference, est.reliability), (
                f"jobs={jobs} changed the seeded MC estimate"
            )
    benchmark(
        parallel_structure_function_reliability,
        cfg, TIMES, MC_TRIALS, 2024, jobs=JOBS_LADDER[-1],
    )
    speedup = _print_ladder(
        f"structure-function MC, {MC_TRIALS:,} trials (DRA N=9, M=4)",
        "trials", rows,
    )
    _assert_speedup_if_multicore(speedup)


def test_fig6_sweep_scaling(benchmark):
    serial = reliability_sweep(times=TIMES)
    rows = []
    for jobs in JOBS_LADDER:
        with Stopwatch() as sw:
            records = parallel_reliability_sweep(times=TIMES, jobs=jobs)
        rows.append((jobs, sw.elapsed, len(records)))
        assert records == serial, f"jobs={jobs} changed the sweep records"
    benchmark(parallel_reliability_sweep, times=TIMES, jobs=JOBS_LADDER[-1])
    speedup = _print_ladder(
        "Figure 6 reliability sweep (13 chains x 21 time points)",
        "points", rows,
    )
    _assert_speedup_if_multicore(speedup)


def test_warm_cache_skips_solves(tmp_path, benchmark):
    cache = ResultCache(tmp_path)
    with Stopwatch() as cold_sw:
        cold = parallel_reliability_sweep(times=TIMES, cache=cache)
    assert cache.hits == 0 and cache.misses > 0
    units = cache.misses

    def warm_run():
        return parallel_reliability_sweep(times=TIMES, cache=cache)

    with Stopwatch() as warm_sw:
        warm = warm_run()
    assert warm == cold
    assert cache.hits == units, "warm run must resolve every unit from cache"
    benchmark(warm_run)
    print(
        f"\n=== result cache (Figure 6 sweep, {units} chain solves) ===\n"
        f"cold {cold_sw.elapsed:.3f}s -> warm {warm_sw.elapsed:.3f}s "
        f"({cold_sw.elapsed / max(warm_sw.elapsed, 1e-9):.1f}x)"
    )
    assert warm_sw.elapsed < cold_sw.elapsed, "warm cache run should be faster"

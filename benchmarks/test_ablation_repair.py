"""Ablation: the repair-time distribution assumption.

Section 5.2's prose says repair takes "a fixed amount of time", but the
chains model it with an exponential rate mu.  This bench sweeps Erlang-k
repair (k = 1 exponential ... k large ~ deterministic, same mean) and
shows (a) BDR is exactly invariant -- a renewal-reward sanity check --
and (b) DRA's unavailability falls by ~2x toward the deterministic
limit, i.e. the paper's exponential simplification is conservative and
changes no nines-level conclusion.
"""

from repro.core import DRAConfig, RepairPolicy, bdr_availability, dra_availability

STAGES = (1, 2, 4, 8, 16)
CFG = DRAConfig(n=3, m=2)


def run_sweep():
    out = {}
    for k in STAGES:
        rp = RepairPolicy(mu=1.0 / 3.0, stages=k)
        out[k] = (
            1.0 - bdr_availability(rp).availability,
            1.0 - dra_availability(CFG, rp).availability,
        )
    return out


def test_ablation_repair_distribution(benchmark):
    results = benchmark(run_sweep)

    u_bdr_base, u_dra_base = results[1]
    for k in STAGES[1:]:
        u_bdr, u_dra = results[k]
        assert u_bdr == u_bdr_base  # exact renewal-reward invariance
        assert u_dra < u_dra_base  # distribution matters for DRA
    assert results[1][1] / results[16][1] < 2.0  # bounded effect

    print("\n=== Ablation: Erlang-k repair (mean 3 h held fixed) ===")
    print(f"{'stages k':>9} {'U_BDR':>12} {'U_DRA(3,2)':>12} {'vs exponential':>15}")
    for k in STAGES:
        u_bdr, u_dra = results[k]
        print(
            f"{k:>9} {u_bdr:>12.4e} {u_dra:>12.4e} "
            f"{u_dra / results[1][1]:>14.2f}x"
        )

"""Extension bench: the paper's economics claim, quantified.

"[DRA achieves] significant cost-savings as well as higher dependability"
versus the redundancy alternative (one standby LC per protocol type).
This bench prints cost vs availability for BDR, spared BDR and DRA over
chassis sizes and asserts DRA dominates sparing on both axes.
"""

from repro.core import RepairPolicy, compare_designs

SCENARIOS = [
    (4, 1),
    (8, 2),
    (12, 3),
    (16, 4),
]


def run_comparison():
    out = {}
    for n, n_protocols in SCENARIOS:
        out[(n, n_protocols)] = compare_designs(
            n, n_protocols, RepairPolicy.three_hours()
        )
    return out


def test_cost_effectiveness(benchmark):
    results = benchmark(run_comparison)

    print("\n=== Cost vs availability (LC cost = 1.0, mu = 1/3) ===")
    print(
        f"{'chassis':>12} {'design':>22} {'cost':>7} {'availability':>16} "
        f"{'downtime/yr':>12}"
    )
    for (n, p), designs in results.items():
        for d in designs:
            print(
                f"{f'N={n}, P={p}':>12} {d.label:>22} {d.cost:>7.2f} "
                f"{d.availability:>16.12f} {d.downtime_minutes_per_year:>9.3f} min"
            )
        bdr, spared, dra = designs
        # The quantified claim: cheaper AND more available than sparing.
        assert dra.cost < spared.cost
        assert dra.availability > spared.availability
        assert dra.availability > bdr.availability

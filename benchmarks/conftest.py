"""Benchmark-suite configuration.

Every bench both times the computation (pytest-benchmark fixture) and
prints the regenerated paper table/series so a ``pytest benchmarks/
--benchmark-only -s`` run visually reproduces the evaluation section.
"""

import pytest


@pytest.fixture(autouse=True)
def _print_spacer(capsys):
    """Keep printed tables readable between benches."""
    yield
    with capsys.disabled():
        pass

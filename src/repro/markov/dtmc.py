"""Discrete-time Markov chains.

The CTMC machinery keeps meeting DTMCs -- the embedded jump chain, the
uniformized chain, the biased chain of the importance sampler.  This
module makes them first-class: a validated stochastic matrix with
stationary analysis, n-step distributions, and absorbing-chain
fundamentals, plus constructors from a CTMC.

Used directly by tests (cross-checking the CTMC solvers through their
discrete skeletons) and available to downstream users who want to reason
about the protocol's per-round behaviour (e.g. the arbiter's turn
rotation as a deterministic DTMC).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.markov.ctmc import CTMC

__all__ = ["DTMC"]

_ROW_TOL = 1e-9


class DTMC:
    """A finite discrete-time Markov chain.

    Parameters
    ----------
    states:
        Hashable state labels (order fixes the dense indices).
    transition:
        Row-stochastic matrix (dense or sparse).
    """

    __slots__ = ("_states", "_index", "_P")

    def __init__(self, states: Sequence[Hashable], transition: Any) -> None:
        states = tuple(states)
        if len(set(states)) != len(states):
            raise ValueError("duplicate states")
        P = sp.csr_matrix(transition, dtype=np.float64)
        if P.shape != (len(states), len(states)):
            raise ValueError(
                f"transition shape {P.shape} does not match {len(states)} states"
            )
        if P.nnz and P.data.min() < -_ROW_TOL:
            raise ValueError("negative transition probability")
        rows = np.asarray(P.sum(axis=1)).ravel()
        if np.any(np.abs(rows - 1.0) > _ROW_TOL):
            worst = int(np.argmax(np.abs(rows - 1.0)))
            raise ValueError(f"row {worst} sums to {rows[worst]}, expected 1")
        self._states = states
        self._index = {s: i for i, s in enumerate(states)}
        self._P = P

    # -- constructors ----------------------------------------------------------

    @classmethod
    def embedded_from(cls, chain: CTMC) -> "DTMC":
        """The CTMC's embedded jump chain."""
        return cls(chain.states, chain.embedded_jump_matrix())

    @classmethod
    def uniformized_from(cls, chain: CTMC, rate: float | None = None) -> "DTMC":
        """The CTMC's uniformized chain ``I + Q / Lambda``."""
        P, _lam = chain.uniformized_matrix(rate)
        return cls(chain.states, P)

    # -- accessors --------------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self._states)

    @property
    def states(self) -> tuple[Hashable, ...]:
        """State labels in index order."""
        return self._states

    @property
    def transition_matrix(self) -> sp.csr_matrix:
        """The row-stochastic matrix ``P`` (do not mutate)."""
        return self._P

    def index_of(self, state: Hashable) -> int:
        """Dense index of ``state``."""
        return self._index[state]

    def probability(self, src: Hashable, dst: Hashable) -> float:
        """One-step transition probability."""
        return float(self._P[self.index_of(src), self.index_of(dst)])

    # -- evolution ---------------------------------------------------------------

    def step(self, distribution: np.ndarray, n: int = 1) -> np.ndarray:
        """``distribution @ P^n`` without forming the power explicitly."""
        if n < 0:
            raise ValueError(f"step count must be nonnegative, got {n}")
        out = np.asarray(distribution, dtype=np.float64)
        if out.shape != (self.n_states,):
            raise ValueError("distribution has wrong shape")
        PT = self._P.T.tocsr()
        for _ in range(n):
            out = PT @ out
        return out

    def stationary(self, *, tol: float = 1e-13, max_iter: int = 1_000_000) -> np.ndarray:
        """Stationary distribution (power iteration with a damping restart
        for periodic chains)."""
        n = self.n_states
        if n == 1:
            return np.ones(1)
        # Lazy chain (I + P)/2 shares the stationary vector and is
        # aperiodic, so power iteration always converges.
        PT = (0.5 * (self._P + sp.identity(n))).T.tocsr()
        pi = np.full(n, 1.0 / n)
        for _ in range(max_iter):
            nxt = PT @ pi
            total = nxt.sum()
            if total <= 0:  # pragma: no cover - defensive
                raise RuntimeError("mass vanished during iteration")
            nxt /= total
            if np.abs(nxt - pi).max() < tol:
                return nxt
            pi = nxt
        raise RuntimeError(f"power iteration did not converge in {max_iter} steps")

    # -- absorbing analysis ---------------------------------------------------------

    def absorbing_states(self) -> tuple[Hashable, ...]:
        """States with a self-loop of probability 1."""
        out = []
        for i, s in enumerate(self._states):
            if self._P[i, i] >= 1.0 - _ROW_TOL:
                out.append(s)
        return tuple(out)

    def fundamental_matrix(
        self, absorbing: Iterable[Hashable] | None = None
    ) -> tuple[np.ndarray, list[Hashable]]:
        """``N = (I - T)^-1`` on the transient block.

        Returns the matrix and the transient state labels in row order.
        ``N[i, j]`` is the expected number of visits to transient state
        ``j`` starting from transient state ``i`` before absorption.
        """
        absorbing_set = (
            set(self.absorbing_states()) if absorbing is None else set(absorbing)
        )
        if not absorbing_set:
            raise ValueError("chain has no absorbing states")
        t_idx = [i for i, s in enumerate(self._states) if s not in absorbing_set]
        if not t_idx:
            raise ValueError("chain has no transient states")
        T = self._P[np.ix_(t_idx, t_idx)].toarray()
        N = np.linalg.inv(np.eye(len(t_idx)) - T)
        return N, [self._states[i] for i in t_idx]

    def expected_steps_to_absorption(
        self, absorbing: Iterable[Hashable] | None = None
    ) -> dict[Hashable, float]:
        """Expected number of steps until absorption from each transient
        state (``N 1``); absorbing states map to 0."""
        N, transient = self.fundamental_matrix(absorbing)
        steps = N.sum(axis=1)
        out: dict[Hashable, float] = {s: 0.0 for s in self.absorbing_states()}
        for s, v in zip(transient, steps):
            out[s] = float(v)
        return out

"""Absorbing-chain analysis: absorption probabilities, MTTF, phase types.

The reliability chains of Section 5.1 (no repair) are absorbing CTMCs whose
single absorbing state is the LC-failed state ``F``.  The time to absorption
is then a phase-type distribution; its complement is exactly the paper's
reliability curve ``R(t)``, and its mean is the LC's mean time to failure
(MTTF) -- a scalar summary the paper does not report but which the benches
print alongside each curve.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np
import scipy.sparse.linalg

from repro.markov.ctmc import CTMC

__all__ = [
    "absorption_probabilities",
    "absorption_time_moments",
    "mean_time_to_absorption",
    "phase_type_cdf",
    "split_transient_absorbing",
]


def split_transient_absorbing(
    chain: CTMC, absorbing: Iterable[Hashable] | None = None
) -> tuple[list[int], list[int]]:
    """Indices of transient and absorbing states.

    ``absorbing`` defaults to the zero-exit-rate states of the chain.
    """
    if absorbing is None:
        absorbing_set = set(chain.absorbing_states())
    else:
        absorbing_set = set(absorbing)
    if not absorbing_set:
        raise ValueError("chain has no absorbing states")
    a_idx = sorted(chain.index_of(s) for s in absorbing_set)
    t_idx = [i for i in range(chain.n_states) if i not in set(a_idx)]
    if not t_idx:
        raise ValueError("chain has no transient states")
    return t_idx, a_idx


def absorption_probabilities(
    chain: CTMC,
    absorbing: Iterable[Hashable] | None = None,
) -> np.ndarray:
    """Probability of eventual absorption into each absorbing state.

    Returns an ``(n_transient, n_absorbing)`` matrix ``B`` where
    ``B[i, j]`` is the probability that the chain started in transient
    state ``i`` is eventually absorbed in absorbing state ``j``.  Rows are
    ordered by transient index, columns by absorbing index, both ascending
    (see :func:`split_transient_absorbing`).
    """
    t_idx, a_idx = split_transient_absorbing(chain, absorbing)
    Q = chain.generator
    T = Q[np.ix_(t_idx, t_idx)].tocsc()  # transient-to-transient block
    R = Q[np.ix_(t_idx, a_idx)].toarray()  # transient-to-absorbing block
    # B = (-T)^{-1} R, solved column by column.
    B = scipy.sparse.linalg.spsolve(-T, R)
    B = np.atleast_2d(B)
    if B.shape != (len(t_idx), len(a_idx)):
        B = B.reshape(len(t_idx), len(a_idx))
    return np.clip(B, 0.0, 1.0)


def mean_time_to_absorption(
    chain: CTMC,
    initial: np.ndarray | Hashable | None = None,
    absorbing: Iterable[Hashable] | None = None,
) -> float:
    """Expected time until absorption (e.g. LC mean time to failure).

    Parameters
    ----------
    chain:
        Absorbing CTMC.
    initial:
        Initial distribution over *all* states (array), a single starting
        state label, or ``None`` for state index 0.  Mass placed on
        absorbing states contributes zero time.
    absorbing:
        Explicit absorbing set; defaults to zero-exit-rate states.
    """
    t_idx, _a_idx = split_transient_absorbing(chain, absorbing)
    if initial is None or not isinstance(initial, np.ndarray):
        pi0 = chain.initial_distribution(initial)
    else:
        pi0 = np.asarray(initial, dtype=np.float64)
    alpha = pi0[t_idx]
    T = chain.generator[np.ix_(t_idx, t_idx)].tocsc()
    # E[time] = alpha @ (-T)^{-1} @ 1  =  alpha @ m, with (-T) m = 1.
    m = scipy.sparse.linalg.spsolve(-T, np.ones(len(t_idx)))
    return float(alpha @ m)


def absorption_time_moments(
    chain: CTMC,
    initial: np.ndarray | Hashable | None = None,
    absorbing: Iterable[Hashable] | None = None,
) -> tuple[float, float]:
    """Mean and variance of the absorption time.

    For a phase-type distribution with transient generator ``T`` and
    initial row ``alpha``, ``E[X] = alpha (-T)^{-1} 1`` and
    ``E[X^2] = 2 alpha (-T)^{-2} 1``; the variance follows.  The second
    moment costs one extra linear solve against the first-moment vector,
    no matrix inversion.  The validation harness uses the variance to put
    an exact (not sample-estimated) standard error under the structure
    function's empirical MTTF.
    """
    t_idx, _a_idx = split_transient_absorbing(chain, absorbing)
    if initial is None or not isinstance(initial, np.ndarray):
        pi0 = chain.initial_distribution(initial)
    else:
        pi0 = np.asarray(initial, dtype=np.float64)
    alpha = pi0[t_idx]
    T = chain.generator[np.ix_(t_idx, t_idx)].tocsc()
    m1 = scipy.sparse.linalg.spsolve(-T, np.ones(len(t_idx)))
    m2 = scipy.sparse.linalg.spsolve(-T, m1)
    mean = float(alpha @ m1)
    second = 2.0 * float(alpha @ m2)
    return mean, max(0.0, second - mean * mean)


def phase_type_cdf(
    chain: CTMC,
    times: np.ndarray,
    initial: np.ndarray | Hashable | None = None,
    absorbing: Iterable[Hashable] | None = None,
) -> np.ndarray:
    """CDF of the absorption time at each point of ``times``.

    For the reliability chains, ``1 - phase_type_cdf(...)`` equals ``R(t)``;
    tests use this identity to cross-check the transient solvers.
    """
    t_idx, _a_idx = split_transient_absorbing(chain, absorbing)
    if initial is None or not isinstance(initial, np.ndarray):
        pi0 = chain.initial_distribution(initial)
    else:
        pi0 = np.asarray(initial, dtype=np.float64)
    alpha = pi0[t_idx]
    T = chain.generator[np.ix_(t_idx, t_idx)].tocsr()
    times = np.asarray(times, dtype=np.float64)
    out = np.empty(times.size)
    TT = T.T.tocsr()
    order = np.argsort(times, kind="stable")
    v = alpha.copy()
    prev = 0.0
    for k in order:
        dt = times[k] - prev
        if dt > 0.0:
            v = scipy.sparse.linalg.expm_multiply(TT * dt, v)
            prev = times[k]
        out[k] = 1.0 - v.sum()
    return np.clip(out, 0.0, 1.0)

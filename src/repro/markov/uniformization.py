"""Jensen's uniformization for CTMC transient analysis.

Uniformization rewrites ``pi(t) = pi(0) @ expm(Q t)`` as a Poisson mixture
over powers of the uniformized DTMC ``P = I + Q/Lambda``::

    pi(t) = sum_{k=0}^{inf} PoissonPMF(k; Lambda t) * pi(0) @ P^k

Truncating the sum at ``K`` leaves a tail error bounded (in total
variation) by ``1 - PoissonCDF(K; Lambda t)``, which gives this solver an
*a-priori* error guarantee the expm-based paths lack.  It is used as the
independent oracle in the cross-solver validation tests.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import stats

from repro.markov.ctmc import CTMC
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["uniformized_distribution", "poisson_truncation_point"]


def poisson_truncation_point(rate_time: float, tolerance: float) -> int:
    """Smallest ``K`` such that the Poisson(rate_time) tail beyond ``K`` is
    below ``tolerance``.

    Uses the inverse survival function plus a safety margin, then verifies.
    """
    if rate_time <= 0.0:
        return 0
    k = int(stats.poisson.isf(tolerance, rate_time)) + 1
    # isf can undershoot by a point because the PMF is discrete; walk up.
    while stats.poisson.sf(k, rate_time) > tolerance:  # pragma: no cover
        k += 1
    return k


def uniformized_distribution(
    chain: CTMC,
    times: Sequence[float] | np.ndarray,
    initial: np.ndarray | None = None,
    *,
    tolerance: float = 1e-12,
    rate: float | None = None,
) -> np.ndarray:
    """Transient distribution via uniformization.

    Parameters
    ----------
    chain, times, initial:
        As in :func:`repro.markov.transient.transient_distribution`.
    tolerance:
        Total-variation bound on the Poisson truncation error per time point.
    rate:
        Uniformization constant ``Lambda``; defaults to slightly above the
        maximum exit rate.

    Returns
    -------
    numpy.ndarray
        ``(len(times), n_states)`` distribution array.
    """
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1:
        raise ValueError("times must be one-dimensional")
    if t.size and t.min() < 0.0:
        raise ValueError("times must be nonnegative")
    pi0 = (
        chain.initial_distribution()
        if initial is None
        else np.asarray(initial, dtype=np.float64)
    )
    if pi0.shape != (chain.n_states,):
        raise ValueError("initial distribution has wrong shape")
    if t.size == 0:
        return np.empty((0, chain.n_states))

    P, lam = chain.uniformized_matrix(rate)
    PT = P.T.tocsr()
    t_max = float(t.max())
    K = poisson_truncation_point(lam * t_max, tolerance)
    if _metrics.REGISTRY is not None:
        reg = _metrics.REGISTRY
        reg.counter("solver.uniformization.solves").inc()
        reg.counter("solver.uniformization.iterations").inc(K)
        reg.gauge("solver.uniformization.truncation_k").set(K)
    if _trace.TRACER is not None:
        _trace.TRACER.emit(
            "solver.uniformization",
            n_states=chain.n_states,
            rate=lam,
            rate_time=lam * t_max,
            truncation_k=K,
            tolerance=tolerance,
            n_times=int(t.size),
        )

    # Iterate v_k = pi0 @ P^k once up to K, accumulating the Poisson-weighted
    # sum for every requested time point simultaneously.  The PMF broadcast
    # evaluates elementwise, so the weight table matches a per-time loop bit
    # for bit.
    weights = stats.poisson.pmf(
        np.arange(K + 1)[np.newaxis, :], (lam * t)[:, np.newaxis]
    )
    out = np.zeros((t.size, chain.n_states))
    v = pi0.copy()
    for k in range(K + 1):
        out += weights[:, [k]] * v[np.newaxis, :]
        if k < K:
            v = PT @ v
    # Renormalize away the truncated Poisson tail mass.
    out /= out.sum(axis=1, keepdims=True)
    return out

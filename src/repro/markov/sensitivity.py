"""Parametric sensitivity of CTMC solutions.

Used by the ablation benches to report how sensitive the paper's
reliability and availability figures are to the assumed component failure
rates (which the paper takes from a single Cisco OC-48 datasheet).

Two estimators are provided:

* central finite differences over a user-supplied chain factory, and
* the forward-sensitivity ODE ``ds/dt = s Q + pi dQ/dtheta`` integrated
  jointly with the Kolmogorov equation, for callers that can supply
  ``dQ/dtheta`` directly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np
import scipy.integrate

from repro.markov.ctmc import CTMC
from repro.markov.transient import transient_distribution

__all__ = ["transient_sensitivity", "forward_sensitivity"]


def transient_sensitivity(
    chain_factory: Callable[[float], CTMC],
    theta: float,
    times: Sequence[float] | np.ndarray,
    *,
    rel_step: float = 1e-4,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Central-difference sensitivity ``d pi(t) / d theta``.

    Parameters
    ----------
    chain_factory:
        Maps a parameter value to a CTMC.  The two perturbed chains must
        enumerate states in the same order (true for all builders in
        :mod:`repro.core`).
    theta:
        Parameter value at which to differentiate.
    times:
        Time grid.
    rel_step:
        Relative perturbation size (absolute step ``rel_step * max(|theta|, 1e-12)``).
    initial:
        Initial distribution; default all mass on state index 0.

    Returns
    -------
    numpy.ndarray
        ``(len(times), n_states)`` array of derivatives.
    """
    h = rel_step * max(abs(theta), 1e-12)
    lo = chain_factory(theta - h)
    hi = chain_factory(theta + h)
    if lo.states != hi.states:
        raise ValueError("chain_factory changed the state ordering under perturbation")
    pi_lo = transient_distribution(lo, times, initial)
    pi_hi = transient_distribution(hi, times, initial)
    return (pi_hi - pi_lo) / (2.0 * h)


def forward_sensitivity(
    chain: CTMC,
    dQ: np.ndarray,
    times: Sequence[float] | np.ndarray,
    initial: np.ndarray | None = None,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> np.ndarray:
    """Exact forward sensitivity given the generator derivative ``dQ/dtheta``.

    Integrates the coupled system::

        d pi / dt = pi Q
        d s  / dt = s Q + pi dQ

    with ``s(0) = 0``.  Returns ``s(t)`` of shape ``(len(times), n_states)``.
    """
    n = chain.n_states
    dQ = np.asarray(dQ, dtype=np.float64)
    if dQ.shape != (n, n):
        raise ValueError(f"dQ shape {dQ.shape} != ({n}, {n})")
    QT = chain.generator.T.tocsr()
    dQT = dQ.T
    pi0 = (
        chain.initial_distribution()
        if initial is None
        else np.asarray(initial, dtype=np.float64)
    )
    t = np.asarray(times, dtype=np.float64)
    t_uniq = np.unique(t)
    y0 = np.concatenate([pi0, np.zeros(n)])

    def rhs(_t: float, y: np.ndarray) -> np.ndarray:
        pi, s = y[:n], y[n:]
        return np.concatenate([QT @ pi, QT @ s + dQT @ pi])

    t_end = float(t_uniq[-1]) if t_uniq.size else 0.0
    if t_end == 0.0:
        return np.zeros((t.size, n))
    sol = scipy.integrate.solve_ivp(
        rhs, (0.0, t_end), y0, t_eval=t_uniq, method="LSODA", rtol=rtol, atol=atol
    )
    if not sol.success:  # pragma: no cover
        raise RuntimeError(f"sensitivity integration failed: {sol.message}")
    by_time = {float(tv): sol.y[n:, i] for i, tv in enumerate(sol.t)}
    out = np.empty((t.size, n))
    for k, tk in enumerate(t):
        out[k] = by_time[float(tk)]
    return out

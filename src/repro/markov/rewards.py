"""Markov reward models.

Attaches a reward rate to every state of a CTMC and computes:

* the **instantaneous** expected reward ``E[r(X_t)] = pi(t) . r``;
* the **accumulated** expected reward ``E[int_0^t r(X_s) ds]``, by
  integrating the Kolmogorov equation jointly with the reward integral
  (LSODA, stiff-safe for the dependability chains);
* **interval availability** -- the expected fraction of ``[0, t]`` spent
  in operational states, i.e. accumulated reward with a 0/1 reward
  vector.  This is the quantity an SLA actually bounds; the paper reports
  only the steady-state limit, which interval availability converges to.

Used by :mod:`repro.core.availability` for downtime-cost figures and by
the extension benches.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

import numpy as np
import scipy.integrate

from repro.markov.ctmc import CTMC
from repro.markov.transient import transient_distribution

__all__ = [
    "reward_vector",
    "instantaneous_reward",
    "accumulated_reward",
    "interval_availability",
]


def reward_vector(chain: CTMC, rates: dict[Hashable, float] | None = None,
                  *, default: float = 0.0) -> np.ndarray:
    """Dense reward-rate vector for ``chain``.

    ``rates`` maps state labels to reward rates; unlisted states get
    ``default``.
    """
    r = np.full(chain.n_states, float(default))
    for state, value in (rates or {}).items():
        r[chain.index_of(state)] = float(value)
    return r


def instantaneous_reward(
    chain: CTMC,
    rewards: np.ndarray,
    times: Sequence[float] | np.ndarray,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """``E[r(X_t)]`` at each time point."""
    rewards = _check_rewards(chain, rewards)
    pi = transient_distribution(chain, times, initial)
    return pi @ rewards


def accumulated_reward(
    chain: CTMC,
    rewards: np.ndarray,
    times: Sequence[float] | np.ndarray,
    initial: np.ndarray | None = None,
    *,
    rtol: float = 1e-10,
    atol: float = 1e-12,
) -> np.ndarray:
    """``E[int_0^t r(X_s) ds]`` at each time point.

    Integrates the augmented system ``d pi/dt = pi Q``,
    ``dy/dt = pi . r`` with ``y(0) = 0``.
    """
    rewards = _check_rewards(chain, rewards)
    t = np.asarray(times, dtype=np.float64)
    if t.size and t.min() < 0.0:
        raise ValueError("times must be nonnegative")
    pi0 = (
        chain.initial_distribution()
        if initial is None
        else np.asarray(initial, dtype=np.float64)
    )
    n = chain.n_states
    QT = chain.generator.T.tocsr()

    def rhs(_t: float, y: np.ndarray) -> np.ndarray:
        pi = y[:n]
        return np.concatenate([QT @ pi, [pi @ rewards]])

    t_uniq = np.unique(t)
    t_end = float(t_uniq[-1]) if t_uniq.size else 0.0
    if t_end == 0.0:
        return np.zeros(t.size)
    sol = scipy.integrate.solve_ivp(
        rhs,
        (0.0, t_end),
        np.concatenate([pi0, [0.0]]),
        t_eval=t_uniq,
        method="LSODA",
        rtol=rtol,
        atol=atol,
    )
    if not sol.success:  # pragma: no cover - scipy failure path
        raise RuntimeError(f"reward integration failed: {sol.message}")
    by_time = {float(tv): sol.y[n, i] for i, tv in enumerate(sol.t)}
    by_time[0.0] = 0.0
    return np.array([by_time[float(tk)] for tk in t])


def interval_availability(
    chain: CTMC,
    operational: Iterable[Hashable],
    times: Sequence[float] | np.ndarray,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Expected fraction of ``[0, t]`` spent in ``operational`` states.

    Converges to the steady-state availability as ``t`` grows; starts at
    1.0 for a system launched in an operational state.
    """
    t = np.asarray(times, dtype=np.float64)
    r = reward_vector(chain, {s: 1.0 for s in operational})
    acc = accumulated_reward(chain, r, t, initial)
    out = np.empty(t.size)
    for k, tk in enumerate(t):
        if tk == 0.0:
            pi0 = (
                chain.initial_distribution()
                if initial is None
                else np.asarray(initial, dtype=np.float64)
            )
            out[k] = float(pi0 @ r)
        else:
            out[k] = acc[k] / tk
    return np.clip(out, 0.0, 1.0)


def _check_rewards(chain: CTMC, rewards: np.ndarray) -> np.ndarray:
    rewards = np.asarray(rewards, dtype=np.float64)
    if rewards.shape != (chain.n_states,):
        raise ValueError(
            f"reward vector shape {rewards.shape} != ({chain.n_states},)"
        )
    return rewards

"""First-passage analysis on CTMCs.

Expected first-passage times and hitting probabilities into a target set,
solved through the standard linear systems on the non-target block.  The
dependability benches use these for MTTF tables (first passage into
``F``) and for "time to first coverage exhaustion" style questions the
paper's figures do not expose directly.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np
import scipy.sparse.linalg

from repro.markov.ctmc import CTMC

__all__ = ["expected_first_passage_times", "hitting_probabilities"]


def expected_first_passage_times(
    chain: CTMC, targets: Iterable[Hashable]
) -> dict[Hashable, float]:
    """``E[inf {t : X_t in targets} | X_0 = s]`` for every state ``s``.

    Target states map to 0.  States that cannot reach the target set get
    ``inf``.  Solves ``(-T) m = 1`` on the non-target block ``T``.
    """
    target_idx = {chain.index_of(s) for s in targets}
    if not target_idx:
        raise ValueError("target set must not be empty")
    other = [i for i in range(chain.n_states) if i not in target_idx]
    out: dict[Hashable, float] = {chain.states[i]: 0.0 for i in target_idx}
    if not other:
        return out
    # Which non-target states can reach the target set at all?
    reachable = _can_reach(chain, target_idx)
    solvable = [i for i in other if reachable[i]]
    for i in other:
        if not reachable[i]:
            out[chain.states[i]] = float("inf")
    if solvable:
        T = chain.generator[np.ix_(solvable, solvable)].tocsc()
        m = scipy.sparse.linalg.spsolve(-T, np.ones(len(solvable)))
        m = np.atleast_1d(m)
        for i, value in zip(solvable, m):
            out[chain.states[i]] = float(value)
    return out


def hitting_probabilities(
    chain: CTMC, targets: Iterable[Hashable]
) -> dict[Hashable, float]:
    """Probability of ever entering ``targets`` from every state.

    Solves ``T h = -R 1`` on the non-target block (``R`` the block of
    rates into the target set); target states map to 1.
    """
    target_idx = sorted(chain.index_of(s) for s in set(targets))
    if not target_idx:
        raise ValueError("target set must not be empty")
    other = [i for i in range(chain.n_states) if i not in set(target_idx)]
    out: dict[Hashable, float] = {chain.states[i]: 1.0 for i in target_idx}
    if not other:
        return out
    Q = chain.generator
    T = Q[np.ix_(other, other)].tocsc()
    R = Q[np.ix_(other, target_idx)]
    rhs = -np.asarray(R.sum(axis=1)).ravel()
    # Absorbing non-target states (exit rate 0) yield singular T; regularize
    # by noting h = 0 there and solving on the rest.
    exit_rates = -T.diagonal()
    live = np.flatnonzero(exit_rates > 0.0)
    dead = np.flatnonzero(exit_rates == 0.0)
    for k in dead:
        out[chain.states[other[k]]] = 0.0
    if live.size:
        T_live = T[np.ix_(live, live)].tocsc()
        # T h = -(R 1); columns into dead states multiply h = 0 and drop out.
        h = np.atleast_1d(scipy.sparse.linalg.spsolve(T_live, rhs[live]))
        for k, value in zip(live, h):
            out[chain.states[other[k]]] = float(np.clip(value, 0.0, 1.0))
    return out


def _can_reach(chain: CTMC, target_idx: set[int]) -> np.ndarray:
    """Boolean vector: can state i reach the target set?"""
    # Reverse-BFS over the transition graph.
    Q = chain.generator.tocoo()
    reverse_adj: dict[int, list[int]] = {}
    for i, j, q in zip(Q.row, Q.col, Q.data):
        if i != j and q > 0.0:
            reverse_adj.setdefault(j, []).append(i)
    seen = np.zeros(chain.n_states, dtype=bool)
    stack = list(target_idx)
    for i in stack:
        seen[i] = True
    while stack:
        j = stack.pop()
        for i in reverse_adj.get(j, ()):
            if not seen[i]:
                seen[i] = True
                stack.append(i)
    return seen

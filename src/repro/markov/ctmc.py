"""Immutable continuous-time Markov chain with a sparse generator.

A CTMC is defined by a finite state space ``S`` and a generator matrix
``Q`` where ``Q[i, j]`` (``i != j``) is the transition rate from state
``i`` to state ``j`` and ``Q[i, i] = -sum_j Q[i, j]``.  The transient
distribution obeys the Kolmogorov forward equation ``dpi/dt = pi @ Q``
with solution ``pi(t) = pi(0) @ expm(Q t)``.

States can be arbitrary hashable objects (the dependability models in
:mod:`repro.core` use small frozen dataclasses); the chain maintains a
bidirectional mapping between states and dense integer indices.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np
import scipy.sparse as sp

__all__ = ["CTMC", "CTMCValidationError"]

#: Tolerance used when validating that generator rows sum to zero.  The
#: dependability chains have rates spanning ~1e-6 .. 1e0 (failure vs repair
#: rates), so an absolute tolerance scaled by the largest magnitude is used.
_ROWSUM_RTOL = 1e-9


class CTMCValidationError(ValueError):
    """Raised when a matrix fails the CTMC generator well-formedness checks."""


class CTMC:
    """A finite-state continuous-time Markov chain.

    Parameters
    ----------
    states:
        Sequence of hashable state labels.  Order defines the dense index
        of each state.
    generator:
        ``(n, n)`` matrix (dense or scipy sparse) with nonnegative
        off-diagonal entries and zero row sums.
    validate:
        If true (default), check generator well-formedness at construction.

    Notes
    -----
    The generator is stored in CSR format.  The object is immutable: all
    mutating construction goes through :class:`repro.markov.builder.CTMCBuilder`.
    """

    __slots__ = ("_states", "_index", "_Q")

    def __init__(
        self,
        states: Sequence[Hashable],
        generator: Any,
        *,
        validate: bool = True,
    ) -> None:
        states = tuple(states)
        if len(set(states)) != len(states):
            raise CTMCValidationError("duplicate states in state sequence")
        Q = sp.csr_matrix(generator, dtype=np.float64)
        if Q.shape != (len(states), len(states)):
            raise CTMCValidationError(
                f"generator shape {Q.shape} does not match {len(states)} states"
            )
        if validate:
            _validate_generator(Q)
        self._states = states
        self._index = {s: i for i, s in enumerate(states)}
        self._Q = Q

    # -- basic accessors ---------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states in the chain."""
        return len(self._states)

    @property
    def states(self) -> tuple[Hashable, ...]:
        """State labels in index order."""
        return self._states

    @property
    def generator(self) -> sp.csr_matrix:
        """The generator matrix ``Q`` in CSR format (do not mutate)."""
        return self._Q

    def index_of(self, state: Hashable) -> int:
        """Dense index of ``state``; raises ``KeyError`` if unknown."""
        return self._index[state]

    def __contains__(self, state: Hashable) -> bool:
        return state in self._index

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CTMC(n_states={self.n_states}, nnz={self._Q.nnz})"

    # -- derived quantities --------------------------------------------------

    def rate(self, src: Hashable, dst: Hashable) -> float:
        """Transition rate from ``src`` to ``dst`` (0.0 if absent)."""
        return float(self._Q[self.index_of(src), self.index_of(dst)])

    def exit_rates(self) -> np.ndarray:
        """Total exit rate of every state (``-diag(Q)``)."""
        return -self._Q.diagonal()

    def max_exit_rate(self) -> float:
        """Largest exit rate; the uniformization constant lower bound."""
        rates = self.exit_rates()
        return float(rates.max()) if rates.size else 0.0

    def absorbing_states(self) -> tuple[Hashable, ...]:
        """States with zero exit rate."""
        rates = self.exit_rates()
        return tuple(s for s, r in zip(self._states, rates) if r == 0.0)

    def initial_distribution(
        self, weights: Mapping[Hashable, float] | Hashable | None = None
    ) -> np.ndarray:
        """Build a dense initial distribution vector.

        Parameters
        ----------
        weights:
            ``None`` puts all mass on state index 0; a single state label
            puts all mass there; a mapping assigns (and normalizes)
            explicit weights.
        """
        pi0 = np.zeros(self.n_states)
        if weights is None:
            pi0[0] = 1.0
        elif isinstance(weights, Mapping):
            for state, w in weights.items():
                if w < 0:
                    raise ValueError(f"negative weight for state {state!r}")
                pi0[self.index_of(state)] = w
            total = pi0.sum()
            if total <= 0:
                raise ValueError("initial weights sum to zero")
            pi0 /= total
        else:
            pi0[self.index_of(weights)] = 1.0
        return pi0

    def probability_of(
        self, distribution: np.ndarray, states: Iterable[Hashable]
    ) -> float:
        """Total probability mass of ``states`` under ``distribution``.

        Accepts a 1-D distribution or a 2-D ``(n_times, n_states)`` array,
        returning a scalar or a vector respectively.
        """
        idx = [self.index_of(s) for s in states]
        dist = np.asarray(distribution)
        if dist.ndim == 1:
            return float(dist[idx].sum())
        return dist[:, idx].sum(axis=1)

    def embedded_jump_matrix(self) -> sp.csr_matrix:
        """DTMC transition matrix of the embedded jump chain.

        Absorbing states are given a self-loop probability of 1.
        """
        Q = self._Q.tocoo()
        rates = self.exit_rates()
        off = Q.row != Q.col
        absorbing = np.flatnonzero(rates == 0.0)
        rows = np.concatenate([Q.row[off], absorbing])
        cols = np.concatenate([Q.col[off], absorbing])
        vals = np.concatenate(
            [Q.data[off] / rates[Q.row[off]], np.ones(absorbing.size)]
        )
        return sp.csr_matrix(
            (vals, (rows, cols)), shape=self._Q.shape, dtype=np.float64
        )

    def uniformized_matrix(self, rate: float | None = None) -> tuple[sp.csr_matrix, float]:
        """Uniformized DTMC ``P = I + Q / Lambda`` and the rate ``Lambda``.

        ``rate`` must be >= the maximum exit rate; defaults to 1.02x the
        maximum (slack improves conditioning and guarantees aperiodicity).
        """
        lam = self.max_exit_rate() * 1.02 if rate is None else float(rate)
        if lam <= 0.0:
            # Chain with no transitions at all: identity.
            return sp.identity(self.n_states, format="csr"), 1.0
        if lam < self.max_exit_rate():
            raise ValueError(
                f"uniformization rate {lam} below max exit rate {self.max_exit_rate()}"
            )
        P = sp.identity(self.n_states, format="csr") + self._Q / lam
        return P.tocsr(), lam

    def restricted_to(self, keep: Iterable[Hashable]) -> "CTMC":
        """Sub-chain on ``keep`` with transitions among kept states only.

        Row sums of the restricted generator are re-diagonalized so the
        result is a proper (sub-stochastic-completed) CTMC: rate mass that
        left the kept set is dropped.  Useful for conditional analyses.
        """
        keep = list(keep)
        idx = np.asarray([self.index_of(s) for s in keep], dtype=int)
        sub = self._Q[np.ix_(idx, idx)].tolil()
        sub.setdiag(0.0)
        sub = sub.tocsr()
        diag = -np.asarray(sub.sum(axis=1)).ravel()
        sub = sub + sp.diags(diag)
        return CTMC(keep, sub, validate=True)


def _validate_generator(Q: sp.csr_matrix) -> None:
    """Check off-diagonal nonnegativity and zero row sums."""
    coo = Q.tocoo()
    off_diag = coo.data[coo.row != coo.col]
    if off_diag.size and off_diag.min() < 0:
        raise CTMCValidationError("negative off-diagonal rate in generator")
    row_sums = np.asarray(Q.sum(axis=1)).ravel()
    scale = max(1.0, float(np.abs(Q.data).max()) if Q.nnz else 1.0)
    if np.any(np.abs(row_sums) > _ROWSUM_RTOL * scale):
        worst = int(np.argmax(np.abs(row_sums)))
        raise CTMCValidationError(
            f"generator row {worst} sums to {row_sums[worst]:.3e}, expected 0"
        )

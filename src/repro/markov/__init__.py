"""Generic continuous-time Markov chain (CTMC) engine.

This subpackage is the numerical substrate for the paper's dependability
analysis (Section 5 of Mandviwalla & Tzeng, ICPP 2004).  It provides:

* :class:`~repro.markov.ctmc.CTMC` -- an immutable chain with a sparse
  generator matrix and a typed state registry.
* :class:`~repro.markov.builder.CTMCBuilder` -- incremental construction of
  chains from (state, state, rate) triples.
* :mod:`~repro.markov.transient` -- transient state-probability solvers
  (matrix exponential, Krylov ``expm_multiply`` and an RK45 ODE fallback).
* :mod:`~repro.markov.uniformization` -- Jensen's uniformization with an
  a-priori truncation error bound, used to cross-check the other solvers.
* :mod:`~repro.markov.stationary` -- steady-state solvers (sparse linear
  solve, dense null space, power iteration on the uniformized chain).
* :mod:`~repro.markov.absorbing` -- absorption probabilities, mean time to
  absorption and phase-type distribution evaluation.
* :mod:`~repro.markov.sensitivity` -- parametric sensitivity of transient
  and stationary probabilities.

All solvers operate on :class:`scipy.sparse` matrices and are vectorized
over time grids; no Python-level loop touches individual matrix entries
after construction.
"""

from repro.markov.builder import CTMCBuilder
from repro.markov.ctmc import CTMC
from repro.markov.transient import transient_distribution
from repro.markov.stationary import stationary_distribution
from repro.markov.uniformization import uniformized_distribution
from repro.markov.absorbing import (
    absorption_probabilities,
    absorption_time_moments,
    mean_time_to_absorption,
    phase_type_cdf,
)
from repro.markov.sensitivity import transient_sensitivity
from repro.markov.rewards import (
    accumulated_reward,
    instantaneous_reward,
    interval_availability,
    reward_vector,
)
from repro.markov.dtmc import DTMC
from repro.markov.firstpassage import (
    expected_first_passage_times,
    hitting_probabilities,
)

__all__ = [
    "CTMC",
    "CTMCBuilder",
    "transient_distribution",
    "stationary_distribution",
    "uniformized_distribution",
    "absorption_probabilities",
    "absorption_time_moments",
    "mean_time_to_absorption",
    "phase_type_cdf",
    "transient_sensitivity",
    "reward_vector",
    "instantaneous_reward",
    "accumulated_reward",
    "interval_availability",
    "expected_first_passage_times",
    "hitting_probabilities",
    "DTMC",
]

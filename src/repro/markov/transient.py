"""Transient distribution solvers for CTMCs.

Computes ``pi(t) = pi(0) @ expm(Q t)`` on a grid of time points.  Three
methods are provided:

``expm_multiply``
    Krylov/Taylor action of the matrix exponential on a vector
    (:func:`scipy.sparse.linalg.expm_multiply`); never forms ``expm(Q t)``
    explicitly.  Default, and the right choice for the paper's chains
    (hundreds of states, very stiff rate spread).

``expm``
    Dense Pade matrix exponential; O(n^3) per distinct time step but an
    independent code path, used in cross-validation tests.

``ode``
    RK45 integration of the Kolmogorov forward equation via
    :func:`scipy.integrate.solve_ivp`; a third independent path.

All methods return an ``(n_times, n_states)`` array whose rows are
probability distributions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.linalg
import scipy.integrate
import scipy.sparse.linalg

from repro.markov.ctmc import CTMC

__all__ = ["transient_distribution", "TRANSIENT_METHODS"]

TRANSIENT_METHODS = ("expm_multiply", "expm", "ode")


def transient_distribution(
    chain: CTMC,
    times: Sequence[float] | np.ndarray,
    initial: np.ndarray | None = None,
    *,
    method: str = "expm_multiply",
    rtol: float = 1e-10,
    atol: float = 1e-12,
) -> np.ndarray:
    """State probabilities of ``chain`` at each time in ``times``.

    Parameters
    ----------
    chain:
        The CTMC to solve.
    times:
        Nonnegative time points (need not be sorted or distinct).
    initial:
        Initial distribution; defaults to all mass on state index 0.
    method:
        One of :data:`TRANSIENT_METHODS`.
    rtol, atol:
        Tolerances for the ``ode`` method (ignored otherwise).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(times), n_states)``; row ``k`` is ``pi(times[k])``.
    """
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1:
        raise ValueError("times must be one-dimensional")
    if t.size and t.min() < 0.0:
        raise ValueError("times must be nonnegative")
    pi0 = (
        chain.initial_distribution()
        if initial is None
        else np.asarray(initial, dtype=np.float64)
    )
    if pi0.shape != (chain.n_states,):
        raise ValueError(
            f"initial distribution shape {pi0.shape} != ({chain.n_states},)"
        )
    if not np.isclose(pi0.sum(), 1.0, atol=1e-9):
        raise ValueError(f"initial distribution sums to {pi0.sum()}, expected 1")
    if t.size == 0:
        return np.empty((0, chain.n_states))

    if method == "expm_multiply":
        out = _solve_expm_multiply(chain, t, pi0)
    elif method == "expm":
        out = _solve_dense_expm(chain, t, pi0)
    elif method == "ode":
        out = _solve_ode(chain, t, pi0, rtol=rtol, atol=atol)
    else:
        raise ValueError(f"unknown method {method!r}; choose from {TRANSIENT_METHODS}")

    # Solvers introduce tiny negative round-off; clip and renormalize so
    # downstream reliability/availability numbers are proper probabilities.
    np.clip(out, 0.0, None, out=out)
    out /= out.sum(axis=1, keepdims=True)
    return out


def _solve_expm_multiply(chain: CTMC, t: np.ndarray, pi0: np.ndarray) -> np.ndarray:
    # Row-vector evolution pi(t) = pi0 @ expm(Qt) is the column evolution of
    # the transposed generator: expm(Q.T t) @ pi0.
    QT = chain.generator.T.tocsr()
    order = np.argsort(t, kind="stable")
    sorted_t = t[order]
    out_sorted = np.empty((t.size, chain.n_states))
    v = pi0.copy()
    prev = 0.0
    for k, tk in enumerate(sorted_t):
        dt = tk - prev
        if dt > 0.0:
            v = scipy.sparse.linalg.expm_multiply(QT * dt, v)
            prev = tk
        out_sorted[k] = v
    out = np.empty_like(out_sorted)
    out[order] = out_sorted
    return out


def _solve_dense_expm(chain: CTMC, t: np.ndarray, pi0: np.ndarray) -> np.ndarray:
    Q = chain.generator.toarray()
    out = np.empty((t.size, chain.n_states))
    # Cache by time value: grids often contain repeated points.
    cache: dict[float, np.ndarray] = {}
    for k, tk in enumerate(t):
        key = float(tk)
        if key not in cache:
            cache[key] = scipy.linalg.expm(Q * key)
        out[k] = pi0 @ cache[key]
    return out


def _solve_ode(
    chain: CTMC, t: np.ndarray, pi0: np.ndarray, *, rtol: float, atol: float
) -> np.ndarray:
    QT = chain.generator.T.tocsr()

    def rhs(_t: float, y: np.ndarray) -> np.ndarray:
        return QT @ y

    order = np.argsort(t, kind="stable")
    sorted_t = t[order]
    t_end = float(sorted_t[-1])
    if t_end == 0.0:
        return np.tile(pi0, (t.size, 1))
    sol = scipy.integrate.solve_ivp(
        rhs,
        (0.0, t_end),
        pi0,
        t_eval=np.unique(sorted_t),
        method="LSODA",  # stiff-aware: failure ~1e-6/h vs repair ~1e0/h rates
        rtol=rtol,
        atol=atol,
    )
    if not sol.success:  # pragma: no cover - scipy failure path
        raise RuntimeError(f"ODE transient solve failed: {sol.message}")
    by_time = {float(tv): sol.y[:, i] for i, tv in enumerate(sol.t)}
    out = np.empty((t.size, chain.n_states))
    for k, tk in enumerate(t):
        out[k] = by_time[float(tk)]
    return out

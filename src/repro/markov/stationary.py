"""Steady-state distribution solvers for irreducible CTMCs.

The stationary distribution ``pi`` solves ``pi @ Q = 0`` with
``sum(pi) = 1``.  Three independent methods are provided; availability
analysis (:mod:`repro.core.availability`) uses ``linear`` by default, while
tests cross-check all three.

The repair-augmented dependability chains of Section 5.2 are irreducible by
construction (every state repairs back to the all-healthy state), so
existence and uniqueness of ``pi`` are guaranteed.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.markov.ctmc import CTMC
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["stationary_distribution", "STATIONARY_METHODS", "is_irreducible"]

STATIONARY_METHODS = ("linear", "nullspace", "power")


def is_irreducible(chain: CTMC) -> bool:
    """True when the transition graph is strongly connected."""
    n_comp, _ = sp.csgraph.connected_components(
        chain.generator, directed=True, connection="strong"
    )
    return n_comp == 1


def stationary_distribution(
    chain: CTMC,
    *,
    method: str = "linear",
    tol: float = 1e-13,
    max_iter: int = 2_000_000,
) -> np.ndarray:
    """Stationary distribution of an irreducible CTMC.

    Parameters
    ----------
    chain:
        The chain; must be irreducible (checked).
    method:
        ``linear`` replaces one balance equation with the normalization
        constraint and solves the sparse system (default); ``nullspace``
        extracts the null space of ``Q^T`` by dense SVD; ``power`` runs
        power iteration on the uniformized DTMC.
    tol, max_iter:
        Convergence controls for ``power`` (ignored otherwise).

    Returns
    -------
    numpy.ndarray
        Length-``n_states`` probability vector.
    """
    if chain.n_states == 1:
        return np.ones(1)
    if not is_irreducible(chain):
        raise ValueError(
            "chain is not irreducible; stationary distribution is not unique"
        )
    iterations = 0
    if method == "linear":
        pi = _solve_linear(chain)
    elif method == "nullspace":
        pi = _solve_nullspace(chain)
    elif method == "power":
        pi, iterations = _solve_power(chain, tol=tol, max_iter=max_iter)
    else:
        raise ValueError(f"unknown method {method!r}; choose from {STATIONARY_METHODS}")
    if _metrics.REGISTRY is not None or _trace.TRACER is not None:
        # The balance residual max|pi Q| is one sparse matvec -- cheap
        # relative to any of the solves, and only computed when observed.
        residual = float(np.abs(pi @ chain.generator).max())
        if _metrics.REGISTRY is not None:
            reg = _metrics.REGISTRY
            reg.counter("solver.stationary.solves").inc()
            reg.counter(f"solver.stationary.solves.{method}").inc()
            if iterations:
                reg.counter("solver.stationary.iterations").inc(iterations)
            reg.gauge("solver.stationary.residual").set(residual)
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "solver.stationary",
                n_states=chain.n_states,
                method=method,
                iterations=iterations,
                residual=residual,
            )
    return pi


def _solve_linear(chain: CTMC) -> np.ndarray:
    n = chain.n_states
    # pi Q = 0  <=>  Q^T pi^T = 0; replace the last equation by sum(pi) = 1.
    # Assembled by stacking CSR blocks -- same matrix as the historical
    # row-replacement on an LIL copy, without the O(nnz) format churn.
    QT = chain.generator.T.tocsr()
    A = sp.vstack([QT[: n - 1, :], np.ones((1, n))], format="csr")
    b = np.zeros(n)
    b[n - 1] = 1.0
    pi = scipy.sparse.linalg.spsolve(A, b)
    return _clean(pi)


def _solve_nullspace(chain: CTMC) -> np.ndarray:
    QT = chain.generator.T.toarray()
    ns = scipy.linalg.null_space(QT)
    if ns.shape[1] != 1:  # pragma: no cover - guarded by irreducibility check
        raise RuntimeError(f"null space dimension {ns.shape[1]} != 1")
    pi = ns[:, 0]
    if pi.sum() < 0:
        pi = -pi
    return _clean(pi)


def _solve_power(chain: CTMC, *, tol: float, max_iter: int) -> tuple[np.ndarray, int]:
    P, _lam = chain.uniformized_matrix()
    PT = P.T.tocsr()
    pi = np.full(chain.n_states, 1.0 / chain.n_states)
    for iteration in range(1, max_iter + 1):
        nxt = PT @ pi
        nxt /= nxt.sum()
        if np.abs(nxt - pi).max() < tol:
            return _clean(nxt), iteration
        pi = nxt
    raise RuntimeError(
        f"power iteration did not converge in {max_iter} iterations"
    )


def _clean(pi: np.ndarray) -> np.ndarray:
    pi = np.where(np.abs(pi) < 1e-300, 0.0, pi)
    if pi.min() < -1e-9 * max(1.0, pi.max()):
        raise RuntimeError("stationary solve produced a significantly negative entry")
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()

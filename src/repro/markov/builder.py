"""Incremental CTMC construction.

The dependability chains of :mod:`repro.core` are generated programmatically
from (N, M) configurations; this builder accumulates transitions in a plain
dict-of-dicts, merges parallel edges by summing rates, and emits a validated
:class:`~repro.markov.ctmc.CTMC` with a CSR generator.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.markov.ctmc import CTMC

__all__ = ["CTMCBuilder"]


class CTMCBuilder:
    """Accumulates states and transition rates, then builds a CTMC.

    States are registered in first-seen order (explicitly via
    :meth:`add_state` or implicitly via :meth:`add_transition`), which
    fixes their dense indices in the built chain.

    Examples
    --------
    >>> b = CTMCBuilder()
    >>> b.add_transition("up", "down", 0.1)
    >>> b.add_transition("down", "up", 2.0)
    >>> chain = b.build()
    >>> chain.n_states
    2
    """

    def __init__(self) -> None:
        self._order: list[Hashable] = []
        self._seen: set[Hashable] = set()
        self._rates: dict[Hashable, dict[Hashable, float]] = {}

    def add_state(self, state: Hashable) -> None:
        """Register ``state`` (idempotent)."""
        if state not in self._seen:
            self._seen.add(state)
            self._order.append(state)
            self._rates.setdefault(state, {})

    def add_states(self, states: Iterable[Hashable]) -> None:
        """Register several states in iteration order."""
        for s in states:
            self.add_state(s)

    def add_transition(self, src: Hashable, dst: Hashable, rate: float) -> None:
        """Add a transition ``src -> dst`` at ``rate`` (rates accumulate).

        Zero-rate transitions are dropped; negative rates and self-loops
        are rejected (the diagonal is derived, never specified).
        """
        rate = float(rate)
        if rate < 0.0:
            raise ValueError(f"negative rate {rate} for {src!r} -> {dst!r}")
        if src == dst:
            raise ValueError(f"self-loop on {src!r}: CTMC diagonals are derived")
        self.add_state(src)
        self.add_state(dst)
        if rate == 0.0:
            return
        row = self._rates[src]
        row[dst] = row.get(dst, 0.0) + rate

    @property
    def n_states(self) -> int:
        """Number of registered states so far."""
        return len(self._order)

    @property
    def n_transitions(self) -> int:
        """Number of distinct (src, dst) pairs with positive rate."""
        return sum(len(row) for row in self._rates.values())

    def transitions(self) -> list[tuple[Hashable, Hashable, float]]:
        """All accumulated transitions as (src, dst, rate) triples."""
        return [
            (src, dst, rate)
            for src, row in self._rates.items()
            for dst, rate in row.items()
        ]

    def build(self, *, validate: bool = True) -> CTMC:
        """Emit the CTMC.  The builder remains usable afterwards."""
        index = {s: i for i, s in enumerate(self._order)}
        n = len(self._order)
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        diag = np.zeros(n)
        for src, row in self._rates.items():
            i = index[src]
            for dst, rate in row.items():
                rows.append(i)
                cols.append(index[dst])
                vals.append(rate)
                diag[i] -= rate
        Q = sp.coo_matrix((vals, (rows, cols)), shape=(n, n), dtype=np.float64)
        Q = (Q + sp.diags(diag)).tocsr()
        return CTMC(self._order, Q, validate=validate)

    def to_networkx(self) -> Any:
        """Export accumulated transitions as a ``networkx.DiGraph``.

        Edge attribute ``rate`` holds the transition rate.  Imported lazily
        so the builder itself has no hard networkx dependency at import time.
        """
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self._order)
        for src, dst, rate in self.transitions():
            g.add_edge(src, dst, rate=rate)
        return g

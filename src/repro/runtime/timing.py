"""Lightweight wall-time / throughput instrumentation.

The runtime layer measures, the analysis layer reports: parallel sweeps
and Monte Carlo drivers record one :class:`StageTiming` per stage into a
shared :class:`RuntimeMetrics`, and ``repro.analysis.report`` (plus the
``bench`` CLI subcommand) renders the table.  Timing never alters
results -- it wraps computations, it does not reorder them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["StageTiming", "Stopwatch", "RuntimeMetrics"]


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock measurement of one named stage.

    ``items`` counts whatever unit the stage processes -- sweep points for
    the figure sweeps, trials for Monte Carlo batches, cycles for
    importance sampling -- so ``throughput`` reads as points/s, trials/s
    or cycles/s accordingly.
    """

    name: str
    wall_s: float
    items: int = 0
    unit: str = "points"
    jobs: int = 1

    @property
    def throughput(self) -> float:
        """Items per second (0 when nothing was counted or time was ~0)."""
        if self.items <= 0 or self.wall_s <= 0.0:
            return 0.0
        return self.items / self.wall_s


class Stopwatch:
    """Context manager measuring elapsed wall time via ``perf_counter``."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class RuntimeMetrics:
    """Accumulates stage timings across one CLI invocation or report run."""

    stages: list[StageTiming] = field(default_factory=list)

    def record(
        self,
        name: str,
        wall_s: float,
        *,
        items: int = 0,
        unit: str = "points",
        jobs: int = 1,
    ) -> StageTiming:
        """Append and return a :class:`StageTiming`."""
        stage = StageTiming(name=name, wall_s=wall_s, items=items, unit=unit, jobs=jobs)
        self.stages.append(stage)
        return stage

    @property
    def total_wall_s(self) -> float:
        """Sum of stage wall times (stages run sequentially)."""
        return sum(s.wall_s for s in self.stages)

    def format_table(self) -> str:
        """Fixed-width table in the style of the paper-table formatters."""
        lines = [
            f"{'stage':<34} {'jobs':>4} {'wall (s)':>9} {'items':>10} {'rate':>14}"
        ]
        for s in self.stages:
            rate = f"{s.throughput:,.0f} {s.unit}/s" if s.throughput else "-"
            lines.append(
                f"{s.name:<34} {s.jobs:>4} {s.wall_s:>9.3f} {s.items:>10,} {rate:>14}"
            )
        lines.append(f"{'total':<34} {'':>4} {self.total_wall_s:>9.3f}")
        return "\n".join(lines)

"""Content-addressed on-disk result cache for solved chains and sweeps.

A cache entry is addressed purely by *what* is being computed -- never by
when or where -- so repeated ``report``/``claims``/figure runs skip every
already-solved chain.  The key is a SHA-256 over a canonical byte
encoding of:

* a ``kind`` tag naming the computation (``"reliability_sweep"``, ...),
* every input that affects the result: configuration dataclasses
  (``DRAConfig``, ``FailureRates``, ``RepairPolicy``, ...), rate and
  time-grid arrays (shape + dtype + raw bytes), scalars and strings,
* the package version (:data:`repro.__version__`) and a cache schema
  version, so upgrading the code or the entry layout invalidates every
  stale entry automatically.

Values are stored as pickle files under ``<root>/<kk>/<key>.pkl`` (two-
level fan-out keeps directories small); writes go through a temp file +
``os.replace`` so concurrent workers never observe a torn entry, and any
unreadable entry is treated as a miss and overwritten.

The cache root defaults to ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-dra``; pass an explicit ``root`` for hermetic use in
tests.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["CACHE_SCHEMA_VERSION", "ResultCache", "stable_hash"]

#: Bump when the entry layout or the key composition changes.
CACHE_SCHEMA_VERSION = 1

_ENV_VAR = "REPRO_CACHE_DIR"


def _encode(obj: Any, out: list[bytes]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    Every branch prefixes a type tag so differently-typed values with the
    same repr can never collide (``1`` vs ``1.0`` vs ``"1"``).
    """
    if obj is None:
        out.append(b"N;")
    elif isinstance(obj, bool):
        out.append(b"b%d;" % obj)
    elif isinstance(obj, int):
        out.append(b"i%d;" % obj)
    elif isinstance(obj, float):
        out.append(b"f" + obj.hex().encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode()
        out.append(b"s%d:" % len(raw) + raw + b";")
    elif isinstance(obj, bytes):
        out.append(b"y%d:" % len(obj) + obj + b";")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        out.append(b"a" + str(arr.shape).encode() + arr.dtype.str.encode() + b":")
        out.append(arr.tobytes())
        out.append(b";")
    elif isinstance(obj, np.generic):
        _encode(obj.item(), out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(b"d" + type(obj).__qualname__.encode() + b"{")
        for field in dataclasses.fields(obj):
            _encode(field.name, out)
            _encode(getattr(obj, field.name), out)
        out.append(b"};")
    elif isinstance(obj, (tuple, list)):
        out.append(b"l[")
        for item in obj:
            _encode(item, out)
        out.append(b"];")
    elif isinstance(obj, dict):
        out.append(b"m{")
        for key in sorted(obj, key=repr):
            _encode(key, out)
            _encode(obj[key], out)
        out.append(b"};")
    else:
        raise TypeError(
            f"cannot canonically hash {type(obj).__name__!r}; pass dataclasses, "
            "arrays, containers or scalars"
        )


def stable_hash(*parts: Any) -> str:
    """Hex SHA-256 of the canonical encoding of ``parts``.

    Stable across processes and sessions (unlike ``hash()``, which is
    salted) and across container types carrying equal leaves.
    """
    out: list[bytes] = []
    _encode(tuple(parts), out)
    return hashlib.sha256(b"".join(out)).hexdigest()


class ResultCache:
    """Content-addressed pickle store with hit/miss accounting."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(_ENV_VAR) or Path.home() / ".cache" / "repro-dra"
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key(self, kind: str, **parts: Any) -> str:
        """Cache key for computation ``kind`` with keyword inputs ``parts``.

        The package version and :data:`CACHE_SCHEMA_VERSION` are always
        mixed in, so a code upgrade can never serve stale results.
        """
        from repro import __version__

        return stable_hash(kind, __version__, CACHE_SCHEMA_VERSION, parts)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        A corrupt or unreadable entry counts as a miss (it will be
        rewritten by the next :meth:`put`).
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def get_or_compute(self, key: str, compute: Any) -> Any:
        """Return the cached value, or run ``compute()`` and store it."""
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> int:
        """Delete every entry under the root; returns the count removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.pkl"):
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r}, hits={self.hits}, misses={self.misses})"

"""Parallel execution runtime: process pools, result caching, timing.

The analysis layer (:mod:`repro.analysis`) and the Monte Carlo estimators
(:mod:`repro.montecarlo`) are pure functions of their configuration; this
package supplies the execution substrate that makes bulk evaluation fast
without touching their semantics:

* :mod:`~repro.runtime.executor` -- an order-preserving, chunked
  ``ProcessPoolExecutor`` map with a serial fast path at ``jobs=1``;
* :mod:`~repro.runtime.sweeps` -- parallel drop-in equivalents of the
  Figure 6/7/8 sweeps that fan configuration points out over workers and
  merge records back in serial order;
* :mod:`~repro.runtime.montecarlo` -- parallel Monte Carlo drivers whose
  results are **bit-identical for a given root seed regardless of the
  worker count** (fixed chunking + ``SeedSequence.spawn`` streams +
  order-independent reductions);
* :mod:`~repro.runtime.cache` -- a content-addressed on-disk result cache
  keyed on a stable hash of the configuration dataclasses, array inputs
  and the code version;
* :mod:`~repro.runtime.timing` -- wall-time / throughput instrumentation
  surfaced through ``repro.analysis.report`` and the ``bench`` CLI
  subcommand;
* :mod:`~repro.runtime.throughput` -- the hot-path throughput benchmark
  suite behind ``bench --suite throughput`` and the perf-regression gate
  that compares it against the committed
  ``benchmarks/BASELINE_throughput.json``.

See ``docs/performance.md`` for the worker model, the determinism
guarantee and benchmarking instructions.
"""

from repro.runtime.cache import ResultCache, stable_hash
from repro.runtime.executor import effective_jobs, metered_parallel_map, parallel_map
from repro.runtime.montecarlo import (
    parallel_structure_function_reliability,
    parallel_unavailability_importance_sampling,
)
from repro.runtime.sweeps import (
    parallel_availability_sweep,
    parallel_performance_sweep,
    parallel_reliability_sweep,
)
from repro.runtime.throughput import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_THRESHOLD,
    canonical_throughput_payload,
    compare_to_baseline,
    make_baseline,
    run_throughput_suite,
)
from repro.runtime.timing import RuntimeMetrics, StageTiming, Stopwatch

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_THRESHOLD",
    "canonical_throughput_payload",
    "compare_to_baseline",
    "make_baseline",
    "run_throughput_suite",
    "ResultCache",
    "stable_hash",
    "effective_jobs",
    "parallel_map",
    "metered_parallel_map",
    "parallel_structure_function_reliability",
    "parallel_unavailability_importance_sampling",
    "parallel_reliability_sweep",
    "parallel_availability_sweep",
    "parallel_performance_sweep",
    "RuntimeMetrics",
    "StageTiming",
    "Stopwatch",
]

"""Parallel, cache-aware drivers for the Figure 6/7/8 sweeps.

Each driver is a drop-in equivalent of its serial counterpart in
:mod:`repro.analysis.sweep`: same arguments, same record order, same
values.  The unit of parallel work is one *curve* -- a (configuration,
repair-policy) pair -- because each unit builds and solves an independent
Markov chain, which is where all the time goes; the per-unit record
lists are merged back in serial submission order so the output is
indistinguishable from a serial run.

With a :class:`~repro.runtime.cache.ResultCache` attached, every unit is
looked up before being dispatched and stored after being solved, so a
repeated ``report``/``claims``/figure run re-solves nothing.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np

from repro.analysis.sweep import (
    FIG6_CONFIGS,
    FIG6_TIME_GRID,
    FIG7_CONFIGS,
    SweepRecord,
    availability_sweep,
    performance_sweep,
    reliability_sweep,
)
from repro.core.parameters import FailureRates, RepairPolicy
from repro.core.performance import DEFAULT_LC_CAPACITY_GBPS
from repro.runtime.cache import ResultCache
from repro.runtime.executor import effective_jobs, metered_parallel_map
from repro.runtime.timing import RuntimeMetrics, Stopwatch

__all__ = [
    "parallel_reliability_sweep",
    "parallel_availability_sweep",
    "parallel_performance_sweep",
]

#: Sentinel naming the baseline curve in a work-unit spec.
_BDR = "BDR"


def _fill_units(
    payloads: Sequence[Any],
    task: Callable[[Any], list[SweepRecord]],
    keys: Sequence[str] | None,
    *,
    jobs: int,
    cache: ResultCache | None,
) -> list[list[SweepRecord]]:
    """Resolve every unit from cache or the pool, preserving order."""
    results: list[list[SweepRecord] | None] = [None] * len(payloads)
    missing: list[int] = []
    for idx in range(len(payloads)):
        if cache is not None and keys is not None:
            hit, value = cache.get(keys[idx])
            if hit:
                results[idx] = value
                continue
        missing.append(idx)
    computed = metered_parallel_map(task, [payloads[i] for i in missing], jobs=jobs)
    for idx, value in zip(missing, computed):
        results[idx] = value
        if cache is not None and keys is not None:
            cache.put(keys[idx], value)
    return results  # type: ignore[return-value]


def _reliability_unit(payload: tuple) -> list[SweepRecord]:
    times, spec, rates, variant, method = payload
    if spec == _BDR:
        return reliability_sweep(
            times, configs=(), rates=rates, include_bdr=True, method=method
        )
    n, m = spec
    return reliability_sweep(
        times,
        configs=[(n, m)],
        rates=rates,
        variant=variant,
        include_bdr=False,
        method=method,
    )


def parallel_reliability_sweep(
    times: np.ndarray | None = None,
    configs: Iterable[tuple[int, int]] | None = None,
    rates: FailureRates | None = None,
    *,
    variant: str = "paper",
    include_bdr: bool = True,
    method: str = "expm_multiply",
    jobs: int = 1,
    cache: ResultCache | None = None,
    metrics: RuntimeMetrics | None = None,
) -> list[SweepRecord]:
    """Figure 6 records, one worker task per reliability curve."""
    times = FIG6_TIME_GRID if times is None else np.asarray(times, dtype=np.float64)
    configs = FIG6_CONFIGS if configs is None else tuple(configs)
    rates = rates or FailureRates()
    jobs = effective_jobs(jobs)
    specs: list[Any] = ([_BDR] if include_bdr else []) + list(configs)
    payloads = [(times, spec, rates, variant, method) for spec in specs]
    keys = (
        [
            cache.key(
                "reliability_sweep",
                times=times,
                spec=spec,
                rates=rates,
                variant=variant,
                method=method,
            )
            for spec in specs
        ]
        if cache is not None
        else None
    )
    with Stopwatch() as sw:
        per_unit = _fill_units(payloads, _reliability_unit, keys, jobs=jobs, cache=cache)
    records = [rec for unit in per_unit for rec in unit]
    if metrics is not None:
        metrics.record(
            "reliability sweep (Figure 6)",
            sw.elapsed,
            items=len(records),
            unit="points",
            jobs=jobs,
        )
    return records


def _availability_unit(payload: tuple) -> list[SweepRecord]:
    spec, repair, rates, variant = payload
    if spec == _BDR:
        return availability_sweep(
            configs=(), repairs=[repair], rates=rates, include_bdr=True
        )
    n, m = spec
    return availability_sweep(
        configs=[(n, m)],
        repairs=[repair],
        rates=rates,
        variant=variant,
        include_bdr=False,
    )


def parallel_availability_sweep(
    configs: Iterable[tuple[int, int]] | None = None,
    repairs: Sequence[RepairPolicy] | None = None,
    rates: FailureRates | None = None,
    *,
    variant: str = "paper",
    include_bdr: bool = True,
    jobs: int = 1,
    cache: ResultCache | None = None,
    metrics: RuntimeMetrics | None = None,
) -> list[SweepRecord]:
    """Figure 7 records, one worker task per (repair policy, config)."""
    configs = FIG7_CONFIGS if configs is None else tuple(configs)
    repairs = tuple(repairs) if repairs else (
        RepairPolicy.three_hours(),
        RepairPolicy.half_day(),
    )
    rates = rates or FailureRates()
    jobs = effective_jobs(jobs)
    specs: list[tuple[Any, RepairPolicy]] = []
    for rp in repairs:
        if include_bdr:
            specs.append((_BDR, rp))
        specs.extend(((n, m), rp) for n, m in configs)
    payloads = [(spec, rp, rates, variant) for spec, rp in specs]
    keys = (
        [
            cache.key(
                "availability_sweep",
                spec=spec,
                repair=rp,
                rates=rates,
                variant=variant,
            )
            for spec, rp in specs
        ]
        if cache is not None
        else None
    )
    with Stopwatch() as sw:
        per_unit = _fill_units(payloads, _availability_unit, keys, jobs=jobs, cache=cache)
    records = [rec for unit in per_unit for rec in unit]
    if metrics is not None:
        metrics.record(
            "availability sweep (Figure 7)",
            sw.elapsed,
            items=len(records),
            unit="points",
            jobs=jobs,
        )
    return records


def parallel_performance_sweep(
    loads: Sequence[float] | None = None,
    *,
    n: int = 6,
    c_lc: float = DEFAULT_LC_CAPACITY_GBPS,
    b_bus: float | None = None,
    jobs: int = 1,  # noqa: ARG001 - accepted for API uniformity
    cache: ResultCache | None = None,
    metrics: RuntimeMetrics | None = None,
) -> list[SweepRecord]:
    """Figure 8 records (algebraic -- microseconds of work, so the
    ``jobs`` argument is accepted for uniformity but the computation runs
    in-process; the cache still applies)."""
    with Stopwatch() as sw:
        if cache is not None:
            key = cache.key(
                "performance_sweep",
                loads=None if loads is None else tuple(loads),
                n=n,
                c_lc=c_lc,
                b_bus=b_bus,
            )
            records = cache.get_or_compute(
                key, lambda: performance_sweep(loads=loads, n=n, c_lc=c_lc, b_bus=b_bus)
            )
        else:
            records = performance_sweep(loads=loads, n=n, c_lc=c_lc, b_bus=b_bus)
    if metrics is not None:
        metrics.record(
            "performance sweep (Figure 8)",
            sw.elapsed,
            items=len(records),
            unit="points",
            jobs=1,
        )
    return records

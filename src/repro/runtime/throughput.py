"""The throughput benchmark suite and its perf-regression gate.

``repro bench --suite throughput`` measures the hot paths this codebase
actually spends its time in -- the DES event loop, the batched fabric
cell clock (against its scalar per-cell reference), the vectorized Monte
Carlo kernels (against their scalar reference implementations), and the
sparse Markov solvers across state-space sizes -- and writes the
schema-versioned ``BENCH_throughput.json`` report.

Three design rules keep the report useful as a *gate* rather than a
decoration (``docs/performance.md`` for the policy, ``docs/benchmarks.md``
for the schema):

1. **Deterministic payloads, measured timings.**  Every entry carries a
   ``digest`` of its numerical result, which is a pure function of the
   seed (and bit-identical for any ``--jobs`` by the runtime contract).
   :func:`canonical_throughput_payload` projects a report onto exactly
   those deterministic fields; the projection is byte-identical across
   worker counts and is what CI diffs.
2. **Machine-portable metrics first.**  Absolute events/sec numbers do
   not transfer between machines, so the gate normalizes them by a
   calibration microbenchmark measured in the *same* run (numpy RNG +
   cumsum, the same primitive mix as the MC kernels), and the headline
   metrics are vectorized-vs-scalar speedup *ratios*, which are
   dimensionless and compare cleanly against a baseline recorded on any
   hardware.
3. **An enforced threshold.**  :func:`compare_to_baseline` fails a run
   whose normalized metrics regress more than ``threshold`` (default
   15%) against the committed ``benchmarks/BASELINE_throughput.json``;
   the CLI exits nonzero, which is the CI contract.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.runtime.timing import Stopwatch

__all__ = [
    "THROUGHPUT_SCHEMA",
    "THROUGHPUT_VERSION",
    "BASELINE_SCHEMA",
    "DEFAULT_THRESHOLD",
    "DEFAULT_BASELINE_PATH",
    "run_throughput_suite",
    "canonical_throughput_payload",
    "make_baseline",
    "compare_to_baseline",
    "render_throughput_report",
]

THROUGHPUT_SCHEMA = "repro-bench-throughput"
THROUGHPUT_VERSION = 1
BASELINE_SCHEMA = "repro-bench-throughput-baseline"

#: Maximum tolerated relative regression of any gated metric.  Chosen as
#: roughly 3x the run-to-run noise of the *normalized* metrics on a quiet
#: machine (~3-5%), so the gate trips on real regressions, not scheduler
#: jitter; see docs/performance.md for the measurement.
DEFAULT_THRESHOLD = 0.15

#: Where the committed baseline lives, relative to the repo root.
DEFAULT_BASELINE_PATH = "benchmarks/BASELINE_throughput.json"

#: Size ladder for the solver wall-time entries (DRA configs).
_SOLVER_CONFIGS = ((3, 2), (6, 3), (9, 4))


def _digest(*arrays) -> str:
    """Short sha256 over the float64 bytes of the result arrays."""
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a, dtype=np.float64).tobytes())
    return h.hexdigest()[:16]


def _entry(name: str, unit: str, items: int, wall_s: float, digest: str) -> dict:
    return {
        "name": name,
        "unit": unit,
        "items": int(items),
        "wall_s": wall_s,
        "per_sec": items / wall_s if wall_s > 0.0 else 0.0,
        "digest": digest,
    }


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return (last result, best wall time)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        with Stopwatch() as sw:
            result = fn()
        best = min(best, sw.elapsed)
    return result, best


def _bench_calibration() -> tuple[dict, float]:
    """The normalization anchor: seeded RNG draws + a cumsum reduction.

    Same primitive mix as the vectorized MC kernels, so dividing a
    throughput metric by this rate cancels machine speed to first order.
    """
    n = 1 << 19

    def work():
        rng = np.random.default_rng(12345)  # dra: noqa[DRA501] reason=calibration microbenchmark: only the wall time is used, the draws never touch results
        x = rng.standard_exponential(n)
        return float(np.cumsum(x)[-1])

    _, wall = _timed(work, repeats=5)
    entry = _entry("calibration.numpy", "ops", n, wall, digest="")
    return entry, entry["per_sec"]


def _bench_sim_events(scale: float) -> dict:
    from repro.sim import Engine

    n_events = max(int(40_000 * scale), 1_000)
    periods = [1.0 + 0.1 * k for k in range(8)]

    def work():
        engine = Engine()
        fired = [0]

        def make(k: int):
            def action() -> None:
                fired[0] += 1
                if fired[0] < n_events:
                    engine.schedule_in(periods[k], action)

            return action

        for k, p in enumerate(periods):
            engine.schedule(p, make(k))
        engine.run()
        return engine

    engine, wall = _timed(work, repeats=3)
    return _entry(
        "sim.events",
        "events",
        engine.events_processed,
        wall,
        _digest(np.array([engine.events_processed, engine.now])),
    )


def _bench_cell_dispatch(scale: float) -> tuple[dict, dict]:
    """The fabric cell clock, batched vs its scalar reference oracle.

    Two output ports take turns receiving a stream of 32-cell packets
    (the 1500 B case) slightly faster than they drain, with two
    fabric-card failures and one repair mid-run so the burst runs split
    on ``active_fraction`` changes.  Segmentation cost is hoisted out
    of the timed region (one prototype cell run, reused) so the entry
    isolates the dispatch kernel itself.  Identical workload for both
    modes, so the digests double as an equivalence check: delivery
    count, summed delivery times, final clock and event totals must all
    match.
    """
    from repro.router.fabric import SwitchFabric
    from repro.router.packets import CELL_PAYLOAD_BYTES, Cell
    from repro.sim import Engine

    n_ports = 2
    cells_per_packet = 32
    n_packets = max(int(2_000 * scale), 16)
    rate = 25e6
    interval = cells_per_packet / rate * 0.98  # queues stay mostly busy
    n_inject = n_ports * n_packets
    t_inject_end = n_inject * interval
    proto_cells = [
        Cell(
            pkt_id=0,
            seq=s,
            total=cells_per_packet,
            payload_bytes=CELL_PAYLOAD_BYTES,
            dst_lc=0,
        )
        for s in range(cells_per_packet)
    ]

    def run_mode(mode: str):
        engine = Engine()
        fabric = SwitchFabric(
            engine, n_ports, port_rate_cells_per_s=rate, cell_dispatch=mode
        )
        delivered = [0]
        time_sum = [0.0]

        def on_cell(_cell) -> None:
            delivered[0] += 1
            time_sum[0] += engine.now

        def inject(port: int) -> None:
            fabric.transfer_run(proto_cells, port, on_cell)

        # Ports inject in disjoint windows (back-to-back runs on one
        # port at a time), the shape run-batching exists for.
        for j in range(n_inject):
            engine.schedule(
                j * interval,
                (lambda p=j // n_packets: inject(p)),
                label="bench:inject",
            )
        # Mid-run card churn: burn the spare, degrade to 3/4 capacity,
        # then repair back to full -- bursts in flight must split.
        engine.schedule(0.30 * t_inject_end, lambda: fabric.fail_card(0))
        engine.schedule(0.35 * t_inject_end, lambda: fabric.fail_card(1))
        engine.schedule(0.60 * t_inject_end, lambda: fabric.repair_card(0))
        engine.run()
        return np.array(
            [delivered[0], time_sum[0], engine.now, engine.events_processed]
        )

    n_cells = n_inject * cells_per_packet
    res_b, wall_b = _timed(lambda: run_mode("batched"), repeats=3)
    batched = _entry("sim.cells.batched", "cells", n_cells, wall_b, _digest(res_b))
    res_s, wall_s = _timed(lambda: run_mode("scalar"), repeats=3)
    scalar = _entry("sim.cells.scalar", "cells", n_cells, wall_s, _digest(res_s))
    return batched, scalar


def _bench_mc_lifetime(seed: int, jobs: int, scale: float) -> tuple[dict, dict]:
    from repro.core import DRAConfig
    from repro.montecarlo import sample_lc_failure_times
    from repro.runtime.montecarlo import parallel_structure_function_reliability

    cfg = DRAConfig(n=9, m=4)
    times = np.linspace(0.0, 100_000.0, 11)
    n_vec = max(int(300_000 * scale), 10_000)
    n_scalar = max(int(6_000 * scale), 500)

    est, wall_vec = _timed(
        lambda: parallel_structure_function_reliability(
            cfg, times, n_vec, seed, jobs=jobs
        ),
        repeats=3,
    )
    vec = _entry(
        "mc.lifetime.vectorized",
        "trials",
        n_vec,
        wall_vec,
        _digest(est.reliability, est.std_error),
    )

    sc_times, wall_sc = _timed(
        lambda: sample_lc_failure_times(
            cfg, n_scalar, np.random.default_rng(seed), method="scalar"
        ),
        repeats=3,
    )
    scalar = _entry(
        "mc.lifetime.scalar", "trials", n_scalar, wall_sc, _digest(sc_times)
    )
    return vec, scalar


def _bench_mc_is(seed: int, jobs: int, scale: float) -> tuple[dict, dict]:
    from repro.core import DRAConfig, RepairPolicy
    from repro.core.availability import build_dra_availability_chain
    from repro.core.states import Failed
    from repro.montecarlo import collect_cycle_statistics
    from repro.runtime.montecarlo import parallel_unavailability_importance_sampling

    cfg = DRAConfig(n=3, m=2)
    repair = RepairPolicy.three_hours()
    n_batched = max(int(20_000 * scale), 2_000)
    n_scalar = max(int(1_500 * scale), 200)

    res, wall_b = _timed(
        lambda: parallel_unavailability_importance_sampling(
            cfg, repair, n_batched, seed, jobs=jobs
        ),
        repeats=3,
    )
    batched = _entry(
        "mc.is.batched",
        "cycles",
        n_batched,
        wall_b,
        _digest(
            np.array(
                [res.unavailability, res.std_error, res.hit_fraction,
                 res.mean_cycle_length]
            )
        ),
    )

    chain = build_dra_availability_chain(cfg, repair)
    stats, wall_s = _timed(
        lambda: collect_cycle_statistics(
            chain, Failed, n_scalar, np.random.default_rng(seed), method="scalar"
        ),
        repeats=3,
    )
    scalar = _entry(
        "mc.is.scalar",
        "cycles",
        n_scalar,
        wall_s,
        _digest(
            np.array(
                [stats.length_sum, stats.length_sumsq,
                 stats.downtime_sum, stats.downtime_sumsq, float(stats.hits)]
            )
        ),
    )
    return batched, scalar


def _bench_solvers() -> list[dict]:
    from repro.core import DRAConfig, RepairPolicy
    from repro.core.availability import build_dra_availability_chain
    from repro.core.parameters import FailureRates
    from repro.core.reliability import build_dra_reliability_chain
    from repro.markov import stationary_distribution, uniformized_distribution

    entries: list[dict] = []
    grid = np.linspace(1_000.0, 100_000.0, 8)
    # A single solve of these chains is sub-millisecond -- below the
    # resolution a 15% gate can hold against scheduler jitter -- so each
    # timed measurement loops `inner` solves and reports the per-solve
    # mean of the best measurement.
    inner = 20
    for n, m in _SOLVER_CONFIGS:
        cfg = DRAConfig(n=n, m=m)
        rel = build_dra_reliability_chain(cfg, FailureRates())

        def solve_transient(c=rel):
            for _ in range(inner - 1):
                uniformized_distribution(c, grid)
            return uniformized_distribution(c, grid)

        dist, wall = _timed(solve_transient, repeats=3)
        entries.append(
            _entry(
                f"solver.transient.n{rel.n_states}",
                "states",
                rel.n_states,
                wall / inner,
                _digest(dist),
            )
        )
        avail = build_dra_availability_chain(cfg, RepairPolicy.three_hours())

        def solve_stationary(c=avail):
            for _ in range(inner - 1):
                stationary_distribution(c)
            return stationary_distribution(c)

        pi, wall = _timed(solve_stationary, repeats=3)
        entries.append(
            _entry(
                f"solver.stationary.n{avail.n_states}",
                "states",
                avail.n_states,
                wall / inner,
                _digest(pi),
            )
        )
    return entries


def run_throughput_suite(
    *, seed: int = 0, jobs: int = 1, scale: float = 1.0
) -> dict:
    """Run every throughput workload; return the full report dict.

    ``scale`` multiplies the sample budgets (CI can run lighter without
    changing the metric definitions); digests depend on ``seed`` and
    ``scale`` but never on ``jobs``.
    """
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    calibration, cal_rate = _bench_calibration()
    sim = _bench_sim_events(scale)
    cells_batched, cells_scalar = _bench_cell_dispatch(scale)
    lt_vec, lt_scalar = _bench_mc_lifetime(seed, jobs, scale)
    is_batched, is_scalar = _bench_mc_is(seed, jobs, scale)
    solvers = _bench_solvers()

    entries = [
        calibration, sim, cells_batched, cells_scalar,
        lt_vec, lt_scalar, is_batched, is_scalar,
    ]
    entries.extend(solvers)

    metrics = {
        "calibration.ops_per_sec": cal_rate,
        "sim.events_per_sec": sim["per_sec"],
        "sim.cells_per_sec": cells_batched["per_sec"],
        "sim.cells.speedup_vs_scalar": (
            cells_batched["per_sec"] / cells_scalar["per_sec"]
            if cells_scalar["per_sec"]
            else 0.0
        ),
        "mc.lifetime.trials_per_sec": lt_vec["per_sec"],
        "mc.lifetime.speedup_vs_scalar": (
            lt_vec["per_sec"] / lt_scalar["per_sec"] if lt_scalar["per_sec"] else 0.0
        ),
        "mc.is.cycles_per_sec": is_batched["per_sec"],
        "mc.is.speedup_vs_scalar": (
            is_batched["per_sec"] / is_scalar["per_sec"]
            if is_scalar["per_sec"]
            else 0.0
        ),
    }
    for e in solvers:
        metrics[f"{e['name']}.wall_s"] = e["wall_s"]

    return {
        "schema": THROUGHPUT_SCHEMA,
        "v": THROUGHPUT_VERSION,
        "seed": seed,
        "jobs": jobs,
        "scale": scale,
        "entries": entries,
        "metrics": metrics,
    }


def canonical_throughput_payload(report: dict) -> dict:
    """The deterministic projection of a throughput report.

    Strips everything measured (wall times, rates, speedups, ``jobs``)
    and keeps what is a pure function of ``(seed, scale)``: the schema
    header, the workload sizes, and the result digests.  Two runs of the
    same seed/scale -- at any ``--jobs`` -- serialize this projection to
    identical bytes.
    """
    return {
        "schema": report["schema"],
        "v": report["v"],
        "seed": report["seed"],
        "scale": report["scale"],
        "entries": [
            {k: e[k] for k in ("name", "unit", "items", "digest")}
            for e in report["entries"]
        ],
    }


def _metric_spec(name: str) -> tuple[str, bool] | None:
    """(mode, normalize) of a gated metric; None for ungated metrics.

    ``mode`` is ``"higher"`` (throughputs, speedups) or ``"lower"``
    (wall times); ``normalize`` says whether the calibration rate
    cancels machine speed out of the comparison.
    """
    if name == "calibration.ops_per_sec":
        return None  # the anchor itself
    if name.endswith("_per_sec"):
        return ("higher", True)
    if name.endswith(".speedup_vs_scalar"):
        return ("higher", False)
    if name.startswith("solver.") and name.endswith(".wall_s"):
        return ("lower", True)
    return None


def make_baseline(report: dict, *, threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Derive a committed-baseline document from a throughput report."""
    metrics = {}
    for name, value in sorted(report["metrics"].items()):
        spec = _metric_spec(name)
        if spec is None:
            continue
        mode, normalize = spec
        metrics[name] = {"value": value, "mode": mode, "normalize": normalize}
    return {
        "schema": BASELINE_SCHEMA,
        "v": THROUGHPUT_VERSION,
        "threshold": threshold,
        "calibration_ops_per_sec": report["metrics"]["calibration.ops_per_sec"],
        "metrics": metrics,
    }


def compare_to_baseline(
    report: dict, baseline: dict, *, threshold: float | None = None
) -> list[str]:
    """Regression messages for every gated metric worse than the baseline.

    Empty list = gate passes.  ``threshold`` overrides the baseline's
    recorded threshold.  Normalized metrics are divided (throughputs) or
    multiplied (wall times) by their run's calibration rate before the
    comparison, so baselines recorded on different hardware still gate
    meaningfully; speedup ratios compare raw.
    """
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a throughput baseline: schema={baseline.get('schema')!r}"
        )
    thr = baseline.get("threshold", DEFAULT_THRESHOLD) if threshold is None else threshold
    cal_cur = report["metrics"].get("calibration.ops_per_sec", 0.0)
    cal_base = baseline.get("calibration_ops_per_sec", 0.0)
    problems: list[str] = []
    for name, spec in sorted(baseline["metrics"].items()):
        base_value = spec["value"]
        cur_value = report["metrics"].get(name)
        if cur_value is None:
            problems.append(f"{name}: missing from the current report")
            continue
        # Express the current value in the baseline machine's units: on a
        # uniformly k x slower machine cal_cur = cal_base / k and the
        # adjustment cancels k exactly, leaving only genuine regressions.
        norm = ""
        cur, base = cur_value, base_value
        if spec.get("normalize") and cal_cur > 0.0 and cal_base > 0.0:
            cur = cur_value * (
                cal_base / cal_cur if spec["mode"] == "higher" else cal_cur / cal_base
            )
            norm = ", calibration-normalized"
        if base <= 0.0:
            continue
        if spec["mode"] == "higher":
            if cur < base * (1.0 - thr):
                problems.append(
                    f"{name}: {cur:.6g} is {1.0 - cur / base:.0%} below "
                    f"baseline {base:.6g} (threshold {thr:.0%}{norm})"
                )
        else:
            if cur > base * (1.0 + thr):
                problems.append(
                    f"{name}: {cur:.6g} is {cur / base - 1.0:.0%} above "
                    f"baseline {base:.6g} (threshold {thr:.0%}{norm})"
                )
    return problems


def render_throughput_report(report: dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"suite=throughput  seed={report['seed']}  jobs={report['jobs']}"
        f"  scale={report['scale']:g}",
        "",
        f"{'workload':<24} {'items':>10} {'wall (s)':>10} {'rate':>16}",
    ]
    for e in report["entries"]:
        rate = f"{e['per_sec']:,.0f} {e['unit']}/s"
        lines.append(
            f"{e['name']:<24} {e['items']:>10,} {e['wall_s']:>10.4f} {rate:>16}"
        )
    m = report["metrics"]
    lines.append("")
    lines.append(
        "speedups vs scalar reference: "
        f"sim.cells {m['sim.cells.speedup_vs_scalar']:.1f}x, "
        f"mc.lifetime {m['mc.lifetime.speedup_vs_scalar']:.1f}x, "
        f"mc.is {m['mc.is.speedup_vs_scalar']:.1f}x"
    )
    return "\n".join(lines)


def report_to_json(report: dict) -> str:
    """Canonical serialization (sorted keys, stable layout)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"

"""Parallel Monte Carlo drivers with a worker-count-independent guarantee.

Both drivers here split a trial/cycle budget into **fixed-size chunks**
whose boundaries depend only on the budget and the chunk size -- never on
the worker count -- and give every chunk a statistically independent RNG
stream via ``numpy.random.SeedSequence.spawn``.  Each chunk's partial
result (survival counts, cycle-statistic sums) is computed identically
wherever it runs, and the reduction is either order-independent (integer
counts) or performed in chunk-index order (floating-point sums), so:

    for a given root seed, results are **bit-identical** for any
    ``jobs`` value -- ``--jobs 1`` and ``--jobs 64`` agree to the last
    ULP.

This is the property the ``repro validate --jobs N`` acceptance check
and ``tests/runtime/test_parallel_mc.py`` pin down; see
``docs/performance.md`` for the full argument.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence
from functools import reduce

import numpy as np

from repro.core.availability import build_dra_availability_chain
from repro.core.parameters import DRAConfig, FailureRates, RepairPolicy
from repro.core.states import Failed
from repro.montecarlo.importance import (
    CycleStatistics,
    ImportanceSamplingResult,
    collect_cycle_statistics,
    result_from_statistics,
)
from repro.montecarlo.lifetime import LifetimeEstimate, sample_lc_failure_times
from repro.runtime.executor import effective_jobs, metered_parallel_map
from repro.runtime.timing import RuntimeMetrics, Stopwatch

__all__ = [
    "DEFAULT_MC_CHUNK_TRIALS",
    "DEFAULT_IS_CHUNK_CYCLES",
    "parallel_structure_function_reliability",
    "parallel_unavailability_importance_sampling",
]

#: Trials per structure-function chunk.  Large enough that the vectorised
#: exponential sampling dominates the per-chunk dispatch cost, small
#: enough that a 1e6-trial batch still splits into ~15 chunks for load
#: balancing.  Part of the determinism contract: changing it changes the
#: chunk boundaries and therefore the streams.
DEFAULT_MC_CHUNK_TRIALS = 65_536

#: Regenerative cycles per importance-sampling chunk.
DEFAULT_IS_CHUNK_CYCLES = 2_000


def _chunk_sizes(total: int, chunk: int, *, minimum: int = 1) -> list[int]:
    """Deterministic chunk sizes: full chunks plus one remainder.

    A remainder smaller than ``minimum`` is folded into the last full
    chunk so no chunk falls below the estimator's floor.  Depends only on
    ``(total, chunk, minimum)`` -- never on the worker count.
    """
    if total < minimum:
        raise ValueError(f"need at least {minimum} items, got {total}")
    chunk = max(chunk, minimum)
    sizes = [chunk] * (total // chunk)
    rem = total % chunk
    if rem:
        if rem < minimum and sizes:
            sizes[-1] += rem
        else:
            sizes.append(rem)
    return sizes


# --- structure-function reliability ------------------------------------


def _lifetime_chunk(payload: tuple) -> np.ndarray:
    """Survival counts per time point for one chunk (int64 vector)."""
    config, times, n_chunk, seed, rates = payload
    rng = np.random.default_rng(seed)
    failure_times = sample_lc_failure_times(config, n_chunk, rng, rates)
    return (failure_times[np.newaxis, :] > times[:, np.newaxis]).sum(
        axis=1, dtype=np.int64
    )


def parallel_structure_function_reliability(
    config: DRAConfig,
    times: np.ndarray,
    n_samples: int,
    root_seed: int | Sequence[int],
    *,
    rates: FailureRates | None = None,
    jobs: int = 1,
    chunk_trials: int = DEFAULT_MC_CHUNK_TRIALS,
    metrics: RuntimeMetrics | None = None,
) -> LifetimeEstimate:
    """Parallel empirical ``R(t)`` from the DRA structure function.

    Splits ``n_samples`` trials into fixed chunks, spawns one independent
    stream per chunk from ``SeedSequence(root_seed)``, and reduces the
    per-chunk survival *counts* (integers -- addition is exact and
    order-free), so the estimate is bit-identical for any ``jobs``.
    """
    times = np.asarray(times, dtype=np.float64)
    jobs = effective_jobs(jobs)
    sizes = _chunk_sizes(n_samples, chunk_trials)
    seeds = np.random.SeedSequence(root_seed).spawn(len(sizes))
    payloads = [
        (config, times, size, seed, rates) for size, seed in zip(sizes, seeds)
    ]
    with Stopwatch() as sw:
        counts = metered_parallel_map(_lifetime_chunk, payloads, jobs=jobs)
    survivors = np.sum(counts, axis=0, dtype=np.int64)
    r_hat = survivors / n_samples
    se = np.sqrt(np.clip(r_hat * (1.0 - r_hat), 0.0, None) / n_samples)
    if metrics is not None:
        metrics.record(
            f"structure-function MC {config.n}x{config.m}",
            sw.elapsed,
            items=n_samples,
            unit="trials",
            jobs=jobs,
        )
    return LifetimeEstimate(
        times=times, reliability=r_hat, std_error=se, n_samples=n_samples
    )


# --- rare-event importance sampling ------------------------------------


@functools.lru_cache(maxsize=32)
def _availability_chain(
    config: DRAConfig, repair: RepairPolicy, rates: FailureRates | None
):
    """Per-process chain cache: workers rebuild each chain at most once."""
    return build_dra_availability_chain(config, repair, rates)


def _is_chunk(payload: tuple) -> CycleStatistics:
    """Cycle statistics for one importance-sampling chunk."""
    config, repair, rates, n_chunk, seed, bias, repair_threshold, max_jumps = payload
    chain = _availability_chain(config, repair, rates)
    rng = np.random.default_rng(seed)
    return collect_cycle_statistics(
        chain,
        Failed,
        n_chunk,
        rng,
        bias=bias,
        repair_threshold=repair_threshold,
        max_jumps_per_cycle=max_jumps,
    )


def parallel_unavailability_importance_sampling(
    config: DRAConfig,
    repair: RepairPolicy,
    n_cycles: int,
    root_seed: int | Sequence[int],
    *,
    rates: FailureRates | None = None,
    jobs: int = 1,
    chunk_cycles: int = DEFAULT_IS_CHUNK_CYCLES,
    bias: float = 0.5,
    repair_threshold: float = 100.0,
    max_jumps_per_cycle: int = 100_000,
    metrics: RuntimeMetrics | None = None,
) -> ImportanceSamplingResult:
    """Parallel balanced-failure-biasing estimate of DRA unavailability.

    Each fixed-size chunk simulates its cycles with its own spawned
    stream and returns mergeable :class:`CycleStatistics`; merging in
    chunk-index order fixes the floating-point summation order, so the
    estimate is bit-identical for any ``jobs``.  The worker builds the
    availability chain itself (memoised per process) -- only small frozen
    dataclasses cross the process boundary.
    """
    jobs = effective_jobs(jobs)
    sizes = _chunk_sizes(n_cycles, chunk_cycles, minimum=2)
    seeds = np.random.SeedSequence(root_seed).spawn(len(sizes))
    payloads = [
        (config, repair, rates, size, seed, bias, repair_threshold, max_jumps_per_cycle)
        for size, seed in zip(sizes, seeds)
    ]
    with Stopwatch() as sw:
        stats = metered_parallel_map(_is_chunk, payloads, jobs=jobs)
    merged = reduce(CycleStatistics.merge, stats)
    if metrics is not None:
        metrics.record(
            f"importance sampling DRA({config.n},{config.m})",
            sw.elapsed,
            items=n_cycles,
            unit="cycles",
            jobs=jobs,
        )
    return result_from_statistics(merged)

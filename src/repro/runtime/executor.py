"""Order-preserving process-pool map with a serial fast path.

All parallel execution in the runtime layer funnels through
:func:`parallel_map` so the policy lives in exactly one place:

* ``jobs <= 1`` runs the plain serial loop in-process -- no pickling, no
  fork, identical stack traces -- which keeps the parallel code paths
  trivially debuggable and makes ``--jobs 1`` a true baseline;
* ``jobs > 1`` fans the items out over a ``ProcessPoolExecutor`` whose
  ``map`` already guarantees result order matches submission order, with
  a chunk size that amortises inter-process pickling over several items.

Worker functions must be module-level (picklable) and must not depend on
mutable global state; every task in :mod:`repro.runtime.sweeps` and
:mod:`repro.runtime.montecarlo` carries its full configuration in its
argument tuple.
"""

from __future__ import annotations

import functools
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

from repro.obs import metrics as _metrics

__all__ = ["effective_jobs", "parallel_map", "metered_parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def effective_jobs(jobs: int | None) -> int:
    """Resolve a user-facing ``--jobs`` value to a worker count.

    ``None`` or ``0`` means "use every core" (``os.cpu_count()``);
    negative values are rejected.  The result is always >= 1.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def default_chunksize(n_items: int, jobs: int) -> int:
    """Chunk size splitting ``n_items`` into ~4 waves per worker.

    Small enough to load-balance uneven task costs (large-N chains take
    longer than small ones), large enough to amortise pickling.
    """
    return max(1, n_items // (4 * jobs))


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    jobs: int = 1,
    chunksize: int | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, preserving order.

    Parameters
    ----------
    fn:
        Module-level (picklable) function of one argument.
    items:
        The work list; results come back in the same order.
    jobs:
        Worker processes; ``<= 1`` runs serially in-process, ``0``/``None``
        is resolved by :func:`effective_jobs` before calling.
    chunksize:
        Items handed to a worker per dispatch; defaults to
        :func:`default_chunksize`.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    if chunksize is None:
        chunksize = default_chunksize(len(items), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def _collected_call(fn: Callable[[Any], Any], item: Any) -> tuple[Any, dict]:
    """Run one task under a fresh worker-local registry; ship its snapshot."""
    registry = _metrics.MetricsRegistry()
    with _metrics.collecting(registry):
        result = fn(item)
    return result, registry.snapshot()


def metered_parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    jobs: int = 1,
    chunksize: int | None = None,
) -> list[_R]:
    """:func:`parallel_map` that keeps the driver's metrics registry whole.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is active in the
    driving process and the work fans out to a pool, each worker task
    collects into a fresh registry whose snapshot rides back with the
    result; snapshots merge here **in submission order** -- the same
    reduction discipline as ``CycleStatistics`` -- so metric content is
    identical for any ``jobs`` value.  With no active registry (or on the
    serial path, where hooks hit the active registry directly) this is
    exactly :func:`parallel_map`.
    """
    registry = _metrics.get_registry()
    items = list(items)
    if registry is None or jobs <= 1 or len(items) <= 1:
        return parallel_map(fn, items, jobs=jobs, chunksize=chunksize)
    pairs = parallel_map(
        functools.partial(_collected_call, fn), items, jobs=jobs, chunksize=chunksize
    )
    for _, snapshot in pairs:
        registry.merge_snapshot(snapshot)
    return [result for result, _ in pairs]

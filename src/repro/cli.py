"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro fig6 [--points t1,t2,...] [--csv out.csv] [--jobs N] [--cache]
    python -m repro fig7 [--configs 3:2,9:4] [--csv out.csv] [--jobs N] [--cache]
    python -m repro fig8 [--n 6] [--loads 0.15,0.7] [--b-bus 20]
    python -m repro mttf [--configs 3:2,9:4]
    python -m repro cost [--n 8] [--protocols 2]
    python -m repro importance [--n 9] [--m 4]
    python -m repro validate [--cycles 30000] [--seed 0] [--jobs N]
    python -m repro bench [--target mc|fig6|validate] [--jobs-list 1,2,4]
    python -m repro report [--jobs N] [--cache]

``validate`` runs the rare-event importance-sampling check against the
exact Figure 7 values and exits nonzero on disagreement -- usable as a
CI gate.  ``--jobs`` fans the work out over a process pool (0 = all
cores); Monte Carlo results are bit-identical for a given ``--seed``
regardless of ``--jobs``.  ``--cache`` enables the content-addressed
result cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-dra``); ``bench``
measures parallel scaling.  See ``docs/cli.md`` and
``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import (
    format_availability_table,
    format_performance_table,
    format_reliability_table,
    performance_sweep,
    records_to_csv,
)
from repro.analysis.sweep import FIG6_CONFIGS
from repro.core import (
    DRAConfig,
    RepairPolicy,
    bdr_mttf,
    compare_designs,
    dra_availability,
    dra_mttf,
    unavailability_elasticities,
)

__all__ = ["main"]


def _parse_configs(text: str) -> list[tuple[int, int]]:
    """Parse 'N:M,N:M' pairs."""
    out = []
    for chunk in text.split(","):
        n_str, m_str = chunk.split(":")
        out.append((int(n_str), int(m_str)))
    return out


def _parse_floats(text: str) -> list[float]:
    return [float(x) for x in text.split(",")]


def _parse_ints(text: str) -> list[int]:
    return [int(x) for x in text.split(",")]


def _result_cache(args: argparse.Namespace):
    """The content-addressed cache when ``--cache`` was given, else None."""
    if not getattr(args, "cache", False):
        return None
    from repro.runtime import ResultCache

    return ResultCache()


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.runtime import parallel_reliability_sweep

    points = (
        _parse_floats(args.points)
        if args.points
        else [0.0, 20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0]
    )
    configs = _parse_configs(args.configs) if args.configs else FIG6_CONFIGS
    recs = parallel_reliability_sweep(
        times=np.asarray(points),
        configs=configs,
        variant=args.variant,
        jobs=args.jobs,
        cache=_result_cache(args),
    )
    if args.csv:
        records_to_csv(recs, args.csv)
        print(f"wrote {args.csv}")
    print(format_reliability_table(recs, time_points=points))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.runtime import parallel_availability_sweep

    configs = _parse_configs(args.configs) if args.configs else FIG6_CONFIGS
    recs = parallel_availability_sweep(
        configs=configs,
        variant=args.variant,
        jobs=args.jobs,
        cache=_result_cache(args),
    )
    if args.csv:
        records_to_csv(recs, args.csv)
        print(f"wrote {args.csv}")
    print(format_availability_table(recs))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    loads = _parse_floats(args.loads) if args.loads else [0.15, 0.30, 0.50, 0.70]
    recs = performance_sweep(loads=loads, n=args.n, b_bus=args.b_bus)
    if args.csv:
        records_to_csv(recs, args.csv)
        print(f"wrote {args.csv}")
    print(format_performance_table(recs))
    return 0


def _cmd_mttf(args: argparse.Namespace) -> int:
    configs = _parse_configs(args.configs) if args.configs else [(3, 2), (9, 4)]
    base = bdr_mttf()
    print(f"{'config':>14} {'MTTF (h)':>12} {'vs BDR':>8}")
    print(f"{'BDR':>14} {base.hours:>12.0f} {'1.00x':>8}")
    for n, m in configs:
        res = dra_mttf(DRAConfig(n=n, m=m))
        print(f"{res.label:>14} {res.hours:>12.0f} {res.hours / base.hours:>7.2f}x")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    for d in compare_designs(args.n, args.protocols):
        print(f"{d.label:<24} cost {d.cost:6.2f}   A = {d.availability:.12f}")
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    for r in unavailability_elasticities(DRAConfig(n=args.n, m=args.m)):
        print(f"{r.field:>8}  elasticity {r.elasticity:+6.3f}")
    return 0


def _cmd_claims(_args: argparse.Namespace) -> int:
    from repro.analysis.claims import check_claims

    results = check_claims()
    width = max(len(r.claim.claim_id) for r in results)
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        print(f"[{mark}] {r.claim.claim_id:<{width}}  {r.detail}")
    failed = [r for r in results if not r.passed]
    print(f"\n{len(results) - len(failed)}/{len(results)} claims hold")
    return 1 if failed else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.runtime import parallel_unavailability_importance_sampling

    ok = True
    for check_idx, ((n, m), repair, mu_label) in enumerate(
        [
            ((3, 2), RepairPolicy.three_hours(), "1/3"),
            ((3, 2), RepairPolicy.half_day(), "1/12"),
        ]
    ):
        cfg = DRAConfig(n=n, m=m)
        exact = 1.0 - dra_availability(cfg, repair).availability
        res = parallel_unavailability_importance_sampling(
            cfg, repair, args.cycles, [args.seed, check_idx], jobs=args.jobs
        )
        good = res.consistent_with(exact, z=6.0)
        ok = ok and good
        print(
            f"DRA N={n} M={m} mu={mu_label}: exact {exact:.3e} "
            f"IS {res.unavailability:.3e} +/- {res.std_error:.1e} "
            f"{'OK' if good else 'MISMATCH'}"
        )
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Measure parallel scaling of one bulk workload over a jobs ladder."""
    from repro.runtime import (
        Stopwatch,
        parallel_reliability_sweep,
        parallel_structure_function_reliability,
        parallel_unavailability_importance_sampling,
    )

    jobs_list = _parse_ints(args.jobs_list) if args.jobs_list else [1, 2, 4]
    times = np.linspace(0.0, 100_000.0, 11)
    cfg = DRAConfig(n=9, m=4)
    rows: list[tuple[int, float, float]] = []
    reference = None
    for jobs in jobs_list:
        with Stopwatch() as sw:
            if args.target == "mc":
                est = parallel_structure_function_reliability(
                    cfg, times, args.trials, args.seed, jobs=jobs
                )
                payload = est.reliability
                items = args.trials
            elif args.target == "validate":
                res = parallel_unavailability_importance_sampling(
                    DRAConfig(3, 2),
                    RepairPolicy.three_hours(),
                    args.cycles,
                    args.seed,
                    jobs=jobs,
                )
                payload = np.array([res.unavailability, res.std_error])
                items = args.cycles
            else:  # fig6
                recs = parallel_reliability_sweep(jobs=jobs)
                payload = np.array([r.value for r in recs])
                items = len(recs)
        if reference is None:
            reference = payload
        elif not np.array_equal(reference, payload):
            print(f"ERROR: jobs={jobs} changed the result")
            return 1
        rows.append((jobs, sw.elapsed, items / sw.elapsed if sw.elapsed else 0.0))

    unit = {"mc": "trials", "validate": "cycles", "fig6": "points"}[args.target]
    base = rows[0][1]
    print(f"target={args.target}  results identical across jobs: yes\n")
    print(f"{'jobs':>5} {'wall (s)':>10} {unit + '/s':>14} {'speedup':>8}")
    for jobs, wall, rate in rows:
        print(f"{jobs:>5} {wall:>10.3f} {rate:>14,.0f} {base / wall:>7.2f}x")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    print(generate_report(jobs=args.jobs, cache=_result_cache(args)))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate DRA (ICPP 2004) paper artifacts."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runtime_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = all cores; default 1 = serial)")
        p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="content-addressed result cache "
                            "($REPRO_CACHE_DIR or ~/.cache/repro-dra)")

    p = sub.add_parser("fig6", help="Figure 6 reliability table")
    p.add_argument("--points", help="comma-separated hours")
    p.add_argument("--configs", help="N:M pairs, e.g. 3:2,9:4")
    p.add_argument("--variant", default="paper",
                   choices=["paper", "strict", "extended"],
                   help="model-interpretation variant (see DESIGN.md)")
    p.add_argument("--csv", help="also write records to CSV")
    add_runtime_flags(p)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("fig7", help="Figure 7 availability table")
    p.add_argument("--configs", help="N:M pairs")
    p.add_argument("--variant", default="paper",
                   choices=["paper", "strict", "extended"],
                   help="model-interpretation variant (see DESIGN.md)")
    p.add_argument("--csv")
    add_runtime_flags(p)
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("fig8", help="Figure 8 degradation table")
    p.add_argument("--n", type=int, default=6)
    p.add_argument("--loads", help="comma-separated loads in [0,1)")
    p.add_argument("--b-bus", type=float, default=None, dest="b_bus")
    p.add_argument("--csv")
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("mttf", help="MTTF table")
    p.add_argument("--configs", help="N:M pairs")
    p.set_defaults(func=_cmd_mttf)

    p = sub.add_parser("cost", help="cost-effectiveness comparison")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--protocols", type=int, default=2)
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser("importance", help="rate-elasticity tornado")
    p.add_argument("--n", type=int, default=9)
    p.add_argument("--m", type=int, default=4)
    p.set_defaults(func=_cmd_importance)

    p = sub.add_parser("claims", help="check every quoted paper claim")
    p.set_defaults(func=_cmd_claims)

    p = sub.add_parser("validate", help="rare-event MC check of Figure 7")
    p.add_argument("--cycles", type=int, default=30_000)
    p.add_argument("--seed", type=int, default=0,
                   help="root seed; results are identical for any --jobs")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores; default 1 = serial)")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("bench", help="parallel-scaling benchmark")
    p.add_argument("--target", default="mc", choices=["mc", "fig6", "validate"],
                   help="workload: structure-function MC batch, the Figure 6 "
                        "sweep, or the importance-sampling check")
    p.add_argument("--jobs-list", dest="jobs_list",
                   help="comma-separated worker counts (default 1,2,4)")
    p.add_argument("--trials", type=int, default=1_000_000,
                   help="MC trials for --target mc")
    p.add_argument("--cycles", type=int, default=30_000,
                   help="cycles for --target validate")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("report", help="full Markdown evaluation report")
    add_runtime_flags(p)
    p.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro fig6 [--points t1,t2,...] [--csv out.csv] [--jobs N] [--cache]
    python -m repro fig7 [--configs 3:2,9:4] [--csv out.csv] [--jobs N] [--cache]
    python -m repro fig8 [--n 6] [--loads 0.15,0.7] [--b-bus 20]
    python -m repro mttf [--configs 3:2,9:4]
    python -m repro cost [--n 8] [--protocols 2]
    python -m repro importance [--n 9] [--m 4]
    python -m repro validate [--suite tiny|smoke|full] [--seed 0] [--jobs N]
    python -m repro bench [--suite scaling|throughput] [--target mc|fig6|validate]
                          [--jobs-list 1,2,4] [--baseline FILE] [--update-baseline]
    python -m repro chaos [--seeds 32] [--seed 0] [--jobs N] [--json-out FILE]
    python -m repro report [--jobs N] [--cache]
    python -m repro trace FILE [--kind PREFIX] [--limit N] [--json] [--strict]
    python -m repro incidents FILE [FILE ...] [--json-out PATH] [--jobs N]
    python -m repro lint [PATHS ...] [--select CODES] [--ignore CODES]
                         [--format text|json] [--jobs N]

``validate`` runs the differential validation suite -- every analytic
quantity paired with an independent Monte Carlo / simulation estimator,
judged by confidence-interval containment -- writes a schema-versioned
``BENCH_validate.json`` and exits nonzero on disagreement, so it works
as a CI gate (``docs/validation.md``).  ``chaos`` runs seeded
fault-injection campaigns against the
executable DRA model with the EIB fault-detection layer enabled and
exits nonzero on any invariant violation (``docs/chaos.md``).  ``--jobs`` fans the work out over a process pool (0 = all
cores); Monte Carlo results are bit-identical for a given ``--seed``
regardless of ``--jobs``.  ``--cache`` enables the content-addressed
result cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-dra``); ``bench
--suite scaling`` (default) measures parallel scaling and writes a
schema-versioned ``BENCH_runtime.json``, while ``bench --suite
throughput`` measures the hot-path kernels (events/sec, trials/sec,
solver wall times), writes ``BENCH_throughput.json`` and -- when
``--baseline`` points at a committed baseline -- exits nonzero on a
>15% normalized regression (``docs/performance.md``).  Every subcommand accepts ``--trace PATH`` to
record a JSONL event trace (``docs/observability.md``); ``trace``
summarizes, filters and schema-checks such a file (``--strict`` also
rejects event kinds missing from the ``repro.obs.schema`` registry).
``incidents`` folds a trace into per-fault incident spans -- the causal
timeline injection -> detection -> notification -> coverage -> repair ->
re-convergence, correlated by the ``fault_id`` minted at injection --
and prints the timeline plus recovery-latency distributions (JSON report
via ``--json-out``, byte-identical for any ``--jobs``).
``lint`` runs the AST invariant linter of ``docs/static-analysis.md``
over the tree and exits nonzero on any finding.  ``--metrics-out FILE``
on any trace-capable subcommand exports the run's metrics registry in
Prometheus text format.  See ``docs/cli.md``
and ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter

import numpy as np

from repro.analysis import (
    format_availability_table,
    format_performance_table,
    format_reliability_table,
    performance_sweep,
    records_to_csv,
)
from repro.analysis.sweep import FIG6_CONFIGS
from repro.core import (
    DRAConfig,
    RepairPolicy,
    bdr_mttf,
    compare_designs,
    dra_availability,
    dra_mttf,
    unavailability_elasticities,
)

__all__ = ["main", "build_parser"]


def _parse_configs(text: str) -> list[tuple[int, int]]:
    """Parse 'N:M,N:M' pairs."""
    out = []
    for chunk in text.split(","):
        n_str, m_str = chunk.split(":")
        out.append((int(n_str), int(m_str)))
    return out


def _parse_floats(text: str) -> list[float]:
    return [float(x) for x in text.split(",")]


def _parse_ints(text: str) -> list[int]:
    return [int(x) for x in text.split(",")]


def _result_cache(args: argparse.Namespace):
    """The content-addressed cache when ``--cache`` was given, else None."""
    if not getattr(args, "cache", False):
        return None
    from repro.runtime import ResultCache

    return ResultCache()


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.runtime import parallel_reliability_sweep

    points = (
        _parse_floats(args.points)
        if args.points
        else [0.0, 20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0]
    )
    configs = _parse_configs(args.configs) if args.configs else FIG6_CONFIGS
    recs = parallel_reliability_sweep(
        times=np.asarray(points),
        configs=configs,
        variant=args.variant,
        jobs=args.jobs,
        cache=_result_cache(args),
    )
    if args.csv:
        records_to_csv(recs, args.csv)
        print(f"wrote {args.csv}")
    print(format_reliability_table(recs, time_points=points))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.runtime import parallel_availability_sweep

    configs = _parse_configs(args.configs) if args.configs else FIG6_CONFIGS
    recs = parallel_availability_sweep(
        configs=configs,
        variant=args.variant,
        jobs=args.jobs,
        cache=_result_cache(args),
    )
    if args.csv:
        records_to_csv(recs, args.csv)
        print(f"wrote {args.csv}")
    print(format_availability_table(recs))
    return 0


def _traced_fig8_crosscheck(n: int) -> None:
    """Exercise the executable model under the active tracer.

    The Figure 8 table itself is closed-form algebra and emits nothing,
    so when ``--trace`` is given we also run the behavioural counterparts
    of the same degradation story: a short DES run with an SRU fault
    (coverage planning plus the REQ_D/REP_D control exchange), a
    two-station probe that forces a CSMA/CD collision, and the two Markov
    solvers (uniformization and a stationary solve).  The trace then
    carries control-packet, collision, coverage-case and solver events
    next to the analytic table.
    """
    from repro.core.parameters import FailureRates
    from repro.core.reliability import build_dra_reliability_chain
    from repro.markov import uniformized_distribution
    from repro.router import ComponentKind, Router, RouterConfig, RouterMode
    from repro.router.bus import ControlChannel
    from repro.router.packets import ControlKind, ControlPacket
    from repro.sim import Engine
    from repro.traffic import wire_uniform_load

    # DES leg: an LC0 SRU fault forces coverage plans onto the EIB.
    router = Router(
        RouterConfig(n_linecards=max(4, min(n, 8)), mode=RouterMode.DRA, seed=2)
    )
    wire_uniform_load(router, 0.3)
    router.run(until=0.001)
    router.inject_fault(0, ComponentKind.SRU)
    router.run(until=0.0025)

    # Collision leg: two stations start inside the vulnerability window,
    # so both abort and back off (classic CSMA/CD).
    engine = Engine()
    bus = ControlChannel(engine, np.random.default_rng(0))
    for lc in range(3):
        bus.attach(lc, lambda _pkt: None)
    for lc in range(2):
        pkt = ControlPacket(kind=ControlKind.REQ_D, init_lc=lc, data_rate=1.0)
        engine.schedule(
            0.0,
            lambda p=pkt, s=lc: bus.broadcast(p, s),
            label=f"collision-probe-{lc}",
        )
    engine.run(until=1e-3)

    # Solver leg: Jensen's uniformization plus a stationary solve.
    cfg = DRAConfig(n=3, m=2)
    chain = build_dra_reliability_chain(cfg, FailureRates())
    uniformized_distribution(chain, np.array([1_000.0, 10_000.0]))
    dra_availability(cfg, RepairPolicy.three_hours())


def _cmd_fig8(args: argparse.Namespace) -> int:
    loads = _parse_floats(args.loads) if args.loads else [0.15, 0.30, 0.50, 0.70]
    recs = performance_sweep(loads=loads, n=args.n, b_bus=args.b_bus)
    if args.csv:
        records_to_csv(recs, args.csv)
        print(f"wrote {args.csv}")
    print(format_performance_table(recs))
    from repro.obs import get_tracer

    if get_tracer() is not None:
        _traced_fig8_crosscheck(args.n)
    return 0


def _cmd_mttf(args: argparse.Namespace) -> int:
    configs = _parse_configs(args.configs) if args.configs else [(3, 2), (9, 4)]
    base = bdr_mttf()
    print(f"{'config':>14} {'MTTF (h)':>12} {'vs BDR':>8}")
    print(f"{'BDR':>14} {base.hours:>12.0f} {'1.00x':>8}")
    for n, m in configs:
        res = dra_mttf(DRAConfig(n=n, m=m))
        print(f"{res.label:>14} {res.hours:>12.0f} {res.hours / base.hours:>7.2f}x")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    for d in compare_designs(args.n, args.protocols):
        print(f"{d.label:<24} cost {d.cost:6.2f}   A = {d.availability:.12f}")
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    for r in unavailability_elasticities(DRAConfig(n=args.n, m=args.m)):
        print(f"{r.field:>8}  elasticity {r.elasticity:+6.3f}")
    return 0


def _cmd_claims(_args: argparse.Namespace) -> int:
    from repro.analysis.claims import check_claims

    results = check_claims()
    width = max(len(r.claim.claim_id) for r in results)
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        print(f"[{mark}] {r.claim.claim_id:<{width}}  {r.detail}")
    failed = [r for r in results if not r.passed]
    print(f"\n{len(results) - len(failed)}/{len(results)} claims hold")
    return 1 if failed else 0


def _parse_perturb(entries: list[str] | None) -> dict[str, float]:
    """Parse repeated ``--perturb PARAM=FACTOR`` flags."""
    from repro.validate.pairs import PERTURBABLE

    perturb: dict[str, float] = {}
    for entry in entries or []:
        key, sep, factor = entry.partition("=")
        if not sep:
            raise SystemExit(f"--perturb wants PARAM=FACTOR, got {entry!r}")
        if key not in PERTURBABLE:
            raise SystemExit(
                f"--perturb parameter {key!r} unknown; "
                f"choose from {', '.join(PERTURBABLE)}"
            )
        try:
            perturb[key] = float(factor)
        except ValueError:
            raise SystemExit(
                f"--perturb factor {factor!r} is not a number"
            ) from None
    return perturb


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate.engine import render_report, report_to_json, run_suite

    report = run_suite(
        args.suite,
        seed=args.seed,
        jobs=args.jobs,
        perturb=_parse_perturb(args.perturb),
    )
    print(render_report(report))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(report_to_json(report))
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0 if report["passed"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Dispatch between the scaling and throughput benchmark suites."""
    if args.bench_suite == "throughput":
        return _bench_throughput(args)
    return _bench_scaling(args)


def _bench_throughput(args: argparse.Namespace) -> int:
    """Run the hot-path throughput suite; gate against a baseline."""
    from repro.runtime.throughput import (
        compare_to_baseline,
        make_baseline,
        render_throughput_report,
        report_to_json,
        run_throughput_suite,
    )

    report = run_throughput_suite(seed=args.seed, jobs=args.jobs, scale=args.scale)
    print(render_throughput_report(report))

    json_out = "BENCH_throughput.json" if args.json_out is None else args.json_out
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            fh.write(report_to_json(report))
        print(f"wrote {json_out}")

    if args.update_baseline:
        baseline = make_baseline(
            report,
            threshold=args.threshold if args.threshold is not None else 0.15,
        )
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(
            f"bench: no baseline at {args.baseline}; gate skipped "
            "(run with --update-baseline to record one)",
            file=sys.stderr,
        )
        return 0
    problems = compare_to_baseline(report, baseline, threshold=args.threshold)
    if problems:
        # Escalation, same protocol as the validate suite: one full
        # re-measurement, and only metrics that regress in BOTH runs
        # fail the gate -- squaring the probability that scheduler
        # jitter (not code) trips it.
        print(
            f"\nbench: {len(problems)} metric(s) over threshold; "
            "re-measuring once (escalation)",
            file=sys.stderr,
        )
        rerun = run_throughput_suite(
            seed=args.seed, jobs=args.jobs, scale=args.scale
        )
        confirmed_names = {
            msg.split(":", 1)[0]
            for msg in compare_to_baseline(rerun, baseline, threshold=args.threshold)
        }
        problems = [
            msg for msg in problems if msg.split(":", 1)[0] in confirmed_names
        ]
    if problems:
        print(f"\nbench: {len(problems)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for msg in problems:
            print(f"  REGRESSION {msg} (confirmed on re-measurement)",
                  file=sys.stderr)
        return 1
    print(f"\nbench: no regressions vs {args.baseline} "
          f"({len(baseline['metrics'])} gated metrics)")
    return 0


def _bench_scaling(args: argparse.Namespace) -> int:
    """Measure parallel scaling of one bulk workload over a jobs ladder."""
    from repro.runtime import (
        Stopwatch,
        parallel_reliability_sweep,
        parallel_structure_function_reliability,
        parallel_unavailability_importance_sampling,
    )

    jobs_list = _parse_ints(args.jobs_list) if args.jobs_list else [1, 2, 4]
    times = np.linspace(0.0, 100_000.0, 11)
    cfg = DRAConfig(n=9, m=4)
    rows: list[tuple[int, float, float, int]] = []
    reference = None
    for jobs in jobs_list:
        with Stopwatch() as sw:
            if args.target == "mc":
                est = parallel_structure_function_reliability(
                    cfg, times, args.trials, args.seed, jobs=jobs
                )
                payload = est.reliability
                items = args.trials
            elif args.target == "validate":
                res = parallel_unavailability_importance_sampling(
                    DRAConfig(3, 2),
                    RepairPolicy.three_hours(),
                    args.cycles,
                    args.seed,
                    jobs=jobs,
                )
                payload = np.array([res.unavailability, res.std_error])
                items = args.cycles
            else:  # fig6
                recs = parallel_reliability_sweep(jobs=jobs)
                payload = np.array([r.value for r in recs])
                items = len(recs)
        if reference is None:
            reference = payload
        elif not np.array_equal(reference, payload):
            print(f"ERROR: jobs={jobs} changed the result")
            return 1
        rows.append((jobs, sw.elapsed, items / sw.elapsed if sw.elapsed else 0.0, items))

    unit = {"mc": "trials", "validate": "cycles", "fig6": "points"}[args.target]
    base = rows[0][1]
    print(f"target={args.target}  results identical across jobs: yes\n")
    print(f"{'jobs':>5} {'wall (s)':>10} {unit + '/s':>14} {'speedup':>8}")
    for jobs, wall, rate, _items in rows:
        print(f"{jobs:>5} {wall:>10.3f} {rate:>14,.0f} {base / wall:>7.2f}x")

    json_out = "BENCH_runtime.json" if args.json_out is None else args.json_out
    if json_out:
        payload = {
            "schema": "repro-bench",
            "v": 1,
            "target": args.target,
            "unit": unit,
            "stages": [
                {
                    "stage": f"{args.target} jobs={jobs}",
                    "jobs": jobs,
                    "wall_s": wall,
                    "items": items,
                    "unit": unit,
                    "throughput_per_s": rate,
                    "speedup_vs_first": base / wall if wall else 0.0,
                }
                for jobs, wall, rate, items in rows
            ],
        }
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {json_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Summarize, filter and schema-check a ``--trace`` JSONL file.

    Streams the file through :func:`repro.obs.iter_trace` in one pass,
    so memory stays O(distinct kinds + --limit) however large the trace.
    """
    from repro.obs import iter_trace
    from repro.obs.schema import unknown_trace_kinds

    all_kinds: set[str] = set()
    by_kind: Counter[str] = Counter()
    kept: list = []  # first --limit matching events, for printing
    t_min = t_max = None
    try:
        for ev in iter_trace(args.file):
            all_kinds.add(ev.kind)
            if args.kind and not ev.kind.startswith(args.kind):
                continue
            by_kind[ev.kind] += 1
            if ev.t is not None:
                t_min = ev.t if t_min is None else min(t_min, ev.t)
                t_max = ev.t if t_max is None else max(t_max, ev.t)
            if args.limit and len(kept) < args.limit:
                kept.append(ev)
    except (OSError, ValueError) as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 1
    unknown = unknown_trace_kinds(all_kinds)
    if unknown:
        print(
            f"trace warning: {len(unknown)} kind(s) not in the "
            f"repro.obs.schema registry: {', '.join(unknown)}",
            file=sys.stderr,
        )
        if args.strict:
            print(
                "trace error: --strict requires every event kind to be "
                "registered (see docs/observability.md)",
                file=sys.stderr,
            )
            return 1
    n_events = sum(by_kind.values())
    span = (t_min, t_max) if t_min is not None else None
    if args.json:
        print(
            json.dumps(
                {
                    "file": args.file,
                    "v": 1,
                    "events": n_events,
                    "kinds": dict(sorted(by_kind.items())),
                    "time_span_s": list(span) if span else None,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    if args.limit:
        for ev in kept:
            print(ev.to_json())
        print()
    print(f"{args.file}: {n_events} events, {len(by_kind)} kinds (schema v1 ok)")
    if span:
        print(f"sim-time span: {span[0]:.6g} s .. {span[1]:.6g} s")
    if by_kind:
        width = max(len(k) for k in by_kind)
        for kind, count in sorted(by_kind.items(), key=lambda kv: (-kv[1], kv[0])):
            print(f"  {kind:<{width}}  {count:>8}")
    return 0


def _fold_trace_file(path: str) -> dict:
    """Fold one trace file into its incidents report (pool worker).

    A pure function of the file contents -- spans are folded in trace
    order and the report serializes with sorted keys -- so the output is
    byte-identical whatever ``--jobs`` grouping dispatched it.
    """
    from repro.obs import (
        SpanBuilder,
        build_incident_report,
        build_scorecards,
        iter_trace,
    )

    spans = SpanBuilder().feed_all(iter_trace(path)).spans()
    report = build_incident_report(spans, source=path)
    report["health"] = build_scorecards(spans)
    return report


def _us(t: float | None) -> str:
    """Microsecond rendering of an optional timestamp/latency."""
    return "-" if t is None else f"{t * 1e6:.1f}"


def _print_incident_report(report: dict) -> None:
    """Human-readable timeline + latency + scorecard view of one report."""
    totals = report["totals"]
    print(
        f"{report['source']}: {totals['spans']} incident span(s), "
        f"{totals['open']} open, {totals['undetected']} undetected"
    )
    if totals["spans"]:
        print(
            f"  {'fault':>5} {'lc':>4} {'component':<10} {'mode':<12} "
            f"{'inject':>9} {'detect':>9} {'remote':>9} {'plan':>9} "
            f"{'cover':>9} {'repair':>9} {'converge':>9}  (us)"
        )
    for span in report["spans"]:
        ph = span["phases"]
        lc = "eib" if span["lc"] is None else span["lc"]
        print(
            f"  {span['fault_id']:>5} {lc:>4} {span['component']:<10} "
            f"{span['mode']:<12} {_us(ph['injected']):>9} "
            f"{_us(ph['first_local_detect']):>9} "
            f"{_us(ph['first_remote_view']):>9} {_us(ph['plan_issued']):>9} "
            f"{_us(ph['coverage_active']):>9} {_us(ph['repaired']):>9} "
            f"{_us(ph['views_converged']):>9}"
        )
    print("  recovery latencies (us):")
    for name, dist in report["latencies"].items():
        if dist["count"] == 0:
            print(f"    {name:<24} n=0")
            continue
        print(
            f"    {name:<24} n={dist['count']:<4} mean={_us(dist['mean']):>8} "
            f"p50={_us(dist['p50']):>8} p95={_us(dist['p95']):>8} "
            f"max={_us(dist['max']):>8}"
        )
    health = report.get("health") or {}
    if health:
        print(
            f"  {'lc':>4} {'faults':>7} {'flap_rate':>10} "
            f"{'mean_detect_us':>15} {'duty_cycle':>11} {'open':>5} "
            f"{'undet':>6}"
        )
        for lc, card in health.items():
            mean_det = card["mean_detection_latency_s"]
            print(
                f"  {lc:>4} {card['faults']:>7} {card['flap_rate']:>10.3f} "
                f"{_us(mean_det):>15} {card['coverage_duty_cycle']:>11.4f} "
                f"{card['open']:>5} {card['undetected']:>6}"
            )


def _cmd_incidents(args: argparse.Namespace) -> int:
    """Fold trace file(s) into per-fault incident spans and report."""
    from repro.runtime import metered_parallel_map

    try:
        reports = metered_parallel_map(
            _fold_trace_file, list(args.files), jobs=args.jobs
        )
    except (OSError, ValueError) as exc:
        print(f"incidents error: {exc}", file=sys.stderr)
        return 1
    for report in reports:
        _print_incident_report(report)
    if args.json_out:
        payload: dict
        if len(reports) == 1:
            payload = reports[0]
        else:
            payload = {
                "schema": "repro-incidents",
                "version": 1,
                "reports": reports,
            }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded chaos campaign; nonzero exit on invariant violations."""
    from repro.chaos import CampaignConfig, run_campaign
    from repro.chaos.detection import DetectionConfig
    from repro.obs import get_tracer, set_tracer

    detection = DetectionConfig(
        coverage=args.coverage, detection_latency_s=args.detection_latency
    )
    cfg = CampaignConfig(
        seeds=args.seeds,
        base_seed=args.seed,
        duration_s=args.duration,
        accel=args.accel,
        detection=detection,
        coverage_policy=args.coverage_policy,
        cell_dispatch=args.cell_dispatch,
    )

    # Campaign workers fork from this process; a file-backed tracer must
    # not be inherited (all workers would interleave writes into one fd).
    # Run the campaign untraced, then re-run schedule 0 in-process under
    # the tracer so ``--trace`` still yields a representative event log.
    tracer = get_tracer()
    if tracer is not None:
        set_tracer(None)
    try:
        report = run_campaign(cfg, jobs=args.jobs)
    finally:
        if tracer is not None:
            set_tracer(tracer)
    if tracer is not None:
        from repro.chaos import run_schedule

        run_schedule(cfg, 0)

    totals = report["totals"]
    print(
        f"chaos: {cfg.seeds} schedules  offered {totals['offered']}  "
        f"delivered {totals['delivered']}  dropped {totals['dropped']}"
    )
    print(
        f"  detections {totals['detections']}  ctl lost/corrupted/abandoned "
        f"{totals['ctl_lost']}/{totals['ctl_corrupted']}/{totals['ctl_abandoned']}"
    )
    for sched in report["schedules"]:
        for v in sched["violations"]:
            print(
                f"  VIOLATION seed={sched['seed']} [{v['check']}] {v['detail']}",
                file=sys.stderr,
            )
    print(f"  invariant violations: {totals['violations']}")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 1 if totals["violations"] else 0


def _parse_codes(text: str | None) -> frozenset[str] | None:
    """Parse a ``--select``/``--ignore`` comma-separated code list."""
    if not text:
        return None
    return frozenset(code.strip() for code in text.split(",") if code.strip())


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST invariant linter; nonzero exit on any finding."""
    from repro.lint import lint_paths
    from repro.obs import MetricsRegistry, collecting

    registry = MetricsRegistry()
    with collecting(registry):
        report = lint_paths(
            args.paths,
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
            jobs=args.jobs,
            interprocedural=args.interprocedural,
            graph_out=args.graph_out,
        )
    # timing goes to stderr: stdout (text or JSON) must stay
    # byte-identical across runs and --jobs values
    print(f"lint: wall {report.wall_ms:.1f} ms", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    for finding in report.findings:
        print(finding.render())
    summary = (
        f"lint: {report.files} files, {len(report.findings)} finding(s), "
        f"{report.suppressed} suppressed "
        f"({len(report.selected)} rules active)"
    )
    if report.ok:
        print(summary)
        return 0
    print(f"{summary} -- FAIL", file=sys.stderr)
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    print(generate_report(jobs=args.jobs, cache=_result_cache(args)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser.

    Exposed separately from :func:`main` so tests and the docs-freshness
    check can introspect the complete subcommand/flag surface without
    executing anything.
    """
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate DRA (ICPP 2004) paper artifacts."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runtime_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = all cores; default 1 = serial)")
        p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="content-addressed result cache "
                            "($REPRO_CACHE_DIR or ~/.cache/repro-dra)")

    def add_trace_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="record a JSONL event trace to PATH "
                            "(see docs/observability.md)")
        p.add_argument("--metrics-out", dest="metrics_out", metavar="FILE",
                       default=None,
                       help="export the run's metrics registry to FILE in "
                            "Prometheus text format (docs/observability.md)")

    p = sub.add_parser("fig6", help="Figure 6 reliability table")
    p.add_argument("--points", help="comma-separated hours")
    p.add_argument("--configs", help="N:M pairs, e.g. 3:2,9:4")
    p.add_argument("--variant", default="paper",
                   choices=["paper", "strict", "extended"],
                   help="model-interpretation variant (see DESIGN.md)")
    p.add_argument("--csv", help="also write records to CSV")
    add_runtime_flags(p)
    add_trace_flag(p)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("fig7", help="Figure 7 availability table")
    p.add_argument("--configs", help="N:M pairs")
    p.add_argument("--variant", default="paper",
                   choices=["paper", "strict", "extended"],
                   help="model-interpretation variant (see DESIGN.md)")
    p.add_argument("--csv", help="also write records to CSV")
    add_runtime_flags(p)
    add_trace_flag(p)
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("fig8", help="Figure 8 degradation table")
    p.add_argument("--n", type=int, default=6,
                   help="number of linecards N")
    p.add_argument("--loads", help="comma-separated loads in [0,1)")
    p.add_argument("--b-bus", type=float, default=None, dest="b_bus",
                   help="EIB bus bandwidth in Mbps (default: the paper's)")
    p.add_argument("--csv", help="also write records to CSV")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("mttf", help="MTTF table")
    p.add_argument("--configs", help="N:M pairs")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_mttf)

    p = sub.add_parser("cost", help="cost-effectiveness comparison")
    p.add_argument("--n", type=int, default=8,
                   help="number of linecards N")
    p.add_argument("--protocols", type=int, default=2,
                   help="protocols per linecard for the DRA design")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser("importance", help="rate-elasticity tornado")
    p.add_argument("--n", type=int, default=9,
                   help="number of linecards N")
    p.add_argument("--m", type=int, default=4,
                   help="protocol multiplicity M")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_importance)

    p = sub.add_parser("claims", help="check every quoted paper claim")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_claims)

    p = sub.add_parser(
        "validate",
        help="differential sim-vs-analytic validation suite",
    )
    p.add_argument("--suite", default="smoke",
                   choices=["tiny", "smoke", "full"],
                   help="pair set and sample budgets (default smoke)")
    p.add_argument("--seed", type=int, default=0,
                   help="root seed; the report is byte-identical "
                        "for any --jobs")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores; default 1 = serial)")
    p.add_argument("--json-out", dest="json_out",
                   default="BENCH_validate.json", metavar="PATH",
                   help="machine-readable report "
                        "(default BENCH_validate.json; empty string disables)")
    p.add_argument("--perturb", action="append", metavar="PARAM=FACTOR",
                   help="scale an analytic-model parameter (repeatable); "
                        "a correct harness must then FAIL -- "
                        "e.g. --perturb lam_lpi=1.5")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("bench", help="performance benchmarks (scaling/throughput)")
    p.add_argument("--suite", dest="bench_suite", default="scaling",
                   choices=["scaling", "throughput"],
                   help="scaling: one workload over a --jobs-list ladder; "
                        "throughput: the hot-path kernel suite with the "
                        "perf-regression gate (docs/performance.md)")
    p.add_argument("--target", default="mc", choices=["mc", "fig6", "validate"],
                   help="scaling workload: structure-function MC batch, the "
                        "Figure 6 sweep, or the importance-sampling check")
    p.add_argument("--jobs-list", dest="jobs_list",
                   help="comma-separated worker counts for --suite scaling "
                        "(default 1,2,4)")
    p.add_argument("--trials", type=int, default=1_000_000,
                   help="MC trials for --target mc")
    p.add_argument("--cycles", type=int, default=30_000,
                   help="cycles for --target validate")
    p.add_argument("--seed", type=int, default=0,
                   help="root seed; digests in the throughput report are "
                        "a pure function of it")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for --suite throughput "
                        "(0 = all cores; default 1 = serial)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="sample-budget multiplier for --suite throughput "
                        "(CI uses <1 for a lighter run)")
    p.add_argument("--baseline", metavar="FILE",
                   default="benchmarks/BASELINE_throughput.json",
                   help="committed throughput baseline to gate against "
                        "(missing file skips the gate)")
    p.add_argument("--update-baseline", dest="update_baseline",
                   action="store_true",
                   help="rewrite --baseline from this run instead of gating "
                        "(see docs/performance.md for when that is legitimate)")
    p.add_argument("--threshold", type=float, default=None,
                   help="override the baseline's recorded regression "
                        "threshold (fraction, e.g. 0.15)")
    p.add_argument("--json-out", dest="json_out", default=None,
                   metavar="PATH",
                   help="machine-readable report (default BENCH_runtime.json "
                        "or BENCH_throughput.json per suite; empty string "
                        "disables)")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("chaos", help="seeded fault-injection campaign")
    p.add_argument("--seeds", type=int, default=32,
                   help="number of independent fault schedules")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign base seed; schedule seeds derive from it "
                        "and results are identical for any --jobs")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores; default 1 = serial)")
    p.add_argument("--duration", type=float, default=0.004,
                   help="traffic+fault window per schedule (s)")
    p.add_argument("--accel", type=float, default=1e7,
                   help="failure-rate acceleration factor")
    p.add_argument("--coverage", type=float, default=1.0,
                   help="self-test coverage factor c in [0,1]")
    p.add_argument("--detection-latency", dest="detection_latency",
                   type=float, default=10e-6,
                   help="minimum fault age before self-test detection (s)")
    p.add_argument("--coverage-policy", dest="coverage_policy",
                   choices=("static", "adaptive"), default="static",
                   help="planner v2 LC_inter selection policy: static "
                        "(paper's slot-rank first-fit) or adaptive "
                        "(headroom/health/spread scoring with replanning "
                        "and fair degradation)")
    p.add_argument("--cell-dispatch", dest="cell_dispatch",
                   choices=("batched", "scalar"), default="batched",
                   help="fabric cell-clock dispatch: batched (one burst "
                        "event per run of queued cells) or scalar (one "
                        "heap event per cell, the bit-identical "
                        "reference oracle)")
    p.add_argument("--json-out", dest="json_out", default="",
                   metavar="PATH", help="write the full campaign report as JSON")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("report", help="full Markdown evaluation report")
    add_runtime_flags(p)
    add_trace_flag(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("trace", help="summarize/filter a --trace JSONL file")
    p.add_argument("file", help="trace file written by --trace PATH")
    p.add_argument("--kind", metavar="PREFIX",
                   help="only events whose kind starts with PREFIX")
    p.add_argument("--limit", type=int, default=0, metavar="N",
                   help="also print the first N matching events as JSONL")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary instead of the table")
    p.add_argument("--strict", action="store_true",
                   help="also fail on event kinds missing from the "
                        "repro.obs.schema registry (the CI guard mode)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "incidents",
        help="fold a --trace file into per-fault incident spans",
    )
    p.add_argument("files", nargs="+", metavar="FILE",
                   help="trace file(s) written by --trace PATH")
    p.add_argument("--json-out", dest="json_out", default="", metavar="PATH",
                   help="write the repro-incidents v1 report as JSON "
                        "(byte-identical for any --jobs)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes folding files in parallel "
                        "(0 = all cores; default 1 = serial)")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_incidents)

    p = sub.add_parser(
        "lint",
        help="AST invariant linter (determinism/observability contracts)",
    )
    p.add_argument("paths", nargs="*",
                   default=["src", "tests", "benchmarks", "examples"],
                   help="files/directories to scan (default: the repo tree)")
    p.add_argument("--select", metavar="CODES",
                   help="comma-separated rule codes or prefixes to run "
                        "(e.g. DRA101,DRA2); default: every rule")
    p.add_argument("--ignore", metavar="CODES",
                   help="comma-separated rule codes or prefixes to skip")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="findings as one line each, or a schema-versioned "
                        "JSON document")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores; default 1 = serial)")
    p.add_argument("--interprocedural", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="run the whole-project DRA5xx call-graph/dataflow "
                        "pass (docs/static-analysis.md); on by default")
    p.add_argument("--graph-out", dest="graph_out", metavar="FILE",
                   default=None,
                   help="export the project call graph as schema-versioned "
                        "JSON (repro-callgraph v1; byte-identical for any "
                        "--jobs)")
    add_trace_flag(p)
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from contextlib import ExitStack

    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    registry = None
    with ExitStack() as stack:
        if metrics_out:
            from repro.obs import MetricsRegistry, collecting

            registry = MetricsRegistry()
            stack.enter_context(collecting(registry))
        if trace_path:
            from repro.obs import tracing

            stack.enter_context(tracing(trace_path))
        rc = args.func(args)
    if trace_path:
        print(f"wrote trace {trace_path}", file=sys.stderr)
    if registry is not None:
        from repro.obs import write_prometheus

        write_prometheus(registry, metrics_out)
        print(f"wrote metrics {metrics_out}", file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

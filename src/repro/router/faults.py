"""Fault injection and repair processes for the executable router.

Component lifetimes are exponential with per-kind rates; repairs (when a
repair rate is given) restore the component after an exponential delay --
the DES analogue of the Markov models' repair transition, applied per
component rather than router-wide.

Because real failure rates (~1e-5/h) against packet timescales (~1e-6 s)
would never fire inside a tractable run, experiments use *accelerated*
rates; :meth:`FaultInjector.accelerated` builds one from the paper's
:class:`~repro.core.parameters.FailureRates` and an acceleration factor.
The DES is about *behavioral* fidelity (does coverage engage, what drops,
how does the EIB carry the detour); the calibrated dependability numbers
come from the Markov models and the Monte Carlo estimators.

Beyond the original crash-stop semantics, :class:`FaultModes` mixes in
the extended taxonomy the chaos campaigns exercise (``docs/chaos.md``):

* **transient** -- the unit fails, then auto-clears after an exponential
  sojourn (no repair crew involved);
* **intermittent** -- the unit flaps failed/healthy for a geometrically
  distributed number of episodes before a final clear;
* **fail-slow** -- the unit keeps working at a degraded service rate
  (``Component.degrade``); neither the fault map nor the planner reacts,
  only latency does;
* **control-plane degradation** -- an EIB-level mode that drops or
  garbles control packets in flight (``ControlChannel.loss_prob`` /
  ``corrupt_prob``) without failing the bus.

With ``modes=None`` (the default) the injector draws no extra random
numbers and behaves exactly as the original crash-stop version, keeping
pre-existing seeded experiments bit-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.parameters import FailureRates
from repro.router.components import ComponentKind
from repro.router.router import Router

__all__ = ["FaultEvent", "FaultMode", "FaultModes", "FaultInjector", "ComponentRates"]


class FaultMode(enum.Enum):
    """How a drawn component fault behaves over time."""

    CRASH = "crash"
    TRANSIENT = "transient"
    INTERMITTENT = "intermittent"
    FAIL_SLOW = "fail_slow"


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the injector's fault/repair log.

    ``action`` is one of ``fail`` / ``repair`` (crash lifecycle),
    ``clear`` (transient/intermittent auto-recovery), ``degrade`` /
    ``restore`` (fail-slow episodes), or ``ctl_degrade`` /
    ``ctl_restore`` (control-plane loss/corruption windows).
    """

    time: float
    lc_id: int | None  # None for EIB-level events
    kind: ComponentKind | None  # None for EIB passive-line events
    action: str
    mode: str = FaultMode.CRASH.value
    #: correlation id minted by :meth:`Router.inject_fault` linking this
    #: log entry to its incident span (None for degrade/ctl episodes,
    #: which never enter the fault map).
    fault_id: int | None = None


@dataclass(frozen=True)
class FaultModes:
    """Weighted fault-mode mix plus the per-mode timing parameters.

    Weights need not sum to one; each component failure draws a mode
    proportionally.  Sojourn/period parameters are means of exponential
    distributions in simulated seconds.  ``ctl_fault_rate`` arms an
    independent Poisson process of control-plane degradation windows.
    """

    crash_weight: float = 1.0
    transient_weight: float = 0.0
    intermittent_weight: float = 0.0
    fail_slow_weight: float = 0.0
    #: mean auto-clear delay of a transient fault
    transient_sojourn_s: float = 50e-6
    #: mean half-period (time in each state) of intermittent flapping
    flap_period_s: float = 30e-6
    #: probability an intermittent fault flaps again after a clear
    flap_continue_prob: float = 0.5
    #: service-time multiplier of a fail-slow episode
    slow_factor: float = 4.0
    #: mean duration of a fail-slow episode
    slow_sojourn_s: float = 200e-6
    #: rate (per simulated second) of control-plane degradation windows
    ctl_fault_rate: float = 0.0
    #: control-packet loss probability while degraded
    ctl_loss_prob: float = 0.2
    #: control-packet corruption probability while degraded
    ctl_corrupt_prob: float = 0.1
    #: mean duration of a degradation window
    ctl_sojourn_s: float = 300e-6

    def __post_init__(self) -> None:
        weights = (
            self.crash_weight,
            self.transient_weight,
            self.intermittent_weight,
            self.fail_slow_weight,
        )
        if any(w < 0.0 for w in weights) or sum(weights) <= 0.0:
            raise ValueError(f"invalid fault-mode weights {weights}")
        if not 0.0 <= self.flap_continue_prob < 1.0:
            raise ValueError("flap_continue_prob must be in [0, 1)")
        if self.ctl_loss_prob + self.ctl_corrupt_prob > 1.0:
            raise ValueError("ctl loss + corrupt probabilities exceed 1")

    @property
    def weights(self) -> tuple[tuple[FaultMode, float], ...]:
        """(mode, weight) pairs in drawing order."""
        return (
            (FaultMode.CRASH, self.crash_weight),
            (FaultMode.TRANSIENT, self.transient_weight),
            (FaultMode.INTERMITTENT, self.intermittent_weight),
            (FaultMode.FAIL_SLOW, self.fail_slow_weight),
        )


@dataclass(frozen=True)
class ComponentRates:
    """Per-component failure rates for the DES (per simulated second).

    The paper's PI-unit rate ``lam_lpi`` covers SRU + LFE together; the
    DES needs them separately, so it splits the rate evenly (no finer
    attribution exists in the paper or its cited datasheet).
    """

    piu: float = 0.0
    pdlu: float = 6.0e-6
    sru: float = 7.0e-6
    lfe: float = 7.0e-6
    bus_controller: float = 1.0e-6
    eib: float = 1.0e-6

    @classmethod
    def from_failure_rates(
        cls, rates: FailureRates, *, accel: float = 1.0, include_piu: bool = False
    ) -> "ComponentRates":
        """Derive DES rates from the paper's hourly rates.

        ``accel`` multiplies every rate (and converts nothing else: callers
        decide whether a simulated second means an hour).  ``include_piu``
        adds PIU failures, which the analysis excludes but the DES can
        exercise.
        """
        return cls(
            piu=(rates.lam_lpi / 2.0) * accel if include_piu else 0.0,
            pdlu=rates.lam_lpd * accel,
            sru=(rates.lam_lpi / 2.0) * accel,
            lfe=(rates.lam_lpi / 2.0) * accel,
            bus_controller=rates.lam_bc * accel,
            eib=rates.lam_bus * accel,
        )

    def rate_of(self, kind: ComponentKind) -> float:
        """Failure rate for one component kind."""
        return {
            ComponentKind.PIU: self.piu,
            ComponentKind.PDLU: self.pdlu,
            ComponentKind.SRU: self.sru,
            ComponentKind.LFE: self.lfe,
            ComponentKind.BUS_CONTROLLER: self.bus_controller,
        }[kind]


class FaultInjector:
    """Drives component failures (and optional repairs) into a router."""

    def __init__(
        self,
        router: Router,
        rates: ComponentRates,
        rng: np.random.Generator,
        *,
        repair_rate: float | None = None,
        modes: FaultModes | None = None,
    ) -> None:
        self._router = router
        self._rates = rates
        self._rng = rng
        self._repair_rate = repair_rate
        self._modes = modes
        self._stopped = False
        self.log: list[FaultEvent] = []

    @classmethod
    def accelerated(
        cls,
        router: Router,
        rng: np.random.Generator,
        *,
        accel: float = 1.0,
        base: FailureRates | None = None,
        repair_rate: float | None = None,
        modes: FaultModes | None = None,
    ) -> "FaultInjector":
        """Injector using the paper's rates scaled by ``accel``."""
        return cls(
            router,
            ComponentRates.from_failure_rates(base or FailureRates(), accel=accel),
            rng,
            repair_rate=repair_rate,
            modes=modes,
        )

    def start(self) -> None:
        """Arm the first failure timer of every component (and the EIB)."""
        for lc_id, lc in self._router.linecards.items():
            for unit in lc.units():
                self._arm_failure(lc_id, unit.kind)
        if self._router.eib is not None and self._rates.eib > 0.0:
            self._arm_eib_failure()
        if (
            self._modes is not None
            and self._modes.ctl_fault_rate > 0.0
            and self._router.eib is not None
        ):
            self._arm_ctl_fault()

    def stop(self) -> None:
        """Stop originating *new* faults (campaign drain phase).

        Already-armed timers still fire but do nothing; in-progress
        repairs, transient clears, flap finales and fail-slow/control
        restores complete so the router converges to a stable end state
        the invariant checks can reason about.
        """
        self._stopped = True

    def _draw_mode(self) -> FaultMode:
        if self._modes is None:
            return FaultMode.CRASH  # no extra RNG draw: legacy determinism
        pairs = self._modes.weights
        total = sum(w for _, w in pairs)
        draw = float(self._rng.random()) * total
        for mode, weight in pairs:
            draw -= weight
            if draw < 0.0:
                return mode
        return FaultMode.CRASH

    # -- per-component lifecycle ------------------------------------------------

    def _arm_failure(self, lc_id: int, kind: ComponentKind) -> None:
        if self._stopped:
            return
        rate = self._rates.rate_of(kind)
        if rate <= 0.0:
            return
        delay = float(self._rng.exponential(1.0 / rate))
        self._router.engine.schedule_in(
            delay, lambda: self._fire_failure(lc_id, kind), label=f"fault:{kind.value}"
        )

    def _fire_failure(self, lc_id: int, kind: ComponentKind) -> None:
        if self._stopped:
            return
        unit = self._router.linecards[lc_id].unit(kind)
        if unit is None or not unit.healthy:
            return  # already failed through another path
        mode = self._draw_mode()
        if mode is FaultMode.FAIL_SLOW:
            self._fire_fail_slow(lc_id, kind)
            return
        fault_id = self._router.inject_fault(lc_id, kind, mode=mode.value)
        self.log.append(
            FaultEvent(
                self._router.engine.now, lc_id, kind, "fail", mode.value, fault_id
            )
        )
        if mode is FaultMode.TRANSIENT:
            assert self._modes is not None
            delay = float(self._rng.exponential(self._modes.transient_sojourn_s))
            self._router.engine.schedule_in(
                delay,
                lambda: self._fire_clear(lc_id, kind, mode.value),
                label="fault:transient-clear",
            )
        elif mode is FaultMode.INTERMITTENT:
            assert self._modes is not None
            delay = float(self._rng.exponential(self._modes.flap_period_s))
            self._router.engine.schedule_in(
                delay, lambda: self._flap_clear(lc_id, kind), label="fault:flap-clear"
            )
        elif self._repair_rate is not None:
            delay = float(self._rng.exponential(1.0 / self._repair_rate))
            self._router.engine.schedule_in(
                delay, lambda: self._fire_repair(lc_id, kind), label="repair"
            )

    def _fire_repair(self, lc_id: int, kind: ComponentKind) -> None:
        fault_id = self._router.repair_fault(lc_id, kind)
        self.log.append(
            FaultEvent(self._router.engine.now, lc_id, kind, "repair", fault_id=fault_id)
        )
        self._arm_failure(lc_id, kind)

    def _fire_clear(self, lc_id: int, kind: ComponentKind, mode: str) -> None:
        """Auto-recovery of a transient fault (no repair crew)."""
        unit = self._router.linecards[lc_id].unit(kind)
        if unit is not None and not unit.healthy:
            fault_id = self._router.repair_fault(lc_id, kind)
            self.log.append(
                FaultEvent(self._router.engine.now, lc_id, kind, "clear", mode, fault_id)
            )
        self._arm_failure(lc_id, kind)

    def _flap_clear(self, lc_id: int, kind: ComponentKind) -> None:
        unit = self._router.linecards[lc_id].unit(kind)
        if unit is not None and not unit.healthy:
            fault_id = self._router.repair_fault(lc_id, kind)
            self.log.append(
                FaultEvent(
                    self._router.engine.now,
                    lc_id,
                    kind,
                    "clear",
                    FaultMode.INTERMITTENT.value,
                    fault_id,
                )
            )
        if self._stopped:
            return
        assert self._modes is not None
        if float(self._rng.random()) < self._modes.flap_continue_prob:
            delay = float(self._rng.exponential(self._modes.flap_period_s))
            self._router.engine.schedule_in(
                delay, lambda: self._flap_fail(lc_id, kind), label="fault:flap-fail"
            )
        else:
            self._arm_failure(lc_id, kind)

    def _flap_fail(self, lc_id: int, kind: ComponentKind) -> None:
        if self._stopped:
            return
        unit = self._router.linecards[lc_id].unit(kind)
        if unit is None or not unit.healthy:
            return  # already failed through another path
        assert self._modes is not None
        fault_id = self._router.inject_fault(
            lc_id, kind, mode=FaultMode.INTERMITTENT.value
        )
        self.log.append(
            FaultEvent(
                self._router.engine.now,
                lc_id,
                kind,
                "fail",
                FaultMode.INTERMITTENT.value,
                fault_id,
            )
        )
        delay = float(self._rng.exponential(self._modes.flap_period_s))
        self._router.engine.schedule_in(
            delay, lambda: self._flap_clear(lc_id, kind), label="fault:flap-clear"
        )

    def _fire_fail_slow(self, lc_id: int, kind: ComponentKind) -> None:
        unit = self._router.linecards[lc_id].unit(kind)
        assert unit is not None and self._modes is not None
        if unit.degraded:
            self._arm_failure(lc_id, kind)
            return
        unit.degrade(self._modes.slow_factor)
        self.log.append(
            FaultEvent(
                self._router.engine.now, lc_id, kind, "degrade", FaultMode.FAIL_SLOW.value
            )
        )
        delay = float(self._rng.exponential(self._modes.slow_sojourn_s))
        self._router.engine.schedule_in(
            delay, lambda: self._fire_slow_restore(lc_id, kind), label="fault:slow-restore"
        )

    def _fire_slow_restore(self, lc_id: int, kind: ComponentKind) -> None:
        unit = self._router.linecards[lc_id].unit(kind)
        if unit is not None and unit.degraded:
            unit.restore_speed()
            self.log.append(
                FaultEvent(
                    self._router.engine.now,
                    lc_id,
                    kind,
                    "restore",
                    FaultMode.FAIL_SLOW.value,
                )
            )
        self._arm_failure(lc_id, kind)

    # -- EIB lifecycle ------------------------------------------------------------

    def _arm_eib_failure(self) -> None:
        if self._stopped:
            return
        delay = float(self._rng.exponential(1.0 / self._rates.eib))
        self._router.engine.schedule_in(delay, self._fire_eib_failure, label="fault:eib")

    def _fire_eib_failure(self) -> None:
        if self._stopped:
            return
        if self._router.eib is None or not self._router.eib.healthy:
            return
        fault_id = self._router.fail_eib()
        self.log.append(
            FaultEvent(self._router.engine.now, None, None, "fail", fault_id=fault_id)
        )
        if self._repair_rate is not None:
            delay = float(self._rng.exponential(1.0 / self._repair_rate))
            self._router.engine.schedule_in(delay, self._fire_eib_repair, label="repair:eib")

    def _fire_eib_repair(self) -> None:
        fault_id = self._router.repair_eib()
        self.log.append(
            FaultEvent(self._router.engine.now, None, None, "repair", fault_id=fault_id)
        )
        self._arm_eib_failure()

    # -- control-plane degradation ------------------------------------------------

    def _arm_ctl_fault(self) -> None:
        if self._stopped:
            return
        assert self._modes is not None
        delay = float(self._rng.exponential(1.0 / self._modes.ctl_fault_rate))
        self._router.engine.schedule_in(delay, self._fire_ctl_fault, label="fault:ctl")

    def _fire_ctl_fault(self) -> None:
        if self._stopped or self._router.eib is None:
            return
        ctl = self._router.eib.control
        assert self._modes is not None
        if ctl.loss_prob > 0.0 or ctl.corrupt_prob > 0.0:
            self._arm_ctl_fault()
            return
        ctl.loss_prob = self._modes.ctl_loss_prob
        ctl.corrupt_prob = self._modes.ctl_corrupt_prob
        self.log.append(
            FaultEvent(self._router.engine.now, None, None, "ctl_degrade", "control")
        )
        delay = float(self._rng.exponential(self._modes.ctl_sojourn_s))
        self._router.engine.schedule_in(
            delay, self._fire_ctl_restore, label="fault:ctl-restore"
        )

    def _fire_ctl_restore(self) -> None:
        if self._router.eib is None:
            return
        ctl = self._router.eib.control
        ctl.loss_prob = 0.0
        ctl.corrupt_prob = 0.0
        self.log.append(
            FaultEvent(self._router.engine.now, None, None, "ctl_restore", "control")
        )
        self._arm_ctl_fault()

    # -- summaries ------------------------------------------------------------------

    def failures(self) -> list[FaultEvent]:
        """All failure entries of the log."""
        return [e for e in self.log if e.action == "fail"]

    def repairs(self) -> list[FaultEvent]:
        """All repair entries of the log."""
        return [e for e in self.log if e.action == "repair"]

"""Fault injection and repair processes for the executable router.

Component lifetimes are exponential with per-kind rates; repairs (when a
repair rate is given) restore the component after an exponential delay --
the DES analogue of the Markov models' repair transition, applied per
component rather than router-wide.

Because real failure rates (~1e-5/h) against packet timescales (~1e-6 s)
would never fire inside a tractable run, experiments use *accelerated*
rates; :meth:`FaultInjector.accelerated` builds one from the paper's
:class:`~repro.core.parameters.FailureRates` and an acceleration factor.
The DES is about *behavioral* fidelity (does coverage engage, what drops,
how does the EIB carry the detour); the calibrated dependability numbers
come from the Markov models and the Monte Carlo estimators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import FailureRates
from repro.router.components import ComponentKind
from repro.router.router import Router

__all__ = ["FaultEvent", "FaultInjector", "ComponentRates"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the injector's fault/repair log."""

    time: float
    lc_id: int | None  # None for EIB-level events
    kind: ComponentKind | None  # None for EIB passive-line events
    action: str  # "fail" or "repair"


@dataclass(frozen=True)
class ComponentRates:
    """Per-component failure rates for the DES (per simulated second).

    The paper's PI-unit rate ``lam_lpi`` covers SRU + LFE together; the
    DES needs them separately, so it splits the rate evenly (no finer
    attribution exists in the paper or its cited datasheet).
    """

    piu: float = 0.0
    pdlu: float = 6.0e-6
    sru: float = 7.0e-6
    lfe: float = 7.0e-6
    bus_controller: float = 1.0e-6
    eib: float = 1.0e-6

    @classmethod
    def from_failure_rates(
        cls, rates: FailureRates, *, accel: float = 1.0, include_piu: bool = False
    ) -> "ComponentRates":
        """Derive DES rates from the paper's hourly rates.

        ``accel`` multiplies every rate (and converts nothing else: callers
        decide whether a simulated second means an hour).  ``include_piu``
        adds PIU failures, which the analysis excludes but the DES can
        exercise.
        """
        return cls(
            piu=(rates.lam_lpi / 2.0) * accel if include_piu else 0.0,
            pdlu=rates.lam_lpd * accel,
            sru=(rates.lam_lpi / 2.0) * accel,
            lfe=(rates.lam_lpi / 2.0) * accel,
            bus_controller=rates.lam_bc * accel,
            eib=rates.lam_bus * accel,
        )

    def rate_of(self, kind: ComponentKind) -> float:
        """Failure rate for one component kind."""
        return {
            ComponentKind.PIU: self.piu,
            ComponentKind.PDLU: self.pdlu,
            ComponentKind.SRU: self.sru,
            ComponentKind.LFE: self.lfe,
            ComponentKind.BUS_CONTROLLER: self.bus_controller,
        }[kind]


class FaultInjector:
    """Drives component failures (and optional repairs) into a router."""

    def __init__(
        self,
        router: Router,
        rates: ComponentRates,
        rng: np.random.Generator,
        *,
        repair_rate: float | None = None,
    ) -> None:
        self._router = router
        self._rates = rates
        self._rng = rng
        self._repair_rate = repair_rate
        self.log: list[FaultEvent] = []

    @classmethod
    def accelerated(
        cls,
        router: Router,
        rng: np.random.Generator,
        *,
        accel: float = 1.0,
        base: FailureRates | None = None,
        repair_rate: float | None = None,
    ) -> "FaultInjector":
        """Injector using the paper's rates scaled by ``accel``."""
        return cls(
            router,
            ComponentRates.from_failure_rates(base or FailureRates(), accel=accel),
            rng,
            repair_rate=repair_rate,
        )

    def start(self) -> None:
        """Arm the first failure timer of every component (and the EIB)."""
        for lc_id, lc in self._router.linecards.items():
            for unit in lc.units():
                self._arm_failure(lc_id, unit.kind)
        if self._router.eib is not None and self._rates.eib > 0.0:
            self._arm_eib_failure()

    # -- per-component lifecycle ------------------------------------------------

    def _arm_failure(self, lc_id: int, kind: ComponentKind) -> None:
        rate = self._rates.rate_of(kind)
        if rate <= 0.0:
            return
        delay = float(self._rng.exponential(1.0 / rate))
        self._router.engine.schedule_in(
            delay, lambda: self._fire_failure(lc_id, kind), label=f"fault:{kind.value}"
        )

    def _fire_failure(self, lc_id: int, kind: ComponentKind) -> None:
        unit = self._router.linecards[lc_id].unit(kind)
        if unit is None or not unit.healthy:
            return  # already failed through another path
        self._router.inject_fault(lc_id, kind)
        self.log.append(FaultEvent(self._router.engine.now, lc_id, kind, "fail"))
        if self._repair_rate is not None:
            delay = float(self._rng.exponential(1.0 / self._repair_rate))
            self._router.engine.schedule_in(
                delay, lambda: self._fire_repair(lc_id, kind), label="repair"
            )

    def _fire_repair(self, lc_id: int, kind: ComponentKind) -> None:
        self._router.repair_fault(lc_id, kind)
        self.log.append(FaultEvent(self._router.engine.now, lc_id, kind, "repair"))
        self._arm_failure(lc_id, kind)

    # -- EIB lifecycle ------------------------------------------------------------

    def _arm_eib_failure(self) -> None:
        delay = float(self._rng.exponential(1.0 / self._rates.eib))
        self._router.engine.schedule_in(delay, self._fire_eib_failure, label="fault:eib")

    def _fire_eib_failure(self) -> None:
        if self._router.eib is None or not self._router.eib.healthy:
            return
        self._router.fail_eib()
        self.log.append(FaultEvent(self._router.engine.now, None, None, "fail"))
        if self._repair_rate is not None:
            delay = float(self._rng.exponential(1.0 / self._repair_rate))
            self._router.engine.schedule_in(delay, self._fire_eib_repair, label="repair:eib")

    def _fire_eib_repair(self) -> None:
        self._router.repair_eib()
        self.log.append(FaultEvent(self._router.engine.now, None, None, "repair"))
        self._arm_eib_failure()

    # -- summaries ------------------------------------------------------------------

    def failures(self) -> list[FaultEvent]:
        """All failure entries of the log."""
        return [e for e in self.log if e.action == "fail"]

    def repairs(self) -> list[FaultEvent]:
        """All repair entries of the log."""
        return [e for e in self.log if e.action == "repair"]

"""Executable BDR / DRA router model.

This subpackage turns the architecture of Sections 2-4 of the paper into a
runnable discrete-event model:

* :mod:`~repro.router.packets` -- packets, fixed-size cells and the five
  EIB control-packet kinds with their three-tier parameter sets.
* :mod:`~repro.router.components` -- PIU, PDLU, SRU, LFE and bus-controller
  models with health state.
* :mod:`~repro.router.routing` -- route processor, routing-table
  distribution, and the LFE's longest-prefix-match trie.
* :mod:`~repro.router.linecard` -- linecards in BDR style (protocol logic
  fused into PIU/SRU) and DRA style (separate PDLU).
* :mod:`~repro.router.fabric` -- crossbar switching fabric with redundant
  fabric cards (Cisco-12000-style 1:4 sparing).
* :mod:`~repro.router.bus` -- the enhanced internal bus: CSMA/CD control
  lines and TDM data lines.
* :mod:`~repro.router.arbitration` -- the distributed counter arbiter of
  Section 4 (Ctr_id / Ctr_r / Ctr_beta, L_t / L_p lines).
* :mod:`~repro.router.protocol` -- the three-tier EIB protocol state
  machines (forward path, reverse path, lookup service).
* :mod:`~repro.router.recovery` -- the fault map and coverage planning of
  Section 3.2 (Cases 1-3).
* :mod:`~repro.router.bandwidth` -- the B_prom allocator over the EIB.
* :mod:`~repro.router.faults` -- fault injection and repair processes.
* :mod:`~repro.router.router` -- the assembled ``Router`` facade.
* :mod:`~repro.router.stats` -- metric collection.
"""

from repro.router.packets import (
    Cell,
    ControlKind,
    ControlPacket,
    Packet,
    Protocol,
    segment,
)
from repro.router.components import ComponentKind
from repro.router.router import Router, RouterConfig, RouterMode
from repro.router.faults import FaultInjector, FaultEvent
from repro.router.stats import RouterStats

__all__ = [
    "Cell",
    "ControlKind",
    "ControlPacket",
    "Packet",
    "Protocol",
    "segment",
    "ComponentKind",
    "Router",
    "RouterConfig",
    "RouterMode",
    "FaultInjector",
    "FaultEvent",
    "RouterStats",
]

"""Route processor, routing tables and longest-prefix-match lookup.

The route processor (RP) runs the routing protocols and pushes table
copies to every LC's local forwarding engine over the internal bus
(Section 2).  The LFE's lookup structure here is a binary trie keyed on
IPv4 prefixes -- small, exact, and fast enough for the simulated rates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RoutePrefix", "RoutingTable", "RouteProcessor", "ipv4", "format_ipv4"]


def ipv4(dotted: str) -> int:
    """Parse dotted-quad notation into the integer form used throughout.

    >>> ipv4("10.0.0.1")
    167772161
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {dotted!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet {octet} out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(addr: int) -> str:
    """Inverse of :func:`ipv4`."""
    if not 0 <= addr < 2**32:
        raise ValueError(f"address {addr} out of IPv4 range")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class RoutePrefix:
    """An IPv4 prefix with its outgoing linecard."""

    prefix: int
    length: int
    next_hop_lc: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length {self.length} out of range")
        if not 0 <= self.prefix < 2**32:
            raise ValueError(f"prefix {self.prefix} out of IPv4 range")
        mask = ((1 << self.length) - 1) << (32 - self.length) if self.length else 0
        if self.prefix & ~mask:
            raise ValueError(
                f"prefix {format_ipv4(self.prefix)}/{self.length} has host bits set"
            )

    def matches(self, addr: int) -> bool:
        """True when ``addr`` falls inside this prefix."""
        if self.length == 0:
            return True
        shift = 32 - self.length
        return (addr >> shift) == (self.prefix >> shift)


class _TrieNode:
    __slots__ = ("children", "next_hop")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.next_hop: int | None = None


class RoutingTable:
    """Binary trie supporting insert and longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._routes: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def insert(self, route: RoutePrefix) -> None:
        """Add (or replace) a prefix route."""
        node = self._root
        for depth in range(route.length):
            bit = (route.prefix >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.next_hop = route.next_hop_lc
        self._routes[(route.prefix, route.length)] = route.next_hop_lc

    def remove(self, prefix: int, length: int) -> bool:
        """Withdraw a route; returns False if it was not present.

        The trie node is kept (tombstoned with ``next_hop = None``); the
        simulated tables are small enough that path compaction is not
        worth the complexity.
        """
        if (prefix, length) not in self._routes:
            return False
        del self._routes[(prefix, length)]
        node = self._root
        for depth in range(length):
            bit = (prefix >> (31 - depth)) & 1
            node = node.children[bit]
        node.next_hop = None
        return True

    def lookup(self, addr: int) -> int | None:
        """Longest-prefix match; ``None`` when no route covers ``addr``."""
        if not 0 <= addr < 2**32:
            raise ValueError(f"address {addr} out of IPv4 range")
        node = self._root
        best = node.next_hop
        for depth in range(32):
            bit = (addr >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.next_hop is not None:
                best = node.next_hop
        return best

    def lookup_linear(self, addr: int) -> int | None:
        """Reference LPM by linear scan (oracle for property tests)."""
        best_len = -1
        best_hop: int | None = None
        for (prefix, length), hop in self._routes.items():
            if RoutePrefix(prefix, length, hop).matches(addr) and length > best_len:
                best_len = length
                best_hop = hop
        return best_hop

    def routes(self) -> list[RoutePrefix]:
        """All installed routes."""
        return [
            RoutePrefix(prefix, length, hop)
            for (prefix, length), hop in self._routes.items()
        ]


class RouteProcessor:
    """The router's RP: owns the master table, distributes copies to LFEs.

    Distribution models the internal-bus dissemination function: each LC
    receives an independent :class:`RoutingTable` copy, so a master update
    is invisible at the LCs until the next :meth:`distribute` (tests cover
    this staleness window).
    """

    def __init__(self) -> None:
        self._master = RoutingTable()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone table version, bumped on every announce/withdraw."""
        return self._version

    @property
    def master(self) -> RoutingTable:
        """The RP's master table (mutate via announce/withdraw)."""
        return self._master

    def announce(self, route: RoutePrefix) -> None:
        """Install a route into the master table."""
        self._master.insert(route)
        self._version += 1

    def withdraw(self, prefix: int, length: int) -> bool:
        """Remove a route from the master table."""
        removed = self._master.remove(prefix, length)
        if removed:
            self._version += 1
        return removed

    def distribute(self) -> RoutingTable:
        """A fresh copy of the master table for one LFE."""
        copy = RoutingTable()
        for route in self._master.routes():
            copy.insert(route)
        return copy

    def default_full_mesh(self, n_lcs: int, base: str = "10.0.0.0") -> None:
        """Install one /16 per linecard under ``base`` (test/bench topology).

        LC ``k`` owns ``base + (k << 16)``; traffic generators then draw
        destination addresses inside the target LC's /16.
        """
        base_addr = ipv4(base)
        for lc in range(n_lcs):
            self.announce(RoutePrefix(base_addr + (lc << 16), 16, lc))

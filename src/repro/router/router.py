"""The assembled router: BDR and DRA modes.

:class:`Router` wires linecards, the switching fabric, and (in DRA mode)
the EIB with its protocol engine and coverage planner into one packet
pipeline:

    PIU -> [PDLU] -> SRU -> LFE lookup -> fabric cells -> SRU -> [PDLU] -> PIU

Every stage checks component health at execution time.  In BDR mode any
datapath fault at the ingress or egress LC drops the packet (the whole LC
is effectively down -- the paper's motivating observation).  In DRA mode
the :class:`~repro.router.recovery.CoveragePlanner` reroutes the affected
leg over the EIB according to Section 3.2's cases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs import trace as _trace
from repro.router.bus import EIB
from repro.router.components import ComponentKind
from repro.router.fabric import CELL_DISPATCH_MODES, SwitchFabric
from repro.router.linecard import Linecard
from repro.router.packets import Packet, Protocol, segment
from repro.router.planner2 import POLICY_NAMES, make_policy
from repro.router.protocol import CoverageStream, EIBProtocol
from repro.router.reassembly import ReassemblyBuffer
from repro.router.recovery import (
    CoveragePlan,
    CoveragePlanner,
    DropReason,
    EgressMode,
    FaultMap,
)
from repro.router.routing import RouteProcessor
from repro.router.stats import RouterStats
from repro.sim import Engine, RngRegistry

__all__ = ["Router", "RouterConfig", "RouterMode"]


class RouterMode(enum.Enum):
    """Architecture being simulated."""

    BDR = "bdr"
    DRA = "dra"
    #: BDR plus explicit standby linecards (one pool per protocol): the
    #: "at least one redundant LC for each protocol type" alternative the
    #: paper's Section 3 calls an expensive proposition.  A datapath fault
    #: triggers an automatic swap to a spare after ``spare_swap_delay_s``.
    SPARED = "spared"


@dataclass(frozen=True)
class RouterConfig:
    """Static router parameters.

    ``protocols`` assigns an L2 protocol per LC, cycled when shorter than
    ``n_linecards`` (the default gives an all-Ethernet router, i.e. the
    analysis's M = N case).
    """

    n_linecards: int = 6
    mode: RouterMode = RouterMode.DRA
    protocols: tuple[Protocol, ...] = (Protocol.ETHERNET,)
    lc_capacity_bps: float = 10e9
    eib_data_bps: float = 20e9
    eib_control_bps: float = 2e9
    fabric_cell_rate: float = 25e6
    fabric_active_cards: int = 4
    fabric_spare_cards: int = 1
    #: SPARED mode: standby LCs per protocol and the failover time.
    spares_per_protocol: int = 1
    spare_swap_delay_s: float = 2e-3
    seed: int = 0
    #: planner v2 coverage policy: "static" reproduces the paper's
    #: slot-rank first-fit contention bit for bit; "adaptive" scores
    #: LC_inter candidates by headroom/health/spread, replans active
    #: streams on fault news, and sheds rate fairly under EIB overload.
    coverage_policy: str = "static"
    #: fabric cell-clock dispatch: "batched" drives a run of queued cells
    #: with one burst event; "scalar" is the per-cell reference oracle
    #: (bit-identical results, docs/performance.md).
    cell_dispatch: str = "batched"

    def __post_init__(self) -> None:
        if self.n_linecards < 2:
            raise ValueError(f"need at least 2 linecards, got {self.n_linecards}")
        if not self.protocols:
            raise ValueError("protocols must not be empty")
        if self.coverage_policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown coverage policy {self.coverage_policy!r} "
                f"(choose from {POLICY_NAMES})"
            )
        if self.cell_dispatch not in CELL_DISPATCH_MODES:
            raise ValueError(
                f"unknown cell_dispatch {self.cell_dispatch!r} "
                f"(choose from {CELL_DISPATCH_MODES})"
            )

    def protocol_of(self, lc_id: int) -> Protocol:
        """Protocol assigned to ``lc_id`` (cycling)."""
        return self.protocols[lc_id % len(self.protocols)]


class Router:
    """An executable router instance tied to a simulation engine."""

    def __init__(self, config: RouterConfig, engine: Engine | None = None) -> None:
        self.config = config
        self.engine = engine or Engine()
        self.rng = RngRegistry(seed=config.seed)
        self.stats = RouterStats()
        self.mode = config.mode

        self.linecards: dict[int, Linecard] = {
            i: Linecard(
                i,
                config.protocol_of(i),
                dra=config.mode is RouterMode.DRA,
                capacity_bps=config.lc_capacity_bps,
            )
            for i in range(config.n_linecards)
        }
        #: SPARED mode: remaining standby cards per protocol.
        self.spares: dict[Protocol, int] = {}
        if config.mode is RouterMode.SPARED:
            for i in range(config.n_linecards):
                proto = config.protocol_of(i)
                self.spares.setdefault(proto, config.spares_per_protocol)
        #: LCs currently failing over to a spare (packets drop meanwhile).
        self._swapping: set[int] = set()
        self.route_processor = RouteProcessor()
        self.route_processor.default_full_mesh(config.n_linecards)
        self.distribute_tables()

        self.fabric = SwitchFabric(
            self.engine,
            config.n_linecards,
            port_rate_cells_per_s=config.fabric_cell_rate,
            n_active_cards=config.fabric_active_cards,
            n_spare_cards=config.fabric_spare_cards,
            cell_dispatch=config.cell_dispatch,
        )

        self.faults = FaultMap()
        # Timestamp fault-map / planner trace events with simulation time.
        self.faults.clock = lambda: self.engine.now
        if config.mode is RouterMode.DRA:
            self.eib: EIB | None = EIB(
                self.engine,
                list(self.linecards),
                self.rng.stream("eib"),
                data_rate_bps=config.eib_data_bps,
                control_rate_bps=config.eib_control_bps,
            )
            self.planner: CoveragePlanner | None = CoveragePlanner(
                self.linecards, self.faults
            )
            self.planner.clock = lambda: self.engine.now
            self.protocol: EIBProtocol | None = EIBProtocol(
                self.engine,
                self.eib,
                self.linecards,
                self.stats,
                self.rng.stream("protocol"),
                policy=make_policy(config.coverage_policy),
            )
        else:
            self.eib = None
            self.planner = None
            self.protocol = None

        #: detection layer (oracle dissemination when ``None``); set by
        #: :meth:`enable_detection`.
        self.detector = None

        #: per-LC offered rate (bps), set by traffic wiring; used as the
        #: data-rate parameter of coverage solicitations.
        self._offered_bps: dict[int, float] = {i: 0.0 for i in self.linecards}

        #: per-LC egress SRU reassembly buffers (cells -> packets).
        self.reassembly: dict[int, ReassemblyBuffer] = {
            i: ReassemblyBuffer(self.engine) for i in self.linecards
        }

        #: fault-correlation bookkeeping: every fault *activation* (LC
        #: component or EIB lines) mints one monotonically increasing
        #: ``fault_id`` that is threaded through detection, planning,
        #: coverage streams and repair, so a trace folds into per-fault
        #: incident spans (:mod:`repro.obs.spans`).
        self._fault_seq = 0
        self._active_fault_ids: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------

    def distribute_tables(self) -> None:
        """Push fresh routing-table copies from the RP to every LFE."""
        for lc in self.linecards.values():
            lc.table = self.route_processor.distribute()

    def set_offered_load(self, lc_id: int, rate_bps: float) -> None:
        """Declare the traffic load entering at ``lc_id``.

        The load both sizes coverage solicitations (the REQ_D data-rate
        parameter) and occupies the LC's own capacity, shrinking the
        headroom it can offer others (Section 5.3's psi).
        """
        if rate_bps < 0.0:
            raise ValueError(f"negative load {rate_bps}")
        lc = self.linecards[lc_id]
        previous = self._offered_bps[lc_id]
        lc.release(previous)
        if not lc.reserve(rate_bps):
            lc.release(0.0)
            raise ValueError(
                f"offered load {rate_bps} exceeds LC {lc_id} capacity "
                f"{lc.capacity_bps}"
            )
        self._offered_bps[lc_id] = rate_bps

    def offered_load(self, lc_id: int) -> float:
        """Configured offered rate at ``lc_id``."""
        return self._offered_bps[lc_id]

    def _stream_rate(self, lc_id: int) -> float:
        """Data rate posted in coverage solicitations for ``lc_id``.

        Floored at 1% of the LC capacity so a router whose traffic wiring
        never declared a load still gets a usable (non-zero) B_prom
        promise on the EIB.
        """
        return max(self._offered_bps[lc_id], 0.01 * self.config.lc_capacity_bps)

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``."""
        self.engine.run(until=until)

    def enable_detection(self, config=None):
        """Replace oracle fault dissemination with the EIB detection layer.

        Each LC gets a :class:`~repro.chaos.detection.LocalFaultView` that
        converges only after periodic self-tests (with configurable
        latency and imperfect coverage) and FLT_N/FLT_C/HB control
        packets over the CSMA/CD lines; the coverage planner then plans
        from the ingress LC's possibly-stale view.  Returns the detector.
        """
        if self.mode is not RouterMode.DRA:
            raise RuntimeError("fault detection rides the EIB: DRA routers only")
        from repro.chaos.detection import DetectionConfig, FaultDetector

        detector = FaultDetector(self, config or DetectionConfig())
        self.detector = detector
        assert self.planner is not None
        self.planner.set_views(detector.views)
        detector.start()
        return detector

    # ------------------------------------------------------------------
    # fault management
    # ------------------------------------------------------------------

    def _mint_fault_id(self, key: tuple) -> int:
        """New (or still-active) correlation id for the fault at ``key``."""
        active = self._active_fault_ids.get(key)
        if active is not None:
            return active
        fault_id = self._fault_seq
        self._fault_seq += 1
        self._active_fault_ids[key] = fault_id
        return fault_id

    def inject_fault(
        self, lc_id: int, kind: ComponentKind, *, mode: str = "crash"
    ) -> int:
        """Fail one component immediately (tests / fault injector).

        Every activation mints a ``fault_id`` (one per intermittent flap,
        reused if the component is already down) that correlates the
        fault's trace events end to end; ``mode`` labels the taxonomy
        member on the ``fault.injected`` event.  Returns the id.
        """
        unit = self.linecards[lc_id].unit(kind)
        if unit is None:
            raise ValueError(f"{self.mode.value} linecards have no {kind.value}")
        fault_id = self._mint_fault_id((lc_id, kind))
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "fault.injected",
                t=self.engine.now,
                fault_id=fault_id,
                lc=lc_id,
                component=kind.value,
                mode=mode,
            )
        unit.fail()
        self.faults.mark_failed(lc_id, kind, fault_id)
        if self.protocol is not None:
            # Health history for the adaptive policy: every activation
            # (including each intermittent flap) is one unit of penalty.
            self.protocol.policy.observe_fault(lc_id, self.engine.now)
        if self.detector is not None:
            self.detector.on_fault(lc_id, kind, fault_id)
        elif self.protocol is not None:
            # Oracle dissemination: every LC learns instantly, so the
            # replanning hook fires once for all observers.
            self.protocol.on_fault_news(None, lc_id, kind, repaired=False)
        if kind is ComponentKind.SRU:
            # Partial packets inside the failed SRU are destroyed; their
            # drop accounting happens through the buffers' abort callbacks.
            self.reassembly[lc_id].flush()
        if self.mode is RouterMode.SPARED and kind is not ComponentKind.PIU:
            self._start_spare_swap(lc_id, kind)
        return fault_id

    def _retire_fault_id(
        self, lc_id: int | None, kind: ComponentKind | None
    ) -> int | None:
        """Pop the active correlation id and emit ``fault.repaired``."""
        key: tuple = ("eib",) if lc_id is None else (lc_id, kind)
        fault_id = self._active_fault_ids.pop(key, None)
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "fault.repaired",
                t=self.engine.now,
                fault_id=fault_id,
                lc=lc_id,
                component="eib" if kind is None else kind.value,
            )
        return fault_id

    def repair_fault(self, lc_id: int, kind: ComponentKind) -> int | None:
        """Repair one component (hot-swap) and retire its coverage streams.

        Returns the correlation id of the fault being cleared, if one was
        active.
        """
        unit = self.linecards[lc_id].unit(kind)
        if unit is None:
            raise ValueError(f"{self.mode.value} linecards have no {kind.value}")
        unit.repair()
        fault_id = self._retire_fault_id(lc_id, kind)
        self.faults.mark_repaired(lc_id, kind)
        if self.protocol is not None:
            self.protocol.policy.observe_repair(lc_id, self.engine.now)
        if self.detector is not None:
            self.detector.on_repair(lc_id, kind)
        if self.protocol is not None:
            self.protocol.release_streams_for_fault(lc_id, kind)
            if self.detector is None:
                self.protocol.on_fault_news(None, lc_id, kind, repaired=True)
        return fault_id

    def _start_spare_swap(self, lc_id: int, kind: ComponentKind) -> None:
        """SPARED mode: fail over to a standby card when one remains.

        The LC stays down for ``spare_swap_delay_s`` (route reconvergence
        onto the standby), then returns to service; the consumed spare is
        restocked only by an explicit :meth:`repair_fault` (the hot-swap
        replacement of the broken card).
        """
        if lc_id in self._swapping:
            return
        protocol = self.linecards[lc_id].protocol
        if self.spares.get(protocol, 0) <= 0:
            return  # pool exhausted: the LC stays down until repair
        self.spares[protocol] -= 1
        self._swapping.add(lc_id)

        def complete() -> None:
            self._swapping.discard(lc_id)
            unit = self.linecards[lc_id].unit(kind)
            if unit is not None and not unit.healthy:
                unit.repair()
                self._retire_fault_id(lc_id, kind)
                self.faults.mark_repaired(lc_id, kind)

        self.engine.schedule_in(
            self.config.spare_swap_delay_s, complete, label="spared:swap"
        )

    def restock_spare(self, protocol: Protocol) -> None:
        """Return a replacement standby card to the pool (field service)."""
        if self.mode is not RouterMode.SPARED:
            raise RuntimeError("only SPARED routers hold spare pools")
        self.spares[protocol] = self.spares.get(protocol, 0) + 1

    def fail_fabric_card(self, card_id: int) -> None:
        """Fail a switching-fabric card; the 1:4 spare swaps in when
        available (the Cisco-12000-style sparing the analysis assumes)."""
        self.fabric.fail_card(card_id)

    def repair_fabric_card(self, card_id: int) -> None:
        """Repair a fabric card (returns as standby)."""
        self.fabric.repair_card(card_id)

    def fail_eib(self) -> int:
        """Fail the EIB passive lines (``lam_bus`` event); returns the
        minted fault id."""
        if self.eib is None:
            raise RuntimeError("BDR routers have no EIB")
        fault_id = self._mint_fault_id(("eib",))
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "fault.injected",
                t=self.engine.now,
                fault_id=fault_id,
                lc=None,
                component="eib",
                mode="crash",
            )
        self.eib.fail()
        self.faults.eib_healthy = False
        assert self.protocol is not None
        self.protocol.on_eib_failure()
        return fault_id

    def repair_eib(self) -> int | None:
        """Repair the EIB passive lines; returns the cleared fault id."""
        if self.eib is None:
            raise RuntimeError("BDR routers have no EIB")
        self.eib.repair()
        self.faults.eib_healthy = True
        return self._retire_fault_id(None, None)

    # ------------------------------------------------------------------
    # packet pipeline
    # ------------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Offer one packet at its source LC (entry point for traffic)."""
        self.stats.offered += 1
        packet.hop(f"in@LC{packet.src_lc}")
        if self.mode is RouterMode.DRA:
            self._inject_dra(packet)
        else:
            self._inject_bdr(packet)

    # -- BDR: no coverage, an LC fault downs the card ------------------------

    def _inject_bdr(self, packet: Packet) -> None:
        src = self.linecards[packet.src_lc]
        dst = self.linecards[packet.dst_lc]
        if not src.datapath_healthy:
            self._drop(packet, DropReason.BDR_LC_DOWN_IN)
            return
        if not dst.datapath_healthy:
            self._drop(packet, DropReason.BDR_LC_DOWN_OUT)
            return
        now = self.engine.now
        delay = src.piu.serve(packet.size_bytes, now)
        delay += src.sru.serve(packet.size_bytes, now + delay)
        delay += src.lfe.serve(0, now + delay)
        hop = src.table.lookup(packet.dst_addr)
        if hop is None:
            self._drop(packet, DropReason.NO_ROUTE)
            return
        packet.hop(f"lookup@LC{packet.src_lc}->LC{hop}")
        self.engine.schedule_in(
            delay,
            lambda: self._via_fabric(packet, hop, lambda: self._egress_bdr(packet, hop)),
            label="bdr:ingress",
        )

    def _egress_bdr(self, packet: Packet, dst: int) -> None:
        lc = self.linecards[dst]
        if not lc.datapath_healthy:
            self._drop(packet, DropReason.BDR_LC_DOWN_OUT)
            return
        now = self.engine.now
        delay = lc.sru.serve(packet.size_bytes, now)
        delay += lc.piu.serve(packet.size_bytes, now + delay)
        self.engine.schedule_in(delay, lambda: self._deliver(packet, dst), label="bdr:egress")

    # -- DRA: coverage pipeline ------------------------------------------------

    def _inject_dra(self, packet: Packet) -> None:
        assert self.planner is not None
        plan = self.planner.plan(packet)
        if plan.drop is not None:
            self._drop(packet, plan.drop)
            return
        src = self.linecards[packet.src_lc]
        if not src.piu.healthy:
            # With per-LC views the planner can miss even a local PIU
            # fault (self-test latency / imperfect coverage); the stale
            # plan says FABRIC but the hardware is dead.
            self._drop(packet, DropReason.PIU_IN)
            return
        delay = src.piu.serve(packet.size_bytes, self.engine.now)
        self.engine.schedule_in(
            delay, lambda: self._after_piu(packet, plan), label="dra:piu-in"
        )

    def _after_piu(self, packet: Packet, plan: CoveragePlan) -> None:
        if plan.ingress_fault is None:
            self._process_at(packet.src_lc, packet, plan)
            return
        # Case 2: ship the stream over the EIB to a covering LC, which
        # resumes processing at the failed unit's stage.  For an SRU fault
        # the transfer is made by LC_in's *PDLU* ("the PIU (or PDLU) of
        # LC_in transfers the incoming packets"), so the local PDLU still
        # processes the packet first.
        assert self.protocol is not None
        fault = plan.ingress_fault
        key = ("ingress", packet.src_lc, fault)
        src = self.linecards[packet.src_lc]
        if fault is ComponentKind.SRU and src.pdlu is not None:
            if not src.pdlu.healthy:
                self._drop(packet, DropReason.MID_FLIGHT_FAULT)
                return
            delay = src.pdlu.serve(packet.size_bytes, self.engine.now)
            packet.hop(f"pdlu@LC{packet.src_lc}")
            self.engine.schedule_in(
                delay,
                lambda: self._solicit_ingress(packet, plan, key, fault, src),
                label="dra:pdlu-before-eib",
            )
            return
        self._solicit_ingress(packet, plan, key, fault, src)

    def _solicit_ingress(self, packet, plan, key, fault, src) -> None:

        def with_stream(stream: CoverageStream | None) -> None:
            if stream is None:
                self._drop(packet, DropReason.NO_COVERAGE)
                return
            cover = stream.covering_lc
            assert cover is not None
            packet.hop(f"eib:LC{packet.src_lc}->LC{cover}[{fault.value}]")
            sent = self.protocol.send_on_stream(
                stream,
                packet.size_bytes,
                lambda: self._process_at(cover, packet, plan, entry_fault=fault),
                abort=lambda: self._drop(packet, DropReason.EIB_DOWN),
            )
            if not sent:
                self._drop(packet, DropReason.EIB_OVERLOAD)

        self.protocol.ensure_stream(
            key,
            packet.src_lc,
            self._stream_rate(packet.src_lc),
            with_stream,
            fault_kind=fault,
            protocol=src.protocol,
            fault_id=plan.ingress_fault_id,
        )

    def _process_at(
        self,
        lc_id: int,
        packet: Packet,
        plan: CoveragePlan,
        entry_fault: ComponentKind | None = None,
    ) -> None:
        """Protocol + segmentation + lookup processing at ``lc_id``.

        ``entry_fault`` marks which ingress stage failed at the source, so
        a covering LC starts exactly at that stage (PDLU fault -> start at
        its PDLU; SRU fault -> the source PDLU already ran, start at SRU).
        """
        lc = self.linecards[lc_id]
        now = self.engine.now
        delay = 0.0
        if lc.pdlu is not None and entry_fault in (None, ComponentKind.PDLU):
            if not lc.pdlu.healthy:
                self._drop(packet, DropReason.MID_FLIGHT_FAULT)
                return
            delay += lc.pdlu.serve(packet.size_bytes, now)
            packet.hop(f"pdlu@LC{lc_id}")
        if not lc.sru.healthy:
            self._drop(packet, DropReason.MID_FLIGHT_FAULT)
            return
        delay += lc.sru.serve(packet.size_bytes, now + delay)
        packet.hop(f"sru@LC{lc_id}")

        def after_processing() -> None:
            self._do_lookup(lc_id, packet, plan)

        self.engine.schedule_in(delay, after_processing, label="dra:process")

    def _do_lookup(self, lc_id: int, packet: Packet, plan: CoveragePlan) -> None:
        lc = self.linecards[lc_id]
        if plan.remote_lookup and lc_id == packet.src_lc:
            assert self.protocol is not None
            packet.hop(f"req_l@LC{lc_id}")

            def with_result(result: int | None) -> None:
                if result is None:
                    self._drop(packet, DropReason.NO_COVERAGE)
                    return
                packet.hop(f"rep_l->LC{result}")
                self._dispatch_egress(lc_id, packet, plan, result)

            self.protocol.request_lookup(lc_id, packet.dst_addr, with_result)
            return
        if not lc.lfe.healthy:
            self._drop(packet, DropReason.MID_FLIGHT_FAULT)
            return
        lc.lfe.serve(0, self.engine.now)
        hop = lc.table.lookup(packet.dst_addr)
        if hop is None:
            self._drop(packet, DropReason.NO_ROUTE)
            return
        packet.hop(f"lookup@LC{lc_id}->LC{hop}")
        self._dispatch_egress(lc_id, packet, plan, hop)

    def _dispatch_egress(
        self, from_lc: int, packet: Packet, plan: CoveragePlan, dst: int
    ) -> None:
        if plan.egress_mode is EgressMode.FABRIC:
            self._via_fabric(
                packet, dst, lambda: self._egress_fabric(packet, plan, dst),
                from_lc=from_lc,
            )
        elif plan.egress_mode is EgressMode.EIB_DIRECT:
            self._egress_eib_direct(from_lc, packet, plan, dst)
        else:
            self._egress_via_inter(from_lc, packet, plan, dst)

    # -- fabric leg ------------------------------------------------------------

    def _via_fabric(
        self,
        packet: Packet,
        dst: int,
        on_complete,
        from_lc: int | None = None,
    ) -> None:
        cells = segment(packet, dst)
        packet.hop(f"fabric->{dst}[{len(cells)} cells]")
        buffer = self.reassembly[dst]

        def cell_arrived(cell) -> None:
            buffer.add_cell(
                cell,
                on_complete,
                lambda reason: self._drop(packet, f"reassembly_{reason}"),
            )

        # The whole segmented packet enters the fabric as one scheduled
        # unit: one operational check and at most one cell-clock start.
        if not self.fabric.transfer_run(cells, dst, cell_arrived):
            self._drop(packet, DropReason.FABRIC_DOWN)

    def _egress_fabric(self, packet: Packet, plan: CoveragePlan, dst: int) -> None:
        lc = self.linecards[dst]
        if not lc.sru.healthy:
            self._drop(packet, DropReason.MID_FLIGHT_FAULT)
            return
        now = self.engine.now
        delay = lc.sru.serve(packet.size_bytes, now)
        packet.hop(f"sru@LC{dst}")
        if lc.pdlu is not None:
            if not lc.pdlu.healthy:
                self._drop(packet, DropReason.MID_FLIGHT_FAULT)
                return
            delay += lc.pdlu.serve(packet.size_bytes, now + delay)
            packet.hop(f"pdlu@LC{dst}")
        self._finish_at_piu(packet, dst, delay)

    # -- EIB egress legs (Case 3) -----------------------------------------------

    def _egress_eib_direct(
        self, from_lc: int, packet: Packet, plan: CoveragePlan, dst: int
    ) -> None:
        """Whole packet over the EIB straight to the faulty LC_out."""
        assert self.protocol is not None
        key = ("reverse", from_lc, dst)

        def with_stream(stream: CoverageStream | None) -> None:
            if stream is None:
                self._drop(packet, DropReason.NO_COVERAGE)
                return
            packet.hop(f"eib:LC{from_lc}->LC{dst}[direct]")
            sent = self.protocol.send_on_stream(
                stream,
                packet.size_bytes,
                lambda: self._egress_after_eib(packet, plan, dst),
                abort=lambda: self._drop(packet, DropReason.EIB_DOWN),
            )
            if not sent:
                self._drop(packet, DropReason.EIB_OVERLOAD)

        self.protocol.ensure_stream(
            key,
            from_lc,
            self._stream_rate(packet.src_lc),
            with_stream,
            rec_lc=dst,
            fault_id=plan.egress_fault_id,
        )

    def _egress_via_inter(
        self, from_lc: int, packet: Packet, plan: CoveragePlan, dst: int
    ) -> None:
        """Fabric to a same-protocol LC_inter, which finishes processing
        and relays the packet over the EIB to LC_out's PIU."""
        assert self.protocol is not None
        key = ("egress", dst, ComponentKind.PDLU)
        dst_protocol = self.linecards[dst].protocol

        def with_stream(stream: CoverageStream | None) -> None:
            if stream is None:
                self._drop(packet, DropReason.NO_COVERAGE)
                return
            inter = stream.covering_lc
            assert inter is not None

            def at_inter() -> None:
                lc = self.linecards[inter]
                if not (lc.sru.healthy and lc.pdlu is not None and lc.pdlu.healthy):
                    self._drop(packet, DropReason.MID_FLIGHT_FAULT)
                    return
                now = self.engine.now
                delay = lc.sru.serve(packet.size_bytes, now)
                delay += lc.pdlu.serve(packet.size_bytes, now + delay)
                packet.hop(f"inter@LC{inter}")

                def relay() -> None:
                    sent = self.protocol.send_on_stream(
                        stream,
                        packet.size_bytes,
                        lambda: self._egress_after_eib(packet, plan, dst),
                        abort=lambda: self._drop(packet, DropReason.EIB_DOWN),
                    )
                    if sent:
                        packet.hop(f"eib:LC{inter}->LC{dst}[inter]")
                    else:
                        self._drop(packet, DropReason.EIB_OVERLOAD)

                self.engine.schedule_in(delay, relay, label="dra:inter")

            self._via_fabric(packet, inter, at_inter, from_lc=from_lc)

        self.protocol.ensure_stream(
            key,
            from_lc,
            self._stream_rate(packet.src_lc),
            with_stream,
            fault_kind=ComponentKind.PDLU,
            protocol=dst_protocol,
            sender_is_coverer=True,
            fault_id=plan.egress_fault_id,
        )

    def _egress_after_eib(self, packet: Packet, plan: CoveragePlan, dst: int) -> None:
        """Arrival at LC_out over the EIB, entering past the failed unit."""
        lc = self.linecards[dst]
        delay = 0.0
        if plan.egress_fault is ComponentKind.SRU:
            # SRU bypassed; the (healthy) PDLU still runs.
            if lc.pdlu is not None:
                if not lc.pdlu.healthy:
                    self._drop(packet, DropReason.MID_FLIGHT_FAULT)
                    return
                delay += lc.pdlu.serve(packet.size_bytes, self.engine.now + delay)
                packet.hop(f"pdlu@LC{dst}")
        self._finish_at_piu(packet, dst, delay)

    def _finish_at_piu(self, packet: Packet, dst: int, extra_delay: float) -> None:
        lc = self.linecards[dst]
        if not lc.piu.healthy:
            self._drop(packet, DropReason.PIU_OUT)
            return
        delay = extra_delay + lc.piu.serve(
            packet.size_bytes, self.engine.now + extra_delay
        )
        self.engine.schedule_in(
            delay, lambda: self._deliver(packet, dst), label="dra:piu-out"
        )

    # -- terminal states ---------------------------------------------------------

    def _deliver(self, packet: Packet, dst: int) -> None:
        if packet.terminated:
            # e.g. straggler fabric cells completed a reassembly that a
            # flush already aborted; the packet was counted as dropped.
            return
        packet.terminated = True
        packet.delivered_at = self.engine.now
        packet.hop(f"out@LC{dst}")
        self.stats.delivered += 1
        self.stats.delivered_by_lc[dst] += 1
        self.stats.delivered_bytes_by_ingress[packet.src_lc] += packet.size_bytes
        self.stats.latency.add(packet.latency or 0.0)
        if any(h.startswith("eib:") or h.startswith("req_l") for h in packet.path):
            self.stats.covered_deliveries += 1

    def _drop(self, packet: Packet, reason: str) -> None:
        if packet.terminated:
            # A packet dies only once: a reassembly flush followed by the
            # straggler cells' timeout (or a mid-transfer fabric drop plus
            # the cells already in flight) must not inflate the drop count.
            return
        packet.terminated = True
        packet.hop(f"drop:{reason}")
        self.stats.drop(reason)
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "router.packet_drop",
                t=self.engine.now,
                pkt_id=packet.pkt_id,
                src_lc=packet.src_lc,
                dst_lc=packet.dst_lc,
                reason=reason,
            )

"""Crossbar switching fabric with redundant fabric cards.

Commercial routers make the fabric dependable through explicit sparing --
the paper cites the Cisco 12000's five fabric cards, four active plus one
1:4 spare -- and the dependability analysis accordingly treats the fabric
as always functional.  This model implements the sparing so the
assumption can be *exercised*: a card failure triggers an automatic
swap-in of the spare; only when active capacity falls below the configured
requirement does the fabric degrade (reduced cell rate), and the DES then
shows the service impact the analysis abstracts away.

Transfer model: one FIFO queue per output port drained at the port's cell
rate (a standard output-queued crossbar abstraction); the fabric is
non-blocking on inputs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.sim import Engine
from repro.router.packets import Cell

__all__ = ["FabricCard", "SwitchFabric"]


@dataclass
class FabricCard:
    """One switching-fabric card; ``active`` cards carry traffic."""

    card_id: int
    capacity_cells_per_s: float
    healthy: bool = True
    active: bool = True

    def fail(self) -> None:
        """Hard failure of the card."""
        self.healthy = False
        self.active = False

    def repair(self) -> None:
        """Replace the card; it returns as a standby spare."""
        self.healthy = True
        self.active = False


@dataclass
class _OutputPort:
    queue: deque = field(default_factory=deque)
    busy: bool = False
    delivered_cells: int = 0


class SwitchFabric:
    """Output-queued crossbar with 1:``n_active`` card sparing.

    Parameters
    ----------
    engine:
        Simulation engine for scheduling cell departures.
    n_ports:
        One port per linecard.
    port_rate_cells_per_s:
        Full-health drain rate of each output port.
    n_active_cards, n_spare_cards:
        Fabric card complement (default 4 + 1, the Cisco 12000 layout).
        Port rate scales with ``active_fraction`` when cards are lost
        beyond the spares.
    """

    def __init__(
        self,
        engine: Engine,
        n_ports: int,
        *,
        port_rate_cells_per_s: float = 25e6,
        n_active_cards: int = 4,
        n_spare_cards: int = 1,
    ) -> None:
        if n_ports < 1:
            raise ValueError(f"fabric needs at least one port, got {n_ports}")
        if n_active_cards < 1 or n_spare_cards < 0:
            raise ValueError("invalid fabric card complement")
        self._engine = engine
        self._ports = [_OutputPort() for _ in range(n_ports)]
        self._rate = port_rate_cells_per_s
        self._n_active_required = n_active_cards
        self.cards = [
            FabricCard(i, port_rate_cells_per_s / n_active_cards)
            for i in range(n_active_cards + n_spare_cards)
        ]
        for spare in self.cards[n_active_cards:]:
            spare.active = False
        self.swaps = 0  # spare activations, for stats

    @property
    def n_ports(self) -> int:
        """Number of fabric ports (one per LC)."""
        return len(self._ports)

    @property
    def active_fraction(self) -> float:
        """Fraction of required card capacity currently active (<= 1)."""
        active = sum(1 for c in self.cards if c.active and c.healthy)
        return min(1.0, active / self._n_active_required)

    @property
    def operational(self) -> bool:
        """True while any card capacity remains."""
        return self.active_fraction > 0.0

    def fail_card(self, card_id: int) -> None:
        """Fail a fabric card and swap in a spare when one is available."""
        self.cards[card_id].fail()
        self._activate_spares()

    def repair_card(self, card_id: int) -> None:
        """Repair a card (returns as standby, promoted if capacity short)."""
        self.cards[card_id].repair()
        self._activate_spares()

    def _activate_spares(self) -> None:
        active = sum(1 for c in self.cards if c.active and c.healthy)
        for card in self.cards:
            if active >= self._n_active_required:
                break
            if card.healthy and not card.active:
                card.active = True
                active += 1
                self.swaps += 1

    def transfer(
        self, cell: Cell, dst_port: int, on_delivered: Callable[[Cell], None]
    ) -> bool:
        """Enqueue ``cell`` for ``dst_port``; False when the fabric is dead.

        ``on_delivered`` fires when the cell finishes crossing, after
        queueing plus the (possibly degraded) serialization delay.
        """
        if not self.operational:
            return False
        if not 0 <= dst_port < len(self._ports):
            raise ValueError(f"destination port {dst_port} out of range")
        port = self._ports[dst_port]
        port.queue.append((cell, on_delivered))
        if not port.busy:
            self._drain(dst_port)
        return True

    def _drain(self, port_idx: int) -> None:
        port = self._ports[port_idx]
        if not port.queue:
            port.busy = False
            return
        port.busy = True
        cell, callback = port.queue.popleft()
        rate = self._rate * self.active_fraction
        if rate <= 0.0:
            # Fabric died with cells in flight: drop the queue.
            port.queue.clear()
            port.busy = False
            return
        delay = 1.0 / rate

        def finish() -> None:
            port.delivered_cells += 1
            callback(cell)
            self._drain(port_idx)

        self._engine.schedule_in(delay, finish, label=f"fabric:port{port_idx}")

    def queue_depth(self, port_idx: int) -> int:
        """Cells waiting at an output port (diagnostics)."""
        return len(self._ports[port_idx].queue)

    def delivered_cells(self, port_idx: int) -> int:
        """Cells delivered through an output port so far."""
        return self._ports[port_idx].delivered_cells

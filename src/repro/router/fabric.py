"""Crossbar switching fabric with redundant fabric cards.

Commercial routers make the fabric dependable through explicit sparing --
the paper cites the Cisco 12000's five fabric cards, four active plus one
1:4 spare -- and the dependability analysis accordingly treats the fabric
as always functional.  This model implements the sparing so the
assumption can be *exercised*: a card failure triggers an automatic
swap-in of the spare; only when active capacity falls below the configured
requirement does the fabric degrade (reduced cell rate), and the DES then
shows the service impact the analysis abstracts away.

Transfer model: one FIFO queue per output port drained at the port's cell
rate (a standard output-queued crossbar abstraction); the fabric is
non-blocking on inputs.

Cell-clock dispatch comes in two flavours, mirroring the Monte Carlo
kernels' ``method=`` switch (``docs/performance.md``):

* ``cell_dispatch="scalar"`` -- the reference oracle: every cell crossing
  a port schedules its own heap event, exactly the original per-cell
  clock.
* ``cell_dispatch="batched"`` (default) -- a run of queued cells is
  driven by one :meth:`~repro.sim.Engine.schedule_run` burst whose
  per-cell callbacks fire at their computed timestamps inside it.  The
  effective rate is re-read at every cell boundary -- the same instant
  the scalar clock reads it -- so a mid-run ``active_fraction`` change
  (card fail/repair/spare swap) splits the burst onto the new rate with
  timestamps bit-identical to the scalar reference.

Both dispatchers read the cached ``_fraction`` maintained by
:meth:`fail_card` / :meth:`repair_card`; card-health changes must go
through those methods for the data path to see them.  The only
observable difference between the modes is queue accounting granularity:
the scalar clock holds the in-service cell outside the queue while the
batched clock pops at delivery, so ``queue_depth`` can differ by one
mid-flight.  Delivery timestamps, trace events, drop accounting and
counters are bit-identical (``tests/router/test_fabric_dispatch.py``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Engine
from repro.router.packets import Cell

__all__ = ["FabricCard", "SwitchFabric", "CELL_DISPATCH_MODES"]

#: Recognised cell-clock dispatch modes (``scalar`` is the oracle).
CELL_DISPATCH_MODES = ("batched", "scalar")


@dataclass
class FabricCard:
    """One switching-fabric card; ``active`` cards carry traffic."""

    card_id: int
    capacity_cells_per_s: float
    healthy: bool = True
    active: bool = True

    def fail(self) -> None:
        """Hard failure of the card."""
        self.healthy = False
        self.active = False

    def repair(self) -> None:
        """Replace the card; it returns as a standby spare."""
        self.healthy = True
        self.active = False


@dataclass
class _OutputPort:
    queue: deque = field(default_factory=deque)
    busy: bool = False
    delivered_cells: int = 0
    dropped_cells: int = 0


class SwitchFabric:
    """Output-queued crossbar with 1:``n_active`` card sparing.

    Parameters
    ----------
    engine:
        Simulation engine for scheduling cell departures.
    n_ports:
        One port per linecard.
    port_rate_cells_per_s:
        Full-health drain rate of each output port.
    n_active_cards, n_spare_cards:
        Fabric card complement (default 4 + 1, the Cisco 12000 layout).
        Port rate scales with ``active_fraction`` when cards are lost
        beyond the spares.
    cell_dispatch:
        ``"batched"`` (one burst event per run of queued cells) or
        ``"scalar"`` (one heap event per cell, the reference oracle).
    """

    def __init__(
        self,
        engine: Engine,
        n_ports: int,
        *,
        port_rate_cells_per_s: float = 25e6,
        n_active_cards: int = 4,
        n_spare_cards: int = 1,
        cell_dispatch: str = "batched",
    ) -> None:
        if n_ports < 1:
            raise ValueError(f"fabric needs at least one port, got {n_ports}")
        if n_active_cards < 1 or n_spare_cards < 0:
            raise ValueError("invalid fabric card complement")
        if cell_dispatch not in CELL_DISPATCH_MODES:
            raise ValueError(
                f"unknown cell_dispatch {cell_dispatch!r}; "
                f"choose from {CELL_DISPATCH_MODES}"
            )
        self._engine = engine
        self._ports = [_OutputPort() for _ in range(n_ports)]
        self._rate = port_rate_cells_per_s
        self._n_active_required = n_active_cards
        self.cell_dispatch = cell_dispatch
        self.cards = [
            FabricCard(i, port_rate_cells_per_s / n_active_cards)
            for i in range(n_active_cards + n_spare_cards)
        ]
        for spare in self.cards[n_active_cards:]:
            spare.active = False
        self.swaps = 0  # spare activations, for stats
        #: cached ``active_fraction``, refreshed by fail/repair; both
        #: dispatchers read this at every cell boundary.
        self._fraction = self.active_fraction

    @property
    def n_ports(self) -> int:
        """Number of fabric ports (one per LC)."""
        return len(self._ports)

    @property
    def active_fraction(self) -> float:
        """Fraction of required card capacity currently active (<= 1)."""
        active = sum(1 for c in self.cards if c.active and c.healthy)
        return min(1.0, active / self._n_active_required)

    @property
    def operational(self) -> bool:
        """True while any card capacity remains."""
        return self._fraction > 0.0

    def fail_card(self, card_id: int) -> None:
        """Fail a fabric card and swap in a spare when one is available."""
        self.cards[card_id].fail()
        self._activate_spares()
        self._fraction = self.active_fraction

    def repair_card(self, card_id: int) -> None:
        """Repair a card (returns as standby, promoted if capacity short)."""
        self.cards[card_id].repair()
        self._activate_spares()
        self._fraction = self.active_fraction

    def _activate_spares(self) -> None:
        active = sum(1 for c in self.cards if c.active and c.healthy)
        for card in self.cards:
            if active >= self._n_active_required:
                break
            if card.healthy and not card.active:
                card.active = True
                active += 1
                self.swaps += 1

    def transfer(
        self, cell: Cell, dst_port: int, on_delivered: Callable[[Cell], None]
    ) -> bool:
        """Enqueue ``cell`` for ``dst_port``; False when the fabric is dead.

        ``on_delivered`` fires when the cell finishes crossing, after
        queueing plus the (possibly degraded) serialization delay.
        """
        if not self.operational:
            return False
        if not 0 <= dst_port < len(self._ports):
            raise ValueError(f"destination port {dst_port} out of range")
        port = self._ports[dst_port]
        port.queue.append((cell, on_delivered))
        if not port.busy:
            self._begin(dst_port)
        return True

    def transfer_run(
        self,
        cells: Iterable[Cell],
        dst_port: int,
        on_delivered: Callable[[Cell], None],
    ) -> bool:
        """Enqueue a run of cells for ``dst_port`` as one scheduled unit.

        The run-batched counterpart of per-cell :meth:`transfer`: one
        operational check, one queue extension and at most one clock
        start for the whole run (a segmented packet's cells enter the
        fabric together).  Synchronously equivalent to calling
        :meth:`transfer` per cell -- the fabric cannot die between the
        iterations of a same-instant loop.
        """
        if not self.operational:
            return False
        if not 0 <= dst_port < len(self._ports):
            raise ValueError(f"destination port {dst_port} out of range")
        port = self._ports[dst_port]
        append = port.queue.append
        for cell in cells:
            append((cell, on_delivered))
        if not port.busy and port.queue:
            self._begin(dst_port)
        return True

    def _begin(self, port_idx: int) -> None:
        """Start the configured cell clock on an idle, non-empty port."""
        if self.cell_dispatch == "batched":
            self._start_run(port_idx)
        else:
            self._drain(port_idx)

    # -- scalar dispatch: one heap event per cell (the reference oracle) ----

    def _drain(self, port_idx: int) -> None:
        port = self._ports[port_idx]
        if not port.queue:
            port.busy = False
            return
        port.busy = True
        rate = self._rate * self._fraction
        if rate <= 0.0:
            # Fabric died with cells in flight: the queue is dropped,
            # with the loss accounted (metric, trace event, counters).
            self._drop_queue(port_idx)
            return
        cell, callback = port.queue.popleft()
        delay = 1.0 / rate

        def finish() -> None:
            port.delivered_cells += 1
            callback(cell)
            self._drain(port_idx)

        self._engine.schedule_in(delay, finish, label=f"fabric:port{port_idx}")

    # -- batched dispatch: one burst run per run of queued cells ------------

    def _start_run(self, port_idx: int) -> None:
        port = self._ports[port_idx]
        port.busy = True
        engine = self._engine
        queue = port.queue
        rate = self._rate * self._fraction

        def step() -> float | None:
            cell, callback = queue.popleft()
            port.delivered_cells += 1
            callback(cell)
            if not queue:
                port.busy = False
                return None
            # Re-read the effective rate at the cell boundary -- the
            # same instant the scalar clock reads it -- so a mid-run
            # active_fraction change splits the burst onto the new rate.
            rate = self._rate * self._fraction
            if rate <= 0.0:
                self._drop_queue(port_idx)
                return None
            return engine.now + 1.0 / rate

        engine.schedule_run(
            engine.now + 1.0 / rate, step, label=f"fabric:port{port_idx}"
        )

    def _drop_queue(self, port_idx: int) -> None:
        """Drop every queued cell of a port on a dead fabric, accounted."""
        port = self._ports[port_idx]
        n = len(port.queue)
        port.queue.clear()
        port.busy = False
        if n == 0:
            return
        port.dropped_cells += n
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("fabric.cells_dropped").inc(n)
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "fabric.drop", t=self._engine.now, port=port_idx, cells=n
            )

    def queue_depth(self, port_idx: int) -> int:
        """Cells waiting at an output port (diagnostics)."""
        return len(self._ports[port_idx].queue)

    def delivered_cells(self, port_idx: int) -> int:
        """Cells delivered through an output port so far."""
        return self._ports[port_idx].delivered_cells

    def dropped_cells(self, port_idx: int) -> int:
        """Cells dropped at an output port by fabric death so far."""
        return self._ports[port_idx].dropped_cells

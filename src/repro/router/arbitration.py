"""The distributed data-line arbiter of Section 4.

Every LC mirrors three counters:

* ``Ctr_id`` -- the LC's assigned logical-path ID (unique, dense, assigned
  in LP-establishment completion order: the first LP gets 1, the next 2, ...);
* ``Ctr_beta`` -- the number of LPs currently sharing the data lines;
* ``Ctr_r`` -- the round counter; all copies move in lockstep because they
  are driven by two broadcast control lines: ``L_t`` ("turn finished",
  decrements every ``Ctr_r``) and ``L_p`` ("round exhausted", raised when
  ``Ctr_r`` hits zero, reloading every copy with ``beta``).

An LC transmits exactly when ``Ctr_r == Ctr_id``.  Consequences (all
asserted in tests):

* turn order within a round is descending ID -- "the most recently added
  requesting LC has its first turn";
* every LP gets exactly one turn per round (round-robin fairness);
* on release of the LP with ID ``id_o`` (announced inside REL_D), ``beta``
  decrements and every ID greater than ``id_o`` shifts down by one, keeping
  the ID space dense.

The class keeps one counter copy per participating LC and exposes
:meth:`check_coherence` verifying that all mirrors agree -- the property
the paper's broadcast lines are designed to maintain.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LCCounters", "DistributedArbiter", "ArbitrationError"]


class ArbitrationError(RuntimeError):
    """Raised on protocol violations (double release, unknown LC, ...)."""


@dataclass
class LCCounters:
    """One LC's mirrored counter set."""

    ctr_id: int | None = None  # None when this LC holds no LP
    ctr_beta: int = 0
    ctr_r: int = 0


class DistributedArbiter:
    """Counter-based round-robin TDM arbiter over the EIB data lines."""

    def __init__(self, lc_ids: list[int]) -> None:
        if len(set(lc_ids)) != len(lc_ids):
            raise ArbitrationError("duplicate LC ids")
        self._counters = {lc: LCCounters() for lc in lc_ids}
        self.rounds_completed = 0
        self.turns_taken = 0

    # -- introspection -------------------------------------------------------

    def _any(self) -> LCCounters:
        """Any mirror (they agree on ``ctr_beta``/``ctr_r`` by construction)."""
        return next(iter(self._counters.values()))

    @property
    def beta(self) -> int:
        """Current number of LPs sharing the data lines."""
        return self._any().ctr_beta

    @property
    def round_counter(self) -> int:
        """The global ``Ctr_r`` value (all mirrors agree)."""
        return self._any().ctr_r

    def counters(self, lc_id: int) -> LCCounters:
        """The mirrored counter set at ``lc_id``."""
        try:
            return self._counters[lc_id]
        except KeyError:
            raise ArbitrationError(f"LC {lc_id} is not on this bus") from None

    def holder_of(self, lp_ordinal: int) -> int | None:
        """LC currently holding the given LP ID, or ``None``."""
        for lc, c in self._counters.items():
            if c.ctr_id == lp_ordinal:
                return lc
        return None

    def participants(self) -> list[int]:
        """LCs currently holding an LP, in ascending ID order."""
        holders = [
            (c.ctr_id, lc) for lc, c in self._counters.items() if c.ctr_id is not None
        ]
        return [lc for _id, lc in sorted(holders)]

    def check_coherence(self) -> None:
        """Assert all mirrored ``Ctr_beta`` / ``Ctr_r`` copies agree and the
        ID space is exactly ``{1, ..., beta}``."""
        betas = {c.ctr_beta for c in self._counters.values()}
        rounds = {c.ctr_r for c in self._counters.values()}
        if len(betas) != 1 or len(rounds) != 1:
            raise ArbitrationError(
                f"counter mirrors diverged: betas={betas}, rounds={rounds}"
            )
        ids = sorted(
            c.ctr_id for c in self._counters.values() if c.ctr_id is not None
        )
        beta = betas.pop()
        if ids != list(range(1, beta + 1)):
            raise ArbitrationError(f"ID space {ids} not dense over beta={beta}")

    # -- protocol operations ---------------------------------------------------

    def establish(self, lc_id: int) -> int:
        """Complete LP establishment for ``lc_id``; returns the assigned ID.

        Mirrors Section 4's assignment sequence: ``Ctr_id <- beta + 1``,
        ``Ctr_r <- beta + 1`` (the newcomer leads the next round), then
        ``beta`` incremented everywhere.
        """
        c = self.counters(lc_id)
        if c.ctr_id is not None:
            raise ArbitrationError(f"LC {lc_id} already holds LP id {c.ctr_id}")
        new_id = self.beta + 1
        c.ctr_id = new_id
        for mirror in self._counters.values():
            mirror.ctr_beta = new_id
            mirror.ctr_r = new_id
        return new_id

    def release(self, lc_id: int) -> int:
        """Release ``lc_id``'s LP (the REL_D announcement); returns the
        freed ID ``id_o``.  IDs above ``id_o`` compact down by one."""
        c = self.counters(lc_id)
        if c.ctr_id is None:
            raise ArbitrationError(f"LC {lc_id} holds no LP to release")
        id_o = c.ctr_id
        c.ctr_id = None
        for mirror in self._counters.values():
            mirror.ctr_beta -= 1
            if mirror.ctr_id is not None and mirror.ctr_id > id_o:
                mirror.ctr_id -= 1
        # Keep the round counter meaningful: positions above id_o shifted.
        new_beta = self.beta
        for mirror in self._counters.values():
            if mirror.ctr_r > id_o:
                mirror.ctr_r -= 1
            if mirror.ctr_r > new_beta or (mirror.ctr_r == 0 and new_beta > 0):
                mirror.ctr_r = new_beta
        return id_o

    def current_turn(self) -> int | None:
        """LC whose turn it is (``Ctr_r == Ctr_id``); ``None`` when idle."""
        if self.beta == 0:
            return None
        r = self.round_counter
        return self.holder_of(r)

    def finish_turn(self, lc_id: int) -> None:
        """The transmitting LC lowers ``L_t``: all ``Ctr_r`` decrement; a
        zero raises ``L_p``, reloading every ``Ctr_r`` with ``beta``."""
        turn = self.current_turn()
        if turn != lc_id:
            raise ArbitrationError(
                f"LC {lc_id} finished a turn it does not hold (turn={turn})"
            )
        self.turns_taken += 1
        for mirror in self._counters.values():
            mirror.ctr_r -= 1
        if self.round_counter == 0:
            self.rounds_completed += 1
            beta = self.beta
            for mirror in self._counters.values():
                mirror.ctr_r = beta

"""Pluggable coverage policies (planner v2): static vs adaptive LC_inter
selection.

The paper's covering-LC selection (Section 3.2, Cases 1-3) is static and
first-fit: every able candidate schedules a ``REP_D`` and the winner is
whichever reply hits the control lines first, in slot-rank order
(:meth:`repro.router.protocol.EIBProtocol._schedule_reply`).  That is
faithful to the 2004 design but blind to load, health history and
concurrent faults -- under multi-fault schedules every solicitation
piles onto the lowest-ranked candidate until its headroom runs dry.

This module makes the selection *policy* pluggable:

* :class:`StaticPolicy` (the default) reproduces the paper's rank-based
  contention resolution bit for bit -- same delay formula, same RNG
  draws, same winner -- so every pre-existing artifact (chaos campaign
  JSON, ``BENCH_validate.json``) is unchanged;
* :class:`AdaptivePolicy` scores each candidate on its *own* locally
  observable state -- reserved-rate headroom after the hypothetical
  reservation, coverage streams it already carries, and a decayed
  fault-activation history (the flap-rate signal of the PR 7 health
  scorecards) -- and maps the score onto the reply delay, so the
  collision-arbitrated acceptance naturally elects the best-scoring
  candidate.  It also enables *online replanning* (re-solicit on
  FLT_N/FLT_C news with exponential backoff + jitter instead of the
  fixed retry cooldown) and *fair graceful degradation* (proportional
  rate shedding across streams when aggregate coverage demand exceeds
  the EIB data capacity) inside the protocol engine.

Scoring stays distributed-plausible: a candidate consults only
quantities its own maintenance processor knows (its headroom, its
active coverage duty, the fault history it has witnessed), never a
global view.  The policy object is shared across the router's LCs
purely as an implementation convenience.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.router.linecard import Linecard

__all__ = [
    "CoveragePolicy",
    "StaticPolicy",
    "AdaptivePolicy",
    "POLICY_NAMES",
    "make_policy",
]

#: Registered policy names (the ``--coverage-policy`` CLI choices).
POLICY_NAMES = ("static", "adaptive")

#: Base reply delay shared by both policies (carrier turnaround).
_REPLY_BASE_S = 0.5e-6
#: Per-rank reply spacing of the paper's static slot-rank resolution.
_STATIC_STEP_S = 2e-6
#: Static tie-break jitter bound.
_STATIC_JITTER_S = 0.4e-6
#: Adaptive policy: full score span maps onto this delay range.
_ADAPTIVE_SPAN_S = 8e-6
#: Adaptive tie-break jitter bound (small against the score span).
_ADAPTIVE_JITTER_S = 0.2e-6


class CoveragePolicy:
    """Base coverage policy: how candidates contend, whether the
    protocol engine replans and degrades.

    Subclasses override :meth:`reply_delay` (the contention-resolution
    delay a candidate waits before sending its ``REP_D``) and the
    feature flags.  :meth:`bind` is called once by the protocol engine
    to hand the policy its read-only world references.
    """

    name = "static"
    #: re-solicit on fault news / failed solicitations with backoff
    #: instead of waiting for the protocol's fixed retry cooldown
    replans = False
    #: proportional rate shedding when coverage demand exceeds the EIB
    #: data capacity (instead of first-come-first-served stream failure)
    degrades = False
    #: backoff schedule for replanned solicitations (when ``replans``)
    replan_base_s = 50e-6
    replan_jitter_s = 10e-6
    replan_max_attempts = 6

    def __init__(self) -> None:
        self._lcs: dict[int, Linecard] = {}
        self._coverage_load: Callable[[int], tuple[int, float]] = lambda lc: (0, 0.0)
        self._clock: Callable[[], float] = lambda: 0.0

    def bind(
        self,
        linecards: dict[int, Linecard],
        coverage_load: Callable[[int], tuple[int, float]],
        clock: Callable[[], float],
    ) -> None:
        """Wire the policy to one protocol engine's world.

        ``coverage_load(lc_id)`` returns ``(n_streams, reserved_bps)``
        of the coverage duty the LC currently carries; ``clock`` is the
        simulation clock (used by health-history decay).
        """
        self._lcs = linecards
        self._coverage_load = coverage_load
        self._clock = clock

    def reply_delay(
        self,
        me: int,
        requester: int,
        n_stations: int,
        rate_bps: float,
        rng: np.random.Generator,
    ) -> float:
        """Delay before candidate ``me`` answers a broadcast ``REQ_D``."""
        raise NotImplementedError

    # -- health-history hooks (no-ops for the static policy) ---------------

    def observe_fault(self, lc_id: int, now: float) -> None:
        """A fault activated at ``lc_id`` (one call per activation/flap)."""

    def observe_repair(self, lc_id: int, now: float) -> None:
        """A fault at ``lc_id`` was repaired or auto-cleared."""


class StaticPolicy(CoveragePolicy):
    """The paper's first-fit slot-rank contention resolution.

    Bit-identical to the pre-policy protocol engine: the delay formula
    and the single ``rng.uniform`` draw per reply are exactly the ones
    the engine used inline, so with this policy (the default) every
    seeded artifact reproduces byte for byte.
    """

    name = "static"

    def reply_delay(
        self,
        me: int,
        requester: int,
        n_stations: int,
        rate_bps: float,
        rng: np.random.Generator,
    ) -> float:
        # Rank-based contention resolution: the candidate "closest" (in
        # slot order) to the requester replies first; the others' timers
        # are spaced far enough apart that hearing the winning reply
        # cancels them before they fire.  A small random term breaks the
        # remaining ties; CSMA/CD handles true collisions.
        rank = (me - requester) % max(n_stations, 1)
        return (
            _REPLY_BASE_S
            + _STATIC_STEP_S * rank
            + float(rng.uniform(0.0, _STATIC_JITTER_S))
        )


class AdaptivePolicy(CoveragePolicy):
    """Load/health-aware LC_inter selection with replanning and fair
    degradation.

    Each candidate computes a score in ``[0, 1]`` from three locally
    observable signals and waits ``(1 - score)`` of the delay span, so
    the best-scoring candidate's ``REP_D`` wins the wire:

    * **headroom** -- spare capacity *after* the hypothetical
      reservation, as a fraction of the card's line rate.  A nearly
      full card volunteers late;
    * **spread** -- ``1 / (1 + active coverage streams)``.  Under
      multi-fault, a card already standing in for one neighbour backs
      off so coverage spreads instead of piling onto the lowest slot;
    * **health** -- ``1 / (1 + decayed fault-activation count)``.  Each
      activation (including every intermittent flap) adds one unit that
      decays exponentially with ``health_decay_s``, penalising flapping
      or recently-faulty cards the way the PR 7 scorecard flap rate
      does.

    The weights favour headroom (the hard resource) over health over
    spread.  Scores only *order* candidates -- they never veto: when
    every candidate is flapping and loaded, the least-bad one still
    replies first, so the policy cannot deadlock a solicitation.
    """

    name = "adaptive"
    replans = True
    degrades = True

    #: decay time-constant of the fault-activation history (sim seconds;
    #: sized for the accelerated chaos clock where repairs take ~50 us)
    health_decay_s: float

    _W_HEADROOM = 0.5
    _W_HEALTH = 0.3
    _W_SPREAD = 0.2

    def __init__(self, *, health_decay_s: float = 1e-3) -> None:
        super().__init__()
        if health_decay_s <= 0.0:
            raise ValueError(f"health_decay_s must be positive, got {health_decay_s}")
        self.health_decay_s = health_decay_s
        #: per-LC decayed activation count + its last-update timestamp.
        self._flap: dict[int, tuple[float, float]] = {}

    # -- health history -----------------------------------------------------

    def _decayed(self, lc_id: int, now: float) -> float:
        count, at = self._flap.get(lc_id, (0.0, now))
        if now <= at:
            return count
        return count * float(np.exp(-(now - at) / self.health_decay_s))

    def observe_fault(self, lc_id: int, now: float) -> None:
        self._flap[lc_id] = (self._decayed(lc_id, now) + 1.0, now)

    def observe_repair(self, lc_id: int, now: float) -> None:
        # Repairs do not erase history: a flapping card that repairs
        # fast still looks restless.  Refresh the decay anchor only.
        if lc_id in self._flap:
            self._flap[lc_id] = (self._decayed(lc_id, now), now)

    def flap_score(self, lc_id: int) -> float:
        """Decayed activation count at the current clock (observability)."""
        return self._decayed(lc_id, self._clock())

    # -- scoring ------------------------------------------------------------

    def score(self, me: int, rate_bps: float) -> float:
        """Candidate fitness in [0, 1]; higher replies earlier."""
        lc = self._lcs[me]
        headroom = max(0.0, lc.headroom_bps - rate_bps) / lc.capacity_bps
        n_streams, _rate = self._coverage_load(me)
        spread = 1.0 / (1.0 + n_streams)
        health = 1.0 / (1.0 + self.flap_score(me))
        return (
            self._W_HEADROOM * headroom
            + self._W_HEALTH * health
            + self._W_SPREAD * spread
        )

    def reply_delay(
        self,
        me: int,
        requester: int,
        n_stations: int,
        rate_bps: float,
        rng: np.random.Generator,
    ) -> float:
        del requester, n_stations  # score replaces slot rank entirely
        score = self.score(me, rate_bps)
        return (
            _REPLY_BASE_S
            + _ADAPTIVE_SPAN_S * (1.0 - score)
            + float(rng.uniform(0.0, _ADAPTIVE_JITTER_S))
        )


def make_policy(name: str) -> CoveragePolicy:
    """Instantiate a registered policy by name.

    >>> make_policy("static").name
    'static'
    >>> make_policy("adaptive").replans
    True
    """
    if name == "static":
        return StaticPolicy()
    if name == "adaptive":
        return AdaptivePolicy()
    raise ValueError(f"unknown coverage policy {name!r} (choose from {POLICY_NAMES})")

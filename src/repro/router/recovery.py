"""Fault map and coverage planning (Section 3.2's Cases 1-3).

:class:`FaultMap` is the ground-truth registry of which components are
down.  In hardware each LC maintains its own copy via the
processing-tier parameters of the control packets; by default the model
keeps one authoritative map and treats dissemination as instantaneous.
With the detection layer enabled (:mod:`repro.chaos.detection`), the
planner instead consults per-LC :class:`~repro.chaos.detection.LocalFaultView`
objects that converge only after self-test latency plus FLT_N/HB
dissemination over the CSMA/CD control lines -- see
:meth:`CoveragePlanner.set_views`.

:class:`CoveragePlanner` turns (packet, fault map) into a
:class:`CoveragePlan` describing how the packet must move: which side
needs EIB coverage, whether the lookup is remote, and how the egress leg
reaches a faulty destination (direct EIB from the source, or fabric to an
LC_inter that finishes processing and relays over the EIB).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.router.components import ComponentKind
from repro.router.linecard import Linecard
from repro.router.packets import Packet

__all__ = ["FaultMap", "CoveragePlan", "CoveragePlanner", "EgressMode", "DropReason"]


class FaultMap:
    """Shared registry of failed components per LC plus EIB state."""

    def __init__(self) -> None:
        #: per-LC map of failed kind -> fault_id of the causing fault
        #: (``None`` when the caller did not thread a correlation id).
        self._failed: dict[int, dict[ComponentKind, int | None]] = {}
        self.eib_healthy = True
        #: optional simulation-clock callable used to timestamp trace
        #: events (wired by :class:`~repro.router.router.Router`).
        self.clock: Callable[[], float] | None = None

    def _now(self) -> float | None:
        return self.clock() if self.clock is not None else None

    def mark_failed(
        self, lc_id: int, kind: ComponentKind, fault_id: int | None = None
    ) -> None:
        """Record a component failure (``fault_id`` correlates its events)."""
        self._failed.setdefault(lc_id, {})[kind] = fault_id
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("recovery.faults_marked").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "recovery.fault_mark",
                t=self._now(),
                lc=lc_id,
                component=kind.value,
                fault_id=fault_id,
            )

    def mark_repaired(self, lc_id: int, kind: ComponentKind) -> None:
        """Clear a component failure.

        The LC's entry is pruned once its last fault clears, keeping the
        map O(active faults) over long flapping campaigns instead of
        accumulating empty sets for every LC that ever failed.
        """
        faults = self._failed.get(lc_id)
        fault_id = None
        if faults is not None:
            fault_id = faults.pop(kind, None)
            if not faults:
                del self._failed[lc_id]
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("recovery.faults_repaired").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "recovery.fault_clear",
                t=self._now(),
                lc=lc_id,
                component=kind.value,
                fault_id=fault_id,
            )

    def failed_at(self, lc_id: int) -> set[ComponentKind]:
        """Failed component kinds at ``lc_id``."""
        return set(self._failed.get(lc_id, {}))

    def fault_id_of(self, lc_id: int, kind: ComponentKind) -> int | None:
        """Correlation id of the live fault at (``lc_id``, ``kind``), if any."""
        return self._failed.get(lc_id, {}).get(kind)

    def is_failed(self, lc_id: int, kind: ComponentKind) -> bool:
        """True when the given unit is currently down."""
        return kind in self._failed.get(lc_id, {})

    def any_failed(self, lc_id: int) -> bool:
        """True when any unit of the LC is down."""
        return bool(self._failed.get(lc_id))

    def active_faults(self) -> dict[int, set[ComponentKind]]:
        """Copy of the live fault registry (for views and invariants)."""
        return {lc: set(kinds) for lc, kinds in self._failed.items()}

    def is_compact(self) -> bool:
        """True when no LC entry is an empty leftover set (see
        :meth:`mark_repaired`); checked by the chaos invariants."""
        return all(self._failed.values())


class EgressMode(enum.Enum):
    """How a packet reaches its outgoing LC."""

    FABRIC = "fabric"          # healthy path: cells over the crossbar
    EIB_DIRECT = "eib-direct"  # whole packet over the EIB straight to LC_out
    EIB_VIA_INTER = "eib-via-inter"  # fabric to LC_inter, then EIB to LC_out


class DropReason:
    """Canonical drop-reason strings (kept together for test assertions)."""

    PIU_IN = "piu_in_failed"
    PIU_OUT = "piu_out_failed"
    BDR_LC_DOWN_IN = "bdr_ingress_lc_down"
    BDR_LC_DOWN_OUT = "bdr_egress_lc_down"
    NO_COVERAGE = "no_coverage"
    EIB_DOWN = "eib_down"
    BUS_CONTROLLER = "bus_controller_failed"
    NO_ROUTE = "no_route"
    FABRIC_DOWN = "fabric_down"
    EIB_OVERLOAD = "eib_overload"
    COMPOUND_FAULT = "uncovered_compound_fault"
    MID_FLIGHT_FAULT = "component_failed_mid_flight"


@dataclass
class CoveragePlan:
    """The planner's decision for one packet.

    ``None`` fields mean "not needed".  ``drop`` short-circuits the whole
    pipeline with the recorded reason.
    """

    drop: str | None = None
    #: fault kind at the ingress LC needing a covering LC (PDLU or SRU)
    ingress_fault: ComponentKind | None = None
    #: ingress lookup must be served remotely over REQ_L/REP_L
    remote_lookup: bool = False
    egress_mode: EgressMode = EgressMode.FABRIC
    #: fault kind at the egress LC being covered (PDLU or SRU), if any
    egress_fault: ComponentKind | None = None
    #: correlation ids of the faults this plan responds to, as known by
    #: the planning view (``None`` when the view has no id, e.g. a
    #: belief learned before the fault was ever correlated)
    ingress_fault_id: int | None = None
    egress_fault_id: int | None = None
    lookup_fault_id: int | None = None

    @property
    def fault_ids(self) -> list[int]:
        """Sorted distinct correlation ids the plan covers."""
        return sorted(
            {
                fid
                for fid in (
                    self.ingress_fault_id,
                    self.egress_fault_id,
                    self.lookup_fault_id,
                )
                if fid is not None
            }
        )

    @property
    def uses_eib(self) -> bool:
        """True when any leg of the plan rides the EIB."""
        return (
            self.ingress_fault is not None
            or self.remote_lookup
            or self.egress_mode is not EgressMode.FABRIC
        )

    @property
    def case_tags(self) -> list[str]:
        """Section 3.2 case labels this plan exercises.

        ``case1`` -- remote lookup service (lone LFE fault, REQ_L/REP_L);
        ``case2`` -- ingress-side coverage stream to an LC_inter;
        ``case3`` -- egress-side EIB leg (direct or via LC_inter).
        """
        tags = []
        if self.remote_lookup:
            tags.append("case1")
        if self.ingress_fault is not None:
            tags.append("case2")
        if self.egress_mode is not EgressMode.FABRIC:
            tags.append("case3")
        return tags


class CoveragePlanner:
    """Derives per-packet coverage plans from the fault map.

    The planner implements exactly the cases the paper enumerates
    (Section 3.2).  Fault *combinations* that would require chaining two
    covering LCs on both sides of the fabric are outside the paper's
    model (its analysis assumption 1 explicitly excludes multi-LC_inter
    chains) and are dropped with :data:`DropReason.COMPOUND_FAULT`.
    """

    def __init__(self, linecards: dict[int, Linecard], faults: FaultMap) -> None:
        self._lcs = linecards
        self._faults = faults
        self._views: dict[int, object] | None = None
        #: optional simulation-clock callable for trace timestamps.
        self.clock: Callable[[], float] | None = None

    def set_views(self, views: dict[int, object] | None) -> None:
        """Switch planning from the oracle map to per-LC fault views.

        ``views`` maps each LC id to an object exposing the FaultMap read
        API (``failed_at`` at minimum); packets are then planned from the
        *ingress* LC's possibly-stale view, which is what opens the
        detection-latency window the chaos campaigns measure.  Pass
        ``None`` to restore oracle planning.
        """
        self._views = views

    def _map_for(self, lc_id: int):
        if self._views is None:
            return self._faults
        return self._views[lc_id]

    def plan(self, packet: Packet) -> CoveragePlan:
        """Build the coverage plan for ``packet`` under the current faults.

        Non-trivial plans (any EIB leg, or a drop decision) are emitted to
        the active tracer as ``coverage.plan`` events carrying the
        Section 3.2 case tags; healthy fabric-only plans stay untraced to
        bound trace volume on fault-free traffic.
        """
        plan = self._plan(packet)
        if plan.drop is not None or plan.uses_eib:
            if _metrics.REGISTRY is not None:
                reg = _metrics.REGISTRY
                for tag in plan.case_tags:
                    reg.counter(f"coverage.plans.{tag}").inc()
                if plan.drop is not None:
                    reg.counter("coverage.plans.dropped").inc()
            if _trace.TRACER is not None:
                _trace.TRACER.emit(
                    "coverage.plan",
                    t=self.clock() if self.clock is not None else None,
                    src_lc=packet.src_lc,
                    dst_lc=packet.dst_lc,
                    cases=plan.case_tags,
                    egress_mode=plan.egress_mode.value,
                    drop=plan.drop,
                    fault_ids=plan.fault_ids,
                )
                if plan.egress_mode is not EgressMode.FABRIC:
                    _trace.TRACER.emit(
                        "coverage.egress_mode",
                        t=self.clock() if self.clock is not None else None,
                        dst_lc=packet.dst_lc,
                        mode=plan.egress_mode.value,
                        fault=None if plan.egress_fault is None else plan.egress_fault.value,
                    )
        return plan

    def _plan(self, packet: Packet) -> CoveragePlan:
        src, dst = packet.src_lc, packet.dst_lc
        # The ingress LC plans from *its* view: under the detection layer
        # a remote (or even local, below coverage) fault it has not yet
        # learned of yields a stale fabric plan and a mid-flight drop.
        fmap = self._map_for(src)
        f_src = fmap.failed_at(src)
        f_dst = fmap.failed_at(dst)

        # PIU failures disconnect the external link -- never coverable.
        if ComponentKind.PIU in f_src:
            return CoveragePlan(drop=DropReason.PIU_IN)
        if ComponentKind.PIU in f_dst and dst != src:
            return CoveragePlan(drop=DropReason.PIU_OUT)

        plan = CoveragePlan()

        # --- ingress side (Case 2) ---
        if ComponentKind.PDLU in f_src:
            plan.ingress_fault = ComponentKind.PDLU
        elif ComponentKind.SRU in f_src:
            plan.ingress_fault = ComponentKind.SRU
        if plan.ingress_fault is not None:
            plan.ingress_fault_id = fmap.fault_id_of(src, plan.ingress_fault)
        if ComponentKind.LFE in f_src and plan.ingress_fault is None:
            # With a PDLU/SRU coverage stream the covering LC also does the
            # lookup; only a lone LFE fault needs the REQ_L service.
            plan.remote_lookup = True
            plan.lookup_fault_id = fmap.fault_id_of(src, ComponentKind.LFE)

        # --- egress side (Case 3) ---
        dst_pdlu_down = ComponentKind.PDLU in f_dst and dst != src
        dst_sru_down = ComponentKind.SRU in f_dst and dst != src
        if dst_sru_down and dst_pdlu_down:
            # Both egress processing units gone: the paper provides no
            # combined path (the SRU route targets the PDLU and vice versa).
            return CoveragePlan(drop=DropReason.COMPOUND_FAULT)
        if dst_sru_down:
            # "LC_in sends the reassembled data through its SRU to the PDLU
            # of LC_out": whole packets over the EIB, skipping dst's SRU.
            plan.egress_mode = EgressMode.EIB_DIRECT
            plan.egress_fault = ComponentKind.SRU
            plan.egress_fault_id = fmap.fault_id_of(dst, ComponentKind.SRU)
        elif dst_pdlu_down:
            plan.egress_fault = ComponentKind.PDLU
            plan.egress_fault_id = fmap.fault_id_of(dst, ComponentKind.PDLU)
            src_lc = self._lcs[src]
            dst_lc = self._lcs[dst]
            same_protocol = (
                src_lc.pdlu is not None
                and src_lc.pdlu.healthy
                and src_lc.protocol is dst_lc.protocol
            )
            if same_protocol and plan.ingress_fault is None:
                # First alternative: LC_in's own PDLU finishes the packet
                # and ships it over the EIB directly to LC_out's PIU.
                plan.egress_mode = EgressMode.EIB_DIRECT
            else:
                # Second alternative: cells cross the fabric to an LC_inter
                # of LC_out's protocol, which reassembles, runs its PDLU,
                # and relays the packet over the EIB.
                plan.egress_mode = EgressMode.EIB_VIA_INTER

        # Combining an ingress coverage detour with an egress EIB leg would
        # chain two LC_inter hops -- excluded by the paper's model.
        if plan.ingress_fault is not None and plan.egress_mode is not EgressMode.FABRIC:
            return CoveragePlan(drop=DropReason.COMPOUND_FAULT)

        return plan

    def ingress_candidates(
        self, packet: Packet, fault: ComponentKind, rate_bps: float
    ) -> list[int]:
        """LCs able to cover an ingress-side fault (candidate LC_inters).

        Protocol matching applies only for PDLU faults; LC_out is excluded
        per the analysis assumption that it stays clean of coverage duty.
        """
        src = self._lcs[packet.src_lc]
        # sorted(): candidate ranking must not depend on dict insertion
        # order (DRA103 spirit -- LCs are usually built 0..N-1, but any
        # construction order must yield the same ranking).
        return [
            lc_id
            for lc_id, lc in sorted(self._lcs.items())
            if lc_id not in (packet.src_lc, packet.dst_lc)
            and lc.can_cover(fault, src.protocol, rate_bps)
        ]

    def egress_inter_candidates(self, packet: Packet, rate_bps: float) -> list[int]:
        """LC_inter candidates for the EIB_VIA_INTER egress route."""
        dst = self._lcs[packet.dst_lc]
        return [
            lc_id
            for lc_id, lc in sorted(self._lcs.items())
            if lc_id not in (packet.src_lc, packet.dst_lc)
            and lc.can_cover(ComponentKind.PDLU, dst.protocol, rate_bps)
            and lc.sru.healthy
        ]

"""The three-tier EIB protocol state machines (Section 4).

Implements the control-packet exchanges over the CSMA/CD control lines:

* **forward path** -- a faulty LC broadcasts ``REQ_D``; every able
  candidate (headroom, protocol match for PDLU faults) schedules a
  ``REP_D``; the first reply on the wire wins and the others stand down
  on hearing it (the paper's collision-arbitrated acceptance);
* **reverse path** -- a healthy LC addresses ``REQ_D`` directly at the
  faulty destination, which answers ``REP_D`` itself;
* **lookup service** -- ``REQ_L`` carries the destination address; any LC
  with a healthy LFE answers ``REP_L`` with the result embedded in the
  control packet (the data lines stay reserved for large transfers);
* **release** -- ``REL_D`` announces the freed logical path so every LC
  compacts its arbiter counters.

Streams sharing one initiating LC share that LC's logical path on the
data lines (the arbiter assigns IDs per LC); the allocator sees their
combined requested rate.

Candidate contention is delegated to a pluggable
:class:`~repro.router.planner2.CoveragePolicy` (planner v2): the static
policy reproduces the paper's slot-rank first-fit bit for bit, while the
adaptive policy scores candidates by headroom/health/spread, replans
active streams on FLT_N/FLT_C news with exponential backoff, and sheds
rate proportionally across streams when aggregate coverage demand
exceeds the EIB data capacity (fair graceful degradation).
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.router.bus import EIB
from repro.router.components import ComponentKind
from repro.router.linecard import Linecard
from repro.router.packets import ControlKind, ControlPacket, Protocol
from repro.router.planner2 import CoveragePolicy, StaticPolicy
from repro.router.stats import RouterStats
from repro.sim import Engine
from repro.sim.events import EventHandle

__all__ = ["EIBProtocol", "CoverageStream", "StreamState"]


class StreamState(enum.Enum):
    """Lifecycle of a coverage stream."""

    SOLICITING = "soliciting"
    ACTIVE = "active"
    FAILED = "failed"
    CLOSED = "closed"


@dataclass
class CoverageStream:
    """One coverage relationship established over the EIB.

    ``init_lc`` starts the handshake; ``sender_lc`` is the side that
    transmits on the data lines once active (differs from ``init_lc`` for
    the via-inter egress route, where LC_in solicits but the chosen
    LC_inter relays).
    """

    key: tuple
    init_lc: int
    rate_bps: float
    fault_kind: ComponentKind | None = None
    protocol: Protocol | None = None
    rec_lc: int | None = None
    sender_is_coverer: bool = False
    #: correlation id of the fault this stream covers (span analysis)
    fault_id: int | None = None
    state: StreamState = StreamState.SOLICITING
    covering_lc: int | None = None
    req_id: int = -1
    failed_at: float = -1.0
    waiters: deque = field(default_factory=deque)

    @property
    def sender_lc(self) -> int:
        """The LC holding the data-line LP for this stream."""
        if self.sender_is_coverer:
            if self.covering_lc is None:
                raise RuntimeError("stream has no covering LC yet")
            return self.covering_lc
        return self.init_lc


class EIBProtocol:
    """Protocol engine shared by all bus controllers of one router."""

    def __init__(
        self,
        engine: Engine,
        eib: EIB,
        linecards: dict[int, Linecard],
        stats: RouterStats,
        rng: np.random.Generator,
        *,
        solicit_timeout_s: float = 300e-6,
        lookup_timeout_s: float = 150e-6,
        reply_jitter_s: float = 10e-6,
        retry_cooldown_s: float = 1e-3,
        policy: CoveragePolicy | None = None,
    ) -> None:
        self._engine = engine
        self._eib = eib
        self._lcs = linecards
        self._stats = stats
        self._rng = rng
        self._solicit_timeout = solicit_timeout_s
        self._lookup_timeout = lookup_timeout_s
        self._reply_jitter = reply_jitter_s
        self._retry_cooldown = retry_cooldown_s
        self._policy = policy if policy is not None else StaticPolicy()
        self._policy.bind(linecards, self._coverage_load, lambda: self._engine.now)
        #: replan bookkeeping (adaptive policy): per-key backoff attempts
        #: and the armed retry timers (cancelled on release / EIB death).
        self._replan_attempts: dict[tuple, int] = {}
        self._replan_handles: dict[tuple, EventHandle] = {}

        self._req_counter = 0
        self._streams: dict[tuple, CoverageStream] = {}
        self._by_req: dict[int, tuple] = {}
        self._timeouts: dict[int, EventHandle] = {}
        self._pending_lookups: dict[int, Callable[[int | None], None]] = {}
        self._lookup_timeouts: dict[int, EventHandle] = {}
        self._reply_handles: dict[tuple[int, int], EventHandle] = {}
        self._lp_refs: dict[int, int] = {}
        self._lp_rates: dict[int, float] = {}
        #: optional hook receiving the detection-layer control packets
        #: (FLT_N / FLT_C / HB) at each healthy bus controller; set by
        #: :class:`repro.chaos.detection.FaultDetector`.
        self.fault_listener: Callable[[int, ControlPacket], None] | None = None

        for lc_id, lc in linecards.items():
            if lc.bus_controller is not None:
                eib.control.attach(lc_id, self._make_handler(lc_id))

    # ------------------------------------------------------------------
    # public API used by the router
    # ------------------------------------------------------------------

    def stream(self, key: tuple) -> CoverageStream | None:
        """The stream registered under ``key``, if any."""
        return self._streams.get(key)

    @property
    def policy(self) -> CoveragePolicy:
        """The active coverage policy (planner v2)."""
        return self._policy

    def _coverage_load(self, lc_id: int) -> tuple[int, float]:
        """Coverage duty LC ``lc_id`` currently carries: number of
        ACTIVE streams it covers and their summed reserved rate (the
        adaptive policy's spread signal)."""
        count = 0
        rate = 0.0
        for stream in self._streams.values():
            if stream.state is StreamState.ACTIVE and stream.covering_lc == lc_id:
                count += 1
                rate += stream.rate_bps
        return count, rate

    def ensure_stream(
        self,
        key: tuple,
        init_lc: int,
        rate_bps: float,
        callback: Callable[[CoverageStream | None], None],
        *,
        fault_kind: ComponentKind | None = None,
        protocol: Protocol | None = None,
        rec_lc: int | None = None,
        sender_is_coverer: bool = False,
        fault_id: int | None = None,
    ) -> None:
        """Get-or-establish a coverage stream; ``callback`` fires with the
        active stream, or ``None`` when no LC can (currently) cover.

        Failed solicitations are cached for ``retry_cooldown_s`` so a
        packet flood does not hammer the control lines with REQ_D storms.
        """
        stream = self._streams.get(key)
        if stream is not None:
            if stream.state is StreamState.ACTIVE:
                callback(stream)
                return
            if stream.state is StreamState.SOLICITING:
                stream.waiters.append(callback)
                return
            if stream.state is StreamState.FAILED:
                if self._engine.now - stream.failed_at < self._retry_cooldown:
                    callback(None)
                    return
                # Cooldown over: forget the failed attempt and re-solicit.
                self._by_req.pop(stream.req_id, None)
                del self._streams[key]

        bc = self._lcs[init_lc].bus_controller
        if not self._eib.healthy or bc is None or not bc.healthy:
            callback(None)
            return

        stream = CoverageStream(
            key=key,
            init_lc=init_lc,
            rate_bps=rate_bps,
            fault_kind=fault_kind,
            protocol=protocol,
            rec_lc=rec_lc,
            sender_is_coverer=sender_is_coverer,
            fault_id=fault_id,
        )
        stream.req_id = self._next_req()
        stream.waiters.append(callback)
        self._streams[key] = stream
        self._by_req[stream.req_id] = key
        self._eib.control.broadcast(
            ControlPacket(
                kind=ControlKind.REQ_D,
                init_lc=init_lc,
                rec_lc=rec_lc,
                data_rate=rate_bps,
                protocol=protocol,
                faulty_component=fault_kind,
                lp_id=stream.req_id,
            ),
            init_lc,
        )
        self._timeouts[stream.req_id] = self._engine.schedule_in(
            self._solicit_timeout,
            lambda: self._on_solicit_timeout(stream.req_id),
            label="eib:req_d:timeout",
        )

    def send_on_stream(
        self,
        stream: CoverageStream,
        size_bytes: int,
        deliver: Callable[[], None],
        abort: Callable[[], None] | None = None,
    ) -> bool:
        """Queue ``size_bytes`` on the stream's logical path.

        ``abort`` fires instead of ``deliver`` if the EIB dies while the
        transfer is queued or on the wire.
        """
        if stream.state is not StreamState.ACTIVE:
            return False
        return self._eib.data.enqueue(stream.sender_lc, size_bytes, deliver, abort=abort)

    def release_stream(self, key: tuple) -> None:
        """Tear a stream down (REL_D broadcast, reservation + LP release)."""
        stream = self._streams.pop(key, None)
        if stream is None:
            return
        self._by_req.pop(stream.req_id, None)
        handle = self._timeouts.pop(stream.req_id, None)
        if handle is not None:
            handle.cancel()
        self._drop_replan(key)
        if stream.state is StreamState.ACTIVE:
            if stream.covering_lc is not None:
                self._lcs[stream.covering_lc].release(stream.rate_bps)
            self._release_lp(stream.sender_lc, stream.rate_bps)
            if self._eib.healthy:
                self._eib.control.broadcast(
                    ControlPacket(
                        kind=ControlKind.REL_D,
                        init_lc=stream.init_lc,
                        rec_lc=stream.covering_lc,
                        lp_id=stream.req_id,
                    ),
                    stream.init_lc,
                )
        stream.state = StreamState.CLOSED
        self._flush_waiters(stream, None)

    def release_streams_for_fault(self, lc_id: int, kind: ComponentKind) -> None:
        """Release every stream covering the given (repaired) fault."""
        for key in [
            k
            for k, s in self._streams.items()
            if s.fault_kind is kind and s.init_lc == lc_id
        ]:
            self.release_stream(key)

    def on_eib_failure(self) -> None:
        """Passive-line failure: every stream is gone instantly.

        The data channel already dropped the buffered transfers and tore
        down the LPs; here the protocol layer releases capacity
        reservations and rejects waiting packets.
        """
        for key in list(self._streams):
            stream = self._streams.pop(key)
            self._by_req.pop(stream.req_id, None)
            handle = self._timeouts.pop(stream.req_id, None)
            if handle is not None:
                handle.cancel()
            if stream.state is StreamState.ACTIVE and stream.covering_lc is not None:
                self._lcs[stream.covering_lc].release(stream.rate_bps)
            stream.state = StreamState.CLOSED
            self._flush_waiters(stream, None)
        for key in list(self._replan_handles):
            self._drop_replan(key)
        self._replan_attempts.clear()
        self._lp_refs.clear()
        self._lp_rates.clear()

    def snapshot_state(self) -> dict:
        """Bookkeeping snapshot consumed by the chaos invariant checks.

        Exposes just enough internal state to assert LP-refcount /
        stream-state consistency and scheduled-event hygiene without the
        checker reaching into private attributes.
        """
        active_by_sender: dict[int, int] = {}
        active_rate_by_sender: dict[int, float] = {}
        for stream in self._streams.values():
            if stream.state is StreamState.ACTIVE:
                lc = stream.sender_lc
                active_by_sender[lc] = active_by_sender.get(lc, 0) + 1
                active_rate_by_sender[lc] = (
                    active_rate_by_sender.get(lc, 0.0) + stream.rate_bps
                )
        return {
            "stream_states": {k: s.state.value for k, s in self._streams.items()},
            "active_by_sender": active_by_sender,
            "active_rate_by_sender": active_rate_by_sender,
            "lp_refs": dict(self._lp_refs),
            "lp_rates": dict(self._lp_rates),
            "soliciting_without_timeout": [
                s.req_id
                for s in self._streams.values()
                if s.state is StreamState.SOLICITING and s.req_id not in self._timeouts
            ],
            "stale_timeouts": [
                req_id for req_id in self._timeouts if req_id not in self._by_req
            ],
            "pending_lookups": len(self._pending_lookups),
            "armed_lookup_timeouts": len(self._lookup_timeouts),
        }

    def request_lookup(
        self, lc_id: int, addr: int, callback: Callable[[int | None], None]
    ) -> None:
        """Serve a destination lookup remotely over REQ_L / REP_L."""
        bc = self._lcs[lc_id].bus_controller
        if not self._eib.healthy or bc is None or not bc.healthy:
            callback(None)
            return
        req_id = self._next_req()
        self._pending_lookups[req_id] = callback
        self._eib.control.broadcast(
            ControlPacket(
                kind=ControlKind.REQ_L,
                init_lc=lc_id,
                lookup_addr=addr,
                lp_id=req_id,
            ),
            lc_id,
        )

        def timeout() -> None:
            self._lookup_timeouts.pop(req_id, None)
            cb = self._pending_lookups.pop(req_id, None)
            if cb is not None:
                cb(None)

        # Keep the handle so a successful REP_L cancels the timeout
        # instead of leaving a dead event armed in the engine heap --
        # long chaos campaigns would otherwise accumulate thousands.
        self._lookup_timeouts[req_id] = self._engine.schedule_in(
            self._lookup_timeout, timeout, label="eib:req_l:timeout"
        )

    # ------------------------------------------------------------------
    # control-packet handling at each LC
    # ------------------------------------------------------------------

    def _make_handler(self, me: int) -> Callable[[ControlPacket], None]:
        def handle(cp: ControlPacket) -> None:
            bc = self._lcs[me].bus_controller
            if bc is None or not bc.healthy:
                return  # a dead bus controller hears nothing
            if cp.kind is ControlKind.REQ_D:
                self._handle_req_d(me, cp)
            elif cp.kind is ControlKind.REP_D:
                self._handle_rep_d(me, cp)
            elif cp.kind is ControlKind.REQ_L:
                self._handle_req_l(me, cp)
            elif cp.kind is ControlKind.REP_L:
                self._handle_rep_l(me, cp)
            elif cp.kind in (ControlKind.FLT_N, ControlKind.FLT_C, ControlKind.HB):
                if self.fault_listener is not None:
                    self.fault_listener(me, cp)
            # REL_D bookkeeping is central (release_stream); mirrors of the
            # arbiter counters are updated inside DistributedArbiter.

        return handle

    def _handle_req_d(self, me: int, cp: ControlPacket) -> None:
        lc = self._lcs[me]
        if cp.rec_lc is None:
            # Broadcast solicitation: am I an able candidate?
            fault = cp.faulty_component
            if not isinstance(fault, ComponentKind) or cp.protocol is None:
                return
            if not lc.can_cover(fault, cp.protocol, cp.data_rate):
                return
            # Contention resolution is the policy's call: the delay it
            # returns decides which candidate's REP_D wins the wire.
            self._schedule_reply(
                me,
                cp.lp_id,
                ControlPacket(
                    kind=ControlKind.REP_D,
                    init_lc=me,
                    rec_lc=cp.init_lc,
                    lp_id=cp.lp_id,
                ),
                jitter=True,
                delay=self._policy.reply_delay(
                    me, cp.init_lc, len(self._lcs), cp.data_rate, self._rng
                ),
            )
        elif cp.rec_lc == me:
            # Reverse path: I am the faulty destination being offered data.
            if lc.piu.healthy:
                self._schedule_reply(
                    me,
                    cp.lp_id,
                    ControlPacket(
                        kind=ControlKind.REP_D,
                        init_lc=me,
                        rec_lc=cp.init_lc,
                        lp_id=cp.lp_id,
                    ),
                    jitter=False,
                )

    def _handle_rep_d(self, me: int, cp: ControlPacket) -> None:
        key = self._by_req.get(cp.lp_id)
        if key is not None and self._streams[key].init_lc == me:
            self._resolve_stream(cp.lp_id, responder=cp.init_lc)
        else:
            # Someone else's request was answered: stand down my reply.
            self._cancel_reply(me, cp.lp_id)

    def _handle_req_l(self, me: int, cp: ControlPacket) -> None:
        lc = self._lcs[me]
        if not lc.lfe.healthy or cp.lookup_addr is None:
            return
        result = lc.table.lookup(cp.lookup_addr)
        if result is None:
            return
        self._schedule_reply(
            me,
            cp.lp_id,
            ControlPacket(
                kind=ControlKind.REP_L,
                init_lc=me,
                rec_lc=cp.init_lc,
                lp_id=cp.lp_id,
                lookup_addr=cp.lookup_addr,
                lookup_result=result,
            ),
            jitter=True,
        )

    def _handle_rep_l(self, me: int, cp: ControlPacket) -> None:
        if cp.rec_lc == me:
            cb = self._pending_lookups.pop(cp.lp_id, None)
            if cb is not None:
                handle = self._lookup_timeouts.pop(cp.lp_id, None)
                if handle is not None:
                    handle.cancel()
                self._stats.remote_lookups += 1
                cb(cp.lookup_result)
        else:
            self._cancel_reply(me, cp.lp_id)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _next_req(self) -> int:
        self._req_counter += 1
        return self._req_counter

    def _schedule_reply(
        self,
        me: int,
        req_id: int | None,
        reply: ControlPacket,
        *,
        jitter: bool,
        delay: float | None = None,
    ) -> None:
        if req_id is None:
            return
        if delay is not None:
            # REQ_D coverage replies: the policy already resolved the
            # contention delay (see planner2; static = rank formula).
            pass
        elif jitter:
            # Rank-based contention resolution for the lookup service:
            # the candidate "closest" (in slot order) to the requester
            # replies first; the others' timers are spaced far enough
            # apart that hearing the winning reply cancels them before
            # they fire.  A small random term breaks the remaining ties;
            # CSMA/CD handles true collisions.
            requester = reply.rec_lc if reply.rec_lc is not None else 0
            rank = (me - requester) % max(len(self._lcs), 1)
            delay = 0.5e-6 + 2e-6 * rank + float(self._rng.uniform(0.0, 0.4e-6))
        else:
            delay = 1e-6

        def fire() -> None:
            self._reply_handles.pop((req_id, me), None)
            self._eib.control.broadcast(reply, me)

        self._reply_handles[(req_id, me)] = self._engine.schedule_in(
            delay, fire, label=f"eib:reply:{reply.kind.value}"
        )

    def _cancel_reply(self, me: int, req_id: int | None) -> None:
        if req_id is None:
            return
        handle = self._reply_handles.pop((req_id, me), None)
        if handle is not None:
            handle.cancel()

    def _resolve_stream(self, req_id: int, responder: int) -> None:
        key = self._by_req.get(req_id)
        if key is None:
            return
        stream = self._streams[key]
        if stream.state is not StreamState.SOLICITING:
            return
        handle = self._timeouts.pop(req_id, None)
        if handle is not None:
            handle.cancel()
        # Reverse-path streams address a fixed receiver; solicited streams
        # reserve coverage capacity on the winning LC_inter.
        if stream.rec_lc is None:
            self._maybe_degrade(stream)
            if not self._lcs[responder].reserve(stream.rate_bps):
                # The responder's headroom evaporated between its REP_D and
                # now (a race the paper resolves with a fresh REQ_D): fail
                # and let the cooldown trigger re-solicitation.
                if _metrics.REGISTRY is not None:
                    _metrics.REGISTRY.counter("protocol.reserve_races").inc()
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "protocol.reserve_race",
                        t=self._engine.now,
                        init_lc=stream.init_lc,
                        responder=responder,
                        rate_bps=stream.rate_bps,
                        req_id=req_id,
                        fault_id=stream.fault_id,
                    )
                self._fail_stream(stream)
                return
            stream.covering_lc = responder
        else:
            stream.covering_lc = stream.rec_lc
        stream.state = StreamState.ACTIVE
        self._replan_attempts.pop(key, None)
        self._acquire_lp(stream.sender_lc, stream.rate_bps)
        self._stats.streams_established += 1
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("protocol.streams_established").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "protocol.stream_active",
                t=self._engine.now,
                init_lc=stream.init_lc,
                covering_lc=stream.covering_lc,
                rate_bps=stream.rate_bps,
                req_id=req_id,
                fault_id=stream.fault_id,
            )
        self._flush_waiters(stream, stream)

    def _on_solicit_timeout(self, req_id: int) -> None:
        self._timeouts.pop(req_id, None)  # fired; drop the spent handle
        key = self._by_req.get(req_id)
        if key is None:
            return
        stream = self._streams[key]
        if stream.state is StreamState.SOLICITING:
            self._fail_stream(stream)

    def _fail_stream(self, stream: CoverageStream) -> None:
        stream.state = StreamState.FAILED
        stream.failed_at = self._engine.now
        stream.covering_lc = None
        self._stats.streams_failed += 1
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("protocol.streams_failed").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "protocol.stream_failed",
                t=self._engine.now,
                init_lc=stream.init_lc,
                req_id=stream.req_id,
                fault_id=stream.fault_id,
            )
        self._flush_waiters(stream, None)
        if self._policy.replans:
            attempts = self._replan_attempts.get(stream.key, 0)
            if attempts < self._policy.replan_max_attempts:
                self._replan_attempts[stream.key] = attempts + 1
                self._schedule_replan(
                    stream.key,
                    delay=self._policy.replan_base_s * (2.0**attempts)
                    + float(self._rng.uniform(0.0, self._policy.replan_jitter_s)),
                )

    def _flush_waiters(
        self, stream: CoverageStream, result: CoverageStream | None
    ) -> None:
        while stream.waiters:
            stream.waiters.popleft()(result)

    def _acquire_lp(self, lc_id: int, rate_bps: float) -> None:
        self._lp_refs[lc_id] = self._lp_refs.get(lc_id, 0) + 1
        self._lp_rates[lc_id] = self._lp_rates.get(lc_id, 0.0) + rate_bps
        if self._lp_refs[lc_id] == 1:
            self._eib.data.open_lp(lc_id, self._lp_rates[lc_id])
        else:
            self._eib.allocator.update_request(lc_id, self._lp_rates[lc_id])

    def _release_lp(self, lc_id: int, rate_bps: float) -> None:
        if lc_id not in self._lp_refs:
            return  # LP already torn down (e.g. by an EIB failure)
        self._lp_refs[lc_id] -= 1
        self._lp_rates[lc_id] = max(0.0, self._lp_rates[lc_id] - rate_bps)
        if self._lp_refs[lc_id] <= 0:
            del self._lp_refs[lc_id]
            del self._lp_rates[lc_id]
            if self._eib.data.has_lp(lc_id):
                self._eib.data.close_lp(lc_id)
        else:
            self._eib.allocator.update_request(lc_id, self._lp_rates[lc_id])

    # ------------------------------------------------------------------
    # planner v2: online replanning + fair graceful degradation
    # ------------------------------------------------------------------

    def on_fault_news(
        self,
        observer: int | None,
        subject: int,
        kind: ComponentKind | None,
        *,
        repaired: bool,
    ) -> None:
        """React to FLT_N / FLT_C news under a replanning policy.

        ``observer`` is the LC whose view just changed (``None`` for the
        oracle fault map, where every LC learns at once); ``subject`` is
        the LC the news is about.  Fresh fault news tears active streams
        off a failed covering LC and re-solicits with backoff; repair
        news gives failed streams a prompt retry (the recovered LC is a
        new candidate) and resets their backoff.  No-op under the static
        policy, which keeps the paper's fixed retry cooldown.
        """
        del kind  # any component fault disqualifies the covering LC
        if not self._policy.replans:
            return
        if repaired:
            for key, stream in list(self._streams.items()):
                if stream.state is not StreamState.FAILED:
                    continue
                if observer is not None and stream.init_lc != observer:
                    continue
                self._replan_attempts.pop(key, None)
                self._schedule_replan(
                    key,
                    delay=1e-6
                    + float(self._rng.uniform(0.0, self._policy.replan_jitter_s)),
                )
        else:
            for _key, stream in list(self._streams.items()):
                if stream.state is not StreamState.ACTIVE:
                    continue
                if stream.covering_lc != subject or stream.init_lc == subject:
                    continue
                if observer is not None and stream.init_lc != observer:
                    continue
                self._replan_stream(stream)

    def _replan_stream(self, stream: CoverageStream) -> None:
        """Tear an ACTIVE stream off its (newly faulty) covering LC and
        re-solicit: releases the reservation and LP share, then fails
        the stream, which arms the backoff retry."""
        if stream.state is not StreamState.ACTIVE:
            return
        if stream.rec_lc is None and stream.covering_lc is not None:
            self._lcs[stream.covering_lc].release(stream.rate_bps)
        self._release_lp(stream.sender_lc, stream.rate_bps)
        self._fail_stream(stream)

    def _schedule_replan(self, key: tuple, *, delay: float) -> None:
        prev = self._replan_handles.pop(key, None)
        if prev is not None:
            prev.cancel()
        self._replan_handles[key] = self._engine.schedule_in(
            delay, lambda: self._replan_fire(key), label="eib:replan"
        )

    def _drop_replan(self, key: tuple) -> None:
        self._replan_attempts.pop(key, None)
        handle = self._replan_handles.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _replan_fire(self, key: tuple) -> None:
        """Backoff timer fired: forget the failed attempt (bypassing the
        fixed retry cooldown) and re-solicit the stream."""
        self._replan_handles.pop(key, None)
        stream = self._streams.get(key)
        if stream is None or stream.state is not StreamState.FAILED:
            return
        self._by_req.pop(stream.req_id, None)
        del self._streams[key]
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("coverage.replans").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "coverage.replan",
                t=self._engine.now,
                init_lc=stream.init_lc,
                req_id=stream.req_id,
                attempt=self._replan_attempts.get(key, 0),
                fault_id=stream.fault_id,
            )
        self.ensure_stream(
            key,
            stream.init_lc,
            stream.rate_bps,
            lambda _s: None,
            fault_kind=stream.fault_kind,
            protocol=stream.protocol,
            rec_lc=stream.rec_lc,
            sender_is_coverer=stream.sender_is_coverer,
            fault_id=stream.fault_id,
        )
        if key not in self._streams:
            # ensure_stream bounced (EIB or our bus controller down):
            # nothing left to retry, so drop the backoff state.
            self._replan_attempts.pop(key, None)

    def _maybe_degrade(self, stream: CoverageStream) -> None:
        """Fair graceful degradation (adaptive policy only).

        When admitting ``stream`` would push aggregate coverage demand
        past the EIB data capacity, shed rate *proportionally* across
        every active stream and the newcomer instead of letting the TDM
        allocator starve whoever asked last.  Reservations, LP rates and
        stream rates stay mutually consistent (the chaos invariants
        check all three).
        """
        if not self._policy.degrades:
            return
        capacity = float(self._eib.allocator.capacity_bps)
        total = sum(self._lp_rates.values()) + stream.rate_bps
        if total <= capacity:
            return
        factor = capacity / total
        shed = 0.0
        for other in self._streams.values():
            if other.state is not StreamState.ACTIVE:
                continue
            diff = other.rate_bps * (1.0 - factor)
            if diff <= 0.0:
                continue
            if other.rec_lc is None and other.covering_lc is not None:
                self._lcs[other.covering_lc].release(diff)
            sender = other.sender_lc
            if sender in self._lp_rates:
                self._lp_rates[sender] = max(0.0, self._lp_rates[sender] - diff)
                self._eib.allocator.update_request(sender, self._lp_rates[sender])
            other.rate_bps -= diff
            shed += diff
        shed += stream.rate_bps * (1.0 - factor)
        stream.rate_bps *= factor
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("coverage.degradations").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "coverage.degraded",
                t=self._engine.now,
                factor=factor,
                demand_bps=total,
                capacity_bps=capacity,
                shed_bps=shed,
                reason="eib_overload",
            )

"""The enhanced internal bus (EIB): control lines and data lines.

The EIB of Section 4 is a distributed bus with two separate line groups:

* **control lines** -- CSMA/CD medium carrying the small fixed-size
  control packets (REQ/REP/REL) that arbitrate the data lines, exchange
  the fault map, and serve remote lookups;
* **data lines** -- the wide path carrying whole packets (no cell
  segmentation, one of the distributed bus's stated advantages), shared by
  the established logical paths under the counter-based round-robin TDM of
  :mod:`repro.router.arbitration`, with per-LP rates paced to the B_prom
  promises of :mod:`repro.router.bandwidth`.

Both channels share a health flag (the passive lines, ``lam_bus`` in the
dependability models); per-LC bus controllers are modeled at the linecard.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.router.arbitration import DistributedArbiter
from repro.router.bandwidth import EIBBandwidthAllocator
from repro.router.packets import ControlPacket
from repro.sim import Engine

__all__ = ["ControlChannel", "DataChannel", "EIB"]


class ControlChannel:
    """CSMA/CD broadcast medium for control packets.

    Carrier sense: a sender that finds the medium busy defers to the end
    of the current transmission plus a random backoff.  Collision: two
    stations that start within ``collision_window`` of each other abort
    and retry with binary exponential backoff (slot-granular, like
    classic Ethernet).

    ``loss_prob`` / ``corrupt_prob`` model a degraded control medium (the
    lossy/corrupting fault mode of the chaos subsystem): a successfully
    arbitrated transmission is then lost in flight, or garbled so every
    receiver's CRC check discards it.  Either way no handler sees the
    packet; senders must tolerate the silence (timeouts, heartbeat
    re-advertisement).  Both default to ``0.0`` and -- crucially for
    determinism of existing scenarios -- the RNG is only consulted when a
    probability is nonzero.
    """

    def __init__(
        self,
        engine: Engine,
        rng: np.random.Generator,
        *,
        rate_bps: float = 2e9,
        slot_time_s: float = 50e-9,
        collision_window_s: float = 5e-9,
        max_attempts: int = 16,
    ) -> None:
        self._engine = engine
        self._rng = rng
        self._rate = rate_bps
        self._slot = slot_time_s
        self._window = collision_window_s
        self._max_attempts = max_attempts
        self._handlers: dict[int, Callable[[ControlPacket], None]] = {}
        self._busy_until = 0.0
        self._tx_start = -1.0
        self._tx_abort: Callable[[], None] | None = None
        self._tx_inflight: tuple[ControlPacket, int, int] | None = None
        self.healthy = True
        #: probability a transmitted control packet vanishes in flight
        self.loss_prob = 0.0
        #: probability a transmitted control packet is garbled (CRC drop)
        self.corrupt_prob = 0.0
        # statistics
        self.sent = 0
        self.collisions = 0
        self.deferrals = 0
        self.failures = 0  # packets abandoned after max_attempts
        self.lost = 0  # packets lost to the degraded-medium fault mode
        self.corrupted = 0  # packets garbled in flight (discarded by CRC)

    def attach(self, lc_id: int, handler: Callable[[ControlPacket], None]) -> None:
        """Register ``handler`` to receive every broadcast not sent by ``lc_id``."""
        self._handlers[lc_id] = handler

    def broadcast(self, packet: ControlPacket, sender_lc: int) -> None:
        """Transmit ``packet`` from ``sender_lc`` to all other stations.

        Returns immediately; delivery happens via the attached handlers
        after medium acquisition.  A dead bus silently drops (stations
        discover this through the absence of replies, as in hardware).
        """
        self._attempt(packet, sender_lc, attempt=0)

    def _attempt(self, packet: ControlPacket, sender_lc: int, attempt: int) -> None:
        if not self.healthy:
            return
        if attempt >= self._max_attempts:
            self.failures += 1
            if _metrics.REGISTRY is not None:
                _metrics.REGISTRY.counter("bus.ctl.abandoned").inc()
            if _trace.TRACER is not None:
                _trace.TRACER.emit(
                    "bus.ctl.abandon",
                    t=self._engine.now,
                    packet=packet.kind.value,
                    sender_lc=sender_lc,
                    attempts=attempt,
                )
            return
        now = self._engine.now
        if now - self._tx_start < self._window and self._tx_abort is not None:
            # Collision: another station started within the vulnerability
            # window -- signal propagation has not reached us yet, so
            # carrier sense cannot save us.  Both transmissions die and
            # both stations back off and retry.
            self.collisions += 1
            if _metrics.REGISTRY is not None:
                _metrics.REGISTRY.counter("bus.ctl.collisions").inc()
            if _trace.TRACER is not None:
                other = self._tx_inflight[1] if self._tx_inflight else None
                _trace.TRACER.emit(
                    "bus.ctl.collision",
                    t=now,
                    packet=packet.kind.value,
                    sender_lc=sender_lc,
                    other_lc=other,
                    attempt=attempt,
                )
            self._tx_abort()
            self._tx_abort = None
            self._busy_until = now  # medium clears after the jam
            if self._tx_inflight is not None:
                pkt0, lc0, att0 = self._tx_inflight
                self._tx_inflight = None
                self._schedule_backoff(pkt0, lc0, att0, label="eib:ctl:retry")
            self._schedule_backoff(packet, sender_lc, attempt, label="eib:ctl:retry")
            return
        if now < self._busy_until:
            # Carrier sensed busy: defer past it with a short random gap.
            self.deferrals += 1
            if _metrics.REGISTRY is not None:
                _metrics.REGISTRY.counter("bus.ctl.deferrals").inc()
            wait = (self._busy_until - now) + self._backoff(attempt)
            if _trace.TRACER is not None:
                _trace.TRACER.emit(
                    "bus.ctl.defer",
                    t=now,
                    packet=packet.kind.value,
                    sender_lc=sender_lc,
                    attempt=attempt,
                    wait_s=wait,
                )
            self._engine.schedule_in(
                wait, lambda: self._attempt(packet, sender_lc, attempt + 1),
                label="eib:ctl:defer",
            )
            return
        # Acquire the medium.
        duration = packet.SIZE_BYTES * 8.0 / self._rate
        self._tx_start = now
        self._busy_until = now + duration
        handle = self._engine.schedule_in(
            duration, lambda: self._deliver(packet, sender_lc), label="eib:ctl:tx"
        )
        self._tx_abort = handle.cancel
        self._tx_inflight = (packet, sender_lc, attempt)

    def _backoff(self, attempt: int) -> float:
        slots = int(self._rng.integers(0, 2 ** min(attempt + 1, 10)))
        return self._slot * (1 + slots)

    def _schedule_backoff(
        self, packet: ControlPacket, sender_lc: int, attempt: int, *, label: str
    ) -> None:
        """Back off after a collision and retry the transmission."""
        wait = self._backoff(attempt)
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "bus.ctl.backoff",
                t=self._engine.now,
                packet=packet.kind.value,
                sender_lc=sender_lc,
                attempt=attempt,
                wait_s=wait,
            )
        self._engine.schedule_in(
            wait, lambda: self._attempt(packet, sender_lc, attempt + 1), label=label
        )

    def _deliver(self, packet: ControlPacket, sender_lc: int) -> None:
        self._tx_abort = None
        self._tx_inflight = None
        if self.loss_prob > 0.0 or self.corrupt_prob > 0.0:
            draw = float(self._rng.random())
            if draw < self.loss_prob:
                self.lost += 1
                if _metrics.REGISTRY is not None:
                    _metrics.REGISTRY.counter("bus.ctl.lost").inc()
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "bus.ctl.lost",
                        t=self._engine.now,
                        packet=packet.kind.value,
                        sender_lc=sender_lc,
                    )
                return
            if draw < self.loss_prob + self.corrupt_prob:
                self.corrupted += 1
                if _metrics.REGISTRY is not None:
                    _metrics.REGISTRY.counter("bus.ctl.corrupted").inc()
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "bus.ctl.corrupt",
                        t=self._engine.now,
                        packet=packet.kind.value,
                        sender_lc=sender_lc,
                    )
                return
        self.sent += 1
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("bus.ctl.sent").inc()
            _metrics.REGISTRY.counter(f"bus.ctl.sent.{packet.kind.value}").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "bus.ctl.deliver",
                t=self._engine.now,
                packet=packet.kind.value,
                sender_lc=sender_lc,
                init_lc=packet.init_lc,
                rec_lc=packet.rec_lc,
                data_rate=packet.data_rate,
                fault=getattr(packet.faulty_component, "value", None),
                protocol=getattr(packet.protocol, "value", None),
            )
        for lc_id, handler in list(self._handlers.items()):
            if lc_id != sender_lc:
                handler(packet)


@dataclass
class _QueuedTransfer:
    size_bytes: int
    eligible_at: float
    deliver: Callable[[], None]
    #: fired instead of ``deliver`` when the transfer dies with the bus,
    #: so router-level packets reach a terminal state (conservation).
    abort: Callable[[], None] | None = None
    aborted: bool = False


@dataclass
class _LPQueue:
    """Per-logical-path transmit buffer at the initiating LC."""

    lc_id: int
    queue: deque[_QueuedTransfer] = field(default_factory=deque)
    buffered_bytes: int = 0
    closing: bool = False
    in_service: bool = False
    on_closed: Callable[[], None] | None = None

    @property
    def draining(self) -> bool:
        """True while packets remain buffered or in transmission."""
        return bool(self.queue) or self.in_service


class DataChannel:
    """TDM data lines driven by the distributed arbiter.

    Each LC with an open logical path owns a transmit buffer; on its turn
    (``Ctr_r == Ctr_id``) it transmits the eligible packets in its buffer
    at the line rate, then lowers ``L_t``.  Pacing to the B_prom promise
    happens at enqueue time through the allocator's virtual clock; packets
    arriving beyond ``buffer_bytes`` of backlog are dropped (the paper's
    rate scale-back by packet drop).
    """

    def __init__(
        self,
        engine: Engine,
        arbiter: DistributedArbiter,
        allocator: EIBBandwidthAllocator,
        *,
        rate_bps: float | None = None,
        buffer_bytes: int = 2_000_000,
        turn_overhead_s: float = 200e-9,
    ) -> None:
        self._engine = engine
        self._arbiter = arbiter
        self._allocator = allocator
        self._rate = allocator.capacity_bps if rate_bps is None else rate_bps
        self._buffer_limit = buffer_bytes
        self._turn_overhead = turn_overhead_s
        self._lps: dict[int, _LPQueue] = {}
        self._busy = False
        self._current: _QueuedTransfer | None = None
        self._wake_handle = None
        self.healthy = True
        # statistics
        self.transferred_bytes = 0
        self.transferred_packets = 0
        self.dropped_packets = 0
        #: completed transfer bytes keyed by the owning LP's LC -- the
        #: per-path throughput the B_prom validation compares against the
        #: Section 4 promises.
        self.transferred_bytes_by_lc: Counter[int] = Counter()

    # -- logical-path management ---------------------------------------------

    def open_lp(self, lc_id: int, requested_bps: float) -> int:
        """Establish a logical path for ``lc_id``; returns its arbiter ID."""
        if not self.healthy:
            raise RuntimeError("cannot open an LP on a failed EIB")
        existing = self._lps.get(lc_id)
        if existing is not None:
            if not existing.closing:
                raise ValueError(f"LC {lc_id} already has an open LP")
            # Reopen an LP still draining toward close: keep the arbiter
            # slot and buffer, just refresh the bandwidth request.
            existing.closing = False
            existing.on_closed = None
            self._allocator.update_request(lc_id, requested_bps)
            return self._arbiter.counters(lc_id).ctr_id or 0
        lp_id = self._arbiter.establish(lc_id)
        self._allocator.register(lc_id, requested_bps)
        self._lps[lc_id] = _LPQueue(lc_id=lc_id)
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("bus.lp.opened").inc()
            _metrics.REGISTRY.gauge("bus.lp.open").set(len(self._lps))
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "bus.lp.open",
                t=self._engine.now,
                lc=lc_id,
                lp_id=lp_id,
                requested_bps=requested_bps,
            )
        return lp_id

    def close_lp(self, lc_id: int, *, on_closed: Callable[[], None] | None = None) -> None:
        """Release ``lc_id``'s LP once its buffer drains (REL_D follows)."""
        lp = self._lps.get(lc_id)
        if lp is None:
            raise ValueError(f"LC {lc_id} has no open LP")
        lp.closing = True
        lp.on_closed = on_closed
        if not lp.draining:
            self._finalize_close(lc_id)

    def has_lp(self, lc_id: int) -> bool:
        """True while ``lc_id`` holds an open LP."""
        return lc_id in self._lps

    def _finalize_close(self, lc_id: int) -> None:
        lp = self._lps.pop(lc_id)
        self._arbiter.release(lc_id)
        self._allocator.deregister(lc_id)
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("bus.lp.closed").inc()
            _metrics.REGISTRY.gauge("bus.lp.open").set(len(self._lps))
        if _trace.TRACER is not None:
            _trace.TRACER.emit("bus.lp.close", t=self._engine.now, lc=lc_id)
        if lp.on_closed is not None:
            lp.on_closed()

    # -- transfer --------------------------------------------------------------

    def enqueue(
        self,
        lc_id: int,
        size_bytes: int,
        deliver: Callable[[], None],
        abort: Callable[[], None] | None = None,
    ) -> bool:
        """Buffer ``size_bytes`` for transfer on ``lc_id``'s LP.

        ``deliver`` fires at the receiving side when the transfer
        completes; ``abort`` fires instead if the EIB fails while the
        transfer is still buffered or on the wire (exactly one of the two
        eventually runs once this returns True).  Returns False (drop)
        when the LP is missing/closing, the EIB is down, or the buffer is
        full -- the caller keeps ownership of the packet in that case.
        """
        lp = self._lps.get(lc_id)
        if lp is None or lp.closing or not self.healthy:
            self._drop(lc_id, size_bytes, "no_lp" if lp is None or lp.closing else "unhealthy")
            return False
        if lp.buffered_bytes + size_bytes > self._buffer_limit:
            self._drop(lc_id, size_bytes, "buffer_full")
            return False
        eligible = self._allocator.charge(lc_id, size_bytes, self._engine.now)
        if eligible == float("inf"):
            self._drop(lc_id, size_bytes, "rate_limited")
            return False
        lp.queue.append(_QueuedTransfer(size_bytes, eligible, deliver, abort))
        lp.buffered_bytes += size_bytes
        self._maybe_transmit()
        return True

    def _drop(self, lc_id: int, size_bytes: int, reason: str) -> None:
        """Count one dropped data transfer (with its reason, when observed)."""
        self.dropped_packets += 1
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("bus.data.dropped").inc()
            _metrics.REGISTRY.counter(f"bus.data.dropped.{reason}").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "bus.data.drop",
                t=self._engine.now,
                lc=lc_id,
                size_bytes=size_bytes,
                reason=reason,
            )

    def fail(self) -> None:
        """Passive-line failure: buffered and in-flight packets are lost,
        every LP is torn down.

        Each lost transfer's ``abort`` callback fires so router-level
        packets reach a terminal drop state instead of dangling in flight
        forever (the packet-conservation invariant depends on this).
        """
        self.healthy = False
        victims: list[_QueuedTransfer] = []
        if self._current is not None:
            victims.append(self._current)
            self._current = None
        for lc_id in list(self._lps):
            lp = self._lps[lc_id]
            victims.extend(lp.queue)
            lp.queue.clear()
            lp.buffered_bytes = 0
            lp.in_service = False
            self._finalize_close(lc_id)
        self.dropped_packets += len(victims)
        for item in victims:
            item.aborted = True
            if item.abort is not None:
                item.abort()

    def repair(self) -> None:
        """Bring the lines back (LPs must be re-established by protocol)."""
        self.healthy = True

    def _maybe_transmit(self) -> None:
        if self._busy or not self.healthy:
            return
        now = self._engine.now
        # Rotate through at most beta turns looking for an eligible buffer.
        for _ in range(max(1, self._arbiter.beta)):
            turn_lc = self._arbiter.current_turn()
            if turn_lc is None:
                return
            lp = self._lps.get(turn_lc)
            if lp and lp.queue and lp.queue[0].eligible_at <= now:
                self._transmit(lp)
                return
            # Empty or not-yet-eligible buffer: the LC skips its turn.
            self._arbiter.finish_turn(turn_lc)
        self._schedule_wake()

    def _transmit(self, lp: _LPQueue) -> None:
        self._busy = True
        lp.in_service = True
        item = lp.queue.popleft()
        self._current = item
        lp.buffered_bytes -= item.size_bytes
        duration = self._turn_overhead + item.size_bytes * 8.0 / self._rate
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("bus.tdm.grants").inc()
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "bus.tdm.grant",
                t=self._engine.now,
                lc=lp.lc_id,
                size_bytes=item.size_bytes,
                duration_s=duration,
            )

        def finish() -> None:
            self._busy = False
            lp.in_service = False
            if item.aborted or not self.healthy:
                return  # fail() already dropped it and ran its abort
            self._current = None
            self.transferred_bytes += item.size_bytes
            self.transferred_bytes_by_lc[lp.lc_id] += item.size_bytes
            self.transferred_packets += 1
            item.deliver()
            if lp.lc_id in self._lps:
                # An LP established mid-transmission reloads the round
                # counter (the newcomer leads); only lower L_t if this
                # LC still holds the turn.
                if self._arbiter.current_turn() == lp.lc_id:
                    self._arbiter.finish_turn(lp.lc_id)
                if lp.closing and not lp.draining:
                    self._finalize_close(lp.lc_id)
            self._maybe_transmit()

        self._engine.schedule_in(duration, finish, label="eib:data:tx")

    def _schedule_wake(self) -> None:
        pending = [
            lp.queue[0].eligible_at for lp in self._lps.values() if lp.queue
        ]
        if not pending:
            return
        wake_at = max(min(pending), self._engine.now)
        # A live pending wake that fires early enough already covers us.
        if (
            self._wake_handle is not None
            and not self._wake_handle.cancelled
            and self._wake_handle.time > self._engine.now
            and self._wake_handle.time <= wake_at
        ):
            return
        if self._wake_handle is not None:
            self._wake_handle.cancel()

        def wake() -> None:
            self._wake_handle = None
            self._maybe_transmit()

        self._wake_handle = self._engine.schedule(wake_at, wake, label="eib:data:wake")


class EIB:
    """The whole enhanced internal bus: control + data lines + health."""

    def __init__(
        self,
        engine: Engine,
        lc_ids: list[int],
        rng: np.random.Generator,
        *,
        data_rate_bps: float = 20e9,
        control_rate_bps: float = 2e9,
    ) -> None:
        self.arbiter = DistributedArbiter(lc_ids)
        self.allocator = EIBBandwidthAllocator(data_rate_bps)
        self.control = ControlChannel(engine, rng, rate_bps=control_rate_bps)
        self.data = DataChannel(engine, self.arbiter, self.allocator)

    @property
    def healthy(self) -> bool:
        """True while the passive lines are up."""
        return self.data.healthy and self.control.healthy

    def fail(self) -> None:
        """Fail the passive lines (``lam_bus`` event)."""
        self.control.healthy = False
        self.data.fail()

    def repair(self) -> None:
        """Repair the passive lines."""
        self.control.healthy = True
        self.data.repair()

"""SRU reassembly buffers.

The egress SRU collects a packet's fabric cells and reassembles them
(Section 2).  Modeling the buffer explicitly -- rather than counting
cells in a closure -- buys three behaviours the dependability story
cares about:

* an SRU that fails mid-reassembly destroys its partial packets (the
  in-flight loss the Markov models charge to the PI-unit failure);
* incomplete reassemblies (cells lost to a fabric outage) are garbage
  collected by a timeout instead of leaking state;
* per-LC reassembly occupancy is observable for tests and stats.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.router.packets import Cell
from repro.sim import Engine
from repro.sim.events import EventHandle

__all__ = ["ReassemblyBuffer", "PendingReassembly"]


@dataclass
class PendingReassembly:
    """One packet's in-progress reassembly state."""

    pkt_id: int
    total_cells: int
    received: int = 0
    on_complete: Callable[[], None] | None = None
    on_abort: Callable[[str], None] | None = None
    timeout_handle: EventHandle | None = field(default=None, repr=False)


class ReassemblyBuffer:
    """Per-SRU cell reassembly with timeout-based garbage collection."""

    def __init__(self, engine: Engine, *, timeout_s: float = 5e-3) -> None:
        if timeout_s <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout_s}")
        self._engine = engine
        self._timeout = timeout_s
        self._pending: dict[int, PendingReassembly] = {}
        self.completed = 0
        self.timed_out = 0
        self.flushed = 0

    @property
    def occupancy(self) -> int:
        """Packets currently being reassembled."""
        return len(self._pending)

    def is_pending(self, pkt_id: int) -> bool:
        """True while ``pkt_id`` has an open reassembly."""
        return pkt_id in self._pending

    def add_cell(
        self,
        cell: Cell,
        on_complete: Callable[[], None],
        on_abort: Callable[[str], None] | None = None,
    ) -> None:
        """Account one arriving cell; fires ``on_complete`` on the last.

        The first cell of a packet opens the reassembly and arms its
        timeout; cells of an already-dropped packet are ignored (their
        reassembly no longer exists).  ``on_abort`` fires with a reason
        string when the reassembly dies by timeout or flush.
        """
        entry = self._pending.get(cell.pkt_id)
        if entry is None:
            entry = PendingReassembly(
                pkt_id=cell.pkt_id,
                total_cells=cell.total,
                on_complete=on_complete,
                on_abort=on_abort,
            )
            self._pending[cell.pkt_id] = entry

            def fire_timeout() -> None:
                if self._pending.pop(cell.pkt_id, None) is not None:
                    self.timed_out += 1
                    if on_abort is not None:
                        on_abort("timeout")

            entry.timeout_handle = self._engine.schedule_in(
                self._timeout, fire_timeout, label="sru:reassembly-timeout"
            )
        entry.received += 1
        if entry.received >= entry.total_cells:
            self._pending.pop(cell.pkt_id, None)
            if entry.timeout_handle is not None:
                entry.timeout_handle.cancel()
            self.completed += 1
            complete = entry.on_complete
            if complete is not None:
                complete()

    def flush(self) -> int:
        """Destroy every in-progress reassembly (SRU failure); returns the
        number of partial packets lost."""
        entries = list(self._pending.values())
        self._pending.clear()
        for entry in entries:
            if entry.timeout_handle is not None:
                entry.timeout_handle.cancel()
            if entry.on_abort is not None:
                entry.on_abort("flush")
        self.flushed += len(entries)
        return len(entries)

"""Router metric collection.

One :class:`RouterStats` instance per router accumulates counters the
tests and benches assert on: offered/delivered/dropped packets (drops
keyed by reason), latency moments, EIB usage and coverage activity.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["RouterStats", "LatencyAccumulator"]


@dataclass
class LatencyAccumulator:
    """Streaming latency moments (count/mean/variance/min/max) in O(1)
    memory.

    The mean and variance use Welford's online update, and
    :meth:`merge` applies the parallel (Chan et al.) combination rule,
    so accumulators filled independently -- e.g. on separate runtime
    chunks -- reduce to exactly the moments a single sequential pass
    would produce (up to floating-point reassociation).
    """

    count: int = 0
    mean: float = 0.0
    #: sum of squared deviations from the running mean (Welford's M2)
    m2: float = 0.0
    min_value: float = float("inf")
    max_value: float = 0.0

    def add(self, value: float) -> None:
        """Record one latency sample."""
        if value < 0.0:
            raise ValueError(f"negative latency {value}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    def merge(self, other: "LatencyAccumulator") -> None:
        """Fold another accumulator into this one (parallel Welford).

        Examples
        --------
        >>> a, b, ref = LatencyAccumulator(), LatencyAccumulator(), LatencyAccumulator()
        >>> for v in (1.0, 2.0): a.add(v)
        >>> for v in (3.0, 4.0): b.add(v)
        >>> for v in (1.0, 2.0, 3.0, 4.0): ref.add(v)
        >>> a.merge(b)
        >>> a.count == ref.count and abs(a.variance - ref.variance) < 1e-12
        True
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min_value = other.min_value
            self.max_value = other.max_value
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    @property
    def total(self) -> float:
        """Sum of recorded latencies (mean * count)."""
        return self.mean * self.count

    @property
    def variance(self) -> float:
        """Sample variance (0.0 with fewer than two samples)."""
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0.0 with fewer than two samples)."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample, normalized to 0.0 when nothing was recorded
        (never renders the internal ``inf`` sentinel)."""
        return self.min_value if self.count else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 when nothing was recorded)."""
        return self.max_value if self.count else 0.0


@dataclass
class RouterStats:
    """Aggregated router metrics."""

    offered: int = 0
    delivered: int = 0
    drops: Counter = field(default_factory=Counter)
    latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    #: packets delivered per destination LC
    delivered_by_lc: Counter = field(default_factory=Counter)
    #: delivered payload bytes keyed by *ingress* LC -- the per-source
    #: goodput the differential validation harness compares against the
    #: Section 5.3 bandwidth algebra.
    delivered_bytes_by_ingress: Counter = field(default_factory=Counter)
    #: packets that used the EIB datapath at least once
    covered_deliveries: int = 0
    #: coverage streams successfully established
    streams_established: int = 0
    #: solicitations that found no able covering LC
    streams_failed: int = 0
    #: remote lookups served over the control lines (REQ_L / REP_L)
    remote_lookups: int = 0

    @property
    def dropped(self) -> int:
        """Total drops across all reasons."""
        return sum(self.drops.values())

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered (1.0 when nothing was offered)."""
        return self.delivered / self.offered if self.offered else 1.0

    def drop(self, reason: str) -> None:
        """Record one dropped packet under ``reason``."""
        self.drops[reason] += 1

    def merge(self, other: "RouterStats") -> None:
        """Fold another stats block into this one (chunked runs reduce)."""
        self.offered += other.offered
        self.delivered += other.delivered
        self.drops.update(other.drops)
        self.latency.merge(other.latency)
        self.delivered_by_lc.update(other.delivered_by_lc)
        self.delivered_bytes_by_ingress.update(other.delivered_bytes_by_ingress)
        self.covered_deliveries += other.covered_deliveries
        self.streams_established += other.streams_established
        self.streams_failed += other.streams_failed
        self.remote_lookups += other.remote_lookups

    def summary(self) -> str:
        """Multi-line human-readable digest.

        Latency renders as mean +/- sample stdev with the min/max
        envelope; an empty accumulator shows zeros, never ``inf``.
        """
        lat = self.latency
        lines = [
            f"offered            {self.offered}",
            f"delivered          {self.delivered} ({self.delivery_ratio:.2%})",
            f"covered deliveries {self.covered_deliveries}",
            f"remote lookups     {self.remote_lookups}",
            f"streams ok/failed  {self.streams_established}/{self.streams_failed}",
            f"latency            {lat.mean * 1e6:.2f} +/- {lat.stdev * 1e6:.2f} us "
            f"(min {lat.minimum * 1e6:.2f}, max {lat.maximum * 1e6:.2f})",
        ]
        for reason, count in self.drops.most_common():
            lines.append(f"drop[{reason}]  {count}")
        return "\n".join(lines)

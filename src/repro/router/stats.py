"""Router metric collection.

One :class:`RouterStats` instance per router accumulates counters the
tests and benches assert on: offered/delivered/dropped packets (drops
keyed by reason), latency moments, EIB usage and coverage activity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["RouterStats", "LatencyAccumulator"]


@dataclass
class LatencyAccumulator:
    """Streaming mean/min/max/count of packet latencies (no sample list,
    so long runs stay O(1) in memory)."""

    count: int = 0
    total: float = 0.0
    min_value: float = float("inf")
    max_value: float = 0.0

    def add(self, value: float) -> None:
        """Record one latency sample."""
        if value < 0.0:
            raise ValueError(f"negative latency {value}")
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    @property
    def mean(self) -> float:
        """Mean latency (0.0 before any sample)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class RouterStats:
    """Aggregated router metrics."""

    offered: int = 0
    delivered: int = 0
    drops: Counter = field(default_factory=Counter)
    latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    #: packets delivered per destination LC
    delivered_by_lc: Counter = field(default_factory=Counter)
    #: packets that used the EIB datapath at least once
    covered_deliveries: int = 0
    #: coverage streams successfully established
    streams_established: int = 0
    #: solicitations that found no able covering LC
    streams_failed: int = 0
    #: remote lookups served over the control lines (REQ_L / REP_L)
    remote_lookups: int = 0

    @property
    def dropped(self) -> int:
        """Total drops across all reasons."""
        return sum(self.drops.values())

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered (1.0 when nothing was offered)."""
        return self.delivered / self.offered if self.offered else 1.0

    def drop(self, reason: str) -> None:
        """Record one dropped packet under ``reason``."""
        self.drops[reason] += 1

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"offered            {self.offered}",
            f"delivered          {self.delivered} ({self.delivery_ratio:.2%})",
            f"covered deliveries {self.covered_deliveries}",
            f"remote lookups     {self.remote_lookups}",
            f"streams ok/failed  {self.streams_established}/{self.streams_failed}",
            f"mean latency       {self.latency.mean * 1e6:.2f} us",
        ]
        for reason, count in self.drops.most_common():
            lines.append(f"drop[{reason}]  {count}")
        return "\n".join(lines)

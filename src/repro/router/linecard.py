"""Linecards in BDR and DRA styles.

A DRA linecard (Figure 2) has four units -- PIU, PDLU, SRU, LFE -- plus a
bus controller on the EIB.  A BDR linecard (Figure 1) has no separate
PDLU: protocol-dependent logic is fused into the PIU and SRU, so the model
gives it the three classic units and *no* bus controller (there is no EIB
to attach to; the maintenance bus is not a datapath in BDR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.router.components import (
    LFE,
    PDLU,
    PIU,
    SRU,
    BusController,
    Component,
    ComponentKind,
)
from repro.router.packets import Protocol
from repro.router.routing import RoutingTable

__all__ = ["Linecard"]


@dataclass
class Linecard:
    """One linecard: functional units, protocol, capacity and load accounting.

    Parameters
    ----------
    lc_id:
        Slot index; also the LC's fabric port.
    protocol:
        The L2 protocol this card terminates.
    dra:
        True builds the DRA unit set (separate PDLU + bus controller).
    capacity_bps:
        Line-rate of the card (paper: 10 Gbps).
    """

    lc_id: int
    protocol: Protocol
    dra: bool = True
    capacity_bps: float = 10e9

    piu: PIU = field(init=False)
    pdlu: PDLU | None = field(init=False)
    sru: SRU = field(init=False)
    lfe: LFE = field(init=False)
    bus_controller: BusController | None = field(init=False)
    table: RoutingTable = field(init=False, default_factory=RoutingTable)

    #: Bits currently committed per second: own offered load plus any
    #: coverage streams accepted on behalf of faulty LCs.
    committed_bps: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0.0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bps}")
        self.piu = PIU(self.lc_id)
        self.pdlu = PDLU(self.lc_id, self.protocol) if self.dra else None
        self.sru = SRU(self.lc_id)
        self.lfe = LFE(self.lc_id)
        self.bus_controller = BusController(self.lc_id) if self.dra else None

    # -- unit access ---------------------------------------------------------

    def unit(self, kind: ComponentKind) -> Component | None:
        """The unit of the given kind, or ``None`` if this style lacks it."""
        return {
            ComponentKind.PIU: self.piu,
            ComponentKind.PDLU: self.pdlu,
            ComponentKind.SRU: self.sru,
            ComponentKind.LFE: self.lfe,
            ComponentKind.BUS_CONTROLLER: self.bus_controller,
        }[kind]

    def units(self) -> list[Component]:
        """All present units."""
        out: list[Component] = [self.piu, self.sru, self.lfe]
        if self.pdlu is not None:
            out.append(self.pdlu)
        if self.bus_controller is not None:
            out.append(self.bus_controller)
        return out

    def failed_kinds(self) -> set[ComponentKind]:
        """Kinds of all currently failed units on this card."""
        return {u.kind for u in self.units() if not u.healthy}

    @property
    def fully_healthy(self) -> bool:
        """True when every unit on the card is up."""
        return all(u.healthy for u in self.units())

    @property
    def datapath_healthy(self) -> bool:
        """True when the units a packet traverses are all up (the bus
        controller is not on the no-fault datapath)."""
        datapath = [self.piu, self.sru, self.lfe]
        if self.pdlu is not None:
            datapath.append(self.pdlu)
        return all(u.healthy for u in datapath)

    # -- coverage capacity accounting (Section 5.3's psi) --------------------

    @property
    def headroom_bps(self) -> float:
        """Spare capacity this card can offer to faulty LCs."""
        return max(0.0, self.capacity_bps - self.committed_bps)

    def reserve(self, rate_bps: float) -> bool:
        """Commit ``rate_bps`` of this card's capacity to a coverage
        stream; False (and no change) when headroom is insufficient."""
        if rate_bps < 0.0:
            raise ValueError(f"negative reservation {rate_bps}")
        if rate_bps > self.headroom_bps * (1.0 + 1e-9):
            return False
        self.committed_bps += rate_bps
        return True

    def release(self, rate_bps: float) -> None:
        """Return previously reserved coverage capacity."""
        if rate_bps < 0.0:
            raise ValueError(f"negative release {rate_bps}")
        self.committed_bps = max(0.0, self.committed_bps - rate_bps)

    def can_cover(
        self, fault: ComponentKind, protocol: Protocol, rate_bps: float
    ) -> bool:
        """Section 3.2 candidate check: can this card cover a fault of
        ``fault`` kind on a card running ``protocol`` at ``rate_bps``?

        Requires (1) a DRA card with a healthy bus controller, (2) the
        covering unit *and everything downstream of it* on this card to be
        healthy (a PDLU-coverage stream continues through this card's SRU
        and LFE -- the Markov analysis treats the pools as independent,
        but functionally the whole remaining chain must run), (3) a
        protocol match when the fault is at the PDLU, and (4) sufficient
        headroom.
        """
        if not self.dra or self.bus_controller is None or not self.bus_controller.healthy:
            return False
        if fault is ComponentKind.PDLU:
            if self.pdlu is None or not self.pdlu.healthy:
                return False
            if self.pdlu.protocol is not protocol:
                return False
            if not (self.sru.healthy and self.lfe.healthy):
                return False
        elif fault is ComponentKind.SRU:
            if not (self.sru.healthy and self.lfe.healthy):
                return False
        elif fault is ComponentKind.LFE:
            if not self.lfe.healthy:
                return False
        else:
            # PIU and bus-controller faults are not coverable (Section 3.2).
            return False
        return rate_bps <= self.headroom_bps * (1.0 + 1e-9)

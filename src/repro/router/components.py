"""Linecard functional units: PIU, PDLU, SRU, LFE, bus controller.

Each unit is a small state machine with a health flag and a deterministic
service-time model (fixed per-packet overhead plus a size-proportional
term).  Failure semantics follow Section 3.2's functional fault model: a
failed unit stops processing entirely; it is restored only by repair
(hot-swap) -- there is no partial degradation within a unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.router.packets import Protocol

__all__ = [
    "ComponentKind",
    "Component",
    "PIU",
    "PDLU",
    "SRU",
    "LFE",
    "BusController",
    "ServiceModel",
]


class ComponentKind(enum.Enum):
    """The linecard units of Figure 2 (plus the EIB bus controller)."""

    PIU = "PIU"
    PDLU = "PDLU"
    SRU = "SRU"
    LFE = "LFE"
    BUS_CONTROLLER = "BC"

    @property
    def is_protocol_dependent(self) -> bool:
        """True for the unit whose coverage requires a same-protocol LC."""
        return self is ComponentKind.PDLU

    @property
    def is_pi_unit(self) -> bool:
        """True for the protocol-independent datapath units (SRU, LFE).

        The dependability analysis groups these as the "PI units" with the
        combined failure rate ``lam_lpi``.
        """
        return self in (ComponentKind.SRU, ComponentKind.LFE)


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic per-unit service time: ``overhead + bytes / rate``.

    A unit must process faster than the 10 Gbps line it serves (hardware
    pipelines at line rate or better), and it handles both directions of
    its LC's traffic plus any coverage work -- hence the 4x-line-rate
    default with a small fixed overhead.

    Parameters
    ----------
    overhead_s:
        Fixed per-packet processing latency (seconds).
    rate_bps:
        Sustained processing throughput in bits per second.
    """

    overhead_s: float = 40e-9
    rate_bps: float = 40e9

    def delay(self, size_bytes: int) -> float:
        """Service time for a unit of ``size_bytes``."""
        return self.overhead_s + (size_bytes * 8.0) / self.rate_bps


@dataclass
class Component:
    """Base class for linecard units.

    ``healthy`` is toggled by the fault injector; ``processed`` counts
    units of work completed while healthy.  Each unit is a single server:
    :meth:`serve` accounts queueing behind earlier work via ``busy_until``,
    so latency grows with load (and ``busy_time`` feeds utilization
    stats).

    ``slow_factor`` models *fail-slow* (gray) failures: the unit still
    functions -- so neither the fault map nor the coverage planner reacts
    -- but every service takes ``slow_factor`` times longer, inflating
    queueing delay under load.  ``1.0`` is nominal speed.
    """

    kind: ComponentKind
    lc_id: int
    service: ServiceModel = field(default_factory=ServiceModel)
    healthy: bool = True
    processed: int = 0
    busy_until: float = 0.0
    busy_time: float = 0.0
    slow_factor: float = 1.0

    def fail(self) -> None:
        """Mark the unit failed (idempotent)."""
        self.healthy = False

    def repair(self) -> None:
        """Restore the unit to service (hot-swap replacement).

        Any virtual backlog dies with the replaced hardware, so the
        server comes back idle at nominal speed.
        """
        self.healthy = True
        self.busy_until = 0.0
        self.slow_factor = 1.0

    def degrade(self, factor: float) -> None:
        """Enter fail-slow operation: services stretch by ``factor``."""
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1, got {factor}")
        self.slow_factor = factor

    def restore_speed(self) -> None:
        """Leave fail-slow operation (the degraded part was reseated)."""
        self.slow_factor = 1.0

    @property
    def degraded(self) -> bool:
        """True while the unit runs slower than nominal."""
        return self.slow_factor > 1.0

    def process_delay(self, size_bytes: int) -> float:
        """Pure service delay (no queueing) for one unit of work; raises
        if the unit is down.

        Callers are expected to check ``healthy`` first and take the
        coverage path; this raise is a model-consistency backstop.
        """
        if not self.healthy:
            raise RuntimeError(
                f"{self.kind.value}@LC{self.lc_id} processed work while failed"
            )
        self.processed += 1
        return self.service.delay(size_bytes) * self.slow_factor

    def serve(self, size_bytes: int, now: float) -> float:
        """Queue-aware sojourn time for work arriving at ``now``.

        The unit is a FIFO single server: the work waits until
        ``busy_until``, then takes the deterministic service delay.
        Returns waiting + service time; raises if the unit is down.
        """
        if not self.healthy:
            raise RuntimeError(
                f"{self.kind.value}@LC{self.lc_id} processed work while failed"
            )
        start = max(now, self.busy_until)
        delay = self.service.delay(size_bytes) * self.slow_factor
        self.busy_until = start + delay
        self.busy_time += delay
        self.processed += 1
        return (start - now) + delay

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time this unit spent serving."""
        if elapsed <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    @property
    def name(self) -> str:
        """Short diagnostic name, e.g. ``SRU@LC3``."""
        return f"{self.kind.value}@LC{self.lc_id}"


@dataclass
class PIU(Component):
    """Physical interface unit: one per LC in this model (ports are
    aggregated; a PIU failure takes the whole external link down, which is
    why the analysis treats it as un-coverable)."""

    def __init__(self, lc_id: int, service: ServiceModel | None = None) -> None:
        super().__init__(ComponentKind.PIU, lc_id, service or ServiceModel())


@dataclass
class PDLU(Component):
    """Protocol-dependent logic unit (DRA only): detects L2 frame
    boundaries, extracts/attaches headers for its programmed protocol."""

    protocol: Protocol = Protocol.ETHERNET

    def __init__(
        self,
        lc_id: int,
        protocol: Protocol,
        service: ServiceModel | None = None,
    ) -> None:
        super().__init__(ComponentKind.PDLU, lc_id, service or ServiceModel())
        self.protocol = protocol


@dataclass
class SRU(Component):
    """Segmentation-and-reassembly unit: packet <-> fabric cells."""

    def __init__(self, lc_id: int, service: ServiceModel | None = None) -> None:
        super().__init__(ComponentKind.SRU, lc_id, service or ServiceModel())


@dataclass
class LFE(Component):
    """Local forwarding engine: holds the distributed routing-table copy
    and answers destination lookups."""

    def __init__(self, lc_id: int, service: ServiceModel | None = None) -> None:
        # Lookups are small fixed-cost operations dominated by overhead.
        super().__init__(
            ComponentKind.LFE, lc_id, service or ServiceModel(overhead_s=50e-9)
        )


@dataclass
class BusController(Component):
    """Per-LC EIB bus controller: CSMA/CD on the control lines, TDM turn
    management on the data lines (Section 4)."""

    def __init__(self, lc_id: int, service: ServiceModel | None = None) -> None:
        super().__init__(
            ComponentKind.BUS_CONTROLLER,
            lc_id,
            service or ServiceModel(overhead_s=100e-9, rate_bps=40e9),
        )

"""Packets, cells and EIB control packets.

Data units:

* :class:`Packet` -- a variable-length L3 datagram entering/leaving the
  router through LC ports.
* :class:`Cell` -- the fixed-length unit the SRU segments packets into for
  transfer over the switching fabric (the EIB, by contrast, carries whole
  packets -- one of the distributed bus's advantages listed in Section 4).
* :class:`ControlPacket` -- the five control-line packet kinds of the EIB
  protocol (REQ_D, REP_D, REQ_L, REP_L, REL_D) carrying the processing-tier
  parameters (data rate, protocol type, faulty component, lookup
  address/result).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = [
    "Protocol",
    "Packet",
    "Cell",
    "CELL_PAYLOAD_BYTES",
    "cell_count",
    "segment",
    "ControlKind",
    "ControlPacket",
]

#: Payload bytes per fabric cell.  The paper cites fixed-length cells
#: without a size; 48 bytes (ATM-style, as in many fabric designs of the
#: era) is used throughout.
CELL_PAYLOAD_BYTES = 48

_packet_ids = itertools.count()


class Protocol(enum.Enum):
    """Layer-2 protocol families terminated by linecards.

    The PDLU of a DRA linecard is programmed for exactly one of these; a
    PDLU fault can only be covered by an LC whose PDLU implements the same
    protocol (Section 3.1).
    """

    ETHERNET = "ethernet"
    SONET_POS = "sonet-pos"
    ATM = "atm"
    FRAME_RELAY = "frame-relay"


@dataclass
class Packet:
    """A datagram transiting the router.

    ``path`` records every processing hop for assertions in tests ("the
    packet actually detoured over the EIB through LC 3's PDLU").
    """

    src_lc: int
    dst_lc: int
    dst_addr: int
    size_bytes: int
    protocol: Protocol
    created_at: float
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    delivered_at: float | None = None
    #: set once the packet reached a terminal state (delivered or
    #: dropped); late events for the same packet must not count again.
    terminated: bool = False
    path: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        if not 0 <= self.dst_addr < 2**32:
            raise ValueError(f"dst_addr must be an IPv4 integer, got {self.dst_addr}")

    def hop(self, label: str) -> None:
        """Append a processing-stage label to the packet's recorded path."""
        self.path.append(label)

    @property
    def latency(self) -> float | None:
        """End-to-end delay, or ``None`` while in flight / dropped."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at


@dataclass(frozen=True)
class Cell:
    """One fixed-length fabric cell of a segmented packet."""

    pkt_id: int
    seq: int
    total: int
    payload_bytes: int
    dst_lc: int

    def __post_init__(self) -> None:
        if not 0 <= self.seq < self.total:
            raise ValueError(f"cell seq {self.seq} out of range for total {self.total}")
        if not 0 < self.payload_bytes <= CELL_PAYLOAD_BYTES:
            raise ValueError(f"invalid cell payload {self.payload_bytes}")


def cell_count(size_bytes: int) -> int:
    """Fabric cells a packet of ``size_bytes`` segments into.

    >>> cell_count(1500)
    32
    >>> cell_count(48), cell_count(49)
    (1, 2)
    """
    return -(-size_bytes // CELL_PAYLOAD_BYTES)  # ceil division


def segment(packet: Packet, dst_lc: int | None = None) -> list[Cell]:
    """Split ``packet`` into fabric cells (the SRU's segmentation step).

    The last cell may be partially filled.  ``dst_lc`` overrides the
    packet's destination LC (used when cells detour through an LC_inter).
    """
    dst = packet.dst_lc if dst_lc is None else dst_lc
    n_cells = cell_count(packet.size_bytes)
    pkt_id = packet.pkt_id
    last = packet.size_bytes - (n_cells - 1) * CELL_PAYLOAD_BYTES
    cells = [
        Cell(
            pkt_id=pkt_id,
            seq=seq,
            total=n_cells,
            payload_bytes=CELL_PAYLOAD_BYTES,
            dst_lc=dst,
        )
        for seq in range(n_cells - 1)
    ]
    cells.append(
        Cell(
            pkt_id=pkt_id,
            seq=n_cells - 1,
            total=n_cells,
            payload_bytes=last,
            dst_lc=dst,
        )
    )
    return cells


class ControlKind(enum.Enum):
    """The five EIB control-packet types of Section 4, plus the fault
    dissemination packets of the detection layer (``docs/chaos.md``).

    The paper's protocol assumes the fault map is "maintained by the
    processing-tier parameters of the control packets" without naming the
    packets; ``FLT_N``/``FLT_C``/``HB`` make that exchange explicit so
    detection latency and lossy control lines become modelable.
    """

    REQ_D = "REQ_D"  # request a data transfer over the EIB data lines
    REP_D = "REP_D"  # accept a data-transfer request
    REQ_L = "REQ_L"  # request an IP lookup (faulty LFE)
    REP_L = "REP_L"  # lookup reply, result embedded in the control packet
    REL_D = "REL_D"  # release an established logical path
    FLT_N = "FLT_N"  # fault notification: init_lc detected faulty_component locally
    FLT_C = "FLT_C"  # fault clear: init_lc repaired faulty_component
    HB = "HB"        # heartbeat re-advertising init_lc's believed local fault set


@dataclass(frozen=True)
class ControlPacket:
    """An EIB control-line packet.

    Field groups follow the protocol's three tiers:

    * addressing tier -- ``init_lc`` (LC_init) and ``rec_lc`` (LC_rec;
      ``None`` means broadcast, e.g. a forward-path REQ_D soliciting any
      able LC_inter);
    * communication tier -- ``kind``;
    * processing tier -- ``data_rate`` (Gbps requested by LC_init),
      ``protocol`` (for LC_inter protocol matching), ``faulty_component``
      (drives the packets-vs-cells delivery decision at healthy LCs),
      ``lookup_addr`` / ``lookup_result`` (REQ_L / REP_L payloads),
      ``lp_id`` (logical-path being created or released),
      ``fault_status`` (an HB's full advertised local fault set, as
      component-kind value strings -- optionally suffixed ``#<fault_id>``
      with the sender's correlation id -- enabling anti-entropy
      reconvergence after lost FLT_N/FLT_C packets), and ``fault_id``
      (the correlation id of the fault an FLT_N/FLT_C refers to, minted
      at injection so incident spans can link detection to its cause).
    """

    kind: ControlKind
    init_lc: int
    rec_lc: int | None = None
    data_rate: float = 0.0
    protocol: Protocol | None = None
    faulty_component: object | None = None
    lookup_addr: int | None = None
    lookup_result: int | None = None
    lp_id: int | None = None
    fault_status: tuple[str, ...] | None = None
    fault_id: int | None = None

    #: Control packets are small and fixed-size; 32 bytes covers the tier
    #: fields plus framing.
    SIZE_BYTES = 32

    def __post_init__(self) -> None:
        if self.data_rate < 0.0:
            raise ValueError(f"negative data rate {self.data_rate}")
        if self.kind is ControlKind.REQ_L and self.lookup_addr is None:
            raise ValueError("REQ_L requires a lookup_addr")
        if self.kind is ControlKind.REP_L and self.lookup_result is None:
            raise ValueError("REP_L requires a lookup_result")
        if self.kind is ControlKind.REL_D and self.lp_id is None:
            raise ValueError("REL_D must name the logical path being released")
        if self.kind in (ControlKind.FLT_N, ControlKind.FLT_C) and self.faulty_component is None:
            raise ValueError(f"{self.kind.value} must name the faulty component")
        if self.kind is ControlKind.HB and self.fault_status is None:
            raise ValueError("HB must carry a fault_status tuple (possibly empty)")

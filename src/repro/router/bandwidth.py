"""B_prom bandwidth allocation over the EIB data lines (Section 4).

Wraps :func:`repro.core.performance.promised_bandwidth` (the paper's
scale-back rule) in a stateful allocator the bus uses: logical paths
register their requested rates, and every registration/deregistration
recomputes each LP's *promised* rate.  The data channel paces each LP to
its promise with a virtual-time token scheme, and LPs whose backlog
exceeds the configured buffer drop packets -- the paper's "scale back
their transmission rates accordingly by dropping packets".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.performance import promised_bandwidth

__all__ = ["EIBBandwidthAllocator", "LPAllocation"]


@dataclass
class LPAllocation:
    """One logical path's bandwidth state."""

    lp_id: int
    requested_bps: float
    promised_bps: float = 0.0
    #: Virtual time before which the LP has exhausted its promised credit.
    next_eligible: float = 0.0


class EIBBandwidthAllocator:
    """Tracks LP bandwidth requests and the resulting promises."""

    def __init__(self, bus_capacity_bps: float) -> None:
        if bus_capacity_bps <= 0.0:
            raise ValueError(f"bus capacity must be positive, got {bus_capacity_bps}")
        self._capacity = bus_capacity_bps
        self._lps: dict[int, LPAllocation] = {}

    @property
    def capacity_bps(self) -> float:
        """The EIB data-line capacity ``B_BUS``."""
        return self._capacity

    @property
    def total_requested_bps(self) -> float:
        """``B_LCT``: sum of all current requests."""
        return sum(lp.requested_bps for lp in self._lps.values())

    @property
    def oversubscribed(self) -> bool:
        """True when requests exceed the bus and promises are scaled back."""
        return self.total_requested_bps > self._capacity

    def register(self, lp_id: int, requested_bps: float) -> LPAllocation:
        """Add a logical path and recompute all promises."""
        if requested_bps < 0.0:
            raise ValueError(f"negative request {requested_bps}")
        if lp_id in self._lps:
            raise ValueError(f"LP {lp_id} already registered")
        alloc = LPAllocation(lp_id=lp_id, requested_bps=requested_bps)
        self._lps[lp_id] = alloc
        self._recompute()
        return alloc

    def update_request(self, lp_id: int, requested_bps: float) -> None:
        """Change an LP's requested rate (streams sharing one LP re-post
        their combined requirement) and recompute all promises."""
        if requested_bps < 0.0:
            raise ValueError(f"negative request {requested_bps}")
        self._lps[lp_id].requested_bps = requested_bps
        self._recompute()

    def deregister(self, lp_id: int) -> None:
        """Remove a logical path and recompute remaining promises."""
        if lp_id not in self._lps:
            raise ValueError(f"LP {lp_id} not registered")
        del self._lps[lp_id]
        self._recompute()

    def allocation(self, lp_id: int) -> LPAllocation:
        """The allocation record for ``lp_id``."""
        return self._lps[lp_id]

    def promises(self) -> dict[int, float]:
        """Current promised rate per LP id."""
        return {lp_id: lp.promised_bps for lp_id, lp in self._lps.items()}

    def charge(self, lp_id: int, size_bytes: int, now: float) -> float:
        """Consume credit for one packet; returns its eligible-to-send time.

        Implements per-LP pacing at the promised rate: each packet is
        eligible ``size * 8 / promise`` after the previous one (or
        immediately when the LP has been idle past that point).
        """
        lp = self._lps[lp_id]
        if lp.promised_bps <= 0.0:
            return float("inf")
        start = max(now, lp.next_eligible)
        lp.next_eligible = start + (size_bytes * 8.0) / lp.promised_bps
        return start

    def _recompute(self) -> None:
        if not self._lps:
            return
        ids = list(self._lps)
        requests = np.array([self._lps[i].requested_bps for i in ids])
        promises = promised_bandwidth(requests, self._capacity)
        for lp_id, promise in zip(ids, promises):
            self._lps[lp_id].promised_bps = float(promise)

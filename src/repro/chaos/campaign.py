"""Deterministic chaos campaigns: N seeded fault schedules + invariants.

A campaign runs ``seeds`` independent schedules.  Each schedule builds a
DRA router with a seed derived from ``(base_seed, index)``, switches the
planner onto the detection layer (:mod:`repro.chaos.detection`), offers
uniform load, and lets an accelerated
:class:`~repro.router.faults.FaultInjector` with the full fault
taxonomy (crash / transient / intermittent / fail-slow / control-medium
degradation) tear at it.  After the traffic stops and the router
drains, :func:`repro.chaos.invariants.check_invariants` audits the end
state; any violating schedule is re-run under an in-memory tracer and
reports a trace window around the end of the run.

Schedules fan out through
:func:`repro.runtime.executor.metered_parallel_map`; summaries are
pure, deterministically-ordered JSON so ``--jobs 1`` and ``--jobs 4``
produce bit-identical reports.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.chaos.detection import DetectionConfig
from repro.chaos.invariants import check_invariants
from repro.obs import trace as _trace
from repro.router.faults import FaultInjector, FaultModes
from repro.router.router import Router, RouterConfig, RouterMode
from repro.runtime.executor import metered_parallel_map
from repro.traffic.generators import wire_uniform_load

__all__ = ["CampaignConfig", "run_schedule", "run_campaign"]

CAMPAIGN_SCHEMA_VERSION = 1


def _default_modes() -> FaultModes:
    # Every taxonomy member exercised; rates tuned so an accelerated
    # 4 ms schedule sees a handful of faults plus ~0-2 control-medium
    # degradation windows.
    return FaultModes(
        crash_weight=0.4,
        transient_weight=0.25,
        intermittent_weight=0.15,
        fail_slow_weight=0.2,
        ctl_fault_rate=50.0,
    )


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one chaos campaign (shared by every schedule)."""

    seeds: int = 32
    base_seed: int = 0
    n_linecards: int = 6
    load: float = 0.25
    #: traffic + fault window per schedule
    duration_s: float = 0.004
    #: additional quiet time for in-flight work to drain (must exceed
    #: the reassembly timeout so partials abort rather than linger)
    drain_s: float = 0.012
    #: failure-rate acceleration over the paper's per-hour rates
    accel: float = 1e7
    #: repair rate (1/s) at accelerated time
    repair_rate: float = 20000.0
    detection: DetectionConfig = field(default_factory=DetectionConfig)
    modes: FaultModes = field(default_factory=_default_modes)
    #: trace events kept around a violation (tail window)
    trace_events: int = 40
    #: quiet time required before view convergence is asserted; the
    #: drain window exceeds this by construction
    settle_s: float = 0.002
    #: planner v2 coverage policy every schedule runs under ("static"
    #: keeps the paper's slot-rank first-fit; "adaptive" adds scoring,
    #: replanning and fair degradation -- same 13 invariant families).
    coverage_policy: str = "static"
    #: fabric cell-clock dispatch ("batched" or its bit-identical
    #: "scalar" reference oracle, docs/performance.md).
    cell_dispatch: str = "batched"

    def __post_init__(self) -> None:
        if self.seeds <= 0:
            raise ValueError(f"seeds must be positive, got {self.seeds}")
        if self.duration_s <= 0.0 or self.drain_s <= 0.0:
            raise ValueError("duration_s and drain_s must be positive")

    def schedule_seed(self, idx: int) -> int:
        """Derived seed for schedule ``idx`` (stable, spawn-keyed)."""
        seq = np.random.SeedSequence(entropy=self.base_seed, spawn_key=(idx,))
        return int(seq.generate_state(1)[0])


def _jsonable_config(cfg: CampaignConfig) -> dict:
    out = dataclasses.asdict(cfg)
    # Enum-free: asdict keeps plain floats/ints for the nested frozen
    # dataclasses, so the dict is already JSON-serialisable.
    return out


def run_schedule(cfg: CampaignConfig, idx: int) -> dict:
    """Run one seeded fault schedule; return its deterministic summary."""
    seed = cfg.schedule_seed(idx)
    router = Router(
        RouterConfig(
            n_linecards=cfg.n_linecards,
            mode=RouterMode.DRA,
            seed=seed,
            coverage_policy=cfg.coverage_policy,
            cell_dispatch=cfg.cell_dispatch,
        )
    )
    detector = router.enable_detection(cfg.detection)
    sources = wire_uniform_load(router, cfg.load)
    injector = FaultInjector.accelerated(
        router,
        router.rng.stream("chaos-injector"),
        accel=cfg.accel,
        repair_rate=cfg.repair_rate,
        modes=cfg.modes,
    )
    injector.start()
    router.engine.run(until=cfg.duration_s)
    injector.stop()
    for src in sources:
        src.stop()
    router.engine.run(until=cfg.duration_s + cfg.drain_s)

    violations = check_invariants(
        router, injector, detector, settle_s=cfg.settle_s
    )

    s = router.stats
    action_counts: dict[str, int] = {}
    mode_counts: dict[str, int] = {}
    for ev in injector.log:
        action_counts[ev.action] = action_counts.get(ev.action, 0) + 1
        if ev.action == "fail":
            mode_counts[ev.mode] = mode_counts.get(ev.mode, 0) + 1
    detections = detector.detections()
    eib = router.eib
    assert eib is not None

    summary: dict = {
        "index": idx,
        "seed": seed,
        "offered": s.offered,
        "delivered": s.delivered,
        "dropped": s.dropped,
        "drops": {k: v for k, v in sorted(s.drops.items())},
        "fault_actions": {k: v for k, v in sorted(action_counts.items())},
        "fault_modes": {k: v for k, v in sorted(mode_counts.items())},
        "detections": len(detections),
        "mean_detection_latency_s": _mean_detection_latency(detector),
        "ctl_lost": eib.control.lost,
        "ctl_corrupted": eib.control.corrupted,
        "ctl_abandoned": eib.control.failures,
        "violations": [
            {"check": v.check, "detail": v.detail} for v in violations
        ],
    }
    if violations:
        window, incidents = _violation_artifacts(cfg, idx)
        summary["trace_window"] = window
        summary["incident_report"] = incidents
    return summary


def _mean_detection_latency(detector) -> float | None:
    latencies = detector.detection_latencies()
    if not latencies:
        return None
    return float(sum(latencies) / len(latencies))


def _violation_artifacts(cfg: CampaignConfig, idx: int) -> tuple[list[dict], dict]:
    """Re-run a violating schedule under an in-memory tracer.

    Returns the tail of its event stream (context for the violation
    report) plus the ``repro-incidents v1`` report folded from the
    *full* replayed trace -- the causal timeline of every fault the
    schedule injected, so a violation ships with its incident analysis
    attached.
    """
    from repro.obs.spans import SpanBuilder, build_incident_report

    tracer = _trace.Tracer(path=None)
    prev = _trace.TRACER
    _trace.set_tracer(tracer)
    try:
        # Same cfg + idx => identical schedule (all RNG is seed-derived).
        _replay_for_trace(cfg, idx)
    finally:
        _trace.set_tracer(prev)
    window = [
        {"seq": ev.seq, "t": ev.t, "kind": ev.kind, "data": ev.data}
        for ev in tracer.events[-cfg.trace_events :]
    ]
    spans = SpanBuilder().feed_all(tracer.events).spans()
    incidents = build_incident_report(
        spans, source=f"schedule[{idx}] seed={cfg.schedule_seed(idx)}"
    )
    return window, incidents


def _trace_window(cfg: CampaignConfig, idx: int) -> list[dict]:
    """Re-run a violating schedule under an in-memory tracer; return the
    tail of its event stream as context for the violation report."""
    window, _incidents = _violation_artifacts(cfg, idx)
    return window


def _replay_for_trace(cfg: CampaignConfig, idx: int) -> None:
    seed = cfg.schedule_seed(idx)
    router = Router(
        RouterConfig(
            n_linecards=cfg.n_linecards,
            mode=RouterMode.DRA,
            seed=seed,
            coverage_policy=cfg.coverage_policy,
            cell_dispatch=cfg.cell_dispatch,
        )
    )
    router.enable_detection(cfg.detection)
    sources = wire_uniform_load(router, cfg.load)
    injector = FaultInjector.accelerated(
        router,
        router.rng.stream("chaos-injector"),
        accel=cfg.accel,
        repair_rate=cfg.repair_rate,
        modes=cfg.modes,
    )
    injector.start()
    router.engine.run(until=cfg.duration_s)
    injector.stop()
    for src in sources:
        src.stop()
    router.engine.run(until=cfg.duration_s + cfg.drain_s)


def _worker(task: tuple[CampaignConfig, int]) -> dict:
    """Module-level shim so schedules pickle into worker processes."""
    cfg, idx = task
    return run_schedule(cfg, idx)


def run_campaign(cfg: CampaignConfig, *, jobs: int = 1) -> dict:
    """Run every schedule of the campaign; return the full report.

    The report is deterministic for a given config regardless of
    ``jobs`` (results come back in submission order, summaries carry no
    wall-clock state).
    """
    tasks = [(cfg, idx) for idx in range(cfg.seeds)]
    schedules = metered_parallel_map(_worker, tasks, jobs=jobs)

    total_violations = sum(len(s["violations"]) for s in schedules)
    totals = {
        "offered": sum(s["offered"] for s in schedules),
        "delivered": sum(s["delivered"] for s in schedules),
        "dropped": sum(s["dropped"] for s in schedules),
        "detections": sum(s["detections"] for s in schedules),
        "ctl_lost": sum(s["ctl_lost"] for s in schedules),
        "ctl_corrupted": sum(s["ctl_corrupted"] for s in schedules),
        "ctl_abandoned": sum(s["ctl_abandoned"] for s in schedules),
        "violations": total_violations,
    }
    return {
        "schema": "repro-chaos",
        "v": CAMPAIGN_SCHEMA_VERSION,
        "config": _jsonable_config(cfg),
        "schedules": schedules,
        "totals": totals,
    }

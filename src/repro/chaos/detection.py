"""Distributed fault detection over the EIB control lines.

The paper's dependability models assume faults are detected with a
coverage factor ``c`` and that the fault map travels in the control
packets' processing-tier parameters; the executable model originally
shortcut both with an oracle (one global :class:`FaultMap` updated the
instant a unit died).  This module replaces the oracle with the
mechanism:

* every LC runs a periodic **self-test** over its own units.  A fault
  becomes locally visible only once it is older than
  ``detection_latency_s`` *and* the per-fault coverage draw (probability
  ``coverage`` -- the Markov models' coverage factor) marked it
  detectable at all;
* a local detection triggers an ``FLT_N`` broadcast (and a repair an
  ``FLT_C``) over the CSMA/CD control lines, updating every other LC's
  :class:`LocalFaultView`;
* periodic **heartbeats** (``HB``) re-advertise the sender's full
  believed local fault set, so views reconverge even when individual
  FLT_N/FLT_C packets were lost or garbled by a degraded control medium
  (anti-entropy).

Between fault onset and view convergence the coverage planner works from
stale views: packets are planned onto dead hardware and dropped
``component_failed_mid_flight`` -- the detection-latency window the
chaos campaigns measure (the "oracle gap" of ``docs/chaos.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import trace as _trace
from repro.router.components import ComponentKind
from repro.router.packets import ControlKind, ControlPacket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (router imports us lazily)
    from repro.router.recovery import FaultMap
    from repro.router.router import Router

__all__ = ["DetectionConfig", "DetectionEvent", "LocalFaultView", "FaultDetector"]


@dataclass(frozen=True)
class DetectionConfig:
    """Timing and coverage parameters of the detection layer.

    ``coverage`` maps onto the Markov models' coverage factor: each
    fault draws once whether it is detectable by self-test at all.  An
    undetectable fault stays invisible to every view until repaired (its
    packet losses are exactly the uncovered-failure cost the analysis
    charges to ``1 - c``).
    """

    #: period of each LC's local self-test scan
    selftest_period_s: float = 20e-6
    #: minimum fault age before a self-test can see it
    detection_latency_s: float = 10e-6
    #: probability a fault is detectable at all (the coverage factor)
    coverage: float = 1.0
    #: heartbeat anti-entropy period (0 disables heartbeats)
    heartbeat_period_s: float = 100e-6

    def __post_init__(self) -> None:
        if self.selftest_period_s <= 0.0:
            raise ValueError("selftest_period_s must be positive")
        if self.detection_latency_s < 0.0:
            raise ValueError("detection_latency_s must be >= 0")
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {self.coverage}")
        if self.heartbeat_period_s < 0.0:
            raise ValueError("heartbeat_period_s must be >= 0")


def _encode_status(kind: ComponentKind, fault_id: int | None) -> str:
    """Encode one HB ``fault_status`` entry (``sru`` or ``sru#7``)."""
    if fault_id is None:
        return kind.value
    return f"{kind.value}#{fault_id}"


def _decode_status(entry: str) -> tuple[ComponentKind, int | None]:
    """Decode an HB ``fault_status`` entry back into (kind, fault_id)."""
    value, sep, fid = entry.partition("#")
    return ComponentKind(value), int(fid) if sep else None


@dataclass(frozen=True)
class DetectionEvent:
    """One entry of the detector's log.

    ``event`` is ``local_detect`` (self-test found a local fault),
    ``local_clear`` (a detected local fault was repaired),
    ``remote_learn`` / ``remote_clear`` (FLT_N / FLT_C received), or
    ``hb_reconcile`` (a heartbeat changed the receiver's view).
    """

    time: float
    observer_lc: int
    subject_lc: int
    kind: ComponentKind | None
    event: str


class LocalFaultView:
    """One LC's *believed* fault map.

    Mirrors the :class:`~repro.router.recovery.FaultMap` read API so the
    coverage planner can consume either interchangeably.  ``eib_healthy``
    delegates to ground truth: passive-line failure is sensed physically
    by every bus controller, not learned from packets.
    """

    def __init__(self, owner_lc: int, faults: "FaultMap") -> None:
        self.owner_lc = owner_lc
        self._faults = faults
        #: believed fault kind -> correlation id of the activation that
        #: taught it (``None`` when learned without an id, e.g. a legacy
        #: ``learn`` call or an HB from an uncorrelated belief).
        self._believed: dict[int, dict[ComponentKind, int | None]] = {}

    @property
    def eib_healthy(self) -> bool:
        """Ground-truth EIB line state (physically sensed)."""
        return self._faults.eib_healthy

    # -- writes (detector only) -------------------------------------------

    def learn(
        self, lc_id: int, kind: ComponentKind, fault_id: int | None = None
    ) -> bool:
        """Believe ``kind`` failed at ``lc_id``; True if this is news.

        An already-believed kind silently adopts the newer correlation id
        (a flap's next activation re-taught over a stale belief) without
        counting as news, so log/notification behavior is unchanged.
        """
        kinds = self._believed.setdefault(lc_id, {})
        if kind in kinds:
            if fault_id is not None:
                kinds[kind] = fault_id
            return False
        kinds[kind] = fault_id
        return True

    def forget(self, lc_id: int, kind: ComponentKind) -> bool:
        """Stop believing ``kind`` failed at ``lc_id``; True on change."""
        kinds = self._believed.get(lc_id)
        if kinds is None or kind not in kinds:
            return False
        del kinds[kind]
        if not kinds:
            del self._believed[lc_id]
        return True

    def reconcile(
        self,
        lc_id: int,
        kinds: "set[ComponentKind] | dict[ComponentKind, int | None]",
    ) -> bool:
        """Replace the believed set for ``lc_id`` (heartbeat); True on change.

        Accepts a plain set (ids unknown) or a kind -> fault_id mapping;
        a change of correlation id alone (same kinds) does not count as
        view change, matching :meth:`learn`'s news semantics.
        """
        advertised: dict[ComponentKind, int | None]
        if isinstance(kinds, dict):
            advertised = dict(kinds)
        else:
            advertised = {k: None for k in kinds}
        current = self._believed.get(lc_id, {})
        changed = set(current) != set(advertised)
        if advertised:
            merged = {
                k: (fid if fid is not None else current.get(k))
                for k, fid in advertised.items()
            }
            self._believed[lc_id] = merged
        else:
            self._believed.pop(lc_id, None)
        return changed

    # -- FaultMap read API -------------------------------------------------

    def failed_at(self, lc_id: int) -> set[ComponentKind]:
        """Believed-failed component kinds at ``lc_id``."""
        return set(self._believed.get(lc_id, {}))

    def fault_id_of(self, lc_id: int, kind: ComponentKind) -> int | None:
        """Correlation id attached to a believed fault, if any."""
        return self._believed.get(lc_id, {}).get(kind)

    def is_failed(self, lc_id: int, kind: ComponentKind) -> bool:
        """True when this LC believes the given unit is down."""
        return kind in self._believed.get(lc_id, {})

    def any_failed(self, lc_id: int) -> bool:
        """True when this LC believes any unit of ``lc_id`` is down."""
        return bool(self._believed.get(lc_id))

    def believed(self) -> dict[int, set[ComponentKind]]:
        """Copy of the whole believed map (for invariant checks)."""
        return {lc: set(kinds) for lc, kinds in self._believed.items()}


@dataclass
class _FaultInstance:
    """Detector-side registry entry for one live hardware fault."""

    onset: float
    detectable: bool
    detected: bool = False
    detected_at: float | None = None
    #: correlation id minted by :meth:`Router.inject_fault`
    fault_id: int | None = None


class FaultDetector:
    """Self-test + FLT_N/FLT_C/HB dissemination engine for one router.

    Constructed (and wired) through
    :meth:`repro.router.router.Router.enable_detection`.
    """

    def __init__(self, router: "Router", config: DetectionConfig) -> None:
        if router.protocol is None or router.eib is None:
            raise RuntimeError("fault detection needs the EIB protocol engine")
        self._router = router
        self.config = config
        self._rng = router.rng.stream("detector")
        #: per-LC believed fault maps, consumed by the coverage planner.
        self.views: dict[int, LocalFaultView] = {
            lc_id: LocalFaultView(lc_id, router.faults) for lc_id in router.linecards
        }
        #: live hardware faults keyed (lc_id, kind).
        self._instances: dict[tuple[int, ComponentKind], _FaultInstance] = {}
        #: onset-to-detection delay of every detection ever made.
        self.latencies: list[float] = []
        self.log: list[DetectionEvent] = []
        router.protocol.fault_listener = self._on_control

    def start(self) -> None:
        """Arm the staggered per-LC self-test and heartbeat loops."""
        cfg = self.config
        n = max(len(self.views), 1)
        for i, lc_id in enumerate(sorted(self.views)):
            # Stagger the loops so all N self-tests (and heartbeats) do
            # not contend for the control lines at the same instant.
            self._router.engine.schedule_in(
                cfg.selftest_period_s * (i + 1) / (n + 1),
                lambda lc=lc_id: self._selftest(lc),
                label="detect:selftest",
            )
            if cfg.heartbeat_period_s > 0.0:
                self._router.engine.schedule_in(
                    cfg.heartbeat_period_s * (i + 1) / (n + 1),
                    lambda lc=lc_id: self._heartbeat(lc),
                    label="detect:hb",
                )

    # -- router hooks -------------------------------------------------------

    def on_fault(
        self, lc_id: int, kind: ComponentKind, fault_id: int | None = None
    ) -> None:
        """A component just died (called from ``Router.inject_fault``)."""
        detectable = True
        if self.config.coverage < 1.0:
            detectable = float(self._rng.random()) < self.config.coverage
        self._instances[(lc_id, kind)] = _FaultInstance(
            onset=self._router.engine.now, detectable=detectable, fault_id=fault_id
        )

    def on_repair(self, lc_id: int, kind: ComponentKind) -> None:
        """A component was repaired (called from ``Router.repair_fault``)."""
        inst = self._instances.pop((lc_id, kind), None)
        if inst is None or not inst.detected:
            return  # never believed anywhere: nothing to clear
        now = self._router.engine.now
        self.views[lc_id].forget(lc_id, kind)
        self.log.append(DetectionEvent(now, lc_id, lc_id, kind, "local_clear"))
        if _trace.TRACER is not None:
            _trace.TRACER.emit(
                "detect.local_clear",
                t=now,
                lc=lc_id,
                component=kind.value,
                fault_id=inst.fault_id,
            )
        self._broadcast(
            lc_id,
            ControlPacket(
                kind=ControlKind.FLT_C,
                init_lc=lc_id,
                faulty_component=kind,
                fault_id=inst.fault_id,
            ),
        )

    # -- periodic loops -----------------------------------------------------

    def _selftest(self, lc_id: int) -> None:
        now = self._router.engine.now
        bc = self._router.linecards[lc_id].bus_controller
        # A dead bus controller suspends the LC's maintenance processor
        # loop entirely; it resumes on repair (the loop keeps ticking so
        # no re-arm bookkeeping is needed, it just skips the scan).
        if bc is not None and bc.healthy:
            for (flc, kind), inst in sorted(
                self._instances.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
            ):
                if flc != lc_id or inst.detected or not inst.detectable:
                    continue
                if now - inst.onset < self.config.detection_latency_s:
                    continue
                inst.detected = True
                inst.detected_at = now
                self.latencies.append(now - inst.onset)
                self.views[lc_id].learn(lc_id, kind, inst.fault_id)
                self.log.append(DetectionEvent(now, lc_id, lc_id, kind, "local_detect"))
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "detect.local_detect",
                        t=now,
                        lc=lc_id,
                        component=kind.value,
                        latency_s=now - inst.onset,
                        fault_id=inst.fault_id,
                    )
                self._broadcast(
                    lc_id,
                    ControlPacket(
                        kind=ControlKind.FLT_N,
                        init_lc=lc_id,
                        faulty_component=kind,
                        fault_id=inst.fault_id,
                    ),
                )
        self._router.engine.schedule_in(
            self.config.selftest_period_s,
            lambda: self._selftest(lc_id),
            label="detect:selftest",
        )

    def _heartbeat(self, lc_id: int) -> None:
        view = self.views[lc_id]
        status = tuple(
            sorted(
                _encode_status(kind, view.fault_id_of(lc_id, kind))
                for kind in view.failed_at(lc_id)
            )
        )
        self._broadcast(
            lc_id,
            ControlPacket(kind=ControlKind.HB, init_lc=lc_id, fault_status=status),
        )
        self._router.engine.schedule_in(
            self.config.heartbeat_period_s,
            lambda: self._heartbeat(lc_id),
            label="detect:hb",
        )

    def _broadcast(self, lc_id: int, packet: ControlPacket) -> None:
        assert self._router.eib is not None
        bc = self._router.linecards[lc_id].bus_controller
        if bc is None or not bc.healthy or not self._router.eib.control.healthy:
            return  # the LC cannot reach the control lines right now
        self._router.eib.control.broadcast(packet, lc_id)

    # -- control-packet reception ------------------------------------------

    def _on_control(self, me: int, cp: ControlPacket) -> None:
        now = self._router.engine.now
        view = self.views[me]
        protocol = self._router.protocol
        assert protocol is not None
        if cp.kind is ControlKind.FLT_N:
            kind = cp.faulty_component
            assert isinstance(kind, ComponentKind)
            if view.learn(cp.init_lc, kind, cp.fault_id):
                self.log.append(DetectionEvent(now, me, cp.init_lc, kind, "remote_learn"))
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "detect.remote_learn",
                        t=now,
                        observer=me,
                        subject=cp.init_lc,
                        component=kind.value,
                        fault_id=cp.fault_id,
                        via="flt_n",
                    )
                # Planner v2: the observer's streams react to the news
                # (tear off a failed covering LC, re-solicit with backoff).
                protocol.on_fault_news(me, cp.init_lc, kind, repaired=False)
        elif cp.kind is ControlKind.FLT_C:
            kind = cp.faulty_component
            assert isinstance(kind, ComponentKind)
            fault_id = (
                cp.fault_id
                if cp.fault_id is not None
                else view.fault_id_of(cp.init_lc, kind)
            )
            if view.forget(cp.init_lc, kind):
                self.log.append(DetectionEvent(now, me, cp.init_lc, kind, "remote_clear"))
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "detect.remote_clear",
                        t=now,
                        observer=me,
                        subject=cp.init_lc,
                        component=kind.value,
                        fault_id=fault_id,
                        via="flt_c",
                    )
                # Planner v2: a recovered LC is a fresh candidate, so the
                # observer's failed streams get a prompt (backoff-reset)
                # retry instead of waiting out the cooldown.
                protocol.on_fault_news(me, cp.init_lc, kind, repaired=True)
        elif cp.kind is ControlKind.HB:
            assert cp.fault_status is not None
            advertised = dict(_decode_status(v) for v in cp.fault_status)
            before = {
                kind: view.fault_id_of(cp.init_lc, kind)
                for kind in view.failed_at(cp.init_lc)
            }
            if view.reconcile(cp.init_lc, advertised):
                self.log.append(DetectionEvent(now, me, cp.init_lc, None, "hb_reconcile"))
                learned = sorted(set(advertised) - set(before), key=lambda k: k.value)
                cleared = sorted(set(before) - set(advertised), key=lambda k: k.value)
                if _trace.TRACER is not None:
                    for kind in learned:
                        _trace.TRACER.emit(
                            "detect.remote_learn",
                            t=now,
                            observer=me,
                            subject=cp.init_lc,
                            component=kind.value,
                            fault_id=advertised[kind],
                            via="hb",
                        )
                    for kind in cleared:
                        _trace.TRACER.emit(
                            "detect.remote_clear",
                            t=now,
                            observer=me,
                            subject=cp.init_lc,
                            component=kind.value,
                            fault_id=before[kind],
                            via="hb",
                        )
                # Planner v2: anti-entropy deliveries count as fault news
                # too -- a lost FLT_N/FLT_C must not suppress replanning.
                for kind in learned:
                    protocol.on_fault_news(me, cp.init_lc, kind, repaired=False)
                for kind in cleared:
                    protocol.on_fault_news(me, cp.init_lc, kind, repaired=True)

    # -- summaries ----------------------------------------------------------

    def detections(self) -> list[DetectionEvent]:
        """All local_detect entries of the log."""
        return [e for e in self.log if e.event == "local_detect"]

    def detection_latencies(self) -> list[float]:
        """Onset-to-detection delays of every detection made so far
        (including faults since repaired)."""
        return list(self.latencies)

    def detected_faults(self) -> dict[int, set[ComponentKind]]:
        """Currently-failed faults that have been detected, per LC."""
        out: dict[int, set[ComponentKind]] = {}
        for (lc_id, kind), inst in self._instances.items():
            if inst.detected:
                out.setdefault(lc_id, set()).add(kind)
        return out

"""Whole-router consistency checks for chaos campaigns.

Each check encodes something the DRA model must keep true *no matter
what fault schedule ran*, evaluated after traffic has stopped and the
router drained:

* **packet conservation** -- every offered packet was delivered or
  accounted to a drop reason;
* **hardware/fault-map agreement** -- the ground-truth
  :class:`~repro.router.recovery.FaultMap` mirrors actual unit health,
  and holds no empty per-LC entries (compactness);
* **LP/stream consistency** -- the protocol engine's logical-path
  refcounts and reserved rates match its set of ACTIVE streams, and
  every referenced LP is actually open on the data channel;
* **no stuck streams / stale events** -- nothing left SOLICITING, no
  solicit lacking an armed timeout, no timeout armed for a dead stream,
  no dangling lookup;
* **arbiter coherence** -- the distributed counters of Section 4 agree
  across all healthy participants;
* **capacity accounting** -- no LC has more coverage bandwidth
  committed than it physically has;
* **drained reassembly** -- no segments parked in reassembly buffers;
* **fault-log sanity** -- the injector's log is time-monotone and every
  per-unit lifecycle alternates down/up (fail needs a healthy unit,
  repair/clear a failed one, degrade/restore and ctl_degrade /
  ctl_restore pair up);
* **view convergence** -- once the schedule has been quiet for a settle
  window, every LC whose bus controller works believes exactly the
  detected fault set of every other reachable LC.

Violations carry a human-readable detail string; the campaign runner
attaches a trace window around any schedule that produces one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.router.arbitration import ArbitrationError
from repro.router.components import ComponentKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.detection import FaultDetector
    from repro.router.faults import FaultInjector
    from repro.router.router import Router

__all__ = ["Violation", "check_invariants"]

_RATE_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which check, and what exactly broke."""

    check: str
    detail: str


def check_invariants(
    router: "Router",
    injector: "FaultInjector | None" = None,
    detector: "FaultDetector | None" = None,
    *,
    settle_s: float = 0.0,
) -> list[Violation]:
    """Run every applicable invariant; return all violations found.

    ``settle_s`` gates the view-convergence check: it only runs when at
    least that much sim time passed since the injector's last logged
    action (views legitimately lag right after a fault or repair).
    """
    out: list[Violation] = []
    _check_conservation(router, out)
    _check_fault_map(router, out)
    if router.protocol is not None:
        _check_protocol(router, out)
    if router.eib is not None:
        _check_arbiter(router, out)
    _check_capacity(router, out)
    _check_reassembly(router, out)
    if injector is not None:
        _check_fault_log(injector, out)
    if detector is not None:
        _check_views(router, injector, detector, settle_s, out)
    return out


def _check_conservation(router: "Router", out: list[Violation]) -> None:
    s = router.stats
    if s.offered != s.delivered + s.dropped:
        out.append(
            Violation(
                "packet_conservation",
                f"offered={s.offered} != delivered={s.delivered} "
                f"+ dropped={s.dropped}",
            )
        )


def _check_fault_map(router: "Router", out: list[Violation]) -> None:
    for lc_id, lc in router.linecards.items():
        for unit in lc.units():
            mapped = router.faults.is_failed(lc_id, unit.kind)
            if unit.healthy == mapped:
                state = "healthy" if unit.healthy else "failed"
                out.append(
                    Violation(
                        "fault_map_agreement",
                        f"{unit.name} is {state} but FaultMap says "
                        f"failed={mapped}",
                    )
                )
    if router.eib is not None and router.eib.healthy != router.faults.eib_healthy:
        out.append(
            Violation(
                "fault_map_agreement",
                f"EIB healthy={router.eib.healthy} but FaultMap says "
                f"eib_healthy={router.faults.eib_healthy}",
            )
        )
    if not router.faults.is_compact():
        out.append(
            Violation("fault_map_compact", "FaultMap holds empty per-LC entries")
        )


def _check_protocol(router: "Router", out: list[Violation]) -> None:
    assert router.protocol is not None and router.eib is not None
    snap = router.protocol.snapshot_state()

    if snap["lp_refs"] != snap["active_by_sender"]:
        out.append(
            Violation(
                "lp_refcounts",
                f"lp_refs={snap['lp_refs']} != active streams per sender "
                f"{snap['active_by_sender']}",
            )
        )
    for lc_id, rate in snap["lp_rates"].items():
        active = snap["active_rate_by_sender"].get(lc_id, 0.0)
        if abs(rate - active) > _RATE_EPS:
            out.append(
                Violation(
                    "lp_rates",
                    f"LC{lc_id} LP carries {rate:.1f} bps but ACTIVE "
                    f"streams sum to {active:.1f} bps",
                )
            )
    if router.eib.healthy:
        for lc_id in snap["lp_refs"]:
            if not router.eib.data.has_lp(lc_id):
                out.append(
                    Violation(
                        "lp_refcounts",
                        f"LC{lc_id} holds LP refs but no LP is open on "
                        "the data channel",
                    )
                )

    stuck = [k for k, v in snap["stream_states"].items() if v == "soliciting"]
    if stuck:
        out.append(
            Violation("stuck_streams", f"streams left SOLICITING: {sorted(stuck)}")
        )
    if snap["soliciting_without_timeout"]:
        out.append(
            Violation(
                "stale_events",
                "SOLICITING streams without an armed timeout: "
                f"{sorted(snap['soliciting_without_timeout'])}",
            )
        )
    if snap["stale_timeouts"]:
        out.append(
            Violation(
                "stale_events",
                f"timeouts armed for dead streams: {sorted(snap['stale_timeouts'])}",
            )
        )
    if snap["pending_lookups"]:
        out.append(
            Violation(
                "stale_events", f"{snap['pending_lookups']} lookup(s) never resolved"
            )
        )
    if snap["armed_lookup_timeouts"]:
        out.append(
            Violation(
                "stale_events",
                f"{snap['armed_lookup_timeouts']} lookup timeout(s) left armed",
            )
        )


def _check_arbiter(router: "Router", out: list[Violation]) -> None:
    assert router.eib is not None
    try:
        router.eib.arbiter.check_coherence()
    except ArbitrationError as exc:
        out.append(Violation("arbiter_coherence", str(exc)))


def _check_capacity(router: "Router", out: list[Violation]) -> None:
    for lc_id, lc in router.linecards.items():
        if lc.committed_bps > lc.capacity_bps + _RATE_EPS:
            out.append(
                Violation(
                    "capacity_accounting",
                    f"LC{lc_id} committed {lc.committed_bps:.1f} bps over "
                    f"its {lc.capacity_bps:.1f} bps capacity",
                )
            )
        if lc.committed_bps < -_RATE_EPS:
            out.append(
                Violation(
                    "capacity_accounting",
                    f"LC{lc_id} committed_bps went negative "
                    f"({lc.committed_bps:.1f})",
                )
            )


def _check_reassembly(router: "Router", out: list[Violation]) -> None:
    for lc_id, buf in router.reassembly.items():
        if buf.occupancy:
            out.append(
                Violation(
                    "reassembly_drained",
                    f"LC{lc_id} reassembly buffer still holds "
                    f"{buf.occupancy} partial packet(s)",
                )
            )


def _check_fault_log(injector: "FaultInjector", out: list[Violation]) -> None:
    last_t = float("-inf")
    # Per-unit up/down state machine; None key = the EIB passive lines.
    down: set[tuple[int | None, ComponentKind | None]] = set()
    degraded: set[tuple[int, ComponentKind]] = set()
    ctl_degraded = False
    for ev in injector.log:
        if ev.time < last_t:
            out.append(
                Violation(
                    "fault_log_monotone",
                    f"event at t={ev.time} after t={last_t}",
                )
            )
        last_t = ev.time
        key = (ev.lc_id, ev.kind)
        if ev.action == "fail":
            if key in down:
                out.append(
                    Violation(
                        "fault_log_lifecycle", f"double fail of {key} at t={ev.time}"
                    )
                )
            down.add(key)
        elif ev.action in ("repair", "clear"):
            if key not in down:
                out.append(
                    Violation(
                        "fault_log_lifecycle",
                        f"{ev.action} of never-failed {key} at t={ev.time}",
                    )
                )
            down.discard(key)
        elif ev.action == "degrade":
            assert ev.lc_id is not None and ev.kind is not None
            if (ev.lc_id, ev.kind) in degraded:
                out.append(
                    Violation(
                        "fault_log_lifecycle",
                        f"double degrade of {key} at t={ev.time}",
                    )
                )
            degraded.add((ev.lc_id, ev.kind))
        elif ev.action == "restore":
            assert ev.lc_id is not None and ev.kind is not None
            if (ev.lc_id, ev.kind) not in degraded:
                out.append(
                    Violation(
                        "fault_log_lifecycle",
                        f"restore of never-degraded {key} at t={ev.time}",
                    )
                )
            degraded.discard((ev.lc_id, ev.kind))
        elif ev.action == "ctl_degrade":
            if ctl_degraded:
                out.append(
                    Violation(
                        "fault_log_lifecycle", f"double ctl_degrade at t={ev.time}"
                    )
                )
            ctl_degraded = True
        elif ev.action == "ctl_restore":
            if not ctl_degraded:
                out.append(
                    Violation(
                        "fault_log_lifecycle",
                        f"ctl_restore without ctl_degrade at t={ev.time}",
                    )
                )
            ctl_degraded = False


def _check_views(
    router: "Router",
    injector: "FaultInjector | None",
    detector: "FaultDetector",
    settle_s: float,
    out: list[Violation],
) -> None:
    """Anti-entropy must have reconverged every reachable view.

    Only meaningful once the schedule has gone quiet: convergence takes
    a detection latency plus at most one heartbeat round-trip, so skip
    the check (not fail it) when the tail of the run was still churning
    or the control medium is still degraded.
    """
    if injector is not None and injector.log:
        quiet_for = router.engine.now - max(e.time for e in injector.log)
        if quiet_for < settle_s:
            return
    eib = router.eib
    if eib is None or not eib.control.healthy:
        return
    if eib.control.loss_prob > 0.0 or eib.control.corrupt_prob > 0.0:
        return

    truth = detector.detected_faults()
    for viewer_id, view in detector.views.items():
        viewer_bc = router.linecards[viewer_id].bus_controller
        if viewer_bc is None or not viewer_bc.healthy:
            continue  # deaf: legitimately stale
        for subject_id in detector.views:
            subject_bc = router.linecards[subject_id].bus_controller
            if subject_bc is None or not subject_bc.healthy:
                continue  # mute: cannot have advertised recent state
            believed = view.failed_at(subject_id)
            expected = truth.get(subject_id, set())
            if believed != expected:
                out.append(
                    Violation(
                        "view_convergence",
                        f"LC{viewer_id} believes LC{subject_id} failed="
                        f"{sorted(k.value for k in believed)} but detected "
                        f"truth is {sorted(k.value for k in expected)}",
                    )
                )

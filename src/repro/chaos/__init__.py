"""Fault detection and chaos engineering for the DRA model.

The paper's dependability analysis (Sections 5-6) hangs on two
quantities this package makes mechanical instead of assumed: the
*coverage factor* ``c`` (here: the probability a self-test can see a
fault at all) and the *fault-handling time* (here: self-test period +
detection latency + FLT_N dissemination over the CSMA/CD control
lines).

* :mod:`~repro.chaos.detection` -- per-LC fault views converging
  through self-tests, FLT_N/FLT_C notifications, and heartbeat
  anti-entropy;
* :mod:`~repro.chaos.invariants` -- whole-router consistency checks
  (packet conservation, LP/stream bookkeeping, arbiter coherence,
  fault-log lifecycles, view convergence);
* :mod:`~repro.chaos.campaign` -- deterministic seeded fault schedules
  fanned out over the parallel runtime, reporting violations with
  trace windows.
"""

from repro.chaos.campaign import CampaignConfig, run_campaign, run_schedule
from repro.chaos.detection import (
    DetectionConfig,
    DetectionEvent,
    FaultDetector,
    LocalFaultView,
)
from repro.chaos.invariants import Violation, check_invariants

__all__ = [
    "CampaignConfig",
    "DetectionConfig",
    "DetectionEvent",
    "FaultDetector",
    "LocalFaultView",
    "Violation",
    "check_invariants",
    "run_campaign",
    "run_schedule",
]

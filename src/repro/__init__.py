"""repro -- reproduction of "DRA: A Dependable Architecture for
High-Performance Routers" (Mandviwalla & Tzeng, ICPP 2004).

Subpackages
-----------
``repro.core``
    The paper's contribution: Markov dependability models (reliability,
    availability) and the bandwidth-degradation analysis for the DRA and
    BDR architectures.
``repro.markov``
    Generic CTMC engine (transient, stationary, absorbing, uniformization,
    sensitivity solvers).
``repro.sim``
    Discrete-event simulation kernel.
``repro.router``
    Executable BDR/DRA router model: linecards (PIU/PDLU/SRU/LFE), crossbar
    fabric, the enhanced internal bus with its CSMA/CD control plane and
    counter-based TDM arbiter, the three-tier EIB protocol, fault injection
    and coverage.
``repro.traffic``
    Workload generators (Poisson / CBR / on-off) and flow matrices.
``repro.montecarlo``
    Monte Carlo dependability estimation used to cross-validate the Markov
    models.
``repro.analysis``
    Parameter sweeps, paper-style table formatting and CSV/graph export.

Quickstart
----------
>>> import numpy as np
>>> from repro.core import DRAConfig, dra_reliability
>>> r = dra_reliability(DRAConfig(n=9, m=4), np.array([40_000.0]))
>>> bool(r.reliability[0] > 0.95)  # BDR is 0.45 by this point
True
"""

from repro.core import (
    DRAConfig,
    FailureRates,
    RepairPolicy,
    bdr_availability,
    bdr_reliability,
    dra_availability,
    dra_reliability,
)

__version__ = "1.0.0"

__all__ = [
    "DRAConfig",
    "FailureRates",
    "RepairPolicy",
    "bdr_availability",
    "bdr_reliability",
    "dra_availability",
    "dra_reliability",
    "__version__",
]

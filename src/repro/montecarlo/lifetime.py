"""Structure-function Monte Carlo for DRA linecard reliability.

This estimator never constructs a Markov chain.  It samples iid
exponential lifetimes for every physical ingredient of the model --

* LCUA's PI units (``lam_lpi``) and PDLU (``lam_lpd``),
* the EIB passive lines (``lam_bus``) and LCUA's bus controller (``lam_bc``),
* the ``N - 2`` covering PI groups (``lam_pi`` each) and ``M - 1``
  covering PDLUs (``lam_pd`` each),

-- and computes the instant the LC stops transferring packets directly
from the DRA coverage semantics of Section 3.2:

* **bus path**: once the EIB or LCUA's bus controller is gone, the first
  LCUA unit failure is fatal (coverage needs the bus):
  ``max(min(T_bus, T_bc), min(T_lpi, T_lpd))``.
* **PI path** (only if LCUA's PI units fail before its PDLU, per the
  analysis assumption that LCUA fails at one unit only): fatal when
  LCUA's PI units *and* every covering PI group have failed:
  ``max(T_lpi, max_k T_pi_k)``.
* **PD path** (symmetric): ``max(T_lpd, max_k T_pd_k)``.

The LC failure time is the minimum of the applicable paths.  This is
exactly the absorption time of the ``extended`` chain variant, so
agreement with :func:`repro.core.reliability.dra_reliability` on that
variant validates the chain *structure* end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import DRAConfig, FailureRates

__all__ = [
    "LifetimeEstimate",
    "empirical_unreliability",
    "sample_lc_failure_times",
    "structure_function_reliability",
]


@dataclass(frozen=True)
class LifetimeEstimate:
    """Monte Carlo reliability curve with pointwise binomial errors."""

    times: np.ndarray
    reliability: np.ndarray
    std_error: np.ndarray
    n_samples: int

    def within(self, other: np.ndarray, *, z: float = 4.0) -> bool:
        """True when ``other`` lies within ``z`` standard errors everywhere."""
        return bool(np.all(np.abs(self.reliability - other) <= z * self.std_error + 1e-12))


def sample_lc_failure_times(
    config: DRAConfig,
    n_samples: int,
    rng: np.random.Generator,
    rates: FailureRates | None = None,
    *,
    method: str = "vectorized",
) -> np.ndarray:
    """Sample ``n_samples`` LC failure times (hours).

    The component lifetimes are always drawn as numpy batches (so both
    methods consume the RNG stream identically); ``method`` selects how
    the structure function is evaluated over the sample axis:

    * ``"vectorized"`` (default) -- elementwise numpy min/max over the
      whole batch at once.
    * ``"scalar"`` -- a per-sample Python loop applying the same coverage
      semantics.  Because max/min on IEEE doubles are exact, the two
      evaluations are **bit-identical**; the scalar path exists as the
      readable reference implementation and as the denominator of the
      throughput suite's vectorization-speedup metric.
    """
    if method not in ("vectorized", "scalar"):
        raise ValueError(f"unknown method {method!r}; choose vectorized or scalar")
    rates = rates or FailureRates()
    P = config.n_inter_pi
    D = config.n_inter_pd

    t_lpi = rng.exponential(1.0 / rates.lam_lpi, n_samples)
    t_lpd = rng.exponential(1.0 / rates.lam_lpd, n_samples)
    t_bus = rng.exponential(1.0 / rates.lam_bus, n_samples)
    t_bc = rng.exponential(1.0 / rates.lam_bc, n_samples)
    t_pi = rng.exponential(1.0 / rates.lam_pi, (n_samples, P))
    t_pd = rng.exponential(1.0 / rates.lam_pd, (n_samples, D))

    if method == "scalar":
        out = np.empty(n_samples)
        for s in range(n_samples):
            bus_path = max(min(t_bus[s], t_bc[s]), min(t_lpi[s], t_lpd[s]))
            if t_lpi[s] < t_lpd[s]:
                unit_path = max(t_lpi[s], t_pi[s].max())
            else:
                unit_path = max(t_lpd[s], t_pd[s].max())
            out[s] = min(bus_path, unit_path)
        return out

    bus_path = np.maximum(np.minimum(t_bus, t_bc), np.minimum(t_lpi, t_lpd))
    pi_path = np.maximum(t_lpi, t_pi.max(axis=1))
    pd_path = np.maximum(t_lpd, t_pd.max(axis=1))
    # Assumption 3: LCUA fails at one unit only -- whichever unit would
    # fail first is the one that fails, selecting the coverage path.
    unit_path = np.where(t_lpi < t_lpd, pi_path, pd_path)
    return np.minimum(bus_path, unit_path)


def structure_function_reliability(
    config: DRAConfig,
    times: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    rates: FailureRates | None = None,
) -> LifetimeEstimate:
    """Empirical ``R(t)`` from the structure function.

    ``R_hat(t) = P(T_F > t)`` with standard error
    ``sqrt(R (1 - R) / n)`` per time point.
    """
    times = np.asarray(times, dtype=np.float64)
    failure_times = sample_lc_failure_times(config, n_samples, rng, rates)
    # For each t, the fraction of sampled failure times exceeding it.
    r_hat = (failure_times[np.newaxis, :] > times[:, np.newaxis]).mean(axis=1)
    se = np.sqrt(np.clip(r_hat * (1.0 - r_hat), 0.0, None) / n_samples)
    return LifetimeEstimate(
        times=times, reliability=r_hat, std_error=se, n_samples=n_samples
    )


def empirical_unreliability(
    config: DRAConfig,
    horizon: float,
    n_samples: int,
    rng: np.random.Generator,
    rates: FailureRates | None = None,
) -> tuple[int, int]:
    """Binomial sufficient statistics for ``1 - R(horizon)``.

    Returns ``(failures, n_samples)`` -- the count of sampled LC failure
    times at or below ``horizon`` hours.  The validation harness feeds
    these straight into a Wilson interval, which keeps honest coverage
    even when the horizon makes failure a rare event.
    """
    failure_times = sample_lc_failure_times(config, n_samples, rng, rates)
    return int(np.count_nonzero(failure_times <= horizon)), n_samples

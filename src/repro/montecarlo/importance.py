"""Rare-event availability estimation by importance sampling.

The paper's DRA availability figures sit at unavailabilities of 1e-8 to
1e-10.  Naive trajectory sampling would need ~1e11 regenerative cycles to
see a single LC outage, so standard Monte Carlo *cannot* check Figure 7
-- a gap this module closes with the classic **balanced failure biasing**
estimator (Shahabuddin-style) on regenerative cycles:

1. A cycle starts in the all-healthy state and ends on the first return
   to it.
2. Under the *biased* measure, whenever both failure and repair
   transitions are available, failure transitions jointly receive
   probability ``bias`` (spread evenly among them -- "balanced"),
   steering the walk toward the failed state.
3. Sojourn times stay exponential with the original exit rates, so only
   the jump probabilities are reweighted; each cycle carries the
   likelihood ratio of its jump sequence.
4. Unavailability = E[downtime per cycle] / E[cycle length] by the
   renewal-reward theorem; the numerator uses the biased measure with
   likelihood weights, the denominator plain sampling (it is not rare).

The estimator returns a point estimate with a delta-method standard
error, and is validated in the benches against the exact stationary
solve across six orders of magnitude of rarity.

Two simulation back ends share the same estimator (``method=``):

* ``"batched"`` (default) advances all cycles of a batch in lockstep --
  one numpy step per jump *depth*, not per jump -- against per-state
  cumulative jump distributions precomputed once into padded matrices.
  Cycles that regenerate drop out of the active set; the per-cycle jump
  cap applies to the lockstep depth, which bounds every cycle's length
  exactly as the scalar loop does.
* ``"scalar"`` is the original one-jump-at-a-time Python loop, kept as
  the independent reference implementation: the differential tests check
  the batched kernels against it, and ``bench --suite throughput``
  measures the batched/scalar speedup (the perf-regression gate pins it).

Both draw from the same ``numpy.random.Generator`` but consume the
stream differently, so for a fixed seed they give *statistically
identical*, not bit-identical, results.  Within one method, results are
a pure function of the seed, which is what the parallel driver's
bit-identical-across-``--jobs`` contract needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.ctmc import CTMC
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "CycleStatistics",
    "ImportanceSamplingResult",
    "collect_cycle_statistics",
    "result_from_statistics",
    "unavailability_importance_sampling",
]


@dataclass(frozen=True)
class CycleStatistics:
    """Sufficient statistics of a batch of regenerative cycles.

    Everything the estimator needs reduces to sums, so batches simulated
    independently (e.g. on different worker processes with spawned RNG
    streams) merge exactly: field-wise addition loses nothing.  This is
    what makes the parallel driver in :mod:`repro.runtime.montecarlo`
    deterministic -- per-chunk statistics are identical wherever the chunk
    runs, and merging in chunk order fixes the floating-point summation
    order.
    """

    n_plain: int
    length_sum: float
    length_sumsq: float
    n_biased: int
    downtime_sum: float
    downtime_sumsq: float
    hits: int

    def merge(self, other: "CycleStatistics") -> "CycleStatistics":
        """Combine two independent batches (field-wise addition)."""
        return CycleStatistics(
            n_plain=self.n_plain + other.n_plain,
            length_sum=self.length_sum + other.length_sum,
            length_sumsq=self.length_sumsq + other.length_sumsq,
            n_biased=self.n_biased + other.n_biased,
            downtime_sum=self.downtime_sum + other.downtime_sum,
            downtime_sumsq=self.downtime_sumsq + other.downtime_sumsq,
            hits=self.hits + other.hits,
        )


@dataclass(frozen=True)
class ImportanceSamplingResult:
    """Outcome of a failure-biasing run."""

    unavailability: float
    std_error: float
    n_cycles: int
    mean_cycle_length: float
    #: fraction of biased cycles that visited the rare (failed) state
    hit_fraction: float

    @property
    def availability(self) -> float:
        """``1 - unavailability``."""
        return 1.0 - self.unavailability

    def consistent_with(self, exact: float, *, z: float = 5.0) -> bool:
        """True when ``exact`` lies within ``z`` standard errors."""
        return abs(self.unavailability - exact) <= z * self.std_error


class _Rows:
    """Per-state jump structure with failure/repair classification.

    A transition out of state ``i`` is classified as *repair* if it moves
    toward the regeneration state's neighborhood (here: any transition
    whose rate is at least ``repair_threshold`` times the largest failure
    rate -- the dependability chains have a clean scale gap of ~1e4
    between repair (~1e-1/h) and failure (~1e-5/h) rates).
    """

    def __init__(self, chain: CTMC, repair_threshold: float, bias: float) -> None:
        Q = chain.generator
        n = chain.n_states
        indptr, indices, data = Q.indptr, Q.indices, Q.data
        self.exit = chain.exit_rates()
        self.targets: list[np.ndarray] = []
        self.probs: list[np.ndarray] = []
        self.is_repair: list[np.ndarray] = []
        self.biased: list[np.ndarray] = []
        for i in range(n):
            cols = indices[indptr[i]:indptr[i + 1]]
            rates = data[indptr[i]:indptr[i + 1]]
            mask = (cols != i) & (rates > 0.0)
            cols, rates = cols[mask], rates[mask]
            self.targets.append(cols.astype(np.int64))
            total = rates.sum()
            probs = rates / total if total > 0 else rates
            self.probs.append(probs)
            # Scale-gap classification: "fast" transitions are repairs.
            cutoff = repair_threshold * (rates.min() if rates.size else 1.0)
            repair = rates >= cutoff
            self.is_repair.append(repair)
            self.biased.append(_balanced_bias(probs, repair, bias))

        # Padded-matrix form for the lockstep-batched kernels: row ``i``
        # holds state ``i``'s cumulative jump distributions, padded with
        # 1.0 so a uniform draw below 1 never lands past the true
        # out-degree (``last_slot`` guards the float-roundoff edge the
        # scalar loop guards with ``min(k, size - 1)``).
        degree = np.array([t.size for t in self.targets], dtype=np.int64)
        width = max(int(degree.max()) if degree.size else 1, 1)
        self.last_slot = np.maximum(degree - 1, 0)
        self.pad_targets = np.zeros((n, width), dtype=np.int64)
        self.plain_cum = np.ones((n, width))
        self.biased_cum = np.ones((n, width))
        self.ratio = np.ones((n, width))
        for i in range(n):
            d = int(degree[i])
            if d == 0:
                continue
            self.pad_targets[i, :d] = self.targets[i]
            self.pad_targets[i, d:] = self.targets[i][-1]
            self.plain_cum[i, :d] = np.cumsum(self.probs[i])
            self.biased_cum[i, :d] = np.cumsum(self.biased[i])
            self.ratio[i, :d] = self.probs[i] / self.biased[i]


def _balanced_bias(probs: np.ndarray, repair: np.ndarray, bias: float) -> np.ndarray:
    """The balanced-failure-biased jump distribution of one state.

    Failures share ``bias`` evenly, repairs share the rest
    proportionally; states with only one transition kind keep their
    plain distribution.
    """
    n_fail = int((~repair).sum())
    if not 0 < n_fail < probs.size:
        return probs
    biased = np.empty_like(probs)
    biased[~repair] = bias / n_fail
    repair_total = probs[repair].sum()
    biased[repair] = (1.0 - bias) * probs[repair] / repair_total
    return biased


def unavailability_importance_sampling(
    chain: CTMC,
    failed_state: object,
    n_cycles: int,
    rng: np.random.Generator,
    *,
    regeneration_state: object | None = None,
    bias: float = 0.5,
    repair_threshold: float = 100.0,
    max_jumps_per_cycle: int = 100_000,
    method: str = "batched",
) -> ImportanceSamplingResult:
    """Estimate steady-state unavailability by balanced failure biasing.

    Parameters
    ----------
    chain:
        Irreducible repairable CTMC.
    failed_state:
        The state whose occupancy defines unavailability (the paper's F).
    n_cycles:
        Regenerative cycles to simulate (half plain for the denominator,
        half biased for the numerator).
    regeneration_state:
        Cycle anchor; defaults to state index 0 (the all-healthy state in
        the dependability chains).
    bias:
        Total jump probability given to failure transitions when both
        kinds are available (0.5 is the standard choice).
    repair_threshold:
        Rate ratio separating repair from failure transitions.
    method:
        ``"batched"`` (lockstep numpy kernels, the default) or
        ``"scalar"`` (the reference per-jump loop); see the module
        docstring.
    """
    return result_from_statistics(
        collect_cycle_statistics(
            chain,
            failed_state,
            n_cycles,
            rng,
            regeneration_state=regeneration_state,
            bias=bias,
            repair_threshold=repair_threshold,
            max_jumps_per_cycle=max_jumps_per_cycle,
            method=method,
        )
    )


def collect_cycle_statistics(
    chain: CTMC,
    failed_state: object,
    n_cycles: int,
    rng: np.random.Generator,
    *,
    regeneration_state: object | None = None,
    bias: float = 0.5,
    repair_threshold: float = 100.0,
    max_jumps_per_cycle: int = 100_000,
    method: str = "batched",
) -> CycleStatistics:
    """Simulate ``n_cycles`` cycles and return their sufficient statistics.

    Half the cycles run plain (for the denominator's cycle lengths), half
    biased (for the numerator's likelihood-weighted downtimes) -- exactly
    the split :func:`unavailability_importance_sampling` has always used;
    that function is now a thin wrapper over this one.  Independent
    batches combine via :meth:`CycleStatistics.merge`.

    ``method`` selects the lockstep-batched numpy kernels (``"batched"``,
    the default) or the reference per-jump loop (``"scalar"``).
    """
    if method not in ("batched", "scalar"):
        raise ValueError(f"unknown method {method!r}; choose batched or scalar")
    if not 0.0 < bias < 1.0:
        raise ValueError(f"bias must lie in (0, 1), got {bias}")
    if n_cycles < 2:
        raise ValueError("need at least 2 cycles")
    regen = 0 if regeneration_state is None else chain.index_of(regeneration_state)
    failed = chain.index_of(failed_state)
    if failed == regen:
        raise ValueError("failed state cannot anchor the regeneration cycles")
    rows = _Rows(chain, repair_threshold, bias)

    n_plain = n_cycles // 2
    n_biased = n_cycles - n_plain
    if method == "batched":
        # denominator: E[cycle length]; numerator: E[weighted downtime].
        lengths = _plain_cycle_lengths_batch(
            rows, regen, n_plain, rng, max_jumps_per_cycle
        )
        downtimes, hit_flags = _biased_cycle_downtimes_batch(
            rows, regen, failed, n_biased, rng, max_jumps_per_cycle
        )
        hits = int(np.count_nonzero(hit_flags))
    else:
        # --- denominator: E[cycle length], plain simulation ---------------
        lengths = np.empty(n_plain)
        for c in range(n_plain):
            lengths[c] = _plain_cycle_length(rows, regen, rng, max_jumps_per_cycle)

        # --- numerator: E[downtime per cycle], biased + reweighted ---------
        downtimes = np.empty(n_biased)
        hits = 0
        for c in range(n_biased):
            downtime, hit = _biased_cycle_downtime(
                rows, regen, failed, rng, max_jumps_per_cycle
            )
            downtimes[c] = downtime
            hits += hit

    if _metrics.REGISTRY is not None:
        reg = _metrics.REGISTRY
        reg.counter("mc.is.cycles").inc(n_cycles)
        reg.counter("mc.is.rare_hits").inc(hits)
    if _trace.TRACER is not None:
        _trace.TRACER.emit(
            "solver.importance_sampling",
            n_states=chain.n_states,
            n_cycles=n_cycles,
            rare_hits=hits,
            bias=bias,
        )
    return CycleStatistics(
        n_plain=n_plain,
        length_sum=float(lengths.sum()),
        length_sumsq=float(np.square(lengths).sum()),
        n_biased=n_biased,
        downtime_sum=float(downtimes.sum()),
        downtime_sumsq=float(np.square(downtimes).sum()),
        hits=hits,
    )


def result_from_statistics(stats: CycleStatistics) -> ImportanceSamplingResult:
    """Turn (possibly merged) cycle statistics into the point estimate.

    Uses the same renewal-reward ratio and delta-method standard error as
    the original single-batch estimator, with sample variances recovered
    from the sums via ``var = (sumsq - n * mean^2) / (n - 1)``.
    """
    if stats.n_plain < 1 or stats.n_biased < 1:
        raise ValueError("need at least one plain and one biased cycle")
    mean_len = stats.length_sum / stats.n_plain
    mean_down = stats.downtime_sum / stats.n_biased
    u = mean_down / mean_len if mean_len > 0 else float("inf")
    # Delta-method standard error for a ratio of independent means.
    var_len = _sample_variance(stats.length_sum, stats.length_sumsq, stats.n_plain)
    var_down = _sample_variance(stats.downtime_sum, stats.downtime_sumsq, stats.n_biased)
    var_len /= stats.n_plain
    var_down /= stats.n_biased
    se = (
        np.sqrt(var_down / mean_len**2 + (mean_down**2 / mean_len**4) * var_len)
        if mean_len > 0
        else float("inf")
    )
    return ImportanceSamplingResult(
        unavailability=u,
        std_error=float(se),
        n_cycles=stats.n_plain + stats.n_biased,
        mean_cycle_length=mean_len,
        hit_fraction=stats.hits / stats.n_biased,
    )


def _sample_variance(total: float, total_sq: float, n: int) -> float:
    """Unbiased sample variance from sum and sum of squares (ddof=1)."""
    if n < 2:
        return 0.0
    mean = total / n
    return max(total_sq - n * mean * mean, 0.0) / (n - 1)


def _plain_cycle_length(
    rows: _Rows, regen: int, rng: np.random.Generator, max_jumps: int
) -> float:
    t = 0.0
    i = regen
    for _ in range(max_jumps):
        t += rng.exponential(1.0 / rows.exit[i])
        cp = np.cumsum(rows.probs[i])
        i = int(rows.targets[i][np.searchsorted(cp, rng.random(), side="right")])
        if i == regen:
            return t
    raise RuntimeError("cycle did not regenerate within max_jumps")


def _biased_cycle_downtime(
    rows: _Rows,
    regen: int,
    failed: int,
    rng: np.random.Generator,
    max_jumps: int,
) -> tuple[float, int]:
    """One biased cycle: (likelihood-weighted downtime, hit indicator)."""
    downtime = 0.0
    weight = 1.0
    hit = 0
    i = regen
    for _ in range(max_jumps):
        dwell = rng.exponential(1.0 / rows.exit[i])
        if i == failed:
            downtime += dwell
            hit = 1
        probs = rows.probs[i]
        biased = rows.biased[i]
        cp = np.cumsum(biased)
        k = int(np.searchsorted(cp, rng.random(), side="right"))
        k = min(k, probs.size - 1)
        weight *= probs[k] / biased[k]
        i = int(rows.targets[i][k])
        if i == regen:
            return downtime * weight, hit
    raise RuntimeError("biased cycle did not regenerate within max_jumps")


def _plain_cycle_lengths_batch(
    rows: _Rows, regen: int, n: int, rng: np.random.Generator, max_jumps: int
) -> np.ndarray:
    """``n`` plain cycle lengths, all cycles advanced in lockstep.

    Each loop iteration performs exactly one jump for every still-active
    cycle: draw the batch of sojourn times, pick the batch of jump
    targets against the padded cumulative distributions, retire the
    cycles that returned to the regeneration anchor.
    """
    lengths = np.zeros(n)
    state = np.full(n, regen, dtype=np.int64)
    active = np.arange(n)
    for _ in range(max_jumps):
        if active.size == 0:
            return lengths
        s = state[active]
        lengths[active] += rng.standard_exponential(active.size) / rows.exit[s]
        u = rng.random(active.size)
        k = (rows.plain_cum[s] <= u[:, np.newaxis]).sum(axis=1)
        k = np.minimum(k, rows.last_slot[s])
        nxt = rows.pad_targets[s, k]
        state[active] = nxt
        active = active[nxt != regen]
    if active.size == 0:
        return lengths
    raise RuntimeError("cycle did not regenerate within max_jumps")


def _biased_cycle_downtimes_batch(
    rows: _Rows,
    regen: int,
    failed: int,
    n: int,
    rng: np.random.Generator,
    max_jumps: int,
) -> tuple[np.ndarray, np.ndarray]:
    """``n`` biased cycles in lockstep: (weighted downtimes, hit flags).

    The likelihood weight of a cycle multiplies the plain/biased
    probability ratio of *every* jump up to regeneration, exactly as the
    scalar loop accumulates it; the downtime sum picks up the sojourn
    times spent in the failed state along the way.
    """
    downtime = np.zeros(n)
    weight = np.ones(n)
    hit = np.zeros(n, dtype=bool)
    state = np.full(n, regen, dtype=np.int64)
    active = np.arange(n)
    for _ in range(max_jumps):
        if active.size == 0:
            return downtime * weight, hit
        s = state[active]
        dwell = rng.standard_exponential(active.size) / rows.exit[s]
        in_failed = s == failed
        if in_failed.any():
            idx = active[in_failed]
            downtime[idx] += dwell[in_failed]
            hit[idx] = True
        u = rng.random(active.size)
        k = (rows.biased_cum[s] <= u[:, np.newaxis]).sum(axis=1)
        k = np.minimum(k, rows.last_slot[s])
        weight[active] *= rows.ratio[s, k]
        nxt = rows.pad_targets[s, k]
        state[active] = nxt
        active = active[nxt != regen]
    if active.size == 0:
        return downtime * weight, hit
    raise RuntimeError("biased cycle did not regenerate within max_jumps")

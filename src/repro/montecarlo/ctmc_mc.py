"""Trajectory sampling of CTMCs.

Implements the standard jump-chain simulation: from state ``i`` draw an
Exp(exit_rate_i) holding time, then jump to ``j`` with probability
``Q[i, j] / exit_rate_i``.  Built on the chain's CSR generator with
per-row alias-free sampling via cumulative sums.

The ensemble estimators (:func:`empirical_state_probabilities`,
:func:`empirical_availability`) offer two back ends via ``method=``:

* ``"batched"`` (default) advances every sampled path in lockstep --
  one numpy step per jump depth across the whole ensemble -- against
  padded per-state cumulative jump distributions.  Paths retire from
  the active set once they cross the horizon (or absorb).
* ``"scalar"`` loops :func:`sample_trajectory` one path at a time; it
  is the reference implementation the batched kernels are
  differential-tested against, and the denominator of the throughput
  suite's speedup metric.

Both consume the ``Generator`` stream differently, so a fixed seed gives
statistically identical (not bit-identical) results across methods;
within one method results are a pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.ctmc import CTMC

__all__ = [
    "TrajectorySample",
    "sample_trajectory",
    "empirical_state_probabilities",
    "empirical_availability",
]


@dataclass(frozen=True)
class TrajectorySample:
    """One sampled path: visited state indices and jump times.

    ``times[k]`` is when the chain *entered* ``states[k]``; the final
    state persists beyond ``times[-1]`` (to the horizon or forever if
    absorbing).
    """

    states: np.ndarray
    times: np.ndarray

    def state_at(self, t: float) -> int:
        """State index occupied at time ``t``."""
        if t < 0.0:
            raise ValueError(f"negative time {t}")
        k = int(np.searchsorted(self.times, t, side="right")) - 1
        return int(self.states[max(k, 0)])


class _JumpSampler:
    """Precomputed per-state jump distributions for fast repeated sampling.

    Holds both the ragged per-state arrays (scalar path) and the padded
    cumulative-distribution matrices the lockstep-batched kernels index
    with whole state vectors at once.
    """

    def __init__(self, chain: CTMC) -> None:
        Q = chain.generator
        n = chain.n_states
        indptr, indices, data = Q.indptr, Q.indices, Q.data
        self.exit = chain.exit_rates()
        self.targets: list[np.ndarray] = []
        self.cumprobs: list[np.ndarray] = []
        for i in range(n):
            cols = indices[indptr[i]:indptr[i + 1]]
            rates = data[indptr[i]:indptr[i + 1]]
            mask = (cols != i) & (rates > 0.0)
            cols, rates = cols[mask], rates[mask]
            self.targets.append(cols.astype(np.int64))
            if rates.size:
                self.cumprobs.append(np.cumsum(rates) / rates.sum())
            else:
                self.cumprobs.append(np.empty(0))
        degree = np.array([t.size for t in self.targets], dtype=np.int64)
        width = max(int(degree.max()) if degree.size else 1, 1)
        self.last_slot = np.maximum(degree - 1, 0)
        self.pad_targets = np.zeros((n, width), dtype=np.int64)
        self.pad_cum = np.ones((n, width))
        for i in range(n):
            d = int(degree[i])
            if d == 0:
                continue  # absorbing; never reaches jump selection
            self.pad_targets[i, :d] = self.targets[i]
            self.pad_targets[i, d:] = self.targets[i][-1]
            self.pad_cum[i, :d] = self.cumprobs[i]

    def next_state(self, i: int, rng: np.random.Generator) -> int:
        cp = self.cumprobs[i]
        k = int(np.searchsorted(cp, rng.random(), side="right"))
        return int(self.targets[i][k])

    def next_states(self, states: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Batched jump selection: one uniform draw per active path."""
        k = (self.pad_cum[states] <= u[:, np.newaxis]).sum(axis=1)
        k = np.minimum(k, self.last_slot[states])
        return self.pad_targets[states, k]


def sample_trajectory(
    chain: CTMC,
    horizon: float,
    rng: np.random.Generator,
    *,
    initial_state: int = 0,
    _sampler: _JumpSampler | None = None,
) -> TrajectorySample:
    """Sample one path of ``chain`` up to ``horizon``."""
    sampler = _sampler or _JumpSampler(chain)
    states = [initial_state]
    times = [0.0]
    t = 0.0
    i = initial_state
    while True:
        rate = sampler.exit[i]
        if rate <= 0.0:
            break  # absorbing
        t += float(rng.exponential(1.0 / rate))
        if t > horizon:
            break
        i = sampler.next_state(i, rng)
        states.append(i)
        times.append(t)
    return TrajectorySample(np.asarray(states), np.asarray(times))


def _check_method(method: str) -> None:
    if method not in ("batched", "scalar"):
        raise ValueError(f"unknown method {method!r}; choose batched or scalar")


def _batched_dwell_times(
    exit_rates: np.ndarray, states: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sojourn times for a batch of paths; absorbing states dwell forever."""
    rate = exit_rates[states]
    can_jump = rate > 0.0
    dwell = np.full(states.size, np.inf)
    if can_jump.any():
        n = int(np.count_nonzero(can_jump))
        dwell[can_jump] = rng.standard_exponential(n) / rate[can_jump]
    return dwell


def empirical_state_probabilities(
    chain: CTMC,
    times: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    *,
    initial_state: int = 0,
    method: str = "batched",
) -> np.ndarray:
    """Monte Carlo estimate of the transient distribution.

    Returns ``(len(times), n_states)`` empirical frequencies; each row is
    an unbiased estimate of ``pi(t)`` with per-entry standard error
    ``sqrt(p (1 - p) / n_samples)``.  ``method`` picks the lockstep
    ensemble kernel (default) or the per-trajectory reference loop.
    """
    _check_method(method)
    times = np.asarray(times, dtype=np.float64)
    sampler = _JumpSampler(chain)
    horizon = float(times.max()) if times.size else 0.0
    counts = np.zeros((times.size, chain.n_states))
    if method == "batched":
        t_enter = np.zeros(n_samples)
        state = np.full(n_samples, initial_state, dtype=np.int64)
        active = np.arange(n_samples)
        while active.size:
            s = state[active]
            dwell = _batched_dwell_times(sampler.exit, s, rng)
            t_exit = t_enter[active] + dwell
            # The segment [t_enter, t_exit) is occupied by s; a time point
            # landing exactly on a jump belongs to the *next* segment,
            # matching TrajectorySample.state_at's right-sided search.
            for j in range(times.size):
                seg = (t_enter[active] <= times[j]) & (times[j] < t_exit)
                if seg.any():
                    np.add.at(counts[j], s[seg], 1.0)
            cont = t_exit <= horizon
            nxt = active[cont]
            if nxt.size:
                u = rng.random(nxt.size)
                state[nxt] = sampler.next_states(s[cont], u)
                t_enter[nxt] = t_exit[cont]
            active = nxt
    else:
        for _ in range(n_samples):
            traj = sample_trajectory(
                chain, horizon, rng, initial_state=initial_state, _sampler=sampler
            )
            idx = np.searchsorted(traj.times, times, side="right") - 1
            occupied = traj.states[np.maximum(idx, 0)]
            counts[np.arange(times.size), occupied] += 1.0
    return counts / n_samples


def empirical_availability(
    chain: CTMC,
    failed_index: int,
    horizon: float,
    n_samples: int,
    rng: np.random.Generator,
    *,
    initial_state: int = 0,
    warmup_fraction: float = 0.1,
    method: str = "batched",
) -> tuple[float, float]:
    """Long-run availability by time-average over sampled paths.

    Returns ``(estimate, standard_error)``.  ``warmup_fraction`` of the
    horizon is discarded to reduce initial-state bias.  ``method`` picks
    the lockstep ensemble kernel (default) or the per-trajectory
    reference loop.
    """
    _check_method(method)
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must lie in [0, 1), got {warmup_fraction}")
    sampler = _JumpSampler(chain)
    warmup = horizon * warmup_fraction
    window = horizon - warmup
    if method == "batched":
        down = np.zeros(n_samples)
        t_enter = np.zeros(n_samples)
        state = np.full(n_samples, initial_state, dtype=np.int64)
        active = np.arange(n_samples)
        while active.size:
            s = state[active]
            dwell = _batched_dwell_times(sampler.exit, s, rng)
            t_exit = t_enter[active] + dwell
            in_failed = s == failed_index
            if in_failed.any():
                # Downtime contributed by this segment, clipped to the
                # measurement window (warmup, horizon].
                seg = np.clip(
                    np.minimum(t_exit[in_failed], horizon)
                    - np.maximum(t_enter[active][in_failed], warmup),
                    0.0,
                    None,
                )
                down[active[in_failed]] += seg
            cont = t_exit <= horizon
            nxt = active[cont]
            if nxt.size:
                u = rng.random(nxt.size)
                state[nxt] = sampler.next_states(s[cont], u)
                t_enter[nxt] = t_exit[cont]
            active = nxt
        fractions = 1.0 - down / window
    else:
        fractions = np.empty(n_samples)
        for s in range(n_samples):
            traj = sample_trajectory(
                chain, horizon, rng, initial_state=initial_state, _sampler=sampler
            )
            # Accumulate downtime within (warmup, horizon].
            entry = traj.times
            exit_ = np.append(traj.times[1:], horizon)
            down = 0.0
            for st, t0, t1 in zip(traj.states, entry, exit_):
                if st == failed_index:
                    down += max(0.0, min(t1, horizon) - max(t0, warmup))
            fractions[s] = 1.0 - down / window
    est = float(fractions.mean())
    se = float(fractions.std(ddof=1) / np.sqrt(n_samples)) if n_samples > 1 else 0.0
    return est, se

"""Trajectory sampling of CTMCs.

Implements the standard jump-chain simulation: from state ``i`` draw an
Exp(exit_rate_i) holding time, then jump to ``j`` with probability
``Q[i, j] / exit_rate_i``.  Built on the chain's CSR generator with
per-row alias-free sampling via cumulative sums (vectorized setup, O(1)
memory per trajectory step).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.ctmc import CTMC

__all__ = [
    "TrajectorySample",
    "sample_trajectory",
    "empirical_state_probabilities",
    "empirical_availability",
]


@dataclass(frozen=True)
class TrajectorySample:
    """One sampled path: visited state indices and jump times.

    ``times[k]`` is when the chain *entered* ``states[k]``; the final
    state persists beyond ``times[-1]`` (to the horizon or forever if
    absorbing).
    """

    states: np.ndarray
    times: np.ndarray

    def state_at(self, t: float) -> int:
        """State index occupied at time ``t``."""
        if t < 0.0:
            raise ValueError(f"negative time {t}")
        k = int(np.searchsorted(self.times, t, side="right")) - 1
        return int(self.states[max(k, 0)])


class _JumpSampler:
    """Precomputed per-state jump distributions for fast repeated sampling."""

    def __init__(self, chain: CTMC) -> None:
        Q = chain.generator
        self.exit = chain.exit_rates()
        self.targets: list[np.ndarray] = []
        self.cumprobs: list[np.ndarray] = []
        for i in range(chain.n_states):
            row = Q.getrow(i).tocoo()
            mask = (row.col != i) & (row.data > 0.0)
            cols, rates = row.col[mask], row.data[mask]
            self.targets.append(cols)
            if rates.size:
                self.cumprobs.append(np.cumsum(rates) / rates.sum())
            else:
                self.cumprobs.append(np.empty(0))

    def next_state(self, i: int, rng: np.random.Generator) -> int:
        cp = self.cumprobs[i]
        k = int(np.searchsorted(cp, rng.random(), side="right"))
        return int(self.targets[i][k])


def sample_trajectory(
    chain: CTMC,
    horizon: float,
    rng: np.random.Generator,
    *,
    initial_state: int = 0,
    _sampler: _JumpSampler | None = None,
) -> TrajectorySample:
    """Sample one path of ``chain`` up to ``horizon``."""
    sampler = _sampler or _JumpSampler(chain)
    states = [initial_state]
    times = [0.0]
    t = 0.0
    i = initial_state
    while True:
        rate = sampler.exit[i]
        if rate <= 0.0:
            break  # absorbing
        t += float(rng.exponential(1.0 / rate))
        if t > horizon:
            break
        i = sampler.next_state(i, rng)
        states.append(i)
        times.append(t)
    return TrajectorySample(np.asarray(states), np.asarray(times))


def empirical_state_probabilities(
    chain: CTMC,
    times: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    *,
    initial_state: int = 0,
) -> np.ndarray:
    """Monte Carlo estimate of the transient distribution.

    Returns ``(len(times), n_states)`` empirical frequencies; each row is
    an unbiased estimate of ``pi(t)`` with per-entry standard error
    ``sqrt(p (1 - p) / n_samples)``.
    """
    times = np.asarray(times, dtype=np.float64)
    sampler = _JumpSampler(chain)
    horizon = float(times.max()) if times.size else 0.0
    counts = np.zeros((times.size, chain.n_states))
    for _ in range(n_samples):
        traj = sample_trajectory(
            chain, horizon, rng, initial_state=initial_state, _sampler=sampler
        )
        idx = np.searchsorted(traj.times, times, side="right") - 1
        occupied = traj.states[np.maximum(idx, 0)]
        counts[np.arange(times.size), occupied] += 1.0
    return counts / n_samples


def empirical_availability(
    chain: CTMC,
    failed_index: int,
    horizon: float,
    n_samples: int,
    rng: np.random.Generator,
    *,
    initial_state: int = 0,
    warmup_fraction: float = 0.1,
) -> tuple[float, float]:
    """Long-run availability by time-average over sampled paths.

    Returns ``(estimate, standard_error)``.  ``warmup_fraction`` of the
    horizon is discarded to reduce initial-state bias.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must lie in [0, 1), got {warmup_fraction}")
    sampler = _JumpSampler(chain)
    warmup = horizon * warmup_fraction
    window = horizon - warmup
    fractions = np.empty(n_samples)
    for s in range(n_samples):
        traj = sample_trajectory(
            chain, horizon, rng, initial_state=initial_state, _sampler=sampler
        )
        # Accumulate downtime within (warmup, horizon].
        entry = traj.times
        exit_ = np.append(traj.times[1:], horizon)
        down = 0.0
        for st, t0, t1 in zip(traj.states, entry, exit_):
            if st == failed_index:
                down += max(0.0, min(t1, horizon) - max(t0, warmup))
        fractions[s] = 1.0 - down / window
    est = float(fractions.mean())
    se = float(fractions.std(ddof=1) / np.sqrt(n_samples)) if n_samples > 1 else 0.0
    return est, se

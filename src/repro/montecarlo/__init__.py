"""Monte Carlo dependability estimation.

Cross-validates the Markov results of :mod:`repro.core` through two fully
independent estimators (a stronger check than the paper itself ran):

* :mod:`~repro.montecarlo.ctmc_mc` -- direct trajectory sampling of *any*
  CTMC: empirical transient distributions (hence R(t)) and long-run
  occupancy (hence availability), with confidence intervals.
* :mod:`~repro.montecarlo.lifetime` -- a structure-function estimator that
  never builds the chain: it samples iid exponential component lifetimes
  and applies the DRA coverage semantics directly.  Its analytic target is
  the ``extended`` model variant (the physically faithful one), so
  agreement checks the *chain structure*, not just the solver.
"""

from repro.montecarlo.ctmc_mc import (
    TrajectorySample,
    empirical_availability,
    empirical_state_probabilities,
    sample_trajectory,
)
from repro.montecarlo.importance import (
    CycleStatistics,
    ImportanceSamplingResult,
    collect_cycle_statistics,
    result_from_statistics,
    unavailability_importance_sampling,
)
from repro.montecarlo.lifetime import (
    LifetimeEstimate,
    empirical_unreliability,
    sample_lc_failure_times,
    structure_function_reliability,
)

__all__ = [
    "TrajectorySample",
    "sample_trajectory",
    "empirical_state_probabilities",
    "empirical_availability",
    "LifetimeEstimate",
    "empirical_unreliability",
    "sample_lc_failure_times",
    "structure_function_reliability",
    "CycleStatistics",
    "ImportanceSamplingResult",
    "collect_cycle_statistics",
    "result_from_statistics",
    "unavailability_importance_sampling",
]

"""Fixed-width table formatting for the paper's figures.

These printers turn sweep records into the rows/series the paper plots,
so a bench run visually reproduces each figure in the terminal.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.analysis.sweep import SweepRecord

__all__ = [
    "format_series",
    "format_reliability_table",
    "format_availability_table",
    "format_performance_table",
]


def _group(records: Sequence[SweepRecord]) -> dict[str, list[SweepRecord]]:
    grouped: dict[str, list[SweepRecord]] = defaultdict(list)
    for rec in records:
        grouped[rec.label].append(rec)
    return grouped


def format_series(
    records: Sequence[SweepRecord],
    *,
    x_name: str = "x",
    value_format: str = "{:.4f}",
    x_format: str = "{:g}",
) -> str:
    """Generic series table: one row per x, one column per label."""
    grouped = _group(records)
    labels = list(grouped)
    xs = sorted({rec.x for rec in records})
    by_label_x = {
        (rec.label, rec.x): rec.value for rec in records
    }
    width = max(12, max(len(lb) for lb in labels) + 2)
    header = f"{x_name:>12}" + "".join(f"{lb:>{width}}" for lb in labels)
    lines = [header]
    for x in xs:
        cells = []
        for lb in labels:
            v = by_label_x.get((lb, x))
            cells.append(
                f"{value_format.format(v):>{width}}" if v is not None else " " * width
            )
        lines.append(f"{x_format.format(x):>12}" + "".join(cells))
    return "\n".join(lines)


def format_reliability_table(
    records: Sequence[SweepRecord], *, time_points: Sequence[float] | None = None
) -> str:
    """Figure 6 as a table: R(t) per configuration at selected hours."""
    if time_points is not None:
        keep = set(float(t) for t in time_points)
        records = [r for r in records if r.x in keep]
    return format_series(records, x_name="t (hours)", x_format="{:.0f}")


def format_availability_table(records: Sequence[SweepRecord]) -> str:
    """Figure 7 as a table: availability and nines per (config, mu)."""
    lines = [f"{'config':>16} {'mu':>8} {'availability':>18} {'paper notation':>16}"]
    for rec in records:
        mu = rec.x
        mu_str = "1/3" if abs(mu - 1 / 3) < 1e-12 else (
            "1/12" if abs(mu - 1 / 12) < 1e-12 else f"{mu:.4f}"
        )
        lines.append(
            f"{rec.label:>16} {mu_str:>8} {rec.value:>18.12f} "
            f"{str(rec.get('notation', '')):>16}"
        )
    return "\n".join(lines)


def format_performance_table(records: Sequence[SweepRecord]) -> str:
    """Figure 8 as a table: % required bandwidth vs X_faulty per load."""
    return format_series(
        records, x_name="X_faulty", value_format="{:8.1f}%", x_format="{:.0f}"
    )

"""The paper's quantitative claims as executable checks.

Every sentence of Section 5 that states a number or an ordering is
registered here as a :class:`Claim` with a predicate over freshly
computed results.  ``python -m repro validate --claims`` runs them all
and reports pass/fail -- the one-command answer to "does this repository
still reproduce the paper?".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = ["Claim", "ClaimResult", "all_claims", "check_claims"]


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    claim_id: str
    section: str
    statement: str
    check: Callable[[], tuple[bool, str]]


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of one claim check."""

    claim: Claim
    passed: bool
    detail: str


def _fig6_bdr_below_half() -> tuple[bool, str]:
    from repro.core import bdr_reliability

    r = bdr_reliability(np.array([40_000.0])).reliability[0]
    return r < 0.5, f"R_BDR(40000 h) = {r:.4f}"


def _fig6_n9_close_to_one() -> tuple[bool, str]:
    from repro.core import DRAConfig, dra_reliability

    values = {
        m: dra_reliability(DRAConfig(n=9, m=m), np.array([40_000.0])).reliability[0]
        for m in (4, 6, 8)
    }
    return all(v > 0.95 for v in values.values()), f"R(40000 h) = {values}"


def _fig6_minimal_improvement() -> tuple[bool, str]:
    from repro.core import DRAConfig, bdr_reliability, dra_reliability

    t = np.array([40_000.0])
    dra = dra_reliability(DRAConfig(n=3, m=2), t).reliability[0]
    bdr = bdr_reliability(t).reliability[0]
    return dra - bdr > 0.3, f"DRA(3,2) {dra:.4f} vs BDR {bdr:.4f}"


def _fig6_m_curves_close() -> tuple[bool, str]:
    from repro.core import DRAConfig, dra_reliability

    t = np.array([40_000.0])
    r4 = dra_reliability(DRAConfig(n=9, m=4), t).reliability[0]
    r8 = dra_reliability(DRAConfig(n=9, m=8), t).reliability[0]
    return abs(r8 - r4) < 0.005, f"spread over M in 4..8: {abs(r8 - r4):.5f}"


def _fig6_pi_dominates() -> tuple[bool, str]:
    from repro.core import DRAConfig, unavailability_elasticities

    out = {r.field: r.elasticity for r in
           unavailability_elasticities(DRAConfig(n=9, m=4))}
    return (
        out["lam_lpi"] > out["lam_lpd"],
        f"elasticity lam_lpi {out['lam_lpi']:.3f} vs lam_lpd {out['lam_lpd']:.3f}",
    )


def _fig7_bdr_nines() -> tuple[bool, str]:
    from repro.core import RepairPolicy, bdr_availability

    fast = bdr_availability(RepairPolicy.three_hours()).nines
    slow = bdr_availability(RepairPolicy.half_day()).nines
    return (fast, slow) == (4, 3), f"BDR nines = {fast}/{slow} (want 4/3)"


def _fig7_minimal_nines() -> tuple[bool, str]:
    from repro.core import DRAConfig, RepairPolicy, dra_availability

    cfg = DRAConfig(n=3, m=2)
    fast = dra_availability(cfg, RepairPolicy.three_hours()).nines
    slow = dra_availability(cfg, RepairPolicy.half_day()).nines
    return (fast, slow) == (8, 7), f"DRA(3,2) nines = {fast}/{slow} (want 8/7)"


def _fig7_saturation() -> tuple[bool, str]:
    from repro.core import DRAConfig, RepairPolicy, dra_availability

    results = {}
    for m in (4, 6, 8):
        cfg = DRAConfig(n=9, m=m)
        results[m] = (
            dra_availability(cfg, RepairPolicy.three_hours()).nines,
            dra_availability(cfg, RepairPolicy.half_day()).nines,
        )
    ok = all(v == (9, 8) for v in results.values())
    return ok, f"nines by M: {results} (want (9, 8) everywhere)"


def _fig8_low_load_full() -> tuple[bool, str]:
    from repro.core.performance import PerformanceModel

    model = PerformanceModel(n=6)
    values = [model.degradation_percent(x, 0.15) for x in range(1, 6)]
    return all(v == 100.0 for v in values), f"percentages at L=15%: {values}"


def _fig8_worst_case() -> tuple[bool, str]:
    from repro.core.performance import PerformanceModel

    pct = PerformanceModel(n=6).degradation_percent(5, 0.70)
    return pct < 10.0, f"X_faulty=5, L=70%: {pct:.1f}% (want < 10%)"


def _fig8_larger_n_helps() -> tuple[bool, str]:
    from repro.core.performance import PerformanceModel

    b6 = PerformanceModel(n=6).bandwidth_to_faulty(1, 0.7)
    b9 = PerformanceModel(n=9).bandwidth_to_faulty(1, 0.7)
    return b9 >= b6, f"B_faulty(X=1, L=70%): N=6 {b6:.2f} vs N=9 {b9:.2f}"


def _economics() -> tuple[bool, str]:
    from repro.core import compare_designs

    _bdr, spared, dra = compare_designs(8, 2)
    ok = dra.cost < spared.cost and dra.availability > spared.availability
    return ok, (
        f"DRA cost {dra.cost:.2f} / A {dra.availability:.2e} vs sparing "
        f"{spared.cost:.2f} / {spared.availability:.2e}"
    )


def all_claims() -> list[Claim]:
    """Every registered claim, in paper order."""
    return [
        Claim("fig6-bdr-below-half", "5.1",
              "BDR reliability drops below 0.5 by 40,000 hours",
              _fig6_bdr_below_half),
        Claim("fig6-n9-close-to-one", "5.1",
              "N=9, M>=4 stays close to 1.0 through 40,000 hours",
              _fig6_n9_close_to_one),
        Claim("fig6-minimal-improvement", "5.1",
              "even M=2, N=3 improves reliability considerably",
              _fig6_minimal_improvement),
        Claim("fig6-m-curves-close", "5.1",
              "R(t) for M > 4 are very close to each other",
              _fig6_m_curves_close),
        Claim("fig6-pi-dominates", "5.1",
              "PI units impact R(t) more than PDLUs",
              _fig6_pi_dominates),
        Claim("fig7-bdr-nines", "5.2",
              "BDR availability is 9^4 (mu=1/3) and 9^3 (mu=1/12)",
              _fig7_bdr_nines),
        Claim("fig7-minimal-nines", "5.2",
              "a single covering LC gives 9^8 / 9^7",
              _fig7_minimal_nines),
        Claim("fig7-saturation", "5.2",
              "availability saturates at 9^9 / 9^8 for all M >= 4",
              _fig7_saturation),
        Claim("fig8-low-load-full", "5.3",
              "at L=15% up to N-1 faulty LCs run at full required capacity",
              _fig8_low_load_full),
        Claim("fig8-worst-case", "5.3",
              "at X_faulty=5, L=70% under 10% of required capacity remains",
              _fig8_worst_case),
        Claim("fig8-larger-n-helps", "5.3",
              "larger N gives higher B_faulty while X_faulty is small",
              _fig8_larger_n_helps),
        Claim("economics", "1/6",
              "DRA is cheaper and more dependable than explicit sparing",
              _economics),
    ]


def check_claims() -> list[ClaimResult]:
    """Run every claim check; never raises (failures are results)."""
    out = []
    for claim in all_claims():
        try:
            passed, detail = claim.check()
        except Exception as exc:  # pragma: no cover - defensive
            passed, detail = False, f"check raised {exc!r}"
        out.append(ClaimResult(claim=claim, passed=passed, detail=detail))
    return out

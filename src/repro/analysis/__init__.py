"""Sweeps, paper-style tables and export helpers."""

from repro.analysis.sweep import (
    availability_sweep,
    performance_sweep,
    reliability_sweep,
    SweepRecord,
)
from repro.analysis.tables import (
    format_availability_table,
    format_performance_table,
    format_reliability_table,
    format_series,
)
from repro.analysis.export import chain_to_networkx, records_to_csv

__all__ = [
    "SweepRecord",
    "reliability_sweep",
    "availability_sweep",
    "performance_sweep",
    "format_reliability_table",
    "format_availability_table",
    "format_performance_table",
    "format_series",
    "chain_to_networkx",
    "records_to_csv",
]

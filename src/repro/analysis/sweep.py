"""Parameter-sweep drivers producing tidy records.

Each sweep returns a flat list of :class:`SweepRecord` -- one measurement
per (configuration, parameter point) -- which the table formatters and the
CSV exporter consume.  The sweeps mirror the paper's figure axes:

* :func:`reliability_sweep` -- Figure 6's two families
  ({M=2, N=3..9} and {N=9, M=4..8}) plus BDR over a time grid;
* :func:`availability_sweep` -- Figure 7's (M, N, mu) grid;
* :func:`performance_sweep` -- Figure 8's (load, X_faulty) grid.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.availability import bdr_availability, dra_availability
from repro.core.parameters import DRAConfig, FailureRates, RepairPolicy
from repro.core.performance import DEFAULT_LC_CAPACITY_GBPS, PerformanceModel
from repro.core.reliability import bdr_reliability, dra_reliability

__all__ = [
    "SweepRecord",
    "reliability_sweep",
    "availability_sweep",
    "performance_sweep",
    "FIG6_TIME_GRID",
    "FIG6_CONFIGS",
    "FIG7_CONFIGS",
    "FIG8_LOADS",
]

#: Figure 6's horizontal axis: 0 to 100,000 hours.
FIG6_TIME_GRID = np.linspace(0.0, 100_000.0, 51)

#: Figure 6's curve families: fix M=2 and vary N in 3..9, then fix N=9 and
#: vary M in 4..8.
FIG6_CONFIGS: tuple[tuple[int, int], ...] = tuple(
    [(n, 2) for n in range(3, 10)] + [(9, m) for m in range(4, 9)]
)

#: Figure 7 evaluates the same configuration families as Figure 6.
FIG7_CONFIGS: tuple[tuple[int, int], ...] = FIG6_CONFIGS

#: Figure 8's load series (15% is the cited Internet average; 70% the high end).
FIG8_LOADS: tuple[float, ...] = (0.15, 0.30, 0.50, 0.70)


@dataclass(frozen=True)
class SweepRecord:
    """One measurement point of a sweep."""

    label: str
    x: float
    value: float
    extra: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default: object = None) -> object:
        """Look up an ``extra`` annotation by key."""
        for k, v in self.extra:
            if k == key:
                return v
        return default


def reliability_sweep(
    times: np.ndarray | None = None,
    configs: Iterable[tuple[int, int]] | None = None,
    rates: FailureRates | None = None,
    *,
    variant: str = "paper",
    include_bdr: bool = True,
    method: str = "expm_multiply",
) -> list[SweepRecord]:
    """R(t) records for every configuration and time point (Figure 6)."""
    times = FIG6_TIME_GRID if times is None else np.asarray(times, dtype=np.float64)
    configs = FIG6_CONFIGS if configs is None else tuple(configs)
    records: list[SweepRecord] = []
    if include_bdr:
        res = bdr_reliability(times, rates, method=method)
        records.extend(
            SweepRecord("BDR", float(t), float(r))
            for t, r in zip(times, res.reliability)
        )
    for n, m in configs:
        cfg = DRAConfig(n=n, m=m, variant=variant)
        res = dra_reliability(cfg, times, rates, method=method)
        records.extend(
            SweepRecord(
                res.label, float(t), float(r), extra=(("n", n), ("m", m))
            )
            for t, r in zip(times, res.reliability)
        )
    return records


def availability_sweep(
    configs: Iterable[tuple[int, int]] | None = None,
    repairs: Sequence[RepairPolicy] | None = None,
    rates: FailureRates | None = None,
    *,
    variant: str = "paper",
    include_bdr: bool = True,
) -> list[SweepRecord]:
    """Steady-state availability records (Figure 7).

    ``x`` carries the repair rate ``mu``; ``extra`` carries the nines.
    """
    configs = FIG7_CONFIGS if configs is None else tuple(configs)
    repairs = repairs or (RepairPolicy.three_hours(), RepairPolicy.half_day())
    records: list[SweepRecord] = []
    for rp in repairs:
        if include_bdr:
            res = bdr_availability(rp, rates)
            records.append(
                SweepRecord(
                    "BDR", rp.mu, res.availability,
                    extra=(("nines", res.nines), ("notation", res.notation)),
                )
            )
        for n, m in configs:
            cfg = DRAConfig(n=n, m=m, variant=variant)
            res = dra_availability(cfg, rp, rates)
            records.append(
                SweepRecord(
                    res.label, rp.mu, res.availability,
                    extra=(
                        ("n", n), ("m", m),
                        ("nines", res.nines), ("notation", res.notation),
                    ),
                )
            )
    return records


def performance_sweep(
    loads: Sequence[float] | None = None,
    *,
    n: int = 6,
    c_lc: float = DEFAULT_LC_CAPACITY_GBPS,
    b_bus: float | None = None,
) -> list[SweepRecord]:
    """Bandwidth-degradation records (Figure 8).

    ``x`` is ``X_faulty``; ``value`` the percentage of required bandwidth.
    """
    loads = FIG8_LOADS if loads is None else tuple(loads)
    model = PerformanceModel(n=n, c_lc=c_lc, b_bus=b_bus)
    records: list[SweepRecord] = []
    for load in loads:
        for x_faulty in range(1, n):
            records.append(
                SweepRecord(
                    f"L={load:.0%}",
                    float(x_faulty),
                    model.degradation_percent(x_faulty, load),
                    extra=(("load", load),),
                )
            )
    return records

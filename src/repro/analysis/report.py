"""Markdown experiment-report generation.

Regenerates the paper's full evaluation (Figures 6-8 plus the extension
studies) and renders it as a single Markdown document -- the programmatic
source of ``EXPERIMENTS.md``.  Running it is the one-command check that
the reproduction still holds end to end:

    python -m repro.analysis.report > EXPERIMENTS_regenerated.md

The figure sweeps run through the :mod:`repro.runtime` layer, so
``generate_report(jobs=..., cache=...)`` (or ``python -m repro report
--jobs N --cache``) fans the chain solves out over a process pool and/or
skips chains already solved in the content-addressed cache; the closing
"Runtime" section reports wall time and throughput per stage either way.
"""

from __future__ import annotations

import io

import numpy as np

from repro.analysis.sweep import FIG6_CONFIGS
from repro.analysis.tables import (
    format_availability_table,
    format_performance_table,
    format_reliability_table,
)
from repro.core import (
    DRAConfig,
    RepairPolicy,
    bdr_mttf,
    compare_designs,
    dra_mttf,
    unavailability_elasticities,
)

__all__ = ["generate_report"]

_LANDMARKS = [0.0, 20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0]
_FIG6_SHOWN = (
    "BDR",
    "DRA(N=3,M=2)",
    "DRA(N=6,M=2)",
    "DRA(N=9,M=2)",
    "DRA(N=9,M=4)",
    "DRA(N=9,M=8)",
)


def generate_report(*, jobs: int = 1, cache: "ResultCache | None" = None) -> str:
    """Regenerate every experiment and render the Markdown report.

    Parameters
    ----------
    jobs:
        Worker processes for the figure sweeps (0 = all cores, 1 = serial;
        the record values are identical either way).
    cache:
        Optional :class:`repro.runtime.ResultCache`; already-solved chains
        are loaded instead of re-solved, and the hit/miss tally appears in
        the Runtime section.
    """
    from repro.obs import MetricsRegistry, collecting
    from repro.runtime import RuntimeMetrics

    metrics = RuntimeMetrics()
    registry = MetricsRegistry()
    with collecting(registry):
        return _render(metrics, registry, jobs, cache)


def _render(metrics, registry, jobs: int, cache) -> str:
    from repro.runtime import (
        Stopwatch,
        parallel_availability_sweep,
        parallel_performance_sweep,
        parallel_reliability_sweep,
    )

    out = io.StringIO()
    w = out.write

    w("# Regenerated evaluation — DRA (ICPP 2004)\n\n")
    w("All tables below are computed live from the library; the narrative\n")
    w("comparisons with the paper are maintained in EXPERIMENTS.md.\n\n")

    # Figure 6.
    w("## Figure 6 — LC reliability R(t)\n\n```\n")
    recs = parallel_reliability_sweep(
        times=np.array(_LANDMARKS), configs=FIG6_CONFIGS,
        jobs=jobs, cache=cache, metrics=metrics,
    )
    shown = [r for r in recs if r.label in _FIG6_SHOWN]
    w(format_reliability_table(shown, time_points=_LANDMARKS))
    w("\n```\n\n")

    # Figure 7.
    w("## Figure 7 — steady-state availability\n\n```\n")
    arecs = parallel_availability_sweep(
        configs=[(3, 2), (5, 2), (9, 2), (9, 4), (9, 6), (9, 8)],
        jobs=jobs, cache=cache, metrics=metrics,
    )
    w(format_availability_table(arecs))
    w("\n```\n\n")

    # Figure 8.
    w("## Figure 8 — bandwidth available to faulty LCs (N = 6)\n\n```\n")
    w(format_performance_table(
        parallel_performance_sweep(jobs=jobs, cache=cache, metrics=metrics)
    ))
    w("\n```\n\n")

    # MTTF extension.
    w("## Extension — MTTF per configuration\n\n```\n")
    w(f"{'config':>14} {'MTTF (h)':>12} {'vs BDR':>8}\n")
    with Stopwatch() as sw:
        base = bdr_mttf()
        w(f"{'BDR':>14} {base.hours:>12.0f} {'1.00x':>8}\n")
        mttf_configs = [(3, 2), (6, 2), (9, 2), (9, 4), (9, 8)]
        for n, m in mttf_configs:
            res = dra_mttf(DRAConfig(n=n, m=m))
            w(f"{res.label:>14} {res.hours:>12.0f} {res.hours / base.hours:>7.2f}x\n")
    metrics.record("MTTF extension", sw.elapsed,
                   items=len(mttf_configs) + 1, unit="points")
    w("```\n\n")

    # Elasticities extension.
    w("## Extension — unavailability elasticities, DRA(9, 4), mu = 1/3\n\n```\n")
    for r in unavailability_elasticities(DRAConfig(n=9, m=4)):
        w(f"  {r.field:>8} {r.elasticity:+6.3f}\n")
    w("```\n\n")

    # Cost extension.
    w("## Extension — cost vs availability (LC cost = 1.0, mu = 1/3)\n\n```\n")
    for d in compare_designs(8, 2, RepairPolicy.three_hours()):
        w(f"  {d.label:<24} cost {d.cost:6.2f}   A = {d.availability:.12f}\n")
    w("```\n\n")

    # Runtime instrumentation (wall time / throughput per stage above).
    w("## Runtime — wall time per stage\n\n```\n")
    w(metrics.format_table())
    w("\n")
    if cache is not None:
        w(f"\ncache: {cache.hits} hit(s), {cache.misses} miss(es) "
          f"at {cache.root}\n")
    w("```\n\n")

    # Observability: solver/model counters collected while the sections
    # above ran (merged across workers when jobs > 1; identical content
    # for any jobs value -- see docs/observability.md).
    w("## Observability — collected metrics\n\n```\n")
    w(registry.format_table() if len(registry) else "(no metrics recorded)")
    w("\n```\n")

    return out.getvalue()


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    print(generate_report())

"""Markdown experiment-report generation.

Regenerates the paper's full evaluation (Figures 6-8 plus the extension
studies) and renders it as a single Markdown document -- the programmatic
source of ``EXPERIMENTS.md``.  Running it is the one-command check that
the reproduction still holds end to end:

    python -m repro.analysis.report > EXPERIMENTS_regenerated.md
"""

from __future__ import annotations

import io

import numpy as np

from repro.analysis.sweep import (
    FIG6_CONFIGS,
    availability_sweep,
    performance_sweep,
    reliability_sweep,
)
from repro.analysis.tables import (
    format_availability_table,
    format_performance_table,
    format_reliability_table,
)
from repro.core import (
    DRAConfig,
    RepairPolicy,
    bdr_mttf,
    compare_designs,
    dra_mttf,
    unavailability_elasticities,
)

__all__ = ["generate_report"]

_LANDMARKS = [0.0, 20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0]
_FIG6_SHOWN = (
    "BDR",
    "DRA(N=3,M=2)",
    "DRA(N=6,M=2)",
    "DRA(N=9,M=2)",
    "DRA(N=9,M=4)",
    "DRA(N=9,M=8)",
)


def generate_report() -> str:
    """Regenerate every experiment and render the Markdown report."""
    out = io.StringIO()
    w = out.write

    w("# Regenerated evaluation — DRA (ICPP 2004)\n\n")
    w("All tables below are computed live from the library; the narrative\n")
    w("comparisons with the paper are maintained in EXPERIMENTS.md.\n\n")

    # Figure 6.
    w("## Figure 6 — LC reliability R(t)\n\n```\n")
    recs = reliability_sweep(times=np.array(_LANDMARKS), configs=FIG6_CONFIGS)
    shown = [r for r in recs if r.label in _FIG6_SHOWN]
    w(format_reliability_table(shown, time_points=_LANDMARKS))
    w("\n```\n\n")

    # Figure 7.
    w("## Figure 7 — steady-state availability\n\n```\n")
    arecs = availability_sweep(
        configs=[(3, 2), (5, 2), (9, 2), (9, 4), (9, 6), (9, 8)]
    )
    w(format_availability_table(arecs))
    w("\n```\n\n")

    # Figure 8.
    w("## Figure 8 — bandwidth available to faulty LCs (N = 6)\n\n```\n")
    w(format_performance_table(performance_sweep()))
    w("\n```\n\n")

    # MTTF extension.
    w("## Extension — MTTF per configuration\n\n```\n")
    w(f"{'config':>14} {'MTTF (h)':>12} {'vs BDR':>8}\n")
    base = bdr_mttf()
    w(f"{'BDR':>14} {base.hours:>12.0f} {'1.00x':>8}\n")
    for n, m in [(3, 2), (6, 2), (9, 2), (9, 4), (9, 8)]:
        res = dra_mttf(DRAConfig(n=n, m=m))
        w(f"{res.label:>14} {res.hours:>12.0f} {res.hours / base.hours:>7.2f}x\n")
    w("```\n\n")

    # Elasticities extension.
    w("## Extension — unavailability elasticities, DRA(9, 4), mu = 1/3\n\n```\n")
    for r in unavailability_elasticities(DRAConfig(n=9, m=4)):
        w(f"  {r.field:>8} {r.elasticity:+6.3f}\n")
    w("```\n\n")

    # Cost extension.
    w("## Extension — cost vs availability (LC cost = 1.0, mu = 1/3)\n\n```\n")
    for d in compare_designs(8, 2, RepairPolicy.three_hours()):
        w(f"  {d.label:<24} cost {d.cost:6.2f}   A = {d.availability:.12f}\n")
    w("```\n")

    return out.getvalue()


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    print(generate_report())

"""Export helpers: CSV records and chain graphs."""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.analysis.sweep import SweepRecord
from repro.markov.ctmc import CTMC

__all__ = ["records_to_csv", "chain_to_networkx", "chain_to_dot"]


def records_to_csv(
    records: Sequence[SweepRecord], path: str | Path | None = None
) -> str:
    """Serialize sweep records to CSV (returned; also written when ``path``
    is given).  Extra annotations become additional columns."""
    extra_keys: list[str] = []
    for rec in records:
        for key, _ in rec.extra:
            if key not in extra_keys:
                extra_keys.append(key)
    buf = io.StringIO()
    # Explicit "\n" keeps the in-memory text identical to what
    # Path.read_text() returns after a round trip (universal newlines
    # would otherwise fold the csv module's "\r\n").
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["label", "x", "value", *extra_keys])
    for rec in records:
        row: list[Any] = [rec.label, rec.x, rec.value]
        row.extend(rec.get(k, "") for k in extra_keys)
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def chain_to_networkx(chain: CTMC) -> Any:
    """The chain's transition graph as a ``networkx.DiGraph`` with state
    labels stringified and rates on the edges (Figure 5 regeneration)."""
    import networkx as nx

    g = nx.DiGraph()
    for s in chain.states:
        g.add_node(str(s))
    coo = chain.generator.tocoo()
    for i, j, q in zip(coo.row, coo.col, coo.data):
        if i != j and q > 0.0:
            g.add_edge(str(chain.states[i]), str(chain.states[j]), rate=float(q))
    return g


def chain_to_dot(chain: CTMC) -> str:
    """A Graphviz DOT rendering of the chain (no graphviz dependency)."""
    lines = ["digraph ctmc {", "  rankdir=LR;"]
    coo = chain.generator.tocoo()
    for s in chain.states:
        lines.append(f'  "{s}";')
    for i, j, q in zip(coo.row, coo.col, coo.data):
        if i != j and q > 0.0:
            lines.append(
                f'  "{chain.states[i]}" -> "{chain.states[j]}" [label="{q:.2e}"];'
            )
    lines.append("}")
    return "\n".join(lines)

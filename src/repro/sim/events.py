"""Event records for the simulation engine."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventHandle"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, priority, seq)``: earlier time first, then
    lower priority number, then insertion order.  ``action`` and
    ``cancelled`` are excluded from comparisons.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`; supports cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped, which keeps ``cancel`` O(1).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def label(self) -> str:
        """Diagnostic label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

"""Discrete-event simulation kernel.

A minimal, deterministic event-driven engine used by the executable router
model (:mod:`repro.router`) and the regenerative availability simulator
(:mod:`repro.montecarlo`).  Design points:

* a single binary-heap event queue keyed by ``(time, priority, seq)`` so
  simultaneous events fire in a reproducible order;
* events are plain callbacks (no coroutine machinery) -- the router model
  is written as interacting state machines, which profile far better in
  CPython than generator-based processes;
* named RNG streams (:mod:`repro.sim.rng`) keep workload, fault and
  protocol randomness independent, so experiments can vary one source
  while holding the others fixed.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event, EventHandle
from repro.sim.rng import RngRegistry

__all__ = ["Engine", "SimulationError", "Event", "EventHandle", "RngRegistry"]

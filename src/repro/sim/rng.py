"""Named, independent random-number streams.

Experiments need to vary one source of randomness (say, the fault process)
while holding another (the traffic) fixed across runs.  The registry derives
one child :class:`numpy.random.Generator` per *name* from a root seed via
``SeedSequence.spawn``-style keying, so streams are statistically
independent and stable under code changes that add new streams.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, reproducible RNG streams.

    Examples
    --------
    >>> a = RngRegistry(seed=7).stream("traffic")
    >>> b = RngRegistry(seed=7).stream("traffic")
    >>> float(a.random()) == float(b.random())
    True
    >>> c = RngRegistry(seed=7).stream("faults")
    >>> float(b.random()) != float(c.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be nonnegative, got {seed}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed of the registry."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached).

        The stream key is derived from a CRC of the name so it does not
        depend on the order in which streams are first requested.
        """
        if name not in self._streams:
            key = zlib.crc32(name.encode("utf-8"))
            ss = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            self._streams[name] = np.random.default_rng(ss)
        return self._streams[name]

    def fork(self, offset: int) -> "RngRegistry":
        """A registry with seed ``seed + offset`` (for replication sweeps)."""
        return RngRegistry(seed=self._seed + int(offset))

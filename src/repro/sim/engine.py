"""The event loop: a monotonic clock over a binary heap of events."""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.obs import trace as _trace
from repro.sim.events import Event, EventHandle

__all__ = ["Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling into the past or on runaway event storms."""


class Engine:
    """Discrete-event simulation engine.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(2.0, lambda: fired.append(eng.now))
    >>> _ = eng.schedule(1.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        #: the ``until`` horizon of the active :meth:`run` call; burst
        #: runs consult it so inline sub-events never fire past it.
        self._until: float | None = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired since construction."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still queued (including lazily cancelled ones)."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to fire at absolute ``time``.

        ``priority`` breaks ties at equal times (lower fires first);
        insertion order breaks remaining ties.  Scheduling strictly in the
        past raises :class:`SimulationError`; scheduling at the current
        instant is allowed (the event fires before time advances).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        ev = Event(time=time, priority=priority, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return EventHandle(ev)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` after a nonnegative relative ``delay``."""
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action, priority=priority, label=label)

    def schedule_run(
        self,
        first_time: float,
        step: Callable[[], float | None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule a batched run of sub-events sharing one heap entry.

        ``step()`` fires at ``first_time`` and must return the absolute
        time of the next firing (or ``None`` to end the run).  The run
        reuses a single :class:`Event` object: after each firing it is
        re-keyed with a fresh sequence number -- so equal-time ties
        against independently scheduled events break exactly as if each
        sub-event had been scheduled individually at its predecessor's
        firing -- and, while no other pending event (and no ``until``
        horizon) comes first, the next sub-event fires *inline* without
        touching the heap at all.  A run of N sub-events therefore costs
        one event allocation and O(interruptions) heap operations
        instead of N of each, while producing the same clock
        advancement, the same per-sub-event ``sim.fire`` trace events
        and the same ``events_processed`` total as N scalar events.

        Inline sub-events are not counted against :meth:`run`'s
        ``max_events`` guard (runs are finite by construction: each
        firing consumes one ``step`` result).  Cancelling the returned
        handle stops the run at the next firing boundary.
        """
        if first_time < self._now:
            raise SimulationError(
                f"cannot schedule at t={first_time} before current time t={self._now}"
            )
        ev = Event(
            time=first_time, priority=priority, seq=self._seq,
            action=lambda: None, label=label,
        )
        self._seq += 1

        def fire() -> None:
            queue = self._queue
            heappush = heapq.heappush
            while True:
                next_time = step()
                if next_time is None or ev.cancelled:
                    return
                if next_time < self._now:
                    raise SimulationError(
                        f"run {label!r} stepped backwards to t={next_time} "
                        f"at current time t={self._now}"
                    )
                ev.time = next_time
                ev.seq = self._seq
                self._seq += 1
                until = self._until
                if (until is not None and next_time > until) or (
                    queue and queue[0] < ev
                ):
                    heappush(queue, ev)
                    return
                # Fire the next sub-event inline: same clock/trace/
                # counter protocol as the main loop, minus heap traffic.
                self._now = next_time
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "sim.fire", t=next_time, label=label, event_seq=ev.seq
                    )
                self._events_processed += 1

        ev.action = fire
        heapq.heappush(self._queue, ev)
        return EventHandle(ev)

    def run(
        self, until: float | None = None, *, max_events: int | None = None
    ) -> None:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (events scheduled at ``until`` do fire).  ``max_events``
        guards against runaway feedback loops in protocol state machines.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run call)")
        self._running = True
        self._until = until
        fired = 0
        # Hot loop: bind the heap and heappop locally; at throughput-suite
        # event rates the repeated attribute lookups are measurable.
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                ev = queue[0]
                if until is not None and ev.time > until:
                    break
                heappop(queue)
                if ev.cancelled:
                    if _trace.TRACER is not None:
                        _trace.TRACER.emit(
                            "sim.cancel", t=self._now, label=ev.label, event_seq=ev.seq
                        )
                    continue
                self._now = ev.time
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "sim.fire", t=ev.time, label=ev.label, event_seq=ev.seq
                    )
                ev.action()
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now} "
                        f"(last event {ev.label!r}); likely an event storm"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._until = None

    def step(self) -> bool:
        """Fire the single next non-cancelled event; False if queue empty.

        A burst run (:meth:`schedule_run`) fires exactly one sub-event
        per ``step`` call: the horizon is pinned so the run re-queues
        instead of continuing inline.
        """
        self._until = float("-inf")
        try:
            return self._step_one()
        finally:
            self._until = None

    def _step_one(self) -> bool:
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                if _trace.TRACER is not None:
                    _trace.TRACER.emit(
                        "sim.cancel", t=self._now, label=ev.label, event_seq=ev.seq
                    )
                continue
            self._now = ev.time
            if _trace.TRACER is not None:
                _trace.TRACER.emit(
                    "sim.fire", t=ev.time, label=ev.label, event_seq=ev.seq
                )
            ev.action()
            self._events_processed += 1
            return True
        return False

    def peek_time(self) -> float | None:
        """Time of the next pending event, skipping cancelled ones."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

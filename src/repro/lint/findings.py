"""Finding records produced by the invariant linter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a file location.

    The field order (path, line, col, code) is the sort order of every
    report the engine produces, so output is deterministic whatever the
    ``--jobs`` value or filesystem enumeration order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The one-line ``path:line:col: CODE message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form used by ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

"""``repro.lint``: an AST-based invariant linter for this repository.

The subsystems grown so far (parallel runtime, tracer/metrics, chaos
campaigns, the differential validation harness) rest on conventions
that, when silently broken, corrupt dependability numbers instead of
crashing: randomness must flow from seeded ``SeedSequence`` spawns,
dispatch must iterate in sorted order so ``--jobs N`` is bit-identical,
simulation code must never read the wall clock, and every trace
event/metric name must exist in the :mod:`repro.obs.schema` registry.
This package checks those contracts mechanically over the Python AST
(stdlib :mod:`ast`, no third-party dependency) and backs the
``repro-dra lint`` CLI subcommand and its CI gate.

Rules come in two tiers: the per-file checks (``DRA1xx``--``DRA4xx``)
see one :class:`~repro.lint.context.FileContext` at a time, while the
interprocedural pass (:mod:`repro.lint.flow`, ``DRA5xx``) builds a
whole-project symbol table and call graph -- crossing function, module
and process-pool boundaries -- and can export that graph as
schema-versioned JSON (``lint --graph-out``).

See ``docs/static-analysis.md`` for the rule catalogue (``DRA1xx``
determinism, ``DRA2xx`` observability, ``DRA3xx`` testing hygiene,
``DRA4xx`` CLI surface, ``DRA5xx`` interprocedural), the
``# dra: noqa[CODE] reason=...`` suppression policy, and how to add a
rule.
"""

from repro.lint.engine import (
    LINT_SCHEMA_VERSION,
    PARSE_ERROR_CODE,
    LintReport,
    iter_python_files,
    lint_paths,
    round_robin_chunks,
)
from repro.lint.findings import Finding
from repro.lint.flow import GRAPH_SCHEMA_VERSION, analyze_project
from repro.lint.flow.rules5xx import FLOW_RULES
from repro.lint.rules import RULES, Rule, all_codes, rule
from repro.lint.suppress import SUPPRESSION_CODE, Suppression, scan_suppressions

__all__ = [
    "FLOW_RULES",
    "GRAPH_SCHEMA_VERSION",
    "LINT_SCHEMA_VERSION",
    "PARSE_ERROR_CODE",
    "SUPPRESSION_CODE",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "Suppression",
    "all_codes",
    "analyze_project",
    "iter_python_files",
    "lint_paths",
    "round_robin_chunks",
    "rule",
    "scan_suppressions",
]

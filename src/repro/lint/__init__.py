"""``repro.lint``: an AST-based invariant linter for this repository.

The subsystems grown so far (parallel runtime, tracer/metrics, chaos
campaigns, the differential validation harness) rest on conventions
that, when silently broken, corrupt dependability numbers instead of
crashing: randomness must flow from seeded ``SeedSequence`` spawns,
dispatch must iterate in sorted order so ``--jobs N`` is bit-identical,
simulation code must never read the wall clock, and every trace
event/metric name must exist in the :mod:`repro.obs.schema` registry.
This package checks those contracts mechanically over the Python AST
(stdlib :mod:`ast`, no third-party dependency) and backs the
``repro-dra lint`` CLI subcommand and its CI gate.

See ``docs/static-analysis.md`` for the rule catalogue (``DRA1xx``
determinism, ``DRA2xx`` observability, ``DRA3xx`` testing hygiene), the
``# dra: noqa[CODE] reason=...`` suppression policy, and how to add a
rule.
"""

from repro.lint.engine import (
    LINT_SCHEMA_VERSION,
    PARSE_ERROR_CODE,
    LintReport,
    iter_python_files,
    lint_paths,
)
from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule, all_codes, rule
from repro.lint.suppress import SUPPRESSION_CODE, Suppression, scan_suppressions

__all__ = [
    "LINT_SCHEMA_VERSION",
    "PARSE_ERROR_CODE",
    "SUPPRESSION_CODE",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "Suppression",
    "all_codes",
    "iter_python_files",
    "lint_paths",
    "rule",
    "scan_suppressions",
]

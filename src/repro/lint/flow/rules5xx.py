"""DRA5xx: interprocedural determinism & concurrency rules.

Where DRA1xx/DRA2xx judge one file at a time, these five families run
over the whole-project :class:`~repro.lint.flow.callgraph.CallGraph`
and the dataflow summaries of :mod:`repro.lint.flow.dataflow`:

* **DRA501** RNG provenance -- generators must derive from the run's
  ``SeedSequence.spawn`` chain: no hard-coded seeds in library code, no
  module-level generators, no generator captured by a closure that
  crosses a process-pool boundary;
* **DRA502** worker race surface -- module-level mutable state written
  by any function reachable from a pool worker entry diverges per
  process, so results depend on the ``--jobs`` fan-out;
* **DRA503** unordered-iteration escape -- dict/set iteration order
  flowing through returns/locals/arguments into parallel dispatch or
  seed spawns (the interprocedural generalization of DRA103, which
  stays as the fast local check);
* **DRA504** trace/metric literal flow -- emit kinds and metric names
  laundered through variables, module constants or thin wrappers must
  still constant-propagate to a :mod:`repro.obs.schema` registration;
* **DRA505** hot-path purity -- wall-clock, filesystem and network
  calls reachable from frames the simulation engine schedules
  (``Engine.run`` fires them; nondeterminism there corrupts results
  instead of crashing).

Every rule receives the shared :class:`ProjectAnalysis` and yields
plain :class:`~repro.lint.findings.Finding` records anchored at the
**sink** line -- which is also where the suppression policy applies
(``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.flow import dataflow as _df
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.modules import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted,
)
from repro.lint.rules import _EPOCH_READS, _MONOTONIC_READS
from repro.obs import schema as _schema

__all__ = ["FLOW_RULES", "FlowRule", "ProjectAnalysis", "flow_rule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ProjectAnalysis:
    """Everything the flow rules share for one run."""

    index: ProjectIndex
    graph: CallGraph
    #: function qname -> why its return value is hash-ordered
    unordered: dict[str, str]
    #: function qname -> worker entry that reaches it
    worker_reach: dict[str, str]
    #: function qname -> scheduled frame that reaches it
    sched_reach: dict[str, str]

    def library_modules(self) -> Iterator[ModuleInfo]:
        """Modules under ``repro/<pkg>/`` that are not tests/examples."""
        for mod in self.index.modules.values():
            ctx = mod.ctx
            if ctx.is_test_code or ctx.is_example:
                continue
            if ctx.subpackage is None:
                continue
            yield mod

    def functions_of(self, mod: ModuleInfo) -> list[FunctionInfo]:
        out = list(mod.functions.values())
        for ci in mod.classes.values():
            out.extend(ci.methods.values())
        return out


@dataclass(frozen=True)
class FlowRule:
    """A registered whole-project check."""

    code: str
    name: str
    summary: str
    check: Callable[[ProjectAnalysis], Iterable[Finding]]


#: Registry of interprocedural rules, keyed by code.
FLOW_RULES: dict[str, FlowRule] = {}


def flow_rule(code: str, name: str, summary: str):
    """Decorator registering an interprocedural rule under ``code``."""

    def register(check: Callable[[ProjectAnalysis], Iterable[Finding]]):
        if code in FLOW_RULES:
            raise ValueError(f"duplicate flow rule code {code}")
        FLOW_RULES[code] = FlowRule(
            code=code, name=name, summary=summary, check=check
        )
        return check

    return register


def _finding(mod: ModuleInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=mod.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


def _enclosing_function(
    mod: ModuleInfo, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    parents = mod.ctx.parents
    cur = parents.get(node)
    while cur is not None:
        if isinstance(cur, _FUNC_NODES):
            return cur
        cur = parents.get(cur)
    return None


def _qname_of_node(p: ProjectAnalysis, mod: ModuleInfo, func_node) -> str | None:
    for fi in p.functions_of(mod):
        if fi.node is func_node:
            return fi.qname
    return None


# ---------------------------------------------------------------------------
# DRA501 -- RNG provenance
# ---------------------------------------------------------------------------

_GEN_FACTORIES = frozenset({"default_rng", "stream"})


def _is_default_rng_call(node: ast.Call) -> bool:
    dotted = _dotted(node.func)
    return dotted is not None and dotted[-1] == "default_rng"


def _generator_locals(func: ast.AST) -> set[str]:
    """Locals bound to a fresh Generator (``default_rng``/``.stream``)."""
    out: set[str] = set()
    for node in ast.walk(func):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        dotted = _dotted(node.value.func)
        if dotted is None or dotted[-1] not in _GEN_FACTORIES:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _free_names(func: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names a closure reads from its enclosing scope."""
    args = func.args
    bound = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    body = func.body if isinstance(func, ast.Lambda) else func
    loaded: set[str] = set()
    nodes = ast.walk(body) if isinstance(body, ast.AST) else (
        n for stmt in body for n in ast.walk(stmt)
    )
    for node in nodes:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
    return loaded - bound


@flow_rule(
    "DRA501",
    "flow.rng-provenance",
    "generators derive from the run's SeedSequence.spawn chain",
)
def check_rng_provenance(p: ProjectAnalysis) -> Iterator[Finding]:
    for mod in p.library_modules():
        if mod.ctx.endswith("sim", "rng.py"):  # the sanctioned factory
            continue
        local_envs: dict[ast.AST, dict[str, object]] = {}
        for node in mod.ctx.nodes:
            if not (isinstance(node, ast.Call) and _is_default_rng_call(node)):
                continue
            func = _enclosing_function(mod, node)
            if func is None:
                yield _finding(
                    mod, node, "DRA501",
                    "module-level Generator is process-wide shared state: "
                    "every importer draws from one stream in load order; "
                    "derive per-run streams from the root SeedSequence "
                    "instead (see repro.sim.rng)",
                )
                continue
            if not node.args:
                continue  # unseeded: DRA101's finding
            if func not in local_envs:
                local_envs[func] = _df.local_const_env(func)
            seed = _df.fold_const(
                node.args[0], index=p.index, mod=mod, local_env=local_envs[func]
            )
            if seed is _df.MISSING or not isinstance(seed, int):
                continue
            qname = _qname_of_node(p, mod, func)
            entry = p.worker_reach.get(qname) if qname else None
            if entry is not None:
                yield _finding(
                    mod, node, "DRA501",
                    f"default_rng({seed}) inside pool-dispatched code "
                    f"(reachable from worker entry {entry}): every chunk "
                    "draws the identical stream; derive the generator from "
                    "the task's SeedSequence.spawn chain in the payload",
                )
            else:
                yield _finding(
                    mod, node, "DRA501",
                    f"hard-coded seed {seed} severs the SeedSequence.spawn "
                    "provenance chain; accept an rng (or SeedSequence) "
                    "parameter derived from the run's root seed",
                )
    # closures capturing a Generator across the pool boundary
    for site in p.graph.pool_sites:
        mod = p.index.module_of(site.caller)
        if mod.ctx.is_test_code or mod.ctx.is_example:
            continue
        fn_expr = site.fn_expr
        closure = None
        if isinstance(fn_expr, ast.Lambda):
            closure = fn_expr
        elif isinstance(fn_expr, ast.Name):
            for sub in ast.walk(site.caller.node):
                if isinstance(sub, _FUNC_NODES) and sub.name == fn_expr.id:
                    closure = sub
                    break
        if closure is None:
            continue
        captured = _free_names(closure) & _generator_locals(site.caller.node)
        for name in sorted(captured):
            yield _finding(
                mod, site.node, "DRA501",
                f"closure worker captures Generator {name!r} across the "
                "process-pool boundary: each worker gets a pickled copy "
                "(or fork snapshot) of the same stream state, so draws "
                "collide across chunks; spawn one SeedSequence child per "
                "task instead",
            )


# ---------------------------------------------------------------------------
# DRA502 -- worker race surface
# ---------------------------------------------------------------------------

_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "appendleft",
    }
)

#: Modules housing the sanctioned process-global hooks: registries are
#: collected per worker and merged in submission order (the snapshot
#: discipline of ``metered_parallel_map``), so their globals are the
#: mechanism that *makes* pooled metrics deterministic.
_HOOK_MODULES = (("obs", "metrics.py"), ("obs", "trace.py"))


def _local_names(func: ast.AST) -> set[str]:
    names: set[str] = set()
    args = func.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, _FUNC_NODES) and node is not func:
            names.add(node.name)
    # names declared global are writes *to the module*, not locals
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            names -= set(node.names)
    return names


def _module_target(
    index: ProjectIndex, mod: ModuleInfo, expr: ast.expr, locals_: set[str]
) -> tuple[ModuleInfo, str] | None:
    """The (module, name) a store/mutation expression ultimately hits."""
    if isinstance(expr, ast.Name):
        if expr.id in locals_:
            return None
        target = index.resolve(mod, (expr.id,))
        if isinstance(target, tuple) and target[0] == "mutable":
            return target[1], target[2]
        if expr.id in mod.globals_defined:
            return mod, expr.id
        return None
    if isinstance(expr, ast.Attribute):
        dotted = _dotted(expr)
        if dotted is None or dotted[0] in locals_ or dotted[0] == "self":
            return None
        target = index.resolve(mod, dotted)
        if isinstance(target, tuple) and target[0] == "mutable":
            return target[1], target[2]
    return None


def _race_writes(
    index: ProjectIndex, mod: ModuleInfo, fi: FunctionInfo
) -> list[tuple[ast.AST, ModuleInfo, str, str]]:
    """(node, target module, target name, verb) for each global write."""
    locals_ = _local_names(fi.node)
    globals_decl: set[str] = set()
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Global):
            globals_decl |= set(node.names)
    out: list[tuple[ast.AST, ModuleInfo, str, str]] = []
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Assign | ast.AugAssign):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if isinstance(t, ast.Name) and t.id in globals_decl:
                    out.append((node, mod, t.id, "rebinds"))
                elif isinstance(t, ast.Subscript):
                    mt = _module_target(index, mod, t.value, locals_)
                    if mt is not None:
                        out.append((node, mt[0], mt[1], "writes into"))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            mt = _module_target(index, mod, node.func.value, locals_)
            if mt is not None:
                out.append((node, mt[0], mt[1], f"mutates ({node.func.attr})"))
    return out


@flow_rule(
    "DRA502",
    "flow.worker-race",
    "no module-level mutable state written from pool-worker frames",
)
def check_worker_race(p: ProjectAnalysis) -> Iterator[Finding]:
    seen: set[tuple[str, int, int]] = set()
    for qname in sorted(p.worker_reach):
        fi = p.index.functions[qname]
        mod = p.index.module_of(fi)
        ctx = mod.ctx
        if ctx.is_test_code or ctx.is_example:
            continue
        if any(ctx.endswith(*suffix) for suffix in _HOOK_MODULES):
            continue  # the sanctioned snapshot-merged hook machinery
        entry = p.worker_reach[qname]
        for node, tmod, name, verb in _race_writes(p.index, mod, fi):
            key = (fi.path, node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield _finding(
                mod, node, "DRA502",
                f"{verb} module-level mutable {tmod.name}.{name} inside "
                f"{fi.qname}, reachable from worker entry {entry}: each "
                "pool process mutates its own copy, so results depend on "
                "the --jobs fan-out; carry state in task payloads/returns "
                "and merge in submission order",
            )


# ---------------------------------------------------------------------------
# DRA503 -- unordered-iteration escape
# ---------------------------------------------------------------------------

_DISPATCH_FUNCS = frozenset({"parallel_map", "metered_parallel_map", "spawn"})


def _dispatch_name(node: ast.Call) -> str | None:
    fn = node.func
    name = fn.id if isinstance(fn, ast.Name) else (
        fn.attr if isinstance(fn, ast.Attribute) else None
    )
    return name if name in _DISPATCH_FUNCS else None


def _escape_taint(
    p: ProjectAnalysis, mod: ModuleInfo, env: dict[str, str], expr: ast.expr
) -> str | None:
    """Interprocedural taint of ``expr``, skipping DRA103's local hits.

    DRA103 already flags a ``.items()``/set literal written directly at
    the sink, so this only reports taint that arrived through a local
    variable, a parameter, or a project-function return value.
    """
    if _df.unordered_expr(expr, index=p.index, mod=mod) is not None:
        return None
    return _df.unordered_expr(
        expr, index=p.index, mod=mod, local_env=env, summaries=p.unordered
    )


def _tainted_params(p: ProjectAnalysis, fi: FunctionInfo) -> dict[str, str]:
    """Params of ``fi`` receiving an unordered value at some call site."""
    out: dict[str, str] = {}
    params = fi.params
    for site in p.graph.sites_calling(fi.qname):
        if site.kind != "call":
            continue
        caller = p.index.functions.get(site.caller)
        if caller is None:
            continue
        cmod = p.index.module_of(caller)
        cenv = _df.local_unordered_env(
            caller, index=p.index, mod=cmod, summaries=p.unordered
        )
        offset = 1 if fi.class_qname is not None else 0
        for i, arg in enumerate(site.node.args):
            pidx = i + offset
            if pidx >= len(params):
                break
            why = _df.unordered_expr(
                arg, index=p.index, mod=cmod, local_env=cenv,
                summaries=p.unordered,
            )
            if why is not None and params[pidx] not in out:
                out[params[pidx]] = (
                    f"{why} passed by {caller.qname}() at "
                    f"{cmod.path}:{site.lineno}"
                )
    return out


@flow_rule(
    "DRA503",
    "flow.unordered-escape",
    "dict/set order never flows across functions into dispatch or spawns",
)
def check_unordered_escape(p: ProjectAnalysis) -> Iterator[Finding]:
    for mod in p.library_modules():
        for fi in p.functions_of(mod):
            dispatches = [
                node
                for node in ast.walk(fi.node)
                if isinstance(node, ast.Call) and _dispatch_name(node)
            ]
            if not dispatches:
                continue
            env = _df.local_unordered_env(
                fi, index=p.index, mod=mod, summaries=p.unordered
            )
            env.update(_tainted_params(p, fi))

            seen: set[tuple[int, int]] = set()
            for node in dispatches:
                for arg in node.args:
                    why = _escape_taint(p, mod, env, arg)
                    if why is None:
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield _finding(
                        mod, node, "DRA503",
                        f"unordered value ({why}) feeds "
                        f"{_dispatch_name(node)}(): hash order varies per "
                        "process, so dispatch/spawn order breaks the "
                        "any---jobs bit-identity; sort at the source or "
                        "wrap this argument in sorted()",
                    )
            for node in ast.walk(fi.node):
                iters: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iters = [node.iter]
                elif isinstance(
                    node,
                    ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
                ):
                    iters = [gen.iter for gen in node.generators]
                for it in iters:
                    why = _escape_taint(p, mod, env, it)
                    if why is None:
                        continue
                    key = (it.lineno, it.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield _finding(
                        mod, it, "DRA503",
                        f"iteration over an unordered value ({why}) in a "
                        "function that dispatches work: the resulting "
                        "order reaches parallel_map/spawn, breaking the "
                        "any---jobs bit-identity; wrap the source in "
                        "sorted()",
                    )


# ---------------------------------------------------------------------------
# DRA504 -- trace/metric literal flow
# ---------------------------------------------------------------------------

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _sink_kind(node: ast.Call) -> str | None:
    """``trace`` / ``metric`` when ``node`` is an emit/metric call."""
    if not isinstance(node.func, ast.Attribute) or not node.args:
        return None
    if node.func.attr == "emit":
        return "trace"
    if node.func.attr in _METRIC_METHODS:
        return "metric"
    return None


def _registered(kind: str, value: str) -> bool:
    if kind == "trace":
        return _schema.is_trace_kind(value)
    return _schema.is_metric_name(value)


@flow_rule(
    "DRA504",
    "flow.literal-flow",
    "emit kinds / metric names constant-propagate to schema registrations",
)
def check_literal_flow(p: ProjectAnalysis) -> Iterator[Finding]:
    registry = "repro.obs.schema.TRACE_EVENT_KINDS"
    metric_reg = "repro.obs.schema.METRIC_NAMES/METRIC_FAMILIES"
    for mod in p.library_modules():
        if mod.ctx.subpackage == "obs":
            continue  # the registry/merge machinery itself
        for fi in p.functions_of(mod):
            params = fi.params
            env = _df.local_const_env(fi.node)
            for node in ast.walk(fi.node):
                if not isinstance(node, ast.Call):
                    continue
                kind = _sink_kind(node)
                if kind is None:
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant):
                    continue  # DRA201/DRA202 territory
                # a wrapper parameter: judge every call site instead
                if isinstance(arg, ast.Name) and arg.id in params:
                    yield from _check_wrapper_sites(
                        p, fi, params.index(arg.id), kind,
                        registry if kind == "trace" else metric_reg,
                    )
                    continue
                value = _df.fold_const(
                    arg, index=p.index, mod=mod, local_env=env
                )
                if value is _df.MISSING or not isinstance(value, str):
                    continue  # not resolvable: DRA201/DRA202's finding
                if not _registered(kind, value):
                    yield _finding(
                        mod, node, "DRA504",
                        f"{kind} name constant-propagates to {value!r}, "
                        "which is not registered in "
                        f"{registry if kind == 'trace' else metric_reg}; "
                        "register it (and document it) or fix the constant",
                    )


def _check_wrapper_sites(
    p: ProjectAnalysis,
    wrapper: FunctionInfo,
    param_idx: int,
    kind: str,
    registry: str,
) -> Iterator[Finding]:
    for site in p.graph.sites_calling(wrapper.qname):
        if site.kind != "call":
            continue
        caller = p.index.functions.get(site.caller)
        if caller is None:
            continue
        cmod = p.index.module_of(caller)
        if cmod.ctx.is_test_code or cmod.ctx.is_example:
            continue
        offset = 1 if wrapper.class_qname is not None else 0
        args = site.node.args
        idx = param_idx - offset
        arg: ast.expr | None = None
        if 0 <= idx < len(args):
            arg = args[idx]
        else:
            pname = wrapper.params[param_idx]
            for kw in site.node.keywords:
                if kw.arg == pname:
                    arg = kw.value
        if arg is None:
            continue
        cenv = _df.local_const_env(caller.node)
        value = _df.fold_const(arg, index=p.index, mod=cmod, local_env=cenv)
        if value is _df.MISSING or not isinstance(value, str):
            yield _finding(
                cmod, site.node, "DRA504",
                f"{kind} name passed to wrapper {wrapper.qname}() does "
                "not constant-propagate to a string; the schema registry "
                "cannot be checked statically -- pass a registered "
                "literal",
            )
        elif not _registered(kind, value):
            yield _finding(
                cmod, site.node, "DRA504",
                f"{kind} name {value!r} flows through wrapper "
                f"{wrapper.qname}() but is not registered in {registry}; "
                "add it there and to the docs/observability.md catalogue",
            )


# ---------------------------------------------------------------------------
# DRA505 -- hot-path purity
# ---------------------------------------------------------------------------

#: os functions touching the filesystem or spawning processes.
_OS_IMPURE = frozenset(
    {
        "remove", "unlink", "rename", "replace", "makedirs", "mkdir",
        "rmdir", "system", "popen", "spawnl", "listdir", "scandir",
    }
)

#: Modules whose any use inside a scheduled frame is impure.
_IMPURE_MODULES = frozenset(
    {"socket", "subprocess", "shutil", "urllib", "requests", "http"}
)

#: Modules exempt from DRA505: the tracer/metrics hooks are the
#: sanctioned observability channel out of the hot path, and the timing
#: module is the sanctioned stopwatch.
_PURITY_EXEMPT = (("obs",), ("runtime", "timing.py"))


def _purity_violation(node: ast.AST) -> str | None:
    """Why ``node`` is an impure operation, or None."""
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        if dotted is None or len(dotted) < 2:
            return None
        tail = dotted[-2:]
        if tail in _EPOCH_READS:
            return f"wall-clock read {'.'.join(tail)}"
        if tail in _MONOTONIC_READS:
            return f"monotonic clock read {'.'.join(tail)}"
        if dotted[0] in _IMPURE_MODULES:
            return f"{dotted[0]} call {'.'.join(dotted)}"
        if dotted[0] == "os" and dotted[-1] in _OS_IMPURE:
            return f"filesystem/process call {'.'.join(dotted)}"
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "open":
            return "filesystem call open()"
    return None


@flow_rule(
    "DRA505",
    "flow.hotpath-purity",
    "no wall-clock/filesystem/network calls in engine-scheduled frames",
)
def check_hotpath_purity(p: ProjectAnalysis) -> Iterator[Finding]:
    for qname in sorted(p.sched_reach):
        fi = p.index.functions[qname]
        mod = p.index.module_of(fi)
        ctx = mod.ctx
        if ctx.is_test_code or ctx.is_example:
            continue
        if ctx.subpackage == "obs" or ctx.endswith("runtime", "timing.py"):
            continue
        seed = p.sched_reach[qname]
        for node in ast.walk(fi.node):
            why = _purity_violation(node)
            if why is None:
                continue
            yield _finding(
                mod, node, "DRA505",
                f"{why} inside {fi.qname}, reachable from engine-scheduled "
                f"frame {seed}: hot-path handlers fire under Engine.run "
                "and must be pure functions of sim state (results depend "
                "on seeds only; host I/O belongs in the driver layers)",
            )

"""Project call graph with pool-boundary and scheduler-frame edges.

Edges are built per function by resolving call targets against the
:class:`~repro.lint.flow.modules.ProjectIndex`:

* plain ``call`` edges -- direct calls to project functions, methods
  resolved through ``self``, one-level local type inference
  (``x = ClassName(...)`` then ``x.method()``) and class attribute
  types (``self.engine.run()``);
* ``pool`` edges -- the worker-entry indirection of
  ``parallel_map(fn, items)`` / ``metered_parallel_map(fn, items)``:
  ``fn`` runs in a *different process*, so everything reachable from it
  is the campaign's per-worker surface (DRA501/DRA502);
* ``sched`` edges -- callables handed to ``Engine.schedule`` /
  ``schedule_in`` / ``schedule_run``: those frames execute inside the
  deterministic event loop, the hot path DRA505 polices.

Resolution is deliberately conservative: an unresolvable target simply
produces no edge, so every reported reachability fact is backed by an
explicit chain of source-level references.  The graph is deterministic
-- functions are visited in sorted-module order and every export is
sorted -- so the ``--graph-out`` JSON is byte-identical for any
``--jobs`` value.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.flow.modules import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted,
)

__all__ = ["CallGraph", "CallSite", "PoolSite", "GRAPH_SCHEMA_VERSION", "build_callgraph"]

#: Version stamp of the ``--graph-out`` JSON document.
GRAPH_SCHEMA_VERSION = 1

#: Names whose first positional argument is a worker entry point.
_POOL_FUNCS = frozenset({"parallel_map", "metered_parallel_map"})

#: Engine scheduling methods whose second positional argument is the
#: callable that will fire inside the event loop.
_SCHED_FUNCS = frozenset({"schedule", "schedule_in", "schedule_run"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at ``node``."""

    caller: str
    callee: str
    kind: str  #: ``call`` | ``pool`` | ``sched``
    node: ast.Call
    lineno: int


@dataclass
class PoolSite:
    """One ``parallel_map``-family call (for closure/provenance rules)."""

    caller: FunctionInfo
    node: ast.Call
    fn_expr: ast.expr  #: the worker argument as written


@dataclass
class CallGraph:
    """All edges plus the site lists the DRA5xx rules inspect."""

    index: ProjectIndex
    #: caller qname -> {(callee qname, kind)}
    edges: dict[str, set[tuple[str, str]]] = field(default_factory=dict)
    sites: list[CallSite] = field(default_factory=list)
    pool_sites: list[PoolSite] = field(default_factory=list)
    worker_entries: set[str] = field(default_factory=set)
    scheduled_entries: set[str] = field(default_factory=set)

    def callees(self, qname: str) -> list[tuple[str, str]]:
        return sorted(self.edges.get(qname, ()))

    def sites_calling(self, qname: str) -> list[CallSite]:
        """Every recorded call site whose resolved target is ``qname``."""
        return [s for s in self.sites if s.callee == qname]

    def reachable_from(self, seeds: set[str]) -> dict[str, str]:
        """Function qname -> the seed that first reaches it (BFS).

        Seeds map to themselves; iteration order is sorted so the
        attribution is deterministic.
        """
        reach: dict[str, str] = {}
        frontier = sorted(s for s in seeds if s in self.index.functions)
        for seed in frontier:
            reach.setdefault(seed, seed)
        while frontier:
            nxt: list[str] = []
            for qname in frontier:
                for callee, _kind in self.callees(qname):
                    if callee not in reach:
                        reach[callee] = reach[qname]
                        nxt.append(callee)
            frontier = sorted(nxt)
        return reach

    def to_payload(self) -> dict:
        """The schema-versioned ``--graph-out`` JSON document."""
        functions = []
        for qname in sorted(self.index.functions):
            fi = self.index.functions[qname]
            functions.append(
                {
                    "name": qname,
                    "path": fi.path,
                    "line": fi.lineno,
                    "calls": [
                        {"to": callee, "kind": kind}
                        for callee, kind in self.callees(qname)
                    ],
                }
            )
        return {
            "schema": "repro-callgraph",
            "v": GRAPH_SCHEMA_VERSION,
            "modules": sorted(self.index.modules),
            "functions": functions,
            "worker_entries": sorted(self.worker_entries),
            "scheduled_entries": sorted(self.scheduled_entries),
        }


def local_types(
    index: ProjectIndex, mod: ModuleInfo, fi: FunctionInfo
) -> dict[str, str]:
    """Local variable name -> class qname, from ``x = ClassName(...)``."""
    env: dict[str, str] = {}
    if fi.class_qname is not None:
        env["self"] = fi.class_qname
    for node in ast.walk(fi.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        ci = _call_class(index, mod, node.value)
        if ci is not None:
            env[target.id] = ci.qname
    return env


def _call_class(
    index: ProjectIndex, mod: ModuleInfo, value: ast.expr
) -> ClassInfo | None:
    """The project class ``value`` constructs, if it is ``ClassName(...)``."""
    if not isinstance(value, ast.Call):
        return None
    return index.resolve_class(mod, value.func)


def expr_type(
    index: ProjectIndex,
    mod: ModuleInfo,
    env: dict[str, str],
    expr: ast.expr,
) -> ClassInfo | None:
    """Static type of ``expr`` (project classes only), or None."""
    if isinstance(expr, ast.Name):
        qname = env.get(expr.id)
        return index.classes.get(qname) if qname else None
    if isinstance(expr, ast.Attribute):
        base = expr_type(index, mod, env, expr.value)
        if base is not None:
            attr_q = _attr_type(index, base, expr.attr)
            return index.classes.get(attr_q) if attr_q else None
        return None
    if isinstance(expr, ast.Call):
        return _call_class(index, mod, expr)
    return None


def _attr_type(index: ProjectIndex, ci: ClassInfo, attr: str) -> str | None:
    """``attr``'s class qname along the project base chain."""
    seen: set[str] = set()
    stack = [ci]
    while stack:
        cur = stack.pop(0)
        if cur.qname in seen:
            continue
        seen.add(cur.qname)
        if attr in cur.attr_types:
            return cur.attr_types[attr]
        stack.extend(index.classes[b] for b in cur.bases if b in index.classes)
    return None


def resolve_call(
    index: ProjectIndex,
    mod: ModuleInfo,
    env: dict[str, str],
    func: ast.expr,
) -> FunctionInfo | None:
    """The project function a call expression targets, if resolvable.

    Calls to a project *class* resolve to its ``__init__`` (constructor
    bodies run too); unresolvable targets return ``None``.
    """
    dotted = _dotted(func)
    if dotted is not None:
        target = index.resolve(mod, dotted)
        if isinstance(target, FunctionInfo):
            return target
        if isinstance(target, ClassInfo):
            return index.lookup_method(target, "__init__")
    # typed-receiver method call: <expr>.method()
    if isinstance(func, ast.Attribute):
        base = expr_type(index, mod, env, func.value)
        if base is not None:
            return index.lookup_method(base, func.attr)
    return None


def _resolve_callable_ref(
    index: ProjectIndex,
    mod: ModuleInfo,
    env: dict[str, str],
    expr: ast.expr,
) -> FunctionInfo | None:
    """A *reference* (not call) to a project function/method, if any."""
    if isinstance(expr, ast.Call):
        # functools.partial(fn, ...) and friends: unwrap the first arg
        dotted = _dotted(expr.func)
        if dotted is not None and dotted[-1] == "partial" and expr.args:
            return _resolve_callable_ref(index, mod, env, expr.args[0])
        return None
    dotted = _dotted(expr)
    if dotted is not None:
        target = index.resolve(mod, dotted)
        if isinstance(target, FunctionInfo):
            return target
    if isinstance(expr, ast.Attribute):
        base = expr_type(index, mod, env, expr.value)
        if base is not None:
            return index.lookup_method(base, expr.attr)
    return None


def _is_pool_call(node: ast.Call) -> bool:
    fn = node.func
    name = fn.id if isinstance(fn, ast.Name) else (
        fn.attr if isinstance(fn, ast.Attribute) else None
    )
    return name in _POOL_FUNCS


def _sched_action(node: ast.Call) -> ast.expr | None:
    """The action argument of an Engine scheduling call, if this is one."""
    fn = node.func
    if not (isinstance(fn, ast.Attribute) and fn.attr in _SCHED_FUNCS):
        return None
    if len(node.args) >= 2:
        return node.args[1]
    for kw in node.keywords:
        if kw.arg in ("action", "step"):
            return kw.value
    return None


def build_callgraph(index: ProjectIndex) -> CallGraph:
    """Build every edge of the project call graph."""
    graph = CallGraph(index=index)
    for mod in index.modules.values():
        for fi in _module_functions(index, mod):
            _visit_function(graph, index, mod, fi)
    return graph


def _module_functions(index: ProjectIndex, mod: ModuleInfo) -> list[FunctionInfo]:
    out = list(mod.functions.values())
    for ci in mod.classes.values():
        out.extend(ci.methods.values())
    # nested defs belong to their enclosing function's body walk; they
    # are not graph nodes of their own.
    return out


def _add_edge(
    graph: CallGraph, caller: FunctionInfo, callee: FunctionInfo, kind: str,
    node: ast.Call, lineno: int,
) -> None:
    graph.edges.setdefault(caller.qname, set()).add((callee.qname, kind))
    graph.sites.append(
        CallSite(
            caller=caller.qname, callee=callee.qname, kind=kind,
            node=node, lineno=lineno,
        )
    )


def _visit_function(
    graph: CallGraph, index: ProjectIndex, mod: ModuleInfo, fi: FunctionInfo
) -> None:
    env = local_types(index, mod, fi)
    for node in ast.walk(fi.node):
        if not isinstance(node, ast.Call):
            continue
        # pool boundary: parallel_map(fn, items)
        if _is_pool_call(node) and node.args:
            fn_expr = node.args[0]
            graph.pool_sites.append(
                PoolSite(caller=fi, node=node, fn_expr=fn_expr)
            )
            worker = _resolve_callable_ref(index, mod, env, fn_expr)
            if worker is not None:
                graph.worker_entries.add(worker.qname)
                _add_edge(graph, fi, worker, "pool", node, node.lineno)
        # scheduler frame: engine.schedule(t, action, ...)
        action = _sched_action(node)
        if action is not None:
            for target in _action_targets(index, mod, env, action):
                graph.scheduled_entries.add(target.qname)
                _add_edge(graph, fi, target, "sched", node, node.lineno)
        # plain call edge
        callee = resolve_call(index, mod, env, node.func)
        if callee is not None:
            _add_edge(graph, fi, callee, "call", node, node.lineno)


def _action_targets(
    index: ProjectIndex,
    mod: ModuleInfo,
    env: dict[str, str],
    action: ast.expr,
) -> list[FunctionInfo]:
    """Functions a scheduling call's action argument will invoke."""
    direct = _resolve_callable_ref(index, mod, env, action)
    if direct is not None:
        return [direct]
    if isinstance(action, ast.Lambda):
        out: list[FunctionInfo] = []
        for sub in ast.walk(action.body):
            if isinstance(sub, ast.Call):
                callee = resolve_call(index, mod, env, sub.func)
                if callee is not None:
                    out.append(callee)
        return out
    return []

"""Module resolution and the project-wide symbol table.

The interprocedural rules (DRA5xx) need to answer "what does this name
mean?" across file boundaries: which function does
``from repro.chaos.campaign import run_schedule`` bind, which class does
``Router(...)`` construct, which module-level constant does ``SEED``
read.  This module builds that table in two passes over the already
parsed :class:`~repro.lint.context.FileContext` set:

1. **collect** -- per module, record top-level functions, classes (with
   their methods and ``self.<attr> = ClassName(...)`` attribute types),
   constants, mutable module-level containers, and the raw import
   aliases;
2. **link** -- resolve every alias against the collected modules, so
   lookups afterwards are plain dict walks.

Everything is deterministic: modules are indexed in sorted-path order
and every public accessor returns data in that insertion order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.context import FileContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name",
]

#: Path roots that anchor a dotted module name (first match wins).
_PACKAGE_ROOTS = ("repro", "tests", "benchmarks", "examples")

#: Calls producing a mutable container at module scope.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name(parts: tuple[str, ...]) -> str:
    """Dotted module name for a file's path components.

    ``('src', 'repro', 'sim', 'engine.py')`` -> ``"repro.sim.engine"``.
    The name is anchored at the first component matching a known package
    root so scratch trees (pytest ``tmp_path`` fixtures) resolve exactly
    like the real layout; files outside any root use their full path.
    """
    ps = list(parts)
    if ps[-1].endswith(".py"):
        ps[-1] = ps[-1][: -len(".py")]
    for i, part in enumerate(ps):
        if part in _PACKAGE_ROOTS:
            ps = ps[i:]
            break
    if ps and ps[-1] == "__init__":
        ps = ps[:-1]
    return ".".join(ps) or parts[-1]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str  #: fully qualified, e.g. ``repro.sim.engine.Engine.run``
    module: str
    name: str  #: local name (``run``)
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    lineno: int
    class_qname: str | None = None  #: owning class, for methods

    @property
    def params(self) -> list[str]:
        """Positional parameter names (``self`` included for methods)."""
        a = self.node.args
        return [p.arg for p in a.posonlyargs + a.args]


@dataclass
class ClassInfo:
    """One class definition with its methods and inferred attribute types."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> class qname, from ``self.x = ClassName(...)``
    attr_types: dict[str, str] = field(default_factory=dict)
    #: base-class qnames resolved within the project (pass 2)
    bases: list[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Everything collected about one module."""

    name: str
    path: str
    ctx: FileContext
    #: local alias -> fully-qualified dotted target
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level simple constants (str/int/float/bool/None)
    constants: dict[str, object] = field(default_factory=dict)
    #: module-level mutable containers: name -> (lineno, kind)
    mutables: dict[str, tuple[int, str]] = field(default_factory=dict)
    #: every module-level assignment target (for ``global X`` rebinds)
    globals_defined: set[str] = field(default_factory=set)


def _mutable_kind(value: ast.expr) -> str | None:
    """Why ``value`` is a mutable container literal/factory, or None."""
    if isinstance(value, ast.Dict | ast.DictComp):
        return "dict"
    if isinstance(value, ast.List | ast.ListComp):
        return "list"
    if isinstance(value, ast.Set | ast.SetComp):
        return "set"
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name in _MUTABLE_FACTORIES:
            return name
    return None


class ProjectIndex:
    """The linked whole-project symbol table."""

    def __init__(self, contexts: list[FileContext]) -> None:
        #: module name -> info, in sorted-ctx-path insertion order
        self.modules: dict[str, ModuleInfo] = {}
        #: function qname -> info (methods included)
        self.functions: dict[str, FunctionInfo] = {}
        #: class qname -> info
        self.classes: dict[str, ClassInfo] = {}
        for ctx in sorted(contexts, key=lambda c: c.path):
            self._collect(ctx)
        for mod in self.modules.values():
            self._link(mod)

    # -- pass 1: collect -----------------------------------------------------

    def _collect(self, ctx: FileContext) -> None:
        mod = ModuleInfo(name=module_name(ctx.parts), path=ctx.path, ctx=ctx)
        self.modules[mod.name] = mod
        for node in ctx.tree.body:
            if isinstance(node, _FUNC_NODES):
                self._add_function(mod, node, class_info=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}"
            elif isinstance(node, ast.Assign | ast.AnnAssign):
                self._add_module_assign(mod, node)

    @staticmethod
    def _import_base(mod: ModuleInfo, node: ast.ImportFrom) -> str | None:
        """The absolute dotted package a ``from X import ...`` names."""
        if node.level == 0:
            return node.module
        # relative import: resolve against this module's package
        pkg_parts = mod.name.split(".")[: -node.level]
        if not pkg_parts:
            return None
        if node.module:
            pkg_parts.append(node.module)
        return ".".join(pkg_parts)

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_info: ClassInfo | None,
    ) -> None:
        if class_info is None:
            qname = f"{mod.name}.{node.name}"
        else:
            qname = f"{class_info.qname}.{node.name}"
        fi = FunctionInfo(
            qname=qname,
            module=mod.name,
            name=node.name,
            node=node,
            path=mod.path,
            lineno=node.lineno,
            class_qname=class_info.qname if class_info else None,
        )
        self.functions[qname] = fi
        if class_info is None:
            mod.functions[node.name] = fi
        else:
            class_info.methods[node.name] = fi

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        ci = ClassInfo(
            qname=f"{mod.name}.{node.name}",
            module=mod.name,
            name=node.name,
            node=node,
            path=mod.path,
        )
        self.classes[ci.qname] = ci
        mod.classes[node.name] = ci
        for stmt in node.body:
            if isinstance(stmt, _FUNC_NODES):
                self._add_function(mod, stmt, class_info=ci)
        # dataclass-style annotated fields typed by a project class are
        # picked up in pass 2 (the annotation name needs import linking)
        for method in ci.methods.values():
            for sub in ast.walk(method.node):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        # type name resolved in pass 2; store the raw call
                        ci.attr_types.setdefault(
                            target.attr, _ctor_name(sub.value) or ""
                        )

    def _add_module_assign(
        self, mod: ModuleInfo, node: ast.Assign | ast.AnnAssign
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            mod.globals_defined.add(target.id)
            if value is None:
                continue
            if isinstance(value, ast.Constant):
                mod.constants[target.id] = value.value
            kind = _mutable_kind(value)
            if kind is not None:
                mod.mutables[target.id] = (node.lineno, kind)

    # -- pass 2: link --------------------------------------------------------

    def _link(self, mod: ModuleInfo) -> None:
        for ci in mod.classes.values():
            ci.bases = [
                base.qname
                for expr in ci.node.bases
                if (base := self.resolve_class(mod, expr)) is not None
            ]
            # raw constructor names recorded in pass 1 -> class qnames
            linked: dict[str, str] = {}
            for attr, raw in ci.attr_types.items():
                if not raw:
                    continue
                target = self._resolve_dotted_class(mod, tuple(raw.split(".")))
                if target is not None:
                    linked[attr] = target.qname
            ci.attr_types = linked

    # -- lookups -------------------------------------------------------------

    def resolve(self, mod: ModuleInfo, dotted: tuple[str, ...]):
        """What a dotted name means inside ``mod``.

        Returns a :class:`FunctionInfo`, :class:`ClassInfo`,
        :class:`ModuleInfo`, ``("mutable", module, name)``,
        ``("const", value)`` or ``None`` (external / unknown).
        """
        if not dotted:
            return None
        head, rest = dotted[0], dotted[1:]
        # local symbols shadow imports
        if head in mod.functions and not rest:
            return mod.functions[head]
        if head in mod.classes:
            return self._walk_class(mod.classes[head], rest)
        if head in mod.mutables and not rest:
            return ("mutable", mod, head)
        if head in mod.constants and not rest:
            return ("const", mod.constants[head])
        if head in mod.imports:
            return self._resolve_absolute(
                tuple(mod.imports[head].split(".")) + rest
            )
        return None

    def _resolve_absolute(self, dotted: tuple[str, ...]):
        """Resolve an absolute dotted path: longest module prefix wins."""
        for cut in range(len(dotted), 0, -1):
            mod = self.modules.get(".".join(dotted[:cut]))
            if mod is None:
                continue
            rest = dotted[cut:]
            if not rest:
                return mod
            return self.resolve(mod, rest)
        return None

    def _walk_class(self, ci: ClassInfo, rest: tuple[str, ...]):
        if not rest:
            return ci
        if len(rest) == 1:
            method = self.lookup_method(ci, rest[0])
            if method is not None:
                return method
        return None

    def resolve_class(self, mod: ModuleInfo, expr: ast.expr) -> ClassInfo | None:
        """The project class ``expr`` (a Name/Attribute chain) names."""
        dotted = _dotted(expr)
        if dotted is None:
            return None
        return self._resolve_dotted_class(mod, dotted)

    def _resolve_dotted_class(
        self, mod: ModuleInfo, dotted: tuple[str, ...]
    ) -> ClassInfo | None:
        target = self.resolve(mod, dotted)
        return target if isinstance(target, ClassInfo) else None

    def lookup_method(self, ci: ClassInfo, name: str) -> FunctionInfo | None:
        """Method resolution along the (left-to-right) project base chain."""
        seen: set[str] = set()
        stack = [ci]
        while stack:
            cur = stack.pop(0)
            if cur.qname in seen:
                continue
            seen.add(cur.qname)
            if name in cur.methods:
                return cur.methods[name]
            stack.extend(
                self.classes[b] for b in cur.bases if b in self.classes
            )
        return None

    def module_of(self, fi: FunctionInfo) -> ModuleInfo:
        return self.modules[fi.module]


def _ctor_name(value: ast.expr) -> str | None:
    """Dotted constructor name of ``x = ClassName(...)``, else None."""
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is not None:
            return ".".join(dotted)
    return None


def _dotted(node: ast.expr) -> tuple[str, ...] | None:
    """The dotted-name path of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is not None:
            return base + (node.attr,)
    return None

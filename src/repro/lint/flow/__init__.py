"""Whole-project (interprocedural) analysis layer for ``repro.lint``.

The per-file rules (DRA1xx--DRA4xx) see one AST at a time; this package
sees all of them at once.  :func:`analyze_project` is the single entry
point the engine calls: it builds the symbol table
(:mod:`~repro.lint.flow.modules`), the call graph with pool-boundary
and scheduler-frame edges (:mod:`~repro.lint.flow.callgraph`), the
dataflow summaries (:mod:`~repro.lint.flow.dataflow`), and then runs
the five DRA5xx rule families (:mod:`~repro.lint.flow.rules5xx`) over
the result.

Everything here is deterministic -- modules are indexed in sorted-path
order, reachability is attributed by sorted BFS, and findings are
sorted by the engine -- so the report and the ``--graph-out`` JSON are
byte-identical for any ``--jobs`` value (the flow pass itself always
runs once, in the driver process).
"""

from __future__ import annotations

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import (
    GRAPH_SCHEMA_VERSION,
    CallGraph,
    build_callgraph,
)
from repro.lint.flow.dataflow import unordered_summaries
from repro.lint.flow.modules import ProjectIndex
from repro.lint.flow.rules5xx import FLOW_RULES, ProjectAnalysis

__all__ = [
    "FLOW_RULES",
    "GRAPH_SCHEMA_VERSION",
    "CallGraph",
    "ProjectAnalysis",
    "ProjectIndex",
    "analyze_project",
    "build_callgraph",
]


def analyze_project(
    contexts: list[FileContext],
) -> tuple[list[Finding], CallGraph]:
    """Run every interprocedural rule over the parsed file set.

    Returns the (unsorted, unsuppressed) findings plus the call graph,
    so the engine can both merge/suppress the findings and serve
    ``--graph-out``.
    """
    index = ProjectIndex(contexts)
    graph = build_callgraph(index)
    analysis = ProjectAnalysis(
        index=index,
        graph=graph,
        unordered=unordered_summaries(index),
        worker_reach=graph.reachable_from(graph.worker_entries),
        sched_reach=graph.reachable_from(graph.scheduled_entries),
    )
    findings: list[Finding] = []
    for code in sorted(FLOW_RULES):
        findings.extend(FLOW_RULES[code].check(analysis))
    return findings, graph

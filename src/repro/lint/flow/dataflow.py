"""Forward dataflow helpers: constant propagation and order summaries.

Two small analyses shared by the DRA5xx rules:

* **constant folding** (:func:`fold_const`) -- resolves an expression to
  a Python constant through literals, arithmetic over literals,
  single-assignment locals, module-level constants and cross-module
  constant imports.  DRA501 uses it to see through ``SEED = 123`` /
  ``default_rng(SEED)``; DRA504 uses the string side to follow trace
  kinds and metric names through variables and thin wrappers.
* **unordered-return summaries** (:func:`unordered_summaries`) -- a
  fixpoint over the project computing, per function, *why* its return
  value iterates in hash order (``.keys()``, a set literal, or the
  summary of a callee), if it does.  DRA503 combines these summaries
  with local taint to catch dict/set order escaping through function
  boundaries into parallel dispatch.

Both analyses are deliberately conservative in the sound direction for
their consumers: a value is only "constant" when every step is a
literal, and a return is only "unordered" when an explicit hash-ordered
origin is visible, so findings always trace to real source constructs.
"""

from __future__ import annotations

import ast

from repro.lint.flow.modules import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "MISSING",
    "fold_const",
    "local_const_env",
    "single_assignments",
    "unordered_expr",
    "unordered_summaries",
    "local_unordered_env",
]

#: Sentinel for "not a foldable constant" (``None`` is a real constant).
MISSING = object()

#: Wrappers that preserve iteration order without establishing one.
ORDER_NEUTRAL = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# ---------------------------------------------------------------------------
# constant propagation
# ---------------------------------------------------------------------------


def single_assignments(func: ast.AST) -> dict[str, ast.expr]:
    """Locals assigned exactly once (simple ``name = expr``), else dropped.

    Re-assigned or augmented names are removed outright -- a
    single-assignment binding is the only case where "the value at the
    use site" equals "the value at the definition site" without real
    flow analysis.
    """
    counts: dict[str, int] = {}
    values: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _target_names(target):
                    counts[name] = counts.get(name, 0) + 1
                if isinstance(target, ast.Name):
                    values[target.id] = node.value
        elif isinstance(node, ast.AugAssign | ast.AnnAssign):
            for name in _target_names(node.target):
                counts[name] = counts.get(name, 0) + 2  # never single
        elif isinstance(node, ast.For):
            for name in _target_names(node.target):
                counts[name] = counts.get(name, 0) + 2
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for name in _target_names(node.optional_vars):
                counts[name] = counts.get(name, 0) + 2
    return {
        name: expr
        for name, expr in values.items()
        if counts.get(name, 0) == 1
    }


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Tuple | ast.List):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def local_const_env(func: ast.AST) -> dict[str, object]:
    """Single-assignment locals whose value is a plain literal."""
    env: dict[str, object] = {}
    for name, expr in single_assignments(func).items():
        if isinstance(expr, ast.Constant):
            env[name] = expr.value
    return env


def fold_const(
    expr: ast.expr,
    *,
    index: ProjectIndex | None = None,
    mod: ModuleInfo | None = None,
    local_env: dict[str, object] | None = None,
):
    """Fold ``expr`` to a constant, or :data:`MISSING`.

    Handles literals, unary +/-, binary arithmetic over folded values,
    f-strings of folded strings, single-assignment locals, module-level
    constants and constants imported from other indexed modules.
    """
    if isinstance(expr, ast.Constant):
        return expr.value
    if isinstance(expr, ast.Name):
        if local_env is not None and expr.id in local_env:
            return local_env[expr.id]
        if index is not None and mod is not None:
            target = index.resolve(mod, (expr.id,))
            if isinstance(target, tuple) and target[0] == "const":
                return target[1]
        return MISSING
    if isinstance(expr, ast.UnaryOp):
        operand = fold_const(
            expr.operand, index=index, mod=mod, local_env=local_env
        )
        if operand is MISSING or not isinstance(operand, int | float):
            return MISSING
        if isinstance(expr.op, ast.USub):
            return -operand
        if isinstance(expr.op, ast.UAdd):
            return +operand
        return MISSING
    if isinstance(expr, ast.BinOp):
        left = fold_const(expr.left, index=index, mod=mod, local_env=local_env)
        right = fold_const(expr.right, index=index, mod=mod, local_env=local_env)
        if left is MISSING or right is MISSING:
            return MISSING
        return _fold_binop(expr.op, left, right)
    if isinstance(expr, ast.JoinedStr):
        parts: list[str] = []
        for value in expr.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                inner = fold_const(
                    value.value, index=index, mod=mod, local_env=local_env
                )
                if inner is MISSING or value.format_spec is not None:
                    return MISSING
                parts.append(str(inner))
            else:
                return MISSING
        return "".join(parts)
    return MISSING


def _fold_binop(op: ast.operator, left, right):
    if isinstance(left, str) and isinstance(right, str):
        return left + right if isinstance(op, ast.Add) else MISSING
    if not isinstance(left, int | float) or not isinstance(right, int | float):
        return MISSING
    try:
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        if isinstance(op, ast.Pow) and abs(right) <= 64:
            return left**right
        if isinstance(op, ast.Div):
            return left / right
    except (ZeroDivisionError, OverflowError, ValueError):
        return MISSING
    return MISSING


# ---------------------------------------------------------------------------
# unordered-iteration summaries
# ---------------------------------------------------------------------------


def strip_order_neutral(node: ast.expr) -> ast.expr:
    """Peel ``list(...)``/``tuple(...)``/... wrappers off ``node``."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ORDER_NEUTRAL
        and node.args
    ):
        node = node.args[0]
    return node


def unordered_expr(
    expr: ast.expr,
    *,
    index: ProjectIndex,
    mod: ModuleInfo,
    local_env: dict[str, str] | None = None,
    summaries: dict[str, str] | None = None,
) -> str | None:
    """Why ``expr`` iterates in hash order, or ``None``.

    ``local_env`` maps tainted local names to their reason;
    ``summaries`` maps project-function qnames to their return-order
    reason.  ``sorted(...)`` (and ``min``/``max``) clear the taint.
    """
    expr = strip_order_neutral(expr)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("sorted", "min", "max"):
            return None
        if expr.func.id in ("set", "frozenset"):
            return f"{expr.func.id}()"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("items", "keys", "values")
        and not expr.args
        and not expr.keywords
    ):
        return f".{expr.func.attr}()"
    if isinstance(expr, ast.Set | ast.SetComp):
        return "a set literal"
    if isinstance(expr, ast.Name) and local_env is not None:
        return local_env.get(expr.id)
    if isinstance(expr, ast.Call) and summaries is not None:
        from repro.lint.flow.callgraph import resolve_call

        callee = resolve_call(index, mod, {}, expr.func)
        if callee is not None and callee.qname in summaries:
            return (
                f"the return value of {callee.qname}() "
                f"({summaries[callee.qname]})"
            )
    return None


def local_unordered_env(
    fi: FunctionInfo,
    *,
    index: ProjectIndex,
    mod: ModuleInfo,
    summaries: dict[str, str],
) -> dict[str, str]:
    """Single-assignment locals bound to an unordered value -> reason."""
    env: dict[str, str] = {}
    assigns = single_assignments(fi.node)
    # iterate to a local fixpoint so chains of locals resolve (bounded
    # by the number of assignments, in practice 1-2 passes)
    for _ in range(len(assigns) + 1):
        changed = False
        for name, expr in assigns.items():
            if name in env:
                continue
            why = unordered_expr(
                expr, index=index, mod=mod, local_env=env, summaries=summaries
            )
            if why is not None:
                env[name] = why
                changed = True
        if not changed:
            break
    return env


def unordered_summaries(index: ProjectIndex) -> dict[str, str]:
    """Function qname -> why its return value is hash-ordered.

    Fixpoint over the project: a function is unordered when any of its
    ``return`` expressions is (directly, through a single-assignment
    local, or through a call to an already-summarized function).
    """
    summaries: dict[str, str] = {}
    for _ in range(len(index.functions) + 1):
        changed = False
        for qname, fi in index.functions.items():
            if qname in summaries:
                continue
            mod = index.module_of(fi)
            env = local_unordered_env(
                fi, index=index, mod=mod, summaries=summaries
            )
            for node in ast.walk(fi.node):
                if not (isinstance(node, ast.Return) and node.value is not None):
                    continue
                if _in_nested_function(fi.node, node):
                    continue
                why = unordered_expr(
                    node.value,
                    index=index,
                    mod=mod,
                    local_env=env,
                    summaries=summaries,
                )
                if why is not None:
                    summaries[qname] = f"returns {why}"
                    changed = True
                    break
        if not changed:
            break
    return summaries


def _in_nested_function(root: ast.AST, target: ast.AST) -> bool:
    """True when ``target`` sits inside a def nested under ``root``."""
    for node in ast.walk(root):
        if node is root or not isinstance(node, _FUNC_NODES):
            continue
        for sub in ast.walk(node):
            if sub is target:
                return True
    return False

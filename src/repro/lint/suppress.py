"""Inline suppression syntax: ``# dra: noqa[CODE,...] reason=...``.

A finding may be silenced only line-by-line, only by naming the exact
rule codes being waived, and only with a written reason::

    assert abs(total - 2.0) < 0.05  # dra: noqa[DRA301] reason=modeling bound, not a float tolerance

A suppression comment that names no code, or carries no
``reason=<text>``, is itself a finding (``DRA001``) -- the policy is
that every waiver is auditable, so the syntax cannot be satisfied by an
empty gesture.  ``DRA001`` findings are never suppressible.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.lint.findings import Finding

__all__ = ["Suppression", "scan_suppressions", "SUPPRESSION_CODE"]

#: Rule code of a malformed suppression comment.
SUPPRESSION_CODE = "DRA001"

#: Anything that looks like an attempted dra-noqa comment.
_ATTEMPT = re.compile(r"#\s*dra:\s*noqa\b", re.IGNORECASE)

#: The well-formed shape: codes in brackets, then a non-empty reason.
_WELL_FORMED = re.compile(
    r"#\s*dra:\s*noqa\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"\s+reason=(?P<reason>\S.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """A valid waiver: these codes are silenced on this line."""

    line: int
    codes: frozenset[str]
    reason: str


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """(line, col, text) of every comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps mentions of
    the suppression syntax inside strings and docstrings -- like this
    module's own documentation -- from being parsed as suppressions.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []  # the parser reports unreadable files as DRA002 findings
    return [
        (tok.start[0], tok.start[1], tok.string)
        for tok in tokens
        if tok.type == tokenize.COMMENT
    ]


def scan_suppressions(
    path: str, source: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Parse every dra-noqa comment in ``source``.

    Returns the per-line suppression table plus one ``DRA001`` finding
    for each malformed attempt (wrong bracket syntax, missing codes, or
    a missing/empty ``reason=``).
    """
    table: dict[int, Suppression] = {}
    findings: list[Finding] = []
    for lineno, col, text in _comment_tokens(source):
        attempt = _ATTEMPT.search(text)
        if attempt is None:
            continue
        match = _WELL_FORMED.search(text)
        if match is None:
            findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=col + attempt.start() + 1,
                    code=SUPPRESSION_CODE,
                    message=(
                        "malformed suppression: expected "
                        "'# dra: noqa[DRA###,...] reason=<why>' "
                        "(a written reason is mandatory)"
                    ),
                )
            )
            continue
        codes = frozenset(c.strip() for c in match.group("codes").split(","))
        table[lineno] = Suppression(
            line=lineno, codes=codes, reason=match.group("reason").strip()
        )
    return table, findings


def apply_suppressions(
    findings: list[Finding], table: dict[int, Suppression]
) -> tuple[list[Finding], int]:
    """Drop findings waived by a same-line suppression.

    Returns the surviving findings and the number silenced.  ``DRA001``
    findings always survive.
    """
    kept: list[Finding] = []
    silenced = 0
    for f in findings:
        sup = table.get(f.line)
        if (
            sup is not None
            and f.code != SUPPRESSION_CODE
            and f.code in sup.codes
        ):
            silenced += 1
            continue
        kept.append(f)
    return kept, silenced

"""Per-file context handed to every lint rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["FileContext", "SIM_SUBPACKAGES"]

#: Subpackages of ``repro`` whose code runs inside (or feeds) the
#: deterministic simulation/analysis core: wall-clock reads here corrupt
#: reproducibility rather than crash (DRA102).
SIM_SUBPACKAGES = frozenset(
    {"sim", "router", "markov", "montecarlo", "chaos", "validate"}
)


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file."""

    #: path as reported in findings (relative to the scan root)
    path: str
    #: posix path components of :attr:`path`
    parts: tuple[str, ...]
    tree: ast.Module
    lines: tuple[str, ...]

    @property
    def subpackage(self) -> str | None:
        """The ``repro`` subpackage this file belongs to, if any.

        ``src/repro/sim/engine.py`` -> ``"sim"``; works for both the
        ``src/repro/...`` layout and an installed ``repro/...`` prefix.
        """
        parts = self.parts
        if "repro" in parts:
            idx = parts.index("repro")
            if idx + 2 < len(parts):  # repro/<pkg>/<module>.py
                return parts[idx + 1]
        return None

    @property
    def in_sim_core(self) -> bool:
        """True for files under the deterministic core subpackages."""
        return self.subpackage in SIM_SUBPACKAGES

    @property
    def is_test_code(self) -> bool:
        """True for test/benchmark files (fixture suites included)."""
        if any(p in ("tests", "benchmarks") for p in self.parts[:-1]):
            return True
        name = self.parts[-1]
        return name.startswith("test_") or name == "conftest.py"

    @property
    def is_example(self) -> bool:
        return "examples" in self.parts[:-1]

    def endswith(self, *suffix: str) -> bool:
        """True when the path's final components equal ``suffix``."""
        return self.parts[-len(suffix):] == suffix

"""Per-file context handed to every lint rule.

A :class:`FileContext` is built **once per file per run** (satellite of
PR 10): the source text is read once, parsed once and scanned for
suppressions once, and every rule -- local DRA1xx--4xx and the
interprocedural DRA5xx pass alike -- shares the same AST, the cached
:attr:`nodes` walk and the cached :attr:`parents` map instead of
re-walking per rule.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import PurePosixPath

from repro.lint.findings import Finding
from repro.lint.suppress import Suppression, scan_suppressions

__all__ = ["FileContext", "SIM_SUBPACKAGES"]

#: Subpackages of ``repro`` whose code runs inside (or feeds) the
#: deterministic simulation/analysis core: wall-clock reads here corrupt
#: reproducibility rather than crash (DRA102).
SIM_SUBPACKAGES = frozenset(
    {"sim", "router", "markov", "montecarlo", "chaos", "validate"}
)


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file."""

    #: path as reported in findings (relative to the scan root)
    path: str
    #: posix path components of :attr:`path`
    parts: tuple[str, ...]
    tree: ast.Module
    lines: tuple[str, ...]
    #: raw source text (empty when constructed from a bare tree in tests)
    source: str = ""
    #: per-line waiver table from the one suppression scan
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: DRA001 findings produced by that scan
    suppression_findings: tuple[Finding, ...] = ()

    @classmethod
    def build(cls, abspath: str, relpath: str) -> FileContext:
        """Read, parse and suppression-scan ``abspath`` exactly once.

        Raises :class:`SyntaxError` for unparseable files -- the engine
        converts that into a DRA002 finding.
        """
        with open(abspath, encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=relpath)
        table, findings = scan_suppressions(relpath, source)
        return cls(
            path=relpath,
            parts=PurePosixPath(relpath.replace(os.sep, "/")).parts,
            tree=tree,
            lines=tuple(source.splitlines()),
            source=source,
            suppressions=table,
            suppression_findings=tuple(findings),
        )

    @cached_property
    def nodes(self) -> tuple[ast.AST, ...]:
        """One shared pre-order walk of the tree, computed on first use.

        (``cached_property`` stores into the instance ``__dict__``
        directly, so it works on a frozen dataclass.)
        """
        return tuple(ast.walk(self.tree))

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child node -> parent node, for the whole tree."""
        out: dict[ast.AST, ast.AST] = {}
        for node in self.nodes:
            for child in ast.iter_child_nodes(node):
                out[child] = node
        return out

    @property
    def subpackage(self) -> str | None:
        """The ``repro`` subpackage this file belongs to, if any.

        ``src/repro/sim/engine.py`` -> ``"sim"``; works for both the
        ``src/repro/...`` layout and an installed ``repro/...`` prefix.
        """
        parts = self.parts
        if "repro" in parts:
            idx = parts.index("repro")
            if idx + 2 < len(parts):  # repro/<pkg>/<module>.py
                return parts[idx + 1]
        return None

    @property
    def in_sim_core(self) -> bool:
        """True for files under the deterministic core subpackages."""
        return self.subpackage in SIM_SUBPACKAGES

    @property
    def is_test_code(self) -> bool:
        """True for test/benchmark files (fixture suites included)."""
        if any(p in ("tests", "benchmarks") for p in self.parts[:-1]):
            return True
        name = self.parts[-1]
        return name.startswith("test_") or name == "conftest.py"

    @property
    def is_example(self) -> bool:
        return "examples" in self.parts[:-1]

    def endswith(self, *suffix: str) -> bool:
        """True when the path's final components equal ``suffix``."""
        return self.parts[-len(suffix):] == suffix

"""The rule catalogue: one registered check per invariant.

Codes are grouped by contract family (``docs/static-analysis.md``):

* ``DRA0xx`` -- linter mechanics (suppression syntax, parse errors);
* ``DRA1xx`` -- determinism (RNG discipline, wall-clock bans, sorted
  iteration ahead of parallel dispatch, exception hygiene);
* ``DRA2xx`` -- observability (trace-event kinds and metric names must
  be literals registered in :mod:`repro.obs.schema`);
* ``DRA3xx`` -- testing hygiene (tolerances come from
  :mod:`repro.validate`, not magic epsilons);
* ``DRA4xx`` -- CLI surface (every public flag and subcommand carries a
  help string, so ``--help`` and ``docs/cli.md`` can stay complete).

Every rule is a pure function of a :class:`~repro.lint.context.FileContext`
yielding :class:`~repro.lint.findings.Finding` records; the engine runs
them file-by-file, so rules never see cross-file state and the report
is deterministic under any ``--jobs`` fan-out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.obs import schema as _schema

__all__ = ["Rule", "RULES", "rule", "all_codes"]


@dataclass(frozen=True)
class Rule:
    """A registered invariant check."""

    code: str
    name: str
    summary: str
    check: Callable[[FileContext], Iterable[Finding]]


#: Registry of every rule, keyed by code (insertion order = run order).
RULES: dict[str, Rule] = {}


def rule(code: str, name: str, summary: str):
    """Class/function decorator registering a rule under ``code``."""

    def register(check: Callable[[FileContext], Iterable[Finding]]):
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code=code, name=name, summary=summary, check=check)
        return check

    return register


def all_codes() -> list[str]:
    """Every registered rule code (per-file and interprocedural), sorted."""
    from repro.lint.flow.rules5xx import FLOW_RULES  # avoid import cycle

    return sorted([*RULES, *FLOW_RULES])


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> tuple[str, ...] | None:
    """The dotted-name path of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is not None:
            return base + (node.attr,)
    return None


def _finding(ctx: FileContext, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


def _parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child -> parent map for one pass of scope-sensitive rules."""
    table: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            table[child] = parent
    return table


_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _enclosing_function(node: ast.AST, parents: dict[ast.AST, ast.AST]):
    """Nearest enclosing function def, or None at module scope."""
    cur = parents.get(node)
    while cur is not None:
        if isinstance(cur, _FUNC_NODES):
            return cur
        cur = parents.get(cur)
    return None


# ---------------------------------------------------------------------------
# DRA1xx -- determinism
# ---------------------------------------------------------------------------

#: Legacy module-level numpy RNG entry points (shared global state).
_NP_LEGACY = frozenset(
    {
        "rand", "randn", "random", "random_sample", "randint", "choice",
        "shuffle", "permutation", "seed", "standard_normal", "uniform",
        "normal", "exponential", "poisson",
    }
)


@rule(
    "DRA101",
    "determinism.rng",
    "all randomness flows from seeded generators (SeedSequence spawns)",
)
def check_rng(ctx: FileContext) -> Iterator[Finding]:
    if ctx.endswith("sim", "rng.py"):  # the sanctioned stream factory
        return
    for node in ctx.nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield _finding(
                        ctx, node, "DRA101",
                        "stdlib 'random' is process-global state; draw from "
                        "a seeded numpy Generator (see repro.sim.rng)",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield _finding(
                    ctx, node, "DRA101",
                    "stdlib 'random' is process-global state; draw from "
                    "a seeded numpy Generator (see repro.sim.rng)",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if dotted[-1] == "default_rng" and not node.args and not node.keywords:
                yield _finding(
                    ctx, node, "DRA101",
                    "unseeded default_rng() draws OS entropy; pass a seed "
                    "or a SeedSequence spawned from the run's root seed",
                )
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if (
                dotted is not None
                and len(dotted) >= 3
                and dotted[-3] in ("np", "numpy")
                and dotted[-2] == "random"
                and dotted[-1] in _NP_LEGACY
            ):
                yield _finding(
                    ctx, node, "DRA101",
                    f"np.random.{dotted[-1]} uses the legacy global RNG; "
                    "use a seeded np.random.Generator instead",
                )


#: Epoch/wall-clock reads: nondeterministic everywhere.
_EPOCH_READS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Monotonic clocks: fine for timing harnesses, banned inside the
#: deterministic core (results must be functions of seeds alone).
_MONOTONIC_READS = frozenset(
    {
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
    }
)


@rule(
    "DRA102",
    "determinism.wallclock",
    "simulation/analysis code never reads the wall clock",
)
def check_wallclock(ctx: FileContext) -> Iterator[Finding]:
    if ctx.endswith("runtime", "timing.py"):  # the sanctioned Stopwatch
        return
    in_core = ctx.in_sim_core
    for node in ctx.nodes:
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None or len(dotted) < 2:
                continue
            tail = dotted[-2:]
            if tail in _EPOCH_READS:
                yield _finding(
                    ctx, node, "DRA102",
                    f"wall-clock read {'.'.join(tail)} is nondeterministic; "
                    "use repro.runtime.Stopwatch for durations or pass "
                    "timestamps in explicitly",
                )
            elif in_core and tail in _MONOTONIC_READS:
                yield _finding(
                    ctx, node, "DRA102",
                    f"{'.'.join(tail)} inside the deterministic core: "
                    "results must depend on seeds only; time in "
                    "repro.runtime (Stopwatch), not here",
                )
        elif in_core and isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("time", "datetime"):
                    yield _finding(
                        ctx, node, "DRA102",
                        f"import {alias.name} inside the deterministic core; "
                        "sim/markov/validate code has no business with "
                        "host clocks",
                    )


#: Call targets that fan work out or derive RNG streams: anything
#: feeding them must iterate in a deterministic (sorted) order.
_DISPATCH_FUNCS = frozenset({"parallel_map", "metered_parallel_map", "spawn"})

#: Wrappers that preserve iteration order without establishing one.
_ORDER_NEUTRAL = frozenset({"list", "tuple", "enumerate", "reversed"})


def _is_dispatch_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _DISPATCH_FUNCS
    if isinstance(func, ast.Attribute):
        return func.attr in _DISPATCH_FUNCS
    return False


def _strip_order_neutral(node: ast.expr) -> ast.expr:
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _ORDER_NEUTRAL
        and node.args
    ):
        node = node.args[0]
    return node


def _unordered_iter(node: ast.expr) -> str | None:
    """Why ``node`` iterates in hash order, or None when it does not."""
    node = _strip_order_neutral(node)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("items", "keys", "values")
        and not node.args
        and not node.keywords
    ):
        return f".{node.func.attr}()"
    if isinstance(node, ast.Set):
        return "set literal"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return f"{node.func.id}()"
    return None


@rule(
    "DRA103",
    "determinism.sorted-dispatch",
    "dict/set iteration feeding parallel dispatch or seed spawns is sorted",
)
def check_sorted_dispatch(ctx: FileContext) -> Iterator[Finding]:
    parents = ctx.parents
    dispatching_scopes = {
        _enclosing_function(node, parents)
        for node in ctx.nodes
        if _is_dispatch_call(node)
    }
    if not dispatching_scopes:
        return
    seen: set[tuple[int, int]] = set()

    def flag(node: ast.expr) -> Iterator[Finding]:
        why = _unordered_iter(node)
        if why is None:
            return
        key = (node.lineno, node.col_offset)
        if key in seen:
            return
        seen.add(key)
        yield _finding(
            ctx, node, "DRA103",
            f"iteration over {why} in a function that dispatches work "
            "(parallel_map/spawn) must go through sorted() so results "
            "are identical for any --jobs",
        )

    for node in ctx.nodes:
        scope = _enclosing_function(node, parents)
        if scope not in dispatching_scopes:
            continue
        if isinstance(node, ast.For):
            yield from flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                yield from flag(gen.iter)
        elif _is_dispatch_call(node):
            for arg in node.args:
                yield from flag(arg)


@rule(
    "DRA104",
    "exceptions.bare",
    "no bare except: clauses anywhere",
)
def check_bare_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ctx.nodes:
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield _finding(
                ctx, node, "DRA104",
                "bare 'except:' also swallows KeyboardInterrupt/SystemExit; "
                "name the exception types this site can actually handle",
            )


def _is_noop_stmt(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


@rule(
    "DRA105",
    "exceptions.swallowed",
    "engine/channel code never silently swallows exceptions",
)
def check_swallowed(ctx: FileContext) -> Iterator[Finding]:
    if ctx.is_test_code:  # tests may legitimately assert non-raising paths
        return
    for node in ctx.nodes:
        if (
            isinstance(node, ast.ExceptHandler)
            and node.type is not None
            and node.body
            and all(_is_noop_stmt(s) for s in node.body)
        ):
            yield _finding(
                ctx, node, "DRA105",
                "exception handler discards the error without handling, "
                "logging or re-raising it; a swallowed fault corrupts "
                "dependability numbers silently",
            )


# ---------------------------------------------------------------------------
# DRA2xx -- observability
# ---------------------------------------------------------------------------


def _obs_scope(ctx: FileContext) -> bool:
    """True for library code whose emit/metric names the schema governs."""
    return (
        ctx.subpackage is not None
        and ctx.subpackage != "obs"  # the registry/merge machinery itself
        and not ctx.is_test_code
    )


@rule(
    "DRA201",
    "obs.trace-kind",
    "Tracer.emit kinds are literals registered in repro.obs.schema",
)
def check_trace_kinds(ctx: FileContext) -> Iterator[Finding]:
    if not _obs_scope(ctx):
        return
    for node in ctx.nodes:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            continue
        if not node.args:
            yield _finding(
                ctx, node, "DRA201",
                "emit() without a positional kind; pass the registered "
                "event kind as the first argument",
            )
            continue
        kind = node.args[0]
        if not (isinstance(kind, ast.Constant) and isinstance(kind.value, str)):
            yield _finding(
                ctx, node, "DRA201",
                "trace-event kind must be a string literal so the schema "
                "registry and docs can be checked statically",
            )
        elif not _schema.is_trace_kind(kind.value):
            yield _finding(
                ctx, node, "DRA201",
                f"trace-event kind {kind.value!r} is not registered in "
                "repro.obs.schema.TRACE_EVENT_KINDS; add it there and to "
                "the docs/observability.md catalogue",
            )


_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


@rule(
    "DRA202",
    "obs.metric-name",
    "metric names are literals (or registered-family f-strings) from repro.obs.schema",
)
def check_metric_names(ctx: FileContext) -> Iterator[Finding]:
    if not _obs_scope(ctx):
        return
    for node in ctx.nodes:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
            and node.args
        ):
            continue
        name = node.args[0]
        if isinstance(name, ast.Constant) and isinstance(name.value, str):
            if not _schema.is_metric_name(name.value):
                yield _finding(
                    ctx, node, "DRA202",
                    f"metric name {name.value!r} is not registered in "
                    "repro.obs.schema.METRIC_NAMES; add it there and to "
                    "the docs/observability.md catalogue",
                )
        elif isinstance(name, ast.JoinedStr):
            head = name.values[0] if name.values else None
            prefix = (
                head.value
                if isinstance(head, ast.Constant) and isinstance(head.value, str)
                else ""
            )
            if not prefix or _schema.metric_family(prefix) is None:
                yield _finding(
                    ctx, node, "DRA202",
                    "dynamic metric name must start with a literal prefix "
                    "registered in repro.obs.schema.METRIC_FAMILIES",
                )
        else:
            yield _finding(
                ctx, node, "DRA202",
                "metric name must be a string literal (or a registered-"
                "family f-string) so dashboards and docs stay in sync",
            )


# ---------------------------------------------------------------------------
# DRA3xx -- testing hygiene
# ---------------------------------------------------------------------------


def _is_abs_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "abs"
    return isinstance(func, ast.Attribute) and func.attr in ("abs", "fabs")


def _float_literal_led(node: ast.expr) -> bool:
    """True for a float literal, or an arithmetic expression led by one.

    Integer factors are deliberately exempt: ``abs(x - mu) < 5 * se``
    is a principled z-score bound, while ``< 1e-9`` (or
    ``<= 1e-12 * scale``, or ``<= 1e-12 * scale + 1e-300``) is exactly
    the magic epsilon the contract bans.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _float_literal_led(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Mult, ast.Div, ast.Add, ast.Sub)
    ):
        return _float_literal_led(node.left) or _float_literal_led(node.right)
    return False


@rule(
    "DRA301",
    "tests.tolerance",
    "tests derive tolerances from repro.validate, not magic epsilons",
)
def check_test_tolerances(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.is_test_code:
        return
    for assert_node in ctx.nodes:
        if not isinstance(assert_node, ast.Assert):
            continue
        for node in ast.walk(assert_node.test):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Lt, ast.LtE)):
                    small, tol = lhs, rhs
                elif isinstance(op, (ast.Gt, ast.GtE)):
                    small, tol = rhs, lhs
                else:
                    continue
                if _is_abs_call(small) and _float_literal_led(tol):
                    yield _finding(
                        ctx, node, "DRA301",
                        "raw abs(a - b) < eps comparison; use the "
                        "repro.validate tolerance helpers "
                        "(assert_solvers_agree, distribution_atol, "
                        "FLOAT_EPS, CI containment) so the budget is "
                        "derived, not guessed",
                    )


# ---------------------------------------------------------------------------
# DRA4xx -- CLI surface
# ---------------------------------------------------------------------------

#: argparse registration calls whose result shows up in ``--help``.
_ARGPARSE_ADDERS = frozenset({"add_argument", "add_parser"})


@rule(
    "DRA401",
    "cli.flag-help",
    "every add_argument/add_parser call carries a help string",
)
def check_cli_help(ctx: FileContext) -> Iterator[Finding]:
    """A flag without ``help=`` is invisible in ``--help`` output.

    The docs-freshness check (``tests/test_docs_freshness.py``) keeps
    ``docs/cli.md`` in sync with the parser, but it cannot document
    semantics the parser itself never states; requiring ``help=`` at the
    registration site keeps both surfaces complete.  Only calls whose
    first argument is a string literal are checked -- that is how every
    real flag/subcommand is registered, and it keeps the rule free of
    false positives on unrelated ``add_argument`` methods.
    """
    if ctx.is_test_code:
        return
    for node in ctx.nodes:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ARGPARSE_ADDERS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            continue
        if any(kw.arg == "help" for kw in node.keywords):
            continue
        what = "subcommand" if node.func.attr == "add_parser" else "flag"
        yield _finding(
            ctx, node, "DRA401",
            f"{what} {node.args[0].value!r} has no help= string; "
            "undocumented CLI surface drifts out of --help and "
            "docs/cli.md",
        )

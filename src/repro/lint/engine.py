"""File discovery, rule execution and the parallel driver.

The engine mirrors the determinism discipline it enforces:

* files are discovered in sorted path order and assigned to ``--jobs``
  chunks by **sorted round-robin** (``files[i::jobs]``), so the chunk
  layout is a pure function of the file list -- not of partition
  arithmetic that shifts when ``len(files) < jobs``;
* each file is read, parsed and suppression-scanned exactly **once per
  process** (:meth:`FileContext.build`), and every rule shares the
  cached AST walk / parent map on that context;
* the interprocedural pass (:mod:`repro.lint.flow`) always runs once,
  in the driver process, over the full sorted file set -- so its
  findings and the ``--graph-out`` JSON are byte-identical for any
  ``--jobs`` value;
* findings sort by (path, line, col, code) before reporting.

Workers count ``lint.*`` metrics into the process-global registry hook,
which :func:`repro.runtime.executor.metered_parallel_map` merges
exactly in submission order; the driver adds ``lint.wall_ms`` at the
end (a gauge, reported out-of-band so timing never perturbs report
bytes).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import RULES
from repro.lint.suppress import apply_suppressions
from repro.obs import metrics as _metrics
from repro.runtime.executor import metered_parallel_map
from repro.runtime.timing import Stopwatch

__all__ = ["LINT_SCHEMA_VERSION", "PARSE_ERROR_CODE", "LintReport", "lint_paths"]

#: Version stamp of the ``--format json`` payload.
LINT_SCHEMA_VERSION = 1

#: Code attached to files the parser rejects.
PARSE_ERROR_CODE = "DRA002"

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    files: int
    findings: tuple[Finding, ...]
    suppressed: int
    selected: tuple[str, ...] = field(default=())
    #: wall time of the run in milliseconds (reported out-of-band: it is
    #: deliberately NOT part of :meth:`to_payload` nor of report
    #: equality, which must stay identical across runs and ``--jobs``)
    wall_ms: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_payload(self) -> dict[str, Any]:
        """The schema-versioned ``--format json`` document."""
        return {
            "schema": "repro-lint",
            "v": LINT_SCHEMA_VERSION,
            "files": self.files,
            "suppressed": self.suppressed,
            "counts": self.counts_by_code(),
            "findings": [f.to_dict() for f in self.findings],
            "ok": self.ok,
        }


def _code_matches(code: str, selectors: frozenset[str]) -> bool:
    """Ruff-style prefix matching: DRA1 selects every DRA1xx rule."""
    return any(code.startswith(sel) for sel in selectors)


def iter_python_files(paths: list[str]) -> list[str]:
    """Every ``*.py`` under ``paths``, deduplicated, in sorted order."""
    out: set[str] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_file() and p.suffix == ".py":
            out.add(str(p))
        elif p.is_dir():
            for sub in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(str(sub))
    return sorted(out)


def round_robin_chunks(files: list[str], jobs: int) -> list[list[str]]:
    """Deterministic chunk assignment: sorted round-robin, no empties.

    ``files[i::jobs]`` depends only on the sorted file list and the job
    count -- when ``len(files) < jobs`` the surplus chunks are simply
    empty and dropped, instead of shifting the partition boundaries the
    way size-based arithmetic does.
    """
    n = max(1, jobs)
    return [chunk for i in range(n) if (chunk := files[i::n])]


def _parse_error_finding(relpath: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=relpath,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        code=PARSE_ERROR_CODE,
        message=f"file does not parse: {exc.msg}",
    )


def _lint_context(
    ctx: FileContext,
    select: frozenset[str] | None,
    ignore: frozenset[str] | None,
) -> tuple[list[Finding], int]:
    """Run every per-file rule over one prebuilt context."""
    findings = list(ctx.suppression_findings)
    for rule in RULES.values():
        findings.extend(rule.check(ctx))
    findings = _filter_codes(findings, select, ignore)
    kept, silenced = apply_suppressions(findings, ctx.suppressions)
    kept.sort()
    return kept, silenced


def _filter_codes(
    findings: list[Finding],
    select: frozenset[str] | None,
    ignore: frozenset[str] | None,
) -> list[Finding]:
    if select is not None:
        findings = [f for f in findings if _code_matches(f.code, select)]
    if ignore is not None:
        findings = [f for f in findings if not _code_matches(f.code, ignore)]
    return findings


def _relpath(path: str) -> str:
    return os.path.relpath(path).replace(os.sep, "/")


def _lint_chunk(
    payload: tuple[tuple[str, ...], frozenset[str] | None, frozenset[str] | None],
) -> tuple[list[Finding], int]:
    """Worker: lint one round-robin chunk of files.

    Each file in the chunk is read/parsed/suppression-scanned exactly
    once here; the per-file findings are merged into one sorted list so
    the driver only concatenates and re-sorts.
    """
    files, select, ignore = payload
    findings: list[Finding] = []
    suppressed = 0
    for abspath in files:
        relpath = _relpath(abspath)
        try:
            ctx = FileContext.build(abspath, relpath)
        except SyntaxError as exc:
            errs = _filter_codes([_parse_error_finding(relpath, exc)], select, ignore)
            findings.extend(errs)
            _count_metrics(errs, 0)
            continue
        kept, silenced = _lint_context(ctx, select, ignore)
        findings.extend(kept)
        suppressed += silenced
        _count_metrics(kept, silenced)
    return findings, suppressed


def _count_metrics(kept: list[Finding], silenced: int) -> None:
    reg = _metrics.get_registry()
    if reg is None:
        return
    reg.counter("lint.files").inc()
    if kept:
        reg.counter("lint.findings").inc(len(kept))
        for f in kept:
            reg.counter(f"lint.findings.{f.code}").inc()
    if silenced:
        reg.counter("lint.suppressions").inc(silenced)


def _build_contexts(
    files: list[str],
) -> tuple[list[FileContext], list[tuple[str, SyntaxError]]]:
    """Parse every file once; unparseable files come back separately."""
    contexts: list[FileContext] = []
    errors: list[tuple[str, SyntaxError]] = []
    for abspath in files:
        relpath = _relpath(abspath)
        try:
            contexts.append(FileContext.build(abspath, relpath))
        except SyntaxError as exc:
            errors.append((relpath, exc))
    return contexts, errors


def _flow_pass(
    contexts: list[FileContext],
    select: frozenset[str] | None,
    ignore: frozenset[str] | None,
    graph_out: str | None,
) -> tuple[list[Finding], int]:
    """Run the interprocedural rules once, in the driver process.

    Flow findings obey the sink-line suppression policy: a
    ``# dra: noqa[DRA5xx]`` on the reported (sink) line silences the
    finding; comments on the source/definition lines do not.
    """
    from repro.lint.flow import analyze_project

    findings, graph = analyze_project(contexts)
    if graph_out is not None:
        payload = json.dumps(graph.to_payload(), indent=2, sort_keys=False)
        Path(graph_out).write_text(payload + "\n", encoding="utf-8")
    findings = _filter_codes(findings, select, ignore)
    tables = {ctx.path: ctx.suppressions for ctx in contexts}
    kept: list[Finding] = []
    suppressed = 0
    for f in findings:
        fkept, silenced = apply_suppressions([f], tables.get(f.path, {}))
        kept.extend(fkept)
        suppressed += silenced
    reg = _metrics.get_registry()
    if reg is not None and kept:
        reg.counter("lint.findings").inc(len(kept))
        for f in kept:
            reg.counter(f"lint.findings.{f.code}").inc()
    if reg is not None and suppressed:
        reg.counter("lint.suppressions").inc(suppressed)
    return kept, suppressed


def lint_paths(
    paths: list[str],
    *,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
    jobs: int = 1,
    interprocedural: bool = True,
    graph_out: str | None = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select``/``ignore`` take rule-code prefixes (``DRA1`` covers all
    of ``DRA1xx``); ``jobs`` fans file chunks out over a process pool
    with the usual bit-identical-report guarantee.  With
    ``interprocedural`` (the default) the DRA5xx whole-project pass runs
    in the driver; ``graph_out`` additionally writes the call graph as
    schema-versioned JSON.
    """
    watch = Stopwatch()
    with watch:
        files = iter_python_files(paths)
        findings: list[Finding] = []
        suppressed = 0
        contexts: list[FileContext] | None = None
        if jobs <= 1:
            # serial: one parse per file, shared by the per-file rules
            # AND the flow pass below
            contexts, parse_errors = _build_contexts(files)
            for relpath, exc in parse_errors:
                errs = _filter_codes(
                    [_parse_error_finding(relpath, exc)], select, ignore
                )
                findings.extend(errs)
                _count_metrics(errs, 0)
            for ctx in contexts:
                kept, silenced = _lint_context(ctx, select, ignore)
                findings.extend(kept)
                suppressed += silenced
                _count_metrics(kept, silenced)
        else:
            payloads = [
                (tuple(chunk), select, ignore)
                for chunk in round_robin_chunks(files, jobs)
            ]
            for kept, silenced in metered_parallel_map(
                _lint_chunk, payloads, jobs=jobs
            ):
                findings.extend(kept)
                suppressed += silenced
        if interprocedural:
            if contexts is None:
                contexts, _ = _build_contexts(files)
            flow_kept, flow_suppressed = _flow_pass(
                contexts, select, ignore, graph_out
            )
            findings.extend(flow_kept)
            suppressed += flow_suppressed
        findings.sort()
    reg = _metrics.get_registry()
    if reg is not None:
        reg.gauge("lint.wall_ms").set(watch.elapsed * 1000.0)
    return LintReport(
        files=len(files),
        findings=tuple(findings),
        suppressed=suppressed,
        selected=_selected_codes(select, ignore, interprocedural),
        wall_ms=watch.elapsed * 1000.0,
    )


def _selected_codes(
    select: frozenset[str] | None,
    ignore: frozenset[str] | None,
    interprocedural: bool,
) -> tuple[str, ...]:
    from repro.lint.flow.rules5xx import FLOW_RULES

    codes = list(RULES)
    if interprocedural:
        codes.extend(FLOW_RULES)
    return tuple(
        sorted(
            code
            for code in codes
            if (select is None or _code_matches(code, select))
            and (ignore is None or not _code_matches(code, ignore))
        )
    )

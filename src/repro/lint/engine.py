"""File discovery, per-file rule execution and the parallel driver.

The engine mirrors the determinism discipline it enforces: files are
discovered and dispatched in sorted path order, every worker returns a
pure, picklable result, and findings sort by (path, line, col, code) --
so ``--jobs 4`` and ``--jobs 1`` print byte-identical reports.  Workers
count ``lint.*`` metrics into the process-global registry hook, which
:func:`repro.runtime.executor.metered_parallel_map` merges exactly in
submission order.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules import RULES
from repro.lint.suppress import apply_suppressions, scan_suppressions
from repro.obs import metrics as _metrics
from repro.runtime.executor import metered_parallel_map

__all__ = ["LINT_SCHEMA_VERSION", "PARSE_ERROR_CODE", "LintReport", "lint_paths"]

#: Version stamp of the ``--format json`` payload.
LINT_SCHEMA_VERSION = 1

#: Code attached to files the parser rejects.
PARSE_ERROR_CODE = "DRA002"

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    files: int
    findings: tuple[Finding, ...]
    suppressed: int
    selected: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_payload(self) -> dict[str, Any]:
        """The schema-versioned ``--format json`` document."""
        return {
            "schema": "repro-lint",
            "v": LINT_SCHEMA_VERSION,
            "files": self.files,
            "suppressed": self.suppressed,
            "counts": self.counts_by_code(),
            "findings": [f.to_dict() for f in self.findings],
            "ok": self.ok,
        }


def _code_matches(code: str, selectors: frozenset[str]) -> bool:
    """Ruff-style prefix matching: DRA1 selects every DRA1xx rule."""
    return any(code.startswith(sel) for sel in selectors)


def iter_python_files(paths: list[str]) -> list[str]:
    """Every ``*.py`` under ``paths``, deduplicated, in sorted order."""
    out: set[str] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_file() and p.suffix == ".py":
            out.add(str(p))
        elif p.is_dir():
            for sub in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(str(sub))
    return sorted(out)


def _lint_one(
    payload: tuple[str, str, frozenset[str] | None, frozenset[str] | None],
) -> tuple[list[Finding], int]:
    """Worker: lint one file; returns (kept findings, suppressed count)."""
    abspath, relpath, select, ignore = payload
    with open(abspath, encoding="utf-8") as fh:
        source = fh.read()
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        findings = [
            Finding(
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
        _count_metrics(findings, 0)
        return findings, 0

    ctx = FileContext(
        path=relpath,
        parts=PurePosixPath(relpath.replace(os.sep, "/")).parts,
        tree=tree,
        lines=tuple(lines),
    )
    table, findings = scan_suppressions(relpath, source)
    for rule in RULES.values():
        findings.extend(rule.check(ctx))
    if select is not None:
        findings = [f for f in findings if _code_matches(f.code, select)]
    if ignore is not None:
        findings = [f for f in findings if not _code_matches(f.code, ignore)]
    kept, silenced = apply_suppressions(findings, table)
    kept.sort()
    _count_metrics(kept, silenced)
    return kept, silenced


def _count_metrics(kept: list[Finding], silenced: int) -> None:
    reg = _metrics.get_registry()
    if reg is None:
        return
    reg.counter("lint.files").inc()
    if kept:
        reg.counter("lint.findings").inc(len(kept))
        for f in kept:
            reg.counter(f"lint.findings.{f.code}").inc()
    if silenced:
        reg.counter("lint.suppressions").inc(silenced)


def lint_paths(
    paths: list[str],
    *,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
    jobs: int = 1,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select``/``ignore`` take rule-code prefixes (``DRA1`` covers all
    of ``DRA1xx``); ``jobs`` fans files out over a process pool with the
    usual bit-identical-report guarantee.
    """
    files = iter_python_files(paths)
    payloads = [
        (path, os.path.relpath(path).replace(os.sep, "/"), select, ignore)
        for path in files
    ]
    results = metered_parallel_map(_lint_one, payloads, jobs=jobs)
    findings: list[Finding] = []
    suppressed = 0
    for kept, silenced in results:
        findings.extend(kept)
        suppressed += silenced
    findings.sort()
    selected = tuple(
        sorted(
            code
            for code in RULES
            if (select is None or _code_matches(code, select))
            and (ignore is None or not _code_matches(code, ignore))
        )
    )
    return LintReport(
        files=len(files),
        findings=tuple(findings),
        suppressed=suppressed,
        selected=selected,
    )

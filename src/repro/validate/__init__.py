"""Differential validation: sim-vs-analytic equivalence with statistics.

The repo answers every question the paper asks twice -- analytically
(CTMC reliability/availability, the Section 5 bandwidth algebra) and
empirically (structure-function / trajectory / importance-sampling Monte
Carlo, the packet-level router simulation).  This package cross-checks
the two answer sets as a first-class artifact:

* :mod:`repro.validate.stats` -- Wilson/normal confidence intervals from
  sufficient statistics, TOST bounded equivalence, and numerically
  principled tolerance helpers the test suite imports in place of
  magic epsilons;
* :mod:`repro.validate.pairs` -- the oracle/estimator registry: each
  entry binds one analytic quantity to its independent empirical
  counterpart;
* :mod:`repro.validate.engine` -- the equivalence engine: runs a suite
  of pairs over ``metered_parallel_map`` (bit-identical JSON for any
  ``--jobs``), escalates failing pairs to 4x the sample budget before
  declaring failure, and emits a schema-versioned report.

This ``__init__`` deliberately re-exports only the dependency-free
statistics layer: :mod:`repro.montecarlo` imports it, so pulling the
pair registry (which imports :mod:`repro.montecarlo` back) in at package
import would create a cycle.  Import the engine explicitly::

    from repro.validate.engine import run_suite

See ``docs/validation.md`` for the methodology and the pair catalogue.
"""

from repro.validate.stats import (
    DEFAULT_Z,
    FLOAT_EPS,
    ConfidenceInterval,
    assert_distribution_rows,
    assert_mc_fraction_consistent,
    assert_mc_mean_consistent,
    assert_probability_vector,
    assert_solvers_agree,
    assert_stationary_residual,
    distribution_atol,
    mean_interval,
    sample_mean_interval,
    tost_interval,
    wilson_interval,
)

__all__ = [
    "DEFAULT_Z",
    "FLOAT_EPS",
    "ConfidenceInterval",
    "wilson_interval",
    "mean_interval",
    "sample_mean_interval",
    "tost_interval",
    "distribution_atol",
    "assert_probability_vector",
    "assert_distribution_rows",
    "assert_stationary_residual",
    "assert_solvers_agree",
    "assert_mc_mean_consistent",
    "assert_mc_fraction_consistent",
]

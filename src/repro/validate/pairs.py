"""The oracle/estimator registry of the differential validation harness.

Every entry pairs one *analytic* quantity (a Markov solve or the
Section 5 bandwidth algebra) with a fully *independent* empirical
counterpart (Monte Carlo sampling or the packet-level DES) and states
how agreement is judged:

==========================  ==========================================  =========
pair                        analytic vs empirical                       judgment
==========================  ==========================================  =========
``mttf.lc``                 phase-type absorption moments vs             normal CI
                            structure-function lifetime samples
``unreliability.transient`` uniformization P(F at t) vs lifetime         Wilson CI
                            exceedance counts
``availability.steady``     exact stationary unavailability vs           normal CI
                            balanced-failure-biasing importance
                            sampling
``availability.trajectory`` exact stationary availability vs plain       normal CI
                            trajectory time-averages (accelerated
                            rates so outages are not rare)
``bandwidth.share``         Section 4 ``B_prom`` promises + the          TOST
                            Section 5.3 saturation point vs paced
                            TDM ``DataChannel`` throughput
``coverage.feasibility``    coverage-planner feasibility fraction        Wilson CI
                            over all (src, dst) pairs vs delivered
                            fraction of randomly addressed packets
``coverage.policy_          static-policy delivered fraction vs the      dominance
dominance``                 adaptive policy on the same multi-fault
                            schedule (adaptive must deliver >= static)
==========================  ==========================================  =========

Each pair function takes ``(n, rng, perturb)`` and returns a plain-dict
result; ``n`` scales the empirical sample budget (the engine escalates
it 4x before declaring failure), ``rng`` is the pair's private
deterministic generator, and ``perturb`` scales named *analytic-side*
parameters so a deliberately wrong model diverges from the untouched
empirical measurement -- the harness's own self-test (see
``tests/validate/test_perturbation.py``).

To add a pair: write a function returning :func:`pair_result`, list it
in :data:`PAIRS` with per-suite sample budgets, and document it in
``docs/validation.md``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.availability import build_dra_availability_chain
from repro.core.parameters import DRAConfig, FailureRates, RepairPolicy
from repro.core.performance import PerformanceModel, promised_bandwidth
from repro.core.reliability import build_dra_reliability_chain
from repro.core.states import AllHealthy, Failed
from repro.markov import stationary_distribution, uniformized_distribution
from repro.markov.absorbing import absorption_time_moments
from repro.montecarlo.ctmc_mc import empirical_availability
from repro.montecarlo.importance import unavailability_importance_sampling
from repro.montecarlo.lifetime import empirical_unreliability, sample_lc_failure_times
from repro.router.arbitration import DistributedArbiter
from repro.router.bandwidth import EIBBandwidthAllocator
from repro.router.bus import DataChannel
from repro.sim import Engine
from repro.validate.stats import (
    DEFAULT_Z,
    mean_interval,
    tost_interval,
    wilson_interval,
)

__all__ = ["PairSpec", "PAIRS", "suite_pairs", "pair_result", "SUITES"]

#: Nested suite tiers: every pair names the *smallest* suite it joins and
#: rides along in every larger one.
SUITES = ("tiny", "smoke", "full")

#: Reference model shared by the dependability pairs: small enough that
#: the chains solve in milliseconds, structured enough (N > M, so PI and
#: PD pools differ) to exercise the full zone grid.
_CONFIG = DRAConfig(n=4, m=3, variant="extended")


def _perturbed_rates(perturb: Mapping[str, float]) -> FailureRates:
    """Analytic-side failure rates with the requested fields scaled.

    Unknown keys are ignored here (they may target other pairs); the CLI
    validates key names up front against :data:`PERTURBABLE`.
    """
    base = FailureRates()
    fields = {
        name: getattr(base, name) * float(perturb.get(name, 1.0))
        for name in (
            "lam_lc", "lam_lpd", "lam_lpi", "lam_bc", "lam_bus", "lam_pd", "lam_pi",
        )
    }
    return FailureRates(**fields)


#: Parameters ``--perturb`` may scale, and which side consumes them.
PERTURBABLE = (
    "lam_lc", "lam_lpd", "lam_lpi", "lam_bc", "lam_bus", "lam_pd", "lam_pi",
    "mu", "b_bus",
)


def pair_result(
    name: str,
    *,
    method: str,
    analytic: float,
    empirical: float,
    ci_lo: float,
    ci_hi: float,
    n: int,
    passed: bool,
    detail: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Canonical result record (all values JSON scalars, no wall times)."""
    return {
        "pair": name,
        "method": method,
        "analytic": analytic,
        "empirical": empirical,
        "ci_lo": ci_lo,
        "ci_hi": ci_hi,
        "n": n,
        "passed": bool(passed),
        "detail": detail or {},
    }


# ----------------------------------------------------------------------
# dependability pairs (Markov vs Monte Carlo)
# ----------------------------------------------------------------------


def _pair_mttf_lc(
    n: int, rng: np.random.Generator, perturb: Mapping[str, float], z: float
) -> dict[str, Any]:
    """LC mean time to failure: phase-type moments vs structure function.

    The analytic side solves the *extended* reliability chain for the
    exact absorption mean and variance; the empirical side never sees the
    chain -- it samples component lifetimes and applies the DRA coverage
    semantics directly.  The exact variance supplies the standard error,
    so the CI carries no estimation noise of its own.
    """
    rates_a = _perturbed_rates(perturb)
    chain = build_dra_reliability_chain(_CONFIG, rates_a)
    mean_a, var_a = absorption_time_moments(chain, AllHealthy)
    samples = sample_lc_failure_times(_CONFIG, n, rng, FailureRates())
    mean_e = float(samples.mean())
    ci = mean_interval(mean_e, float(np.sqrt(var_a / n)), z=z)
    return pair_result(
        "mttf.lc",
        method="normal",
        analytic=mean_a,
        empirical=mean_e,
        ci_lo=ci.lo,
        ci_hi=ci.hi,
        n=n,
        passed=ci.contains(mean_a),
        detail={"analytic_std": float(np.sqrt(var_a)), "variant": _CONFIG.variant},
    )


#: Horizon for the transient pair, chosen so 1 - R(t) sits in the few-
#: percent range: rare enough to exercise the Wilson interval's edge
#: behavior, common enough that modest sample counts have power.
_TRANSIENT_HORIZON_H = 40_000.0


def _pair_unreliability_transient(
    n: int, rng: np.random.Generator, perturb: Mapping[str, float], z: float
) -> dict[str, Any]:
    """``1 - R(t)`` at a fixed horizon: uniformization vs lifetime counts.

    Uniformization carries an a-priori truncation bound (1e-12 total
    variation), so the analytic value is treated as exact against the
    binomial noise of the empirical side.
    """
    rates_a = _perturbed_rates(perturb)
    chain = build_dra_reliability_chain(_CONFIG, rates_a)
    pi_t = uniformized_distribution(
        chain,
        np.array([_TRANSIENT_HORIZON_H]),
        chain.initial_distribution(AllHealthy),
    )
    unrel_a = float(pi_t[0, chain.index_of(Failed)])
    failures, total = empirical_unreliability(
        _CONFIG, _TRANSIENT_HORIZON_H, n, rng, FailureRates()
    )
    ci = wilson_interval(failures, total, z=z)
    return pair_result(
        "unreliability.transient",
        method="wilson",
        analytic=unrel_a,
        empirical=failures / total,
        ci_lo=ci.lo,
        ci_hi=ci.hi,
        n=total,
        passed=ci.contains(unrel_a),
        detail={"horizon_h": _TRANSIENT_HORIZON_H, "failures": failures},
    )


def _pair_availability_steady(
    n: int, rng: np.random.Generator, perturb: Mapping[str, float], z: float
) -> dict[str, Any]:
    """Steady-state unavailability: exact stationary solve vs importance
    sampling.

    The DRA unavailability (~1e-9 at three-hour repair) is far beyond
    plain Monte Carlo; balanced failure biasing reaches it with a few
    thousand regenerative cycles and a delta-method standard error.
    """
    mu_scale = float(perturb.get("mu", 1.0))
    repair_a = RepairPolicy(mu=RepairPolicy.three_hours().mu * mu_scale)
    chain_a = build_dra_availability_chain(
        _CONFIG, repair_a, _perturbed_rates(perturb)
    )
    pi = stationary_distribution(chain_a)
    unavail_a = float(pi[chain_a.index_of(Failed)])
    chain_e = build_dra_availability_chain(
        _CONFIG, RepairPolicy.three_hours(), FailureRates()
    )
    result = unavailability_importance_sampling(chain_e, Failed, n, rng)
    ci = mean_interval(result.unavailability, result.std_error, z=z)
    return pair_result(
        "availability.steady",
        method="normal",
        analytic=unavail_a,
        empirical=result.unavailability,
        ci_lo=ci.lo,
        ci_hi=ci.hi,
        n=n,
        passed=ci.contains(unavail_a),
        detail={
            "hit_fraction": result.hit_fraction,
            "mean_cycle_length_h": result.mean_cycle_length,
        },
    )


#: Acceleration factor for the trajectory pair: failure rates scaled up
#: until outages stop being rare, so *plain* path sampling (no biasing)
#: independently checks the stationary solver on a chain with the same
#: structure.  1500x turns lam_lc into 0.03/h against mu = 1/3.
_TRAJECTORY_RATE_SCALE = 1500.0
_TRAJECTORY_HORIZON_H = 400.0


def _pair_availability_trajectory(
    n: int, rng: np.random.Generator, perturb: Mapping[str, float], z: float
) -> dict[str, Any]:
    """Long-run availability: stationary solve vs trajectory time-average."""
    mu_scale = float(perturb.get("mu", 1.0))
    repair = RepairPolicy.three_hours()
    rates_e = FailureRates().scaled(_TRAJECTORY_RATE_SCALE)
    chain_a = build_dra_availability_chain(
        _CONFIG,
        RepairPolicy(mu=repair.mu * mu_scale),
        _perturbed_rates(perturb).scaled(_TRAJECTORY_RATE_SCALE),
    )
    pi = stationary_distribution(chain_a)
    avail_a = 1.0 - float(pi[chain_a.index_of(Failed)])
    chain_e = build_dra_availability_chain(_CONFIG, repair, rates_e)
    est, se = empirical_availability(
        chain_e,
        chain_e.index_of(Failed),
        _TRAJECTORY_HORIZON_H,
        n,
        rng,
        initial_state=chain_e.index_of(AllHealthy),
    )
    ci = mean_interval(est, se, z=z)
    return pair_result(
        "availability.trajectory",
        method="normal",
        analytic=avail_a,
        empirical=est,
        ci_lo=ci.lo,
        ci_hi=ci.hi,
        n=n,
        passed=ci.contains(avail_a),
        detail={
            "rate_scale": _TRAJECTORY_RATE_SCALE,
            "horizon_h": _TRAJECTORY_HORIZON_H,
        },
    )


# ----------------------------------------------------------------------
# router pairs (algebra vs packet-level DES)
# ----------------------------------------------------------------------

_BW_PACKET_BYTES = 1000
_BW_WARMUP_S = 1e-3
_BW_WINDOW_S = 4e-3
#: TOST quantisation bound: a windowed throughput measurement of a paced
#: fluid rate can sit at most ~3 packets off the fluid value (one packet
#: straddling each window edge plus one in flight on the TDM turn).
_BW_BOUND_PACKETS = 3


def _measure_lp_throughput(
    requests_bps: dict[int, float], capacity_bps: float
) -> dict[int, float]:
    """Packet-level EIB throughput per LP under saturating arrivals.

    Builds the real arbiter + allocator + ``DataChannel`` stack (zero TDM
    turn overhead, so the fluid algebra is the exact reference), keeps
    every LP backlogged by topping its buffer up on each delivery, and
    measures delivered bytes inside ``[warmup, warmup + window]``.
    """
    engine = Engine()
    lc_ids = sorted(requests_bps)
    arbiter = DistributedArbiter(lc_ids)
    allocator = EIBBandwidthAllocator(capacity_bps)
    channel = DataChannel(
        engine, arbiter, allocator, rate_bps=capacity_bps, turn_overhead_s=0.0
    )

    def pump(lc_id: int) -> None:
        # Two packets in reserve keep the LP backlogged without racing
        # the rate limiter's credit horizon.
        for _ in range(2):
            channel.enqueue(lc_id, _BW_PACKET_BYTES, lambda lc=lc_id: pump_one(lc))

    def pump_one(lc_id: int) -> None:
        channel.enqueue(lc_id, _BW_PACKET_BYTES, lambda: pump_one(lc_id))

    for lc_id in lc_ids:
        channel.open_lp(lc_id, requests_bps[lc_id])
    for lc_id in lc_ids:
        pump(lc_id)

    baseline: dict[int, int] = {}

    def snapshot() -> None:
        for lc_id in lc_ids:
            baseline[lc_id] = channel.transferred_bytes_by_lc[lc_id]

    engine.schedule(_BW_WARMUP_S, snapshot, label="validate:bw:snapshot")
    engine.run(until=_BW_WARMUP_S + _BW_WINDOW_S)
    return {
        lc_id: (channel.transferred_bytes_by_lc[lc_id] - baseline[lc_id])
        * 8.0
        / _BW_WINDOW_S
        for lc_id in lc_ids
    }


def _pair_bandwidth_share(
    n: int, rng: np.random.Generator, perturb: Mapping[str, float], z: float
) -> dict[str, Any]:
    """Section 4/5.3 bandwidth algebra vs the TDM data channel.

    Two sub-checks share one verdict:

    * **shares** -- three LPs oversubscribe a 10 Gb/s bus; each measured
      throughput must match its ``B_prom`` promise within the packet
      quantisation bound;
    * **saturation** -- for every faulty-LC count ``k``, coverage LPs
      request ``min(required, headroom share)`` on a Figure 8 router
      (N=6, binding ``B_BUS``); the measured per-LP rate must match
      ``B_faulty`` and the first ``k`` where it falls short of the
      requirement must equal the model's saturation point.

    Deterministic DES, so the sample budget ``n`` and ``rng`` are unused;
    the TOST bound does the judging.
    """
    del n, rng
    bound_bps = _BW_BOUND_PACKETS * _BW_PACKET_BYTES * 8.0 / _BW_WINDOW_S
    b_bus_scale = float(perturb.get("b_bus", 1.0))

    # -- sub-check 1: oversubscribed B_prom shares ------------------------
    capacity = 10e9
    requests = {0: 6e9, 1: 5e9, 2: 4e9}
    promises_a = promised_bandwidth(
        [requests[i] for i in sorted(requests)], capacity * b_bus_scale
    )
    measured = _measure_lp_throughput(requests, capacity)
    share_errs = [
        abs(measured[lc] - float(promises_a[k]))
        for k, lc in enumerate(sorted(requests))
    ]
    shares_ok = all(err <= bound_bps for err in share_errs)

    # -- sub-check 2: Figure 8 saturation sweep ---------------------------
    model = PerformanceModel(n=6, c_lc=10.0, b_bus=20.0 * b_bus_scale)
    load = 0.7
    required_bps = model.required(load) * 1e9
    sat_a = model.saturation_point(load)
    sat_e: int | None = None
    worst_gap = 0.0
    for k in range(1, model.n):
        x_nonfaulty = model.n - k
        # Coverage solicitation already caps each faulty LC's request at
        # the donors' aggregate headroom; the bus scale-back is what the
        # DES must reproduce.
        request = min(required_bps, x_nonfaulty * model.headroom(load) * 1e9 / k)
        got = _measure_lp_throughput(
            {lc: request for lc in range(k)}, 20e9
        )
        b_faulty_a = model.bandwidth_to_faulty(k, load) * 1e9
        for lc in range(k):
            worst_gap = max(worst_gap, abs(got[lc] - b_faulty_a))
            if sat_e is None and got[lc] < required_bps - bound_bps:
                sat_e = k
    sweep_ok = worst_gap <= bound_bps and sat_e == sat_a

    ci = tost_interval(measured[0], bound_bps)
    return pair_result(
        "bandwidth.share",
        method="tost",
        analytic=float(promises_a[0]),
        empirical=measured[0],
        ci_lo=ci.lo,
        ci_hi=ci.hi,
        n=0,
        passed=shares_ok and sweep_ok,
        detail={
            "bound_bps": bound_bps,
            "share_max_err_bps": max(share_errs),
            "sweep_max_err_bps": worst_gap,
            "saturation_analytic": sat_a,
            "saturation_empirical": sat_e,
        },
    )


def _pair_coverage_feasibility(
    n: int, rng: np.random.Generator, perturb: Mapping[str, float], z: float
) -> dict[str, Any]:
    """Coverage-plan feasibility vs observed deliveries.

    Analytic side: with a fixed fault pattern, enumerate every ordered
    (src, dst) pair and ask the planner whether the packet survives --
    an exact feasibility fraction over the uniform pair distribution.
    Empirical side: inject ``n`` uniformly addressed packets into the
    full router DES (same faults), drain, and count deliveries.  The
    Wilson interval around the delivered fraction must cover the exact
    fraction -- any sim-level loss mechanism the planner does not predict
    (or vice versa) breaks the agreement.
    """
    from repro.router import ComponentKind, Router, RouterConfig, RouterMode
    from repro.router.packets import Packet, Protocol
    from repro.traffic.generators import _draw_dst_addr

    del perturb  # no analytic knob: the planner *is* the model here

    def build() -> Router:
        router = Router(RouterConfig(n_linecards=6, mode=RouterMode.DRA, seed=17))
        router.inject_fault(1, ComponentKind.SRU)
        router.inject_fault(2, ComponentKind.PDLU)
        router.inject_fault(4, ComponentKind.LFE)
        return router

    addr_rng = np.random.default_rng(2**31 - 1)  # dra: noqa[DRA501] reason=addresses only (any host in the /16 works); pair statistics are independent of this stream, so provenance from the run seed is not required

    def probe(src: int, dst: int, created_at: float) -> Packet:
        return Packet(
            src_lc=src,
            dst_lc=dst,
            dst_addr=_draw_dst_addr(dst, addr_rng),
            size_bytes=500,
            protocol=Protocol.ETHERNET,
            created_at=created_at,
        )

    oracle = build()
    n_lc = oracle.config.n_linecards
    feasible = 0
    total_pairs = 0
    for src in range(n_lc):
        for dst in range(n_lc):
            if src == dst:
                continue
            total_pairs += 1
            if oracle.planner.plan(probe(src, dst, 0.0)).drop is None:
                feasible += 1
    frac_a = feasible / total_pairs

    router = build()
    spacing = 2e-6
    pairs = [(s, d) for s in range(n_lc) for d in range(n_lc) if s != d]
    draws = rng.integers(0, len(pairs), size=n)
    for k, idx in enumerate(draws):
        src, dst = pairs[int(idx)]
        t = (k + 1) * spacing

        def send(src=src, dst=dst, t=t) -> None:
            router.inject(probe(src, dst, t))

        router.engine.schedule(t, send, label="validate:coverage:inject")
    router.run(until=(n + 1) * spacing + 20e-3)  # generous drain
    delivered = router.stats.delivered
    ci = wilson_interval(delivered, n, z=z)
    return pair_result(
        "coverage.feasibility",
        method="wilson",
        analytic=frac_a,
        empirical=delivered / n,
        ci_lo=ci.lo,
        ci_hi=ci.hi,
        n=n,
        passed=ci.contains(frac_a),
        detail={
            "feasible_pairs": feasible,
            "total_pairs": total_pairs,
            "delivered": delivered,
            "drops": dict(router.stats.drops),
        },
    )


def _pair_coverage_policy_dominance(
    n: int, rng: np.random.Generator, perturb: Mapping[str, float], z: float
) -> dict[str, Any]:
    """Planner v2 pin: the adaptive policy must dominate the static one.

    Two identically-seeded routers replay the same multi-fault schedule
    under each coverage policy: PDLU faults at LC0/LC1 force two ingress
    coverage streams (static slot-rank piles both onto LC2), then an SRU
    fault at LC2 mid-window kills the covering card.  The static policy
    keeps its streams pointed at the dead LC (packets drop mid-flight
    until repair); the adaptive policy replans onto healthy candidates
    within its backoff window.  ``n`` identically-drawn probe packets
    are offered to both; adaptive delivered count must be at least the
    static count minus a small in-flight quantisation slack.
    """
    from repro.router import ComponentKind, Router, RouterConfig, RouterMode
    from repro.router.packets import Packet, Protocol
    from repro.traffic.generators import _draw_dst_addr

    del perturb  # no analytic side: the static policy is the baseline

    spacing = 2e-6
    fault_t = (n // 2) * spacing
    # One shared draw sequence so both routers see byte-identical traffic.
    dsts = [int(d) for d in rng.integers(3, 6, size=n)]
    addr_rng = np.random.default_rng(2**31 - 1)  # dra: noqa[DRA501] reason=shared fixed stream is the point: both policy runs must see byte-identical addresses, independent of either router's seed
    addrs = [_draw_dst_addr(d, addr_rng) for d in dsts]

    def run_policy(policy: str) -> int:
        router = Router(
            RouterConfig(
                n_linecards=6,
                mode=RouterMode.DRA,
                seed=23,
                coverage_policy=policy,
            )
        )
        router.inject_fault(0, ComponentKind.PDLU)
        router.inject_fault(1, ComponentKind.PDLU)
        router.engine.schedule(
            fault_t,
            lambda: router.inject_fault(2, ComponentKind.SRU),
            label="validate:dominance:fault",
        )
        for k in range(n):
            t = (k + 1) * spacing
            pkt = Packet(
                src_lc=k % 2,
                dst_lc=dsts[k],
                dst_addr=addrs[k],
                size_bytes=500,
                protocol=Protocol.ETHERNET,
                created_at=t,
            )
            router.engine.schedule(
                t, lambda p=pkt: router.inject(p), label="validate:dominance:inject"
            )
        router.run(until=(n + 1) * spacing + 20e-3)
        return router.stats.delivered

    delivered_static = run_policy("static")
    delivered_adaptive = run_policy("adaptive")
    frac_s = delivered_static / n
    frac_e = delivered_adaptive / n
    # In-flight quantisation: packets straddling the fault instant can
    # die on either side of the replan race regardless of policy.
    slack = 3
    ci = wilson_interval(delivered_adaptive, n, z=z)
    return pair_result(
        "coverage.policy_dominance",
        method="dominance",
        analytic=frac_s,
        empirical=frac_e,
        ci_lo=ci.lo,
        ci_hi=ci.hi,
        n=n,
        passed=delivered_adaptive >= delivered_static - slack,
        detail={
            "delivered_static": delivered_static,
            "delivered_adaptive": delivered_adaptive,
            "slack_packets": slack,
            "fault_t_s": fault_t,
        },
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PairSpec:
    """One registered oracle/estimator pair.

    ``samples`` maps each suite tier to the empirical budget ``n``; a
    pair runs in its smallest listed tier and every larger one (tiers
    nest).  ``stochastic`` gates the engine's 4x escalation -- a
    deterministic TOST pair re-run at 4x samples would just repeat
    itself.
    """

    name: str
    func: Callable[[int, np.random.Generator, Mapping[str, float], float], dict]
    samples: Mapping[str, int]
    stochastic: bool = True

    def budget(self, suite: str) -> int | None:
        """Sample budget for ``suite``, inheriting from smaller tiers."""
        chosen: int | None = None
        for tier in SUITES:
            if tier in self.samples:
                chosen = self.samples[tier]
            if tier == suite:
                return chosen
        raise ValueError(f"unknown suite {suite!r}")


PAIRS: dict[str, PairSpec] = {
    spec.name: spec
    for spec in (
        PairSpec(
            "mttf.lc",
            _pair_mttf_lc,
            {"tiny": 2_000, "smoke": 20_000, "full": 60_000},
        ),
        PairSpec(
            "unreliability.transient",
            _pair_unreliability_transient,
            {"smoke": 40_000, "full": 120_000},
        ),
        PairSpec(
            "availability.steady",
            _pair_availability_steady,
            {"smoke": 3_000, "full": 10_000},
        ),
        PairSpec(
            "availability.trajectory",
            _pair_availability_trajectory,
            {"full": 250},
        ),
        PairSpec(
            "bandwidth.share",
            _pair_bandwidth_share,
            {"tiny": 0, "smoke": 0, "full": 0},
            stochastic=False,
        ),
        PairSpec(
            "coverage.feasibility",
            _pair_coverage_feasibility,
            {"smoke": 400, "full": 1_200},
        ),
        PairSpec(
            "coverage.policy_dominance",
            _pair_coverage_policy_dominance,
            {"smoke": 400, "full": 1_200},
        ),
    )
}


def suite_pairs(suite: str) -> list[PairSpec]:
    """Specs participating in ``suite``, in sorted-name (deterministic)
    order -- the order the engine seeds and reports them in."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r} (choose from {SUITES})")
    return [
        spec
        for name, spec in sorted(PAIRS.items())
        if spec.budget(suite) is not None
    ]


def evaluate_pair(
    name: str,
    suite: str,
    rng: np.random.Generator,
    *,
    scale: int = 1,
    perturb: Mapping[str, float] | None = None,
    z: float = DEFAULT_Z,
) -> dict[str, Any]:
    """Run one registered pair at ``scale`` times its suite budget."""
    spec = PAIRS[name]
    budget = spec.budget(suite)
    if budget is None:
        raise ValueError(f"pair {name!r} is not part of suite {suite!r}")
    return spec.func(max(budget, 1) * scale if budget else 0, rng, perturb or {}, z)

"""Suite runner of the differential validation harness.

Executes a suite of registered oracle/estimator pairs (see
:mod:`repro.validate.pairs`) with three hard guarantees:

* **determinism across job counts** -- every pair receives a
  ``SeedSequence`` spawned from the suite seed in sorted-pair-name
  order *before* any work is dispatched, results return in submission
  order from :func:`repro.runtime.executor.metered_parallel_map`, and
  the report carries no wall-clock fields, so the JSON is bit-identical
  for any ``--jobs`` value;
* **structural flake resistance** -- a stochastic pair that misses its
  confidence interval is re-run once at 4x the sample budget on its own
  pre-spawned escalation stream before the suite declares failure.
  With the default ``z = 4`` a single check false-fails with
  probability ~6e-5; requiring two independent misses squares that;
* **observability** -- workers count evaluations/failures/escalations
  into the active metrics registry (merged exactly in submission
  order), and the driver emits ``validate.pair`` / ``validate.suite``
  trace events.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.runtime.executor import metered_parallel_map
from repro.validate.pairs import PAIRS, evaluate_pair, suite_pairs
from repro.validate.stats import DEFAULT_Z

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "run_suite",
    "render_report",
    "report_to_json",
    "ESCALATION_FACTOR",
]

#: Schema identity of the BENCH_validate.json report.
REPORT_SCHEMA = "repro-validate"
REPORT_SCHEMA_VERSION = 1

#: Sample multiplier for the one escalation re-run of a failing
#: stochastic pair.
ESCALATION_FACTOR = 4


def _evaluate_payload(
    payload: tuple[str, str, np.random.SeedSequence, dict[str, float], float],
) -> dict[str, Any]:
    """Worker entry point: one pair, escalation included.

    Module-level (picklable); everything it needs rides in the payload
    and the process-global registry/tracer hooks.  The base and
    escalation RNG streams are spawned from the pair's own
    ``SeedSequence``, so the escalation draw is fixed the moment the
    suite is seeded -- running it (or not) cannot shift any other pair.
    """
    name, suite, seq, perturb, z = payload
    base_seq, escalation_seq = seq.spawn(2)
    spec = PAIRS[name]
    result = evaluate_pair(
        name, suite, np.random.default_rng(base_seq), perturb=perturb, z=z
    )
    result["escalated"] = False
    if not result["passed"] and spec.stochastic:
        result = evaluate_pair(
            name,
            suite,
            np.random.default_rng(escalation_seq),
            scale=ESCALATION_FACTOR,
            perturb=perturb,
            z=z,
        )
        result["escalated"] = True
        if _metrics.REGISTRY is not None:
            _metrics.REGISTRY.counter("validate.escalations").inc()
    if _metrics.REGISTRY is not None:
        reg = _metrics.REGISTRY
        reg.counter("validate.pairs.evaluated").inc()
        if not result["passed"]:
            reg.counter("validate.pairs.failed").inc()
    return result


def run_suite(
    suite: str,
    *,
    seed: int = 0,
    jobs: int = 1,
    perturb: Mapping[str, float] | None = None,
    z: float = DEFAULT_Z,
) -> dict[str, Any]:
    """Run every pair of ``suite`` and return the schema-versioned report.

    The report dict is fully JSON-serializable and deterministic in
    ``(suite, seed, perturb, z)`` -- ``jobs`` only changes how the work
    is scheduled, never a byte of the output.
    """
    specs = suite_pairs(suite)
    perturb = dict(perturb or {})
    root = np.random.SeedSequence(seed)
    payloads = [
        (spec.name, suite, child, perturb, z)
        for spec, child in zip(specs, root.spawn(len(specs)))
    ]
    results = metered_parallel_map(
        _evaluate_payload, payloads, jobs=jobs, chunksize=1
    )
    if _trace.TRACER is not None:
        for result in results:
            _trace.TRACER.emit(
                "validate.pair",
                pair=result["pair"],
                method=result["method"],
                passed=result["passed"],
                escalated=result["escalated"],
                analytic=result["analytic"],
                empirical=result["empirical"],
            )
    failed = [r["pair"] for r in results if not r["passed"]]
    report = {
        "schema": REPORT_SCHEMA,
        "v": REPORT_SCHEMA_VERSION,
        "suite": suite,
        "seed": seed,
        "z": z,
        "perturb": perturb,
        "pairs": results,
        "n_pairs": len(results),
        "n_failed": len(failed),
        "failed": failed,
        "passed": not failed,
    }
    if _trace.TRACER is not None:
        _trace.TRACER.emit(
            "validate.suite",
            suite=suite,
            seed=seed,
            n_pairs=len(results),
            n_failed=len(failed),
            passed=not failed,
        )
    return report


def report_to_json(report: dict[str, Any]) -> str:
    """Canonical serialized form (sorted keys, stable separators).

    This exact string is what the determinism contract promises to be
    bit-identical across ``--jobs`` values; tests compare it byte for
    byte.
    """
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_report(report: dict[str, Any]) -> str:
    """Fixed-width human-readable digest of a suite report."""
    lines = [
        f"validation suite {report['suite']!r} "
        f"(seed {report['seed']}, z={report['z']:g})",
        f"{'pair':<26} {'method':<8} {'analytic':>13} {'empirical':>13} "
        f"{'CI':>29} {'verdict':>9}",
    ]
    for r in report["pairs"]:
        ci = f"[{r['ci_lo']:.6g}, {r['ci_hi']:.6g}]"
        verdict = "PASS" if r["passed"] else "FAIL"
        if r["escalated"]:
            verdict += "*"
        lines.append(
            f"{r['pair']:<26} {r['method']:<8} {r['analytic']:>13.6g} "
            f"{r['empirical']:>13.6g} {ci:>29} {verdict:>9}"
        )
    if any(r["escalated"] for r in report["pairs"]):
        lines.append("  (* judged after 4x sample-size escalation)")
    lines.append(
        f"{report['n_pairs'] - report['n_failed']}/{report['n_pairs']} pairs agree"
        + ("" if report["passed"] else f"; FAILED: {', '.join(report['failed'])}")
    )
    return "\n".join(lines)

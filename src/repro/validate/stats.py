"""Statistical machinery of the differential validation harness.

Everything the equivalence engine needs to turn "analytic value vs
Monte Carlo estimate" into a principled PASS/FAIL reduces to three
ingredients, all implemented here with no dependency on the rest of the
package (so even :mod:`repro.montecarlo` may import this module):

* **confidence intervals** from sufficient statistics -- Wilson score
  intervals for binomial proportions (correct coverage even at the
  p -> 0 rare-event edge the availability checks live at) and normal
  intervals for sample means;
* **equivalence predicates** -- interval containment for stochastic
  estimators and TOST-style bounded equivalence for deterministic
  discrete-event measurements whose only error is quantisation
  (a packet boundary, an event at the window edge);
* **numerically principled test tolerances** -- helpers that derive
  float comparison budgets from machine epsilon, problem size and the
  solvers' *advertised* error bounds instead of hand-picked
  ``abs(a - b) < 1e-9`` constants.  The test suite imports these
  (``from repro.validate import ...``) wherever it used to carry magic
  epsilons.

The default ``z = 4`` puts a single check's false-failure probability at
``~6e-5``; the engine's 4x sample-size escalation squares that, which is
what makes suite flakes structurally impossible (``docs/validation.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_Z",
    "FLOAT_EPS",
    "ConfidenceInterval",
    "wilson_interval",
    "mean_interval",
    "sample_mean_interval",
    "tost_interval",
    "distribution_atol",
    "assert_probability_vector",
    "assert_distribution_rows",
    "assert_stationary_residual",
    "assert_solvers_agree",
    "assert_mc_mean_consistent",
    "assert_mc_fraction_consistent",
]

#: Machine epsilon of the float64 arithmetic every solver runs in.
FLOAT_EPS = float(np.finfo(np.float64).eps)

#: Default confidence half-width in standard errors.  Two-sided normal
#: tail mass beyond 4 sigma is ~6.3e-5; combined with the engine's 4x
#: escalation re-run a structurally sound suite fails by chance with
#: probability on the order of 4e-9 per pair.
DEFAULT_Z = 4.0


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval with its construction recorded."""

    lo: float
    hi: float
    #: half-width parameter used to build the interval (z for the
    #: stochastic methods, the absolute bound itself for ``tost``).
    z: float
    #: ``wilson`` | ``normal`` | ``tost``
    method: str

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval (inclusive)."""
        return self.lo <= value <= self.hi

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True when the two intervals intersect."""
        return self.lo <= other.hi and other.lo <= self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo


def wilson_interval(
    successes: int, n: int, *, z: float = DEFAULT_Z
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Unlike the Wald interval ``p +/- z sqrt(p(1-p)/n)`` it never
    collapses to a point at ``p_hat in {0, 1}`` and keeps honest coverage
    for rare events, which is exactly the regime the dependability
    estimates (unreliability ~1e-2, unavailability ~1e-8) occupy.
    """
    if n <= 0:
        raise ValueError(f"need a positive sample size, got {n}")
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    if z <= 0.0:
        raise ValueError(f"z must be positive, got {z}")
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    return ConfidenceInterval(
        lo=max(0.0, centre - half), hi=min(1.0, centre + half), z=z, method="wilson"
    )


def mean_interval(
    mean: float, std_error: float, *, z: float = DEFAULT_Z
) -> ConfidenceInterval:
    """Normal interval ``mean +/- z * std_error`` for a sample mean."""
    if std_error < 0.0:
        raise ValueError(f"negative standard error {std_error}")
    if z <= 0.0:
        raise ValueError(f"z must be positive, got {z}")
    return ConfidenceInterval(
        lo=mean - z * std_error, hi=mean + z * std_error, z=z, method="normal"
    )


def sample_mean_interval(
    total: float, total_sq: float, n: int, *, z: float = DEFAULT_Z
) -> ConfidenceInterval:
    """Normal interval for a mean given the sufficient statistics.

    ``total`` and ``total_sq`` are the sum and the sum of squares of the
    ``n`` samples -- the same mergeable form the parallel Monte Carlo
    drivers reduce, so chunked estimates can be judged without keeping
    the samples.
    """
    if n < 2:
        raise ValueError(f"need at least 2 samples for a variance, got {n}")
    mean = total / n
    var = max(0.0, (total_sq - n * mean * mean) / (n - 1))
    return mean_interval(mean, math.sqrt(var / n), z=z)


def tost_interval(measured: float, bound: float) -> ConfidenceInterval:
    """Bounded-equivalence interval for a deterministic measurement.

    A discrete-event measurement of a fluid quantity carries no sampling
    noise, only quantisation: the true fluid value can differ from the
    measurement by at most ``bound`` (e.g. a few packet times over the
    observation window).  The TOST-style judgment "the analytic value
    lies within ``measured +/- bound``" is then exact, not asymptotic.
    """
    if bound < 0.0:
        raise ValueError(f"negative equivalence bound {bound}")
    return ConfidenceInterval(
        lo=measured - bound, hi=measured + bound, z=bound, method="tost"
    )


# ----------------------------------------------------------------------
# numerically principled tolerances for the deterministic solver tests
# ----------------------------------------------------------------------


def distribution_atol(n_states: int, *, slack: float = 64.0) -> float:
    """Absolute tolerance for probability-vector identities.

    Summing ``n`` rounded probabilities accumulates at most ``n`` half-ulp
    errors; ``slack`` covers the solver's own final rounding steps.
    """
    return slack * FLOAT_EPS * max(int(n_states), 1)


def assert_probability_vector(vector, *, label: str = "distribution") -> None:
    """Assert ``vector`` is a probability distribution to float accuracy."""
    v = np.asarray(vector, dtype=np.float64)
    atol = distribution_atol(v.size)
    if v.size and (v.min() < -atol or v.max() > 1.0 + atol):
        raise AssertionError(
            f"{label}: entries outside [0, 1] beyond {atol:.3e} "
            f"(min {v.min():.3e}, max {v.max():.3e})"
        )
    total = float(v.sum())
    if abs(total - 1.0) > atol:
        raise AssertionError(f"{label}: sums to {total!r}, off by {total - 1.0:.3e} > {atol:.3e}")


def assert_distribution_rows(matrix, *, label: str = "distribution rows") -> None:
    """Assert every row of ``matrix`` is a probability distribution."""
    m = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    for i, row in enumerate(m):
        assert_probability_vector(row, label=f"{label}[{i}]")


def assert_stationary_residual(pi, chain, *, label: str = "stationary") -> None:
    """Assert ``pi Q = 0`` within the solve's conditioning budget.

    The attainable residual of a stationary linear solve scales with
    machine epsilon, the generator's magnitude and its rate spread
    (repair rates ~1e-1/h against failure rates ~1e-6/h give the
    dependability chains condition-like ratios of ~1e5), so the budget is
    derived from the chain instead of hard-coded.
    """
    pi = np.asarray(pi, dtype=np.float64)
    Q = chain.generator
    residual = np.asarray(pi @ Q).ravel()
    rates = Q.tocoo().data
    nonzero = np.abs(rates[rates != 0.0])
    if nonzero.size == 0:
        return
    q_max = float(nonzero.max())
    spread = q_max / float(nonzero.min())
    budget = 64.0 * FLOAT_EPS * q_max * max(1.0, spread)
    worst = float(np.abs(residual).max())
    if worst > budget:
        raise AssertionError(
            f"{label}: |pi Q| reaches {worst:.3e}, above the conditioning "
            f"budget {budget:.3e} (q_max {q_max:.3e}, spread {spread:.1e})"
        )


def assert_solvers_agree(a, b, *, budget: float, label: str = "solvers") -> None:
    """Assert two solver outputs agree within their *advertised* bounds.

    ``budget`` is the sum of the error guarantees the two computations
    advertise (e.g. the uniformization truncation tolerance plus a
    Krylov solver's convergence tolerance) -- the caller states where the
    number comes from instead of inventing an epsilon.
    """
    if budget <= 0.0:
        raise ValueError(f"budget must be positive, got {budget}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = float(np.abs(a - b).max()) if a.size else 0.0
    if diff > budget:
        raise AssertionError(
            f"{label}: max disagreement {diff:.3e} exceeds the advertised "
            f"error budget {budget:.3e}"
        )


def assert_mc_mean_consistent(
    estimate: float,
    std_error: float,
    exact: float,
    *,
    z: float = DEFAULT_Z,
    label: str = "MC mean",
) -> None:
    """Assert an MC mean's normal CI covers the exact value."""
    ci = mean_interval(estimate, std_error, z=z)
    if not ci.contains(exact):
        raise AssertionError(
            f"{label}: exact {exact:.6e} outside {ci.method} CI "
            f"[{ci.lo:.6e}, {ci.hi:.6e}] (estimate {estimate:.6e}, z={z})"
        )


def assert_mc_fraction_consistent(
    successes: int,
    n: int,
    exact: float,
    *,
    z: float = DEFAULT_Z,
    label: str = "MC fraction",
) -> None:
    """Assert a binomial estimate's Wilson CI covers the exact value."""
    ci = wilson_interval(successes, n, z=z)
    if not ci.contains(exact):
        raise AssertionError(
            f"{label}: exact {exact:.6e} outside Wilson CI "
            f"[{ci.lo:.6e}, {ci.hi:.6e}] ({successes}/{n}, z={z})"
        )

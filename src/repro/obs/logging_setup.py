"""Standard-library logging configuration for the repro tools.

The examples (and any script embedding the library) route their
diagnostics through ``logging`` rather than ad-hoc ``print`` calls, so
verbosity is controlled in one place (``REPRO_LOG_LEVEL`` or the
``level`` argument) and output can be redirected or silenced like any
other logging stream.  The default format is bare messages on stdout --
example output looks exactly like it did under ``print`` -- while
``verbose`` runs gain level/name prefixes for debugging.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["setup_logging", "example_logger"]

#: Root logger namespace for everything in this package.
ROOT_LOGGER_NAME = "repro"


def setup_logging(
    level: int | str | None = None,
    *,
    stream=None,
    verbose: bool = False,
    force: bool = False,
) -> logging.Logger:
    """Configure and return the ``repro`` root logger.

    Parameters
    ----------
    level:
        Logging level (name or number).  Defaults to ``$REPRO_LOG_LEVEL``
        or ``INFO``.
    stream:
        Destination stream; defaults to ``sys.stdout`` (examples print
        results, they do not report errors).
    verbose:
        Prefix records with ``[level] logger:`` instead of bare messages.
    force:
        Replace handlers installed by an earlier call instead of keeping
        the first configuration (useful in tests).
    """
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "INFO")
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    if logger.handlers and not force:
        logger.setLevel(level)
        return logger
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    fmt = "[%(levelname)s] %(name)s: %(message)s" if verbose else "%(message)s"
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def example_logger(name: str) -> logging.Logger:
    """Logger for an example script, with default configuration applied.

    ``name`` is usually the script's ``__name__``; the returned logger
    lives under the ``repro.examples`` namespace so one configuration
    call governs every example.
    """
    setup_logging()
    short = name.rsplit("/", 1)[-1].removesuffix(".py")
    if short in ("__main__", ""):
        short = "script"
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.examples.{short}")

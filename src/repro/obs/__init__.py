"""Observability: structured tracing, a metrics registry, logging setup.

Three cooperating layers, all **zero-overhead when disabled**:

* :mod:`~repro.obs.trace` -- a process-global :class:`Tracer` recording
  typed, timestamped :class:`TraceEvent` records (JSONL export) from
  hooks in the simulation engine, the EIB bus channels, the coverage
  planner/fault map, the protocol engine, and the Markov solvers;
* :mod:`~repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges and histograms whose snapshots merge exactly across
  process-pool workers (the same sufficient-statistics discipline as
  ``CycleStatistics``), keeping ``--jobs N`` metric output deterministic
  in content;
* :mod:`~repro.obs.logging_setup` -- one-call stdlib ``logging``
  configuration used by the examples instead of ad-hoc ``print``;
* :mod:`~repro.obs.schema` -- the central registry of every trace-event
  kind and metric name, consumed by the ``trace --strict`` CLI guard,
  the ``repro.lint`` DRA2xx rules and the docs catalogue.

On top of those sit the causal-analysis layers: :mod:`~repro.obs.spans`
folds a trace into per-fault :class:`IncidentSpan` timelines (the
``incidents`` subcommand's engine), :mod:`~repro.obs.health` derives
per-LC health scorecards from the spans, and :mod:`~repro.obs.export`
renders a metrics registry in Prometheus text format (``--metrics-out``).

Enable tracing from the CLI with ``--trace PATH`` on any subcommand and
inspect the result with ``python -m repro trace PATH``; see
``docs/observability.md`` for the event catalogue and the overhead
measurement procedure.
"""

from repro.obs.logging_setup import example_logger, setup_logging
from repro.obs.schema import (
    METRIC_FAMILIES,
    METRIC_NAMES,
    TRACE_EVENT_KINDS,
    is_metric_name,
    is_trace_kind,
    metric_family,
    unknown_trace_kinds,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    collecting,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    Tracer,
    get_tracer,
    iter_trace,
    read_trace,
    set_tracer,
    tracing,
)
from repro.obs.spans import (
    INCIDENTS_SCHEMA_VERSION,
    PHASES,
    IncidentSpan,
    SpanBuilder,
    build_incident_report,
)
from repro.obs.health import build_scorecards
from repro.obs.export import render_prometheus, write_prometheus

__all__ = [
    "TRACE_EVENT_KINDS",
    "METRIC_NAMES",
    "METRIC_FAMILIES",
    "is_trace_kind",
    "is_metric_name",
    "metric_family",
    "unknown_trace_kinds",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "iter_trace",
    "read_trace",
    "INCIDENTS_SCHEMA_VERSION",
    "PHASES",
    "IncidentSpan",
    "SpanBuilder",
    "build_incident_report",
    "build_scorecards",
    "render_prometheus",
    "write_prometheus",
    "METRICS_SCHEMA_VERSION",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "collecting",
    "get_registry",
    "set_registry",
    "setup_logging",
    "example_logger",
]

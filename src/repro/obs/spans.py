"""Causal incident analysis: fold a trace into per-fault incident spans.

Every hardware fault the router injects mints a correlation id
(``fault_id``) that rides through the whole dependability machinery:
the injection event, the self-test that detects it locally, the
FLT_N/FLT_C/HB packets that spread and clear the belief, the coverage
plans and streams that route around it, and the repair that retires it.
:class:`SpanBuilder` folds a schema-v1 JSONL trace (streamed, one event
at a time) into one :class:`IncidentSpan` per fault activation, each
carrying the causal phase timeline

    injected -> first_local_detect -> first_remote_view
             -> plan_issued -> coverage_active -> repaired
             -> views_converged

and the derived recovery latencies the paper's dependability models
parameterize analytically (detection latency, notification fan-out,
time-to-coverage, MTTR).  The timeline is a *partial* order: a repair
can race the FLT_N broadcast, an undetected fault (coverage draw below
``c``) has only ``injected``/``repaired``, and a fault that outlives the
trace stays open.

:func:`build_incident_report` renders a span set as the schema-versioned
``repro-incidents v1`` report consumed by the ``incidents`` CLI
subcommand and attached to violating chaos schedules -- a pure function
of the trace contents, so the report is byte-identical whatever
``--jobs`` fan-out produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs import metrics as _metrics
from repro.obs.trace import TraceEvent

__all__ = [
    "INCIDENTS_SCHEMA_VERSION",
    "PHASES",
    "IncidentSpan",
    "SpanBuilder",
    "build_incident_report",
]

#: Version stamp of the ``repro-incidents`` report format.
INCIDENTS_SCHEMA_VERSION = 1

#: Causal phase names, in nominal lifecycle order.
PHASES: tuple[str, ...] = (
    "injected",
    "first_local_detect",
    "first_remote_view",
    "plan_issued",
    "coverage_active",
    "repaired",
    "views_converged",
)


@dataclass
class IncidentSpan:
    """The causal timeline of one fault activation.

    Phase fields hold simulation timestamps; ``None`` means the phase
    never happened within the trace (an uncovered fault is never
    detected, a fault that needed no detour never gets a stream, an
    unrepaired fault stays open).
    """

    fault_id: int
    lc: int | None  # None = EIB passive-line fault
    component: str
    mode: str
    injected: float
    first_local_detect: float | None = None
    first_remote_view: float | None = None
    plan_issued: float | None = None
    coverage_active: float | None = None
    repaired: float | None = None
    views_converged: float | None = None
    #: LCs whose views learned this fault, sorted.
    learners: list[int] = field(default_factory=list)
    #: LCs whose views cleared this fault, sorted.
    clearers: list[int] = field(default_factory=list)

    # -- derived recovery latencies ----------------------------------------

    @property
    def detection_latency_s(self) -> float | None:
        """Injection to first local self-test detection."""
        if self.first_local_detect is None:
            return None
        return self.first_local_detect - self.injected

    @property
    def notification_fanout_s(self) -> float | None:
        """First local detection to first remote view update."""
        if self.first_local_detect is None or self.first_remote_view is None:
            return None
        return self.first_remote_view - self.first_local_detect

    @property
    def time_to_coverage_s(self) -> float | None:
        """Injection to the first coverage stream established for it."""
        if self.coverage_active is None:
            return None
        return self.coverage_active - self.injected

    @property
    def mttr_s(self) -> float | None:
        """Injection to repair (None while the fault is open)."""
        if self.repaired is None:
            return None
        return self.repaired - self.injected

    @property
    def detected(self) -> bool:
        """Whether any self-test ever saw this fault."""
        return self.first_local_detect is not None

    @property
    def open(self) -> bool:
        """Whether the fault outlived the trace unrepaired."""
        return self.repaired is None

    def phase_times(self) -> dict[str, float | None]:
        """Phase name -> timestamp, in :data:`PHASES` order."""
        return {p: getattr(self, p) for p in PHASES}

    def to_dict(self) -> dict[str, Any]:
        """JSON-able canonical form (deterministic key and list order)."""
        return {
            "fault_id": self.fault_id,
            "lc": self.lc,
            "component": self.component,
            "mode": self.mode,
            "phases": self.phase_times(),
            "latencies": {
                "detection_latency_s": self.detection_latency_s,
                "notification_fanout_s": self.notification_fanout_s,
                "time_to_coverage_s": self.time_to_coverage_s,
                "mttr_s": self.mttr_s,
            },
            "learners": sorted(self.learners),
            "clearers": sorted(self.clearers),
            "detected": self.detected,
            "open": self.open,
        }


class SpanBuilder:
    """Folds schema-v1 trace events into incident spans.

    Feed events in trace order (``seq``-ascending, as written); call
    :meth:`spans` at the end.  Events without a ``fault_id`` payload --
    or with one that never appeared in a ``fault.injected`` event, e.g.
    a trace windowed after the injection -- are ignored, so the builder
    can consume a full campaign trace unfiltered.
    """

    def __init__(self) -> None:
        self._spans: dict[int, IncidentSpan] = {}
        #: per-span first learn time per observer LC
        self._learned: dict[int, dict[int, float]] = {}
        #: per-span last clear time per observer LC
        self._cleared: dict[int, dict[int, float]] = {}

    # -- folding -----------------------------------------------------------

    def feed(self, ev: TraceEvent) -> None:
        """Fold one trace event into the span set."""
        kind = ev.kind
        if kind == "fault.injected":
            fid = ev.data.get("fault_id")
            if isinstance(fid, int) and fid not in self._spans:
                self._spans[fid] = IncidentSpan(
                    fault_id=fid,
                    lc=ev.data.get("lc"),
                    component=str(ev.data.get("component")),
                    mode=str(ev.data.get("mode", "crash")),
                    injected=ev.t if ev.t is not None else 0.0,
                )
            return
        span = self._span_of(ev)
        if span is None or ev.t is None:
            return
        if kind == "detect.local_detect":
            if span.first_local_detect is None:
                span.first_local_detect = ev.t
        elif kind == "detect.remote_learn":
            observer = ev.data.get("observer")
            if span.first_remote_view is None:
                span.first_remote_view = ev.t
            if isinstance(observer, int):
                self._learned.setdefault(span.fault_id, {}).setdefault(observer, ev.t)
        elif kind == "detect.remote_clear":
            observer = ev.data.get("observer")
            if isinstance(observer, int):
                self._cleared.setdefault(span.fault_id, {})[observer] = ev.t
        elif kind == "coverage.plan":
            for fid in ev.data.get("fault_ids") or ():
                plan_span = self._spans.get(fid)
                if plan_span is not None and plan_span.plan_issued is None:
                    plan_span.plan_issued = ev.t
        elif kind == "protocol.stream_active":
            if span.coverage_active is None:
                span.coverage_active = ev.t
        elif kind == "fault.repaired":
            if span.repaired is None:
                span.repaired = ev.t

    def feed_all(self, events: Iterable[TraceEvent]) -> "SpanBuilder":
        """Fold an event stream; returns self for chaining."""
        for ev in events:
            self.feed(ev)
        return self

    def _span_of(self, ev: TraceEvent) -> IncidentSpan | None:
        fid = ev.data.get("fault_id")
        if not isinstance(fid, int):
            return None
        return self._spans.get(fid)

    # -- results -----------------------------------------------------------

    def spans(self) -> list[IncidentSpan]:
        """Finalized spans, sorted by ``fault_id`` (= injection order).

        ``views_converged`` is resolved here: the last belief-clear among
        the LCs that had learned the fault, once every learner has
        cleared and the fault is repaired.  A repaired fault nobody ever
        learned remotely converges at its repair time (the views never
        diverged); an open fault, or one with a still-stale learner,
        has ``views_converged = None``.
        """
        for fid, span in self._spans.items():
            learned = self._learned.get(fid, {})
            cleared = self._cleared.get(fid, {})
            span.learners = sorted(learned)
            span.clearers = sorted(cleared)
            if span.repaired is None:
                span.views_converged = None
            elif not learned:
                span.views_converged = span.repaired
            elif set(learned) <= set(cleared):
                span.views_converged = max(
                    [span.repaired] + [cleared[obs] for obs in learned]
                )
            else:
                span.views_converged = None
        return [self._spans[fid] for fid in sorted(self._spans)]


def _distribution(values: list[float]) -> dict[str, Any]:
    """Deterministic summary of one latency population."""
    if not values:
        return {"count": 0, "mean": None, "min": None, "max": None,
                "p50": None, "p95": None, "p99": None}
    ordered = sorted(values)

    def pct(q: float) -> float:
        # linear interpolation between closest ranks (numpy default)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)

    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": pct(0.50),
        "p95": pct(0.95),
        "p99": pct(0.99),
    }


#: The latency populations summarized in a report (field -> span property).
_LATENCY_FIELDS: tuple[str, ...] = (
    "detection_latency_s",
    "notification_fanout_s",
    "time_to_coverage_s",
    "mttr_s",
)


def build_incident_report(
    spans: list[IncidentSpan], *, source: str | None = None
) -> dict[str, Any]:
    """Render spans as a ``repro-incidents v1`` report dictionary.

    A pure function of the span set (itself a pure function of the
    trace), so serializing with sorted keys yields byte-identical
    reports for any ``--jobs`` value.  When a metrics registry is
    active, the ``incident.*`` counters and latency histograms are
    observed as a side effect so the report generation shows up in
    ``--metrics-out`` exports.
    """
    totals_by_mode: dict[str, int] = {}
    totals_by_component: dict[str, int] = {}
    for span in spans:
        totals_by_mode[span.mode] = totals_by_mode.get(span.mode, 0) + 1
        totals_by_component[span.component] = (
            totals_by_component.get(span.component, 0) + 1
        )
    latencies = {
        name: _distribution(
            [v for s in spans if (v := getattr(s, name)) is not None]
        )
        for name in _LATENCY_FIELDS
    }
    n_open = sum(1 for s in spans if s.open)
    n_undetected = sum(1 for s in spans if not s.detected)
    reg = _metrics.REGISTRY
    if reg is not None:
        reg.counter("incident.spans").inc(len(spans))
        reg.counter("incident.open_spans").inc(n_open)
        reg.counter("incident.undetected_spans").inc(n_undetected)
        for span in spans:
            if span.detection_latency_s is not None:
                reg.histogram("incident.detection_latency_s").observe(
                    span.detection_latency_s
                )
            if span.notification_fanout_s is not None:
                reg.histogram("incident.notification_fanout_s").observe(
                    span.notification_fanout_s
                )
            if span.time_to_coverage_s is not None:
                reg.histogram("incident.time_to_coverage_s").observe(
                    span.time_to_coverage_s
                )
            if span.mttr_s is not None:
                reg.histogram("incident.mttr_s").observe(span.mttr_s)
    return {
        "schema": "repro-incidents",
        "version": INCIDENTS_SCHEMA_VERSION,
        "source": source,
        "totals": {
            "spans": len(spans),
            "open": n_open,
            "undetected": n_undetected,
            "by_mode": dict(sorted(totals_by_mode.items())),
            "by_component": dict(sorted(totals_by_component.items())),
        },
        "latencies": latencies,
        "spans": [s.to_dict() for s in spans],
    }

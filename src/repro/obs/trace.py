"""Structured event tracing: typed, timestamped, JSONL-exportable.

The tracer is the event-level counterpart of the counter-level
:mod:`repro.obs.metrics`: instrumented subsystems (the simulation
engine, the EIB control/data channels, the coverage planner, the Markov
solvers) emit :class:`TraceEvent` records through a process-global hook,
and the ``trace`` CLI subcommand summarizes or filters the resulting
file.  The design rule is **zero overhead when disabled**: every hook
site guards on ``TRACER is not None`` before building any event payload,
so an untraced run pays one attribute load and one identity comparison
per hook -- nothing else.

JSONL schema (one JSON object per line, schema-versioned)::

    {"v": 1, "seq": 0, "t": 1.25e-05, "kind": "bus.ctl.deliver",
     "data": {"packet": "REQ_D", "sender_lc": 0}}

* ``v`` -- trace schema version (:data:`TRACE_SCHEMA_VERSION`);
* ``seq`` -- monotonically increasing per-tracer sequence number;
* ``t`` -- simulation (or domain) timestamp in seconds, ``null`` when
  the emitting site has no clock;
* ``kind`` -- dotted event type (``sim.*``, ``bus.*``, ``coverage.*``,
  ``protocol.*``, ``solver.*``);
* ``data`` -- event-specific payload of JSON scalars.

See ``docs/observability.md`` for the catalogue of event kinds.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any, Iterator

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "iter_trace",
    "read_trace",
]

#: Version stamp written into every record; bump on breaking changes.
TRACE_SCHEMA_VERSION = 1

#: The process-global tracer hook.  Instrumented modules read this
#: attribute directly (``trace.TRACER is not None``) so enabling tracing
#: requires no re-wiring of already-constructed objects.
TRACER: "Tracer | None" = None


@dataclass(frozen=True)
class TraceEvent:
    """One typed, timestamped observation."""

    seq: int
    kind: str
    t: float | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Render the canonical single-line JSON form."""
        return json.dumps(
            {
                "v": TRACE_SCHEMA_VERSION,
                "seq": self.seq,
                "t": self.t,
                "kind": self.kind,
                "data": self.data,
            },
            separators=(",", ":"),
        )

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        """Parse one JSONL line, validating the schema."""
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line is not valid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise ValueError("trace line is not a JSON object")
        if obj.get("v") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema version {obj.get('v')!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        seq, kind = obj.get("seq"), obj.get("kind")
        t, data = obj.get("t"), obj.get("data", {})
        if not isinstance(seq, int):
            raise ValueError(f"trace 'seq' must be an int, got {seq!r}")
        if not isinstance(kind, str) or not kind:
            raise ValueError(f"trace 'kind' must be a non-empty string, got {kind!r}")
        if t is not None and not isinstance(t, (int, float)):
            raise ValueError(f"trace 't' must be a number or null, got {t!r}")
        if not isinstance(data, dict):
            raise ValueError(f"trace 'data' must be an object, got {data!r}")
        return TraceEvent(seq=seq, kind=kind, t=None if t is None else float(t), data=data)


class Tracer:
    """Collects trace events in memory and/or streams them to JSONL.

    Parameters
    ----------
    path:
        Destination JSONL file.  ``None`` keeps events only in
        :attr:`events` (handy for tests and in-process analysis); with a
        path, events are streamed line-by-line as they are emitted, so a
        crashed run still leaves a usable prefix.
    keep_events:
        Whether to also retain events in memory when writing to a file.
        Defaults to ``False`` for file tracers so long runs stay O(1).
    """

    def __init__(self, path: str | None = None, *, keep_events: bool | None = None) -> None:
        self.path = path
        self.events: list[TraceEvent] = []
        self._seq = 0
        self._fh: IO[str] | None = None
        self._keep = (path is None) if keep_events is None else keep_events
        if path is not None:
            self._fh = open(path, "w", encoding="utf-8")

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, t: float | None = None, **data: Any) -> TraceEvent:
        """Record one event; returns it (mainly for tests)."""
        ev = TraceEvent(seq=self._seq, kind=kind, t=t, data=data)
        self._seq += 1
        if self._keep:
            self.events.append(ev)
        if self._fh is not None:
            self._fh.write(ev.to_json() + "\n")
        return ev

    @property
    def emitted(self) -> int:
        """Total events emitted through this tracer."""
        return self._seq

    def close(self) -> None:
        """Flush and close the underlying file, if any."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- global hook management -------------------------------------------------


def get_tracer() -> Tracer | None:
    """The currently active tracer, or ``None`` when tracing is off."""
    return TRACER


def set_tracer(tracer: Tracer | None) -> None:
    """Install (or clear, with ``None``) the process-global tracer."""
    global TRACER
    TRACER = tracer


@contextmanager
def tracing(path_or_tracer: str | Tracer | None = None) -> Iterator[Tracer]:
    """Context manager activating a tracer for the enclosed block.

    Examples
    --------
    >>> from repro.obs import trace
    >>> with trace.tracing() as t:
    ...     _ = t.emit("demo.event", t=0.0, answer=42)
    >>> t.events[0].kind
    'demo.event'
    >>> trace.get_tracer() is None
    True
    """
    if isinstance(path_or_tracer, Tracer):
        tracer = path_or_tracer
        owns = False
    else:
        tracer = Tracer(path_or_tracer)
        owns = True
    previous = TRACER
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if owns:
            tracer.close()


def iter_trace(path: str) -> Iterator[TraceEvent]:
    """Stream and schema-validate a JSONL trace file, one event at a time.

    The streaming counterpart of :func:`read_trace`: memory stays O(1) in
    trace length, so the ``trace`` and ``incidents`` subcommands can chew
    through multi-gigabyte campaign traces.  Raises :class:`ValueError`
    naming the offending line number on any schema violation.
    """
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield TraceEvent.from_json(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc


def read_trace(path: str) -> list[TraceEvent]:
    """Load and schema-validate a JSONL trace file.

    Raises :class:`ValueError` naming the offending line number on any
    schema violation -- this is what lets ``python -m repro trace`` act
    as a CI schema guard.
    """
    return list(iter_trace(path))

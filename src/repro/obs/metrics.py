"""Counters, gauges and histograms with exact cross-worker reduction.

The registry follows the same reduction discipline as
:class:`repro.montecarlo.importance.CycleStatistics`: every metric is a
set of *sufficient statistics* that merge by field-wise addition (or, for
gauges, an order-insensitive ``min``/``max``/``last-by-sequence`` rule),
so per-chunk registries collected on process-pool workers reduce to the
same totals in whatever grouping the pool produced -- merging worker
snapshots in chunk-submission order makes ``--jobs N`` metric output
deterministic in content, mirroring the bit-identical guarantee of the
Monte Carlo drivers.

Like the tracer, the registry is activated through a process-global hook
with a ``None`` fast path, so unmetered runs pay one identity check per
instrumented site.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "collecting",
]

#: Version stamp of the snapshot dictionary format.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds (seconds-ish scale; callers pass
#: their own bounds for counts/iterations).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

#: The process-global registry hook (``None`` = metrics off).
REGISTRY: "MetricsRegistry | None" = None


@dataclass
class CounterMetric:
    """Monotonic count; merges by addition."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative)."""
        if amount < 0.0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "CounterMetric") -> None:
        self.value += other.value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class GaugeMetric:
    """Point-in-time value; tracks last/min/max across sets.

    ``last`` merges by the highest update sequence number, which is
    well-defined within one process; across workers the min/max envelope
    is the meaningful part and is exactly order-insensitive.
    """

    last: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")
    updates: int = 0

    def set(self, value: float) -> None:
        """Record a new observation of the gauge."""
        self.last = value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        self.updates += 1

    def merge(self, other: "GaugeMetric") -> None:
        if other.updates:
            self.last = other.last  # merge order = chunk order, so "last" is last
            self.min_value = min(self.min_value, other.min_value)
            self.max_value = max(self.max_value, other.max_value)
            self.updates += other.updates

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "last": self.last,
            "min": self.min_value,
            "max": self.max_value,
            "updates": self.updates,
        }


@dataclass
class HistogramMetric:
    """Fixed-bound bucketed distribution; merges by bucket-wise addition."""

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    min_value: float = float("inf")
    max_value: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            # one bucket per bound plus the +inf overflow bucket
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    @property
    def mean(self) -> float:
        """Mean of observed samples (0.0 before any sample)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile from the bucket counts.

        Deterministic linear interpolation inside the covering bucket,
        with the observed ``min``/``max`` closing the open-ended first
        and overflow buckets -- exact at the extremes, bucket-resolution
        accurate in between.  ``None`` before any sample.  Derived from
        the same sufficient statistics that merge exactly, so the
        estimate is identical whatever ``--jobs`` grouping produced the
        histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            below = cum
            cum += c
            if cum >= target:
                lo = self.min_value if i == 0 else max(self.bounds[i - 1], self.min_value)
                hi = (
                    self.max_value
                    if i == len(self.bounds)
                    else min(self.bounds[i], self.max_value)
                )
                if hi <= lo:
                    return lo
                return lo + (hi - lo) * ((target - below) / c)
        return self.max_value

    def merge(self, other: "HistogramMetric") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.bounds} vs {other.bounds})"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.count += other.count
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def snapshot(self) -> dict[str, Any]:
        # p50/p95/p99 are *derived* keys: merge_snapshot ignores them and
        # reconstructs from the sufficient statistics, so adding them
        # keeps cross-worker reduction exact.
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named metrics with snapshot/merge for exact cross-process reduction.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("bus.collisions").inc()
    >>> other = MetricsRegistry()
    >>> other.counter("bus.collisions").inc(2)
    >>> reg.merge_snapshot(other.snapshot())
    >>> reg.counter("bus.collisions").value
    3.0
    """

    def __init__(self) -> None:
        self._metrics: dict[str, CounterMetric | GaugeMetric | HistogramMetric] = {}

    # -- accessors (get-or-create) ----------------------------------------

    def counter(self, name: str) -> CounterMetric:
        """The counter registered under ``name`` (created on first use)."""
        return self._typed(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        """The gauge registered under ``name``."""
        return self._typed(name, GaugeMetric)

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> HistogramMetric:
        """The histogram registered under ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = HistogramMetric(bounds=bounds or DEFAULT_BUCKETS)
            self._metrics[name] = metric
        elif not isinstance(metric, HistogramMetric):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a histogram")
        return metric

    def _typed(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """Sorted metric names."""
        return sorted(self._metrics)

    # -- reduction ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict (picklable, JSON-able) view of every metric."""
        return {
            "v": METRICS_SCHEMA_VERSION,
            "metrics": {name: m.snapshot() for name, m in sorted(self._metrics.items())},
        }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one."""
        if snap.get("v") != METRICS_SCHEMA_VERSION:
            raise ValueError(f"unsupported metrics snapshot version {snap.get('v')!r}")
        for name, payload in snap["metrics"].items():
            kind = payload["type"]
            if kind == "counter":
                other = CounterMetric(value=payload["value"])
                self.counter(name).merge(other)
            elif kind == "gauge":
                other = GaugeMetric(
                    last=payload["last"],
                    min_value=payload["min"],
                    max_value=payload["max"],
                    updates=payload["updates"],
                )
                self.gauge(name).merge(other)
            elif kind == "histogram":
                bounds = tuple(payload["bounds"])
                other = HistogramMetric(
                    bounds=bounds,
                    counts=list(payload["counts"]),
                    total=payload["total"],
                    count=payload["count"],
                    min_value=payload["min"],
                    max_value=payload["max"],
                )
                self.histogram(name, bounds).merge(other)
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (snapshot round-trip)."""
        self.merge_snapshot(other.snapshot())

    # -- rendering ---------------------------------------------------------

    def format_table(self) -> str:
        """Fixed-width digest in the style of the runtime timing table."""
        if not self._metrics:
            return "(no metrics collected)"
        lines = [f"{'metric':<44} {'type':<10} {'value':>20}"]
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, CounterMetric):
                shown = f"{m.value:,.0f}" if m.value == int(m.value) else f"{m.value:,.3f}"
            elif isinstance(m, GaugeMetric):
                shown = f"{m.last:.6g} [{m.min_value:.6g}, {m.max_value:.6g}]"
            elif m.count:
                p50, p95, p99 = (m.quantile(q) for q in (0.50, 0.95, 0.99))
                shown = (
                    f"n={m.count} mean={m.mean:.4g} "
                    f"p50={p50:.3g} p95={p95:.3g} p99={p99:.3g}"
                )
            else:
                shown = f"n={m.count} mean={m.mean:.6g}"
            lines.append(f"{name:<44} {type(m).__name__[:-6].lower():<10} {shown:>20}")
        return "\n".join(lines)


# -- global hook management -------------------------------------------------


def get_registry() -> MetricsRegistry | None:
    """The currently active registry, or ``None`` when metrics are off."""
    return REGISTRY


def set_registry(registry: MetricsRegistry | None) -> None:
    """Install (or clear) the process-global registry."""
    global REGISTRY
    REGISTRY = registry


@contextmanager
def collecting(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Activate ``registry`` (or a fresh one) for the enclosed block."""
    reg = registry if registry is not None else MetricsRegistry()
    previous = REGISTRY
    set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)

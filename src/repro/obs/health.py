"""Per-LC health scorecards derived from incident spans.

The paper's dependability argument is per-linecard: each LC fails, is
detected, covered by its neighbours and repaired independently, so the
operator-facing question after a chaos campaign is "which LC is the sick
one, and how well did the architecture absorb it?".  A scorecard folds
one LC's incident spans into that answer:

* fault activations, split by fault mode (a flapping intermittent unit
  shows up as many activations, which is exactly the signal);
* ``flap_rate`` -- the fraction of activations that were intermittent
  flaps, the restlessness indicator;
* mean self-test detection latency over the detected activations;
* ``coverage_duty_cycle`` -- the fraction of the observed trace window
  this LC spent with an active coverage stream standing in for one of
  its units (high duty cycle = the LC leans on its neighbours);
* open (unrepaired at trace end) and undetected (coverage draw below
  ``c``) activation counts.

When a metrics registry is active, each scorecard field is also set on
a ``health.lc.<id>.<field>`` gauge (a registered dynamic metric family)
so exporters pick the scorecards up alongside the incident histograms.
"""

from __future__ import annotations

from typing import Any

from repro.obs import metrics as _metrics
from repro.obs.spans import IncidentSpan

__all__ = ["build_scorecards"]


def _lc_key(span: IncidentSpan) -> str:
    """Scorecard key of a span ("0", "1", ... or "eib")."""
    return "eib" if span.lc is None else str(span.lc)


def build_scorecards(spans: list[IncidentSpan]) -> dict[str, dict[str, Any]]:
    """Fold spans into per-LC scorecards (key = LC id string or "eib").

    A pure function of the span set; keys and nested dictionaries are
    emitted in sorted order so serialized scorecards are deterministic.
    """
    # The observed window spans the first injection to the last known
    # phase timestamp; duty cycles are fractions of this window.
    stamps = [
        t for s in spans for t in s.phase_times().values() if t is not None
    ]
    window_start = min(stamps) if stamps else 0.0
    window_end = max(stamps) if stamps else 0.0
    window = window_end - window_start

    groups: dict[str, list[IncidentSpan]] = {}
    for span in spans:
        groups.setdefault(_lc_key(span), []).append(span)

    cards: dict[str, dict[str, Any]] = {}
    for key in sorted(groups, key=lambda k: (k == "eib", k.zfill(8))):
        members = groups[key]
        by_mode: dict[str, int] = {}
        for span in members:
            by_mode[span.mode] = by_mode.get(span.mode, 0) + 1
        flaps = by_mode.get("intermittent", 0)
        detection = [
            s.detection_latency_s
            for s in members
            if s.detection_latency_s is not None
        ]
        covered = 0.0
        for span in members:
            if span.coverage_active is None:
                continue
            until = span.repaired if span.repaired is not None else window_end
            covered += max(0.0, until - span.coverage_active)
        cards[key] = {
            "faults": len(members),
            "by_mode": dict(sorted(by_mode.items())),
            "flap_rate": flaps / len(members),
            "mean_detection_latency_s": (
                sum(detection) / len(detection) if detection else None
            ),
            "coverage_duty_cycle": (
                min(1.0, covered / window) if window > 0.0 else 0.0
            ),
            "open": sum(1 for s in members if s.open),
            "undetected": sum(1 for s in members if not s.detected),
        }

    reg = _metrics.REGISTRY
    if reg is not None:
        for key, card in cards.items():
            reg.gauge(f"health.lc.{key}.faults").set(float(card["faults"]))
            reg.gauge(f"health.lc.{key}.flap_rate").set(card["flap_rate"])
            if card["mean_detection_latency_s"] is not None:
                reg.gauge(f"health.lc.{key}.mean_detection_latency_s").set(
                    card["mean_detection_latency_s"]
                )
            reg.gauge(f"health.lc.{key}.coverage_duty_cycle").set(
                card["coverage_duty_cycle"]
            )
            reg.gauge(f"health.lc.{key}.open_faults").set(float(card["open"]))
            reg.gauge(f"health.lc.{key}.undetected_faults").set(
                float(card["undetected"])
            )
    return cards

"""Prometheus text-format export of a metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot in the
Prometheus exposition format (text version 0.0.4) so a run's metrics can
be dropped into any Prometheus-compatible toolchain (promtool, Grafana
dashboards, CI artifact diffing).  Wired to the CLI as ``--metrics-out
FILE`` on every trace-capable subcommand.

Mapping rules:

* metric names are prefixed ``repro_`` and dots become underscores
  (``bus.ctl.sent`` -> ``repro_bus_ctl_sent``);
* counters render as ``counter``, gauges as ``gauge`` (the last
  observed value, with the min/max envelope as ``_min``/``_max``
  gauges);
* histograms render in the native Prometheus histogram convention:
  cumulative ``_bucket{le="..."}`` series per bound (plus ``+Inf``),
  ``_sum`` and ``_count``;
* ``# HELP`` text comes from the central schema registry
  (:mod:`repro.obs.schema`) when the name is registered there.

Output is deterministic: metrics sort by name, buckets by bound, and
floats render via ``repr`` -- equal registries produce byte-identical
files.
"""

from __future__ import annotations

from repro.obs import schema as _schema
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)

__all__ = ["render_prometheus", "write_prometheus"]


def _prom_name(name: str) -> str:
    """Prometheus-safe series name for a registry metric name."""
    return "repro_" + "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _prom_value(value: float) -> str:
    """Render one sample value (integers without a trailing ``.0``)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _help_text(name: str) -> str | None:
    """Schema description for ``name``, exact or family-prefixed."""
    desc = _schema.METRIC_NAMES.get(name)
    if desc is not None:
        return desc
    family = _schema.metric_family(name)
    if family is not None:
        return f"member of the {family}* metric family"
    return None


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for name in registry.names():
        metric = registry._metrics[name]
        prom = _prom_name(name)
        help_text = _help_text(name)
        if help_text is not None:
            lines.append(f"# HELP {prom} {help_text}")
        if isinstance(metric, CounterMetric):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(metric.value)}")
        elif isinstance(metric, GaugeMetric):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(metric.last)}")
            if metric.updates:
                lines.append(f"{prom}_min {_prom_value(metric.min_value)}")
                lines.append(f"{prom}_max {_prom_value(metric.max_value)}")
        elif isinstance(metric, HistogramMetric):
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{prom}_sum {_prom_value(metric.total)}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write the registry to ``path`` in Prometheus text format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_prometheus(registry))

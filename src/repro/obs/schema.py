"""Central schema-v1 registry of trace-event kinds and metric names.

Every ``Tracer.emit`` kind and every ``MetricsRegistry`` counter/gauge/
histogram name used anywhere in the package is declared here, once.
Three consumers treat this module as the source of truth:

* the ``trace`` CLI subcommand's schema guard, which (under
  ``--strict``) rejects a JSONL file containing event kinds this
  registry does not know;
* the static analyser (:mod:`repro.lint`), whose DRA201/DRA202 rules
  require emit/metric call sites to use string literals registered
  here -- so an instrumented site cannot silently drift away from the
  catalogue in ``docs/observability.md``;
* the observability docs and tests, which cross-check the tables
  against these mappings instead of duplicating the string lists.

Names fall in two groups: **exact names** (``TRACE_EVENT_KINDS``,
``METRIC_NAMES``) and **dynamic families** (``METRIC_FAMILIES``) whose
instances share a registered literal prefix and append one runtime tag,
e.g. ``bus.data.dropped.<reason>``.  Adding an event or metric means
adding a line here (and a row in ``docs/observability.md``); the lint
gate fails otherwise.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = [
    "TRACE_EVENT_KINDS",
    "METRIC_NAMES",
    "METRIC_FAMILIES",
    "is_trace_kind",
    "is_metric_name",
    "metric_family",
    "unknown_trace_kinds",
]

#: Every registered trace-event kind -> one-line description (the docs
#: catalogue carries payload details).
TRACE_EVENT_KINDS: Mapping[str, str] = {
    # simulation engine (src/repro/sim/engine.py)
    "sim.fire": "an event fires (t = its scheduled time)",
    "sim.cancel": "a lazily-cancelled event is discarded",
    # EIB control channel, CSMA/CD (src/repro/router/bus.py)
    "bus.ctl.deliver": "a control broadcast completes",
    "bus.ctl.collision": "two stations started within the vulnerability window",
    "bus.ctl.backoff": "binary-exponential backoff scheduled after a collision",
    "bus.ctl.defer": "carrier sense found the medium busy",
    "bus.ctl.abandon": "packet dropped after max_attempts",
    "bus.ctl.lost": "control packet lost on a degraded medium",
    "bus.ctl.corrupt": "control packet corrupted on a degraded medium",
    # EIB data channel, TDM (src/repro/router/bus.py)
    "bus.lp.open": "a logical path opens",
    "bus.lp.close": "a logical path finishes draining and closes",
    "bus.tdm.grant": "the TDM scheduler grants a slot",
    "bus.data.drop": "a data transfer is dropped",
    # switching fabric (src/repro/router/fabric.py)
    "fabric.drop": "a dead fabric clears a port queue (cells discarded)",
    # recovery / coverage (src/repro/router/recovery.py, protocol.py)
    "recovery.fault_mark": "the fault map marks a component faulty",
    "recovery.fault_clear": "the fault map clears a repaired component",
    "coverage.plan": "a non-trivial coverage plan (EIB leg or drop)",
    "coverage.egress_mode": "the egress leg leaves the fabric",
    "protocol.stream_active": "a coverage stream is established",
    "protocol.stream_failed": "a REQ_D solicitation timed out unanswered",
    "protocol.reserve_race": "the winning responder's headroom evaporated before resolution",
    # planner v2 (src/repro/router/planner2.py, protocol.py)
    "coverage.replan": "a failed stream re-solicits ahead of the retry cooldown",
    "coverage.degraded": "proportional rate shed under aggregate EIB overload",
    # router datapath (src/repro/router/router.py)
    "router.packet_drop": "a packet is terminally dropped by the datapath",
    # fault lifecycle correlation (src/repro/router/router.py)
    "fault.injected": "a hardware fault activates (mints its fault_id)",
    "fault.repaired": "a hardware fault deactivates (repair or auto-clear)",
    # fault detection (src/repro/chaos/detection.py)
    "detect.local_detect": "a self-test detects a local fault",
    "detect.local_clear": "a repaired local fault is cleared from the view",
    "detect.remote_learn": "an LC's view learns a remote fault (FLT_N or HB)",
    "detect.remote_clear": "an LC's view clears a remote fault (FLT_C or HB)",
    # solvers (src/repro/markov/, src/repro/montecarlo/) -- t is null
    "solver.uniformization": "uniformization picked its Poisson truncation",
    "solver.stationary": "a stationary solve finished",
    "solver.importance_sampling": "one batch of regenerative cycles completed",
    # differential validation (src/repro/validate/) -- t is null
    "validate.pair": "one oracle/estimator pair judged",
    "validate.suite": "the suite verdict",
}

#: Every registered exact metric name -> "kind: description".
METRIC_NAMES: Mapping[str, str] = {
    # EIB control channel
    "bus.ctl.sent": "counter: control broadcasts attempted",
    "bus.ctl.collisions": "counter: CSMA/CD collisions",
    "bus.ctl.deferrals": "counter: carrier-sense deferrals",
    "bus.ctl.abandoned": "counter: packets dropped after max_attempts",
    "bus.ctl.lost": "counter: packets lost on a degraded medium",
    "bus.ctl.corrupted": "counter: packets corrupted on a degraded medium",
    # EIB data channel
    "bus.lp.opened": "counter: logical paths opened",
    "bus.lp.closed": "counter: logical paths closed",
    "bus.lp.open": "gauge: logical paths currently open",
    "bus.tdm.grants": "counter: TDM slots granted",
    "bus.data.dropped": "counter: data transfers dropped",
    # switching fabric
    "fabric.cells_dropped": "counter: cells discarded when a dead fabric clears a port queue",
    # recovery / coverage / protocol
    "recovery.faults_marked": "counter: fault-map mark transitions",
    "recovery.faults_repaired": "counter: fault-map clear transitions",
    "coverage.plans.dropped": "counter: coverage plans that had to drop",
    "protocol.streams_established": "counter: coverage streams established",
    "protocol.streams_failed": "counter: coverage solicitations timed out",
    "protocol.reserve_races": "counter: reservations lost to the REP_D/resolution race",
    # planner v2
    "coverage.replans": "counter: backoff re-solicitations fired",
    "coverage.degradations": "counter: proportional rate-shedding rounds",
    # solvers
    "solver.stationary.solves": "counter: stationary solves",
    "solver.stationary.iterations": "counter: power-method iterations",
    "solver.stationary.residual": "gauge: max |pi Q| of the last solve",
    "solver.uniformization.solves": "counter: uniformization solves",
    "solver.uniformization.iterations": "counter: Poisson terms summed",
    "solver.uniformization.truncation_k": "gauge: truncation point K",
    # Monte Carlo importance sampling
    "mc.is.cycles": "counter: regenerative cycles simulated",
    "mc.is.rare_hits": "counter: cycles that reached the rare set",
    # differential validation
    "validate.pairs.evaluated": "counter: oracle/estimator pairs evaluated",
    "validate.pairs.failed": "counter: pairs that failed after escalation",
    "validate.escalations": "counter: 4x sample-size escalations",
    # static analysis (repro.lint)
    "lint.files": "counter: files scanned",
    "lint.findings": "counter: unsuppressed findings",
    "lint.suppressions": "counter: findings silenced by dra: noqa",
    "lint.wall_ms": "gauge: wall time of one lint run (CI budget guard)",
    # causal incident analysis (repro.obs.spans, the `incidents` subcommand)
    "incident.spans": "counter: incident spans folded out of a trace",
    "incident.open_spans": "counter: spans never repaired within the trace",
    "incident.undetected_spans": "counter: spans no self-test ever detected",
    "incident.detection_latency_s": "histogram: injection to first local detect",
    "incident.notification_fanout_s": "histogram: local detect to first remote view",
    "incident.time_to_coverage_s": "histogram: injection to active coverage stream",
    "incident.mttr_s": "histogram: injection to repair",
}

#: Dynamic metric families: literal prefix -> known suffixes (``None``
#: means the suffix set is open, e.g. packet kinds or drop reasons).
#: An f-string metric name is schema-conformant when its literal prefix
#: is registered here.
METRIC_FAMILIES: Mapping[str, tuple[str, ...] | None] = {
    "solver.stationary.solves.": ("direct", "eigs", "power"),
    "bus.ctl.sent.": None,  # one per ControlKind value
    "bus.data.dropped.": ("no_lp", "unhealthy", "buffer_full", "rate_limited"),
    "coverage.plans.": ("case1", "case2", "case3", "dropped"),
    "lint.findings.": None,  # one per DRA rule code
    # per-LC health scorecards (repro.obs.health): health.lc.<id>.<field>
    "health.lc.": None,
}


def is_trace_kind(kind: str) -> bool:
    """True when ``kind`` is a registered trace-event kind."""
    return kind in TRACE_EVENT_KINDS


def metric_family(name: str) -> str | None:
    """The registered family prefix covering ``name``, if any."""
    for prefix in METRIC_FAMILIES:
        if name.startswith(prefix):
            return prefix
    return None


def is_metric_name(name: str) -> bool:
    """True when ``name`` is registered exactly or via a family prefix."""
    return name in METRIC_NAMES or metric_family(name) is not None


def unknown_trace_kinds(kinds: Iterable[str]) -> list[str]:
    """Sorted distinct members of ``kinds`` absent from the registry.

    The ``trace`` CLI subcommand uses this as its strict-mode guard: a
    trace produced by instrumented code can only contain registered
    kinds, so anything unknown means an emit site bypassed the schema.
    """
    return sorted({k for k in kinds if not is_trace_kind(k)})

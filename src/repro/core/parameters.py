"""Model parameters: failure rates, router configuration, repair policy.

The failure-rate defaults are exactly the constants of Section 5 of the
paper (all exponential, in failures per hour):

==============  =========  ==========================================
Symbol          Value      Meaning
==============  =========  ==========================================
``lam_lc``      2.0e-5     whole linecard (Cisco 7000 OC-48 class)
``lam_lpd``     6.0e-6     LCUA's PDLU (protocol-dependent logic)
``lam_lpi``     1.4e-5     LCUA's protocol-independent units (SRU+LFE)
``lam_bc``      1.0e-6     a single bus controller
``lam_bus``     1.0e-6     the EIB passive lines
``lam_pd``      7.0e-6     covering LC_inter PDLU *plus* its bus controller
``lam_pi``      1.5e-5     covering LC_inter PI units *plus* its bus controller
==============  =========  ==========================================

Section 5's consistency identities hold for the defaults and are enforced
by :meth:`FailureRates.validate`:

* ``lam_lc == lam_lpd + lam_lpi``
* ``lam_pd == lam_lpd + lam_bc``
* ``lam_pi == lam_lpi + lam_bc``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FailureRates", "DRAConfig", "RepairPolicy"]


@dataclass(frozen=True)
class FailureRates:
    """Exponential component failure rates (per hour), Section 5 defaults."""

    lam_lc: float = 2.0e-5
    lam_lpd: float = 6.0e-6
    lam_lpi: float = 1.4e-5
    lam_bc: float = 1.0e-6
    lam_bus: float = 1.0e-6
    lam_pd: float = 7.0e-6
    lam_pi: float = 1.5e-5

    def __post_init__(self) -> None:
        for name in (
            "lam_lc",
            "lam_lpd",
            "lam_lpi",
            "lam_bc",
            "lam_bus",
            "lam_pd",
            "lam_pi",
        ):
            value = getattr(self, name)
            if not (value > 0.0 and math.isfinite(value)):
                raise ValueError(f"{name} must be a positive finite rate, got {value}")

    def validate(self, *, rtol: float = 1e-9) -> None:
        """Enforce the paper's rate-composition identities.

        Raises ``ValueError`` if the split/combined rates are inconsistent.
        Custom rate sets that intentionally break the identities (for
        sensitivity studies) should simply skip this call.
        """
        checks = {
            "lam_lc = lam_lpd + lam_lpi": (self.lam_lc, self.lam_lpd + self.lam_lpi),
            "lam_pd = lam_lpd + lam_bc": (self.lam_pd, self.lam_lpd + self.lam_bc),
            "lam_pi = lam_lpi + lam_bc": (self.lam_pi, self.lam_lpi + self.lam_bc),
        }
        for label, (lhs, rhs) in checks.items():
            if not math.isclose(lhs, rhs, rel_tol=rtol):
                raise ValueError(f"inconsistent rates: {label} ({lhs} vs {rhs})")

    @property
    def lam_t_prime(self) -> float:
        """Rate of entering state T': EIB failure or LCUA bus-controller failure."""
        return self.lam_bus + self.lam_bc

    def scaled(self, factor: float) -> "FailureRates":
        """All rates multiplied by ``factor`` (for sensitivity sweeps)."""
        if factor <= 0.0:
            raise ValueError("scale factor must be positive")
        return FailureRates(
            lam_lc=self.lam_lc * factor,
            lam_lpd=self.lam_lpd * factor,
            lam_lpi=self.lam_lpi * factor,
            lam_bc=self.lam_bc * factor,
            lam_bus=self.lam_bus * factor,
            lam_pd=self.lam_pd * factor,
            lam_pi=self.lam_pi * factor,
        )


@dataclass(frozen=True)
class DRAConfig:
    """Router configuration for the Markov models of Section 5.

    Parameters
    ----------
    n:
        Total number of linecards ``N``.  The model reserves one LC as the
        LC under analysis (LCUA) and one as the fault-free LC_out, leaving
        ``N - 2`` covering LC_inter PI-unit groups.  Requires ``N >= 3``.
    m:
        Number of LCs (including LCUA) implementing LCUA's protocol ``M``,
        i.e. ``M - 1`` covering PDLUs.  Requires ``2 <= M <= N``.
    variant:
        Model-interpretation variant (see DESIGN.md, decisions 2 and 3):

        ``"paper"`` (default) is the reading that reproduces every quoted
        Figure 7 value: the Zone-LC_inter grid is truncated at
        ``i = N - 3``, ``j = M - 2`` with no outgoing covering-unit
        transition at the boundary, and -- following Section 5.1's "all
        states (except F) move to State T'" literally -- even Zone-LCUA
        states divert to ``T'`` when the EIB or LCUA's bus controller
        fails.

        ``"strict"`` keeps the truncated grid but sends Zone-LCUA states
        to ``F`` on an EIB/bus-controller failure (coverage traffic has
        nowhere to flow once the bus is gone).

        ``"extended"`` is ``strict`` plus the exhausted-pool states the
        paper omits, so ``F`` is also reachable through covering units
        dying before LCUA does.  Physically the most faithful; slightly
        pessimistic relative to ``paper`` (quantified by the ablation
        bench).
    """

    n: int
    m: int
    variant: str = "paper"

    VARIANTS = ("paper", "strict", "extended")

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError(f"N must be >= 3 (need at least one LC_inter), got {self.n}")
        if not (2 <= self.m <= self.n):
            raise ValueError(f"M must satisfy 2 <= M <= N, got M={self.m}, N={self.n}")
        if self.variant not in self.VARIANTS:
            raise ValueError(
                f"variant must be one of {self.VARIANTS}, got {self.variant!r}"
            )

    @property
    def n_inter_pi(self) -> int:
        """Number of covering LC_inter PI-unit groups (``N - 2``)."""
        return self.n - 2

    @property
    def n_inter_pd(self) -> int:
        """Number of covering LC_inter PDLUs (``M - 1``)."""
        return self.m - 1


@dataclass(frozen=True)
class RepairPolicy:
    """Repair process of Section 5.2.

    A repair returns the system from *any* degraded state directly to the
    all-healthy state with mean time ``1/mu`` hours, irrespective of how
    many units have failed.  The paper evaluates ``mu = 1/3`` (three-hour
    turnaround) and ``mu = 1/12`` (half a day).

    ``stages`` controls the repair-time distribution: 1 (default) is the
    exponential repair the paper's chains use; ``k > 1`` makes the repair
    Erlang-k with the same mean (variance ``1/(k mu^2)``), approaching the
    *fixed* repair duration the paper's prose actually describes as
    ``k`` grows.  The Erlang ablation bench quantifies the gap between
    the prose and the model.
    """

    mu: float = 1.0 / 3.0
    stages: int = 1

    def __post_init__(self) -> None:
        if not (self.mu > 0.0 and math.isfinite(self.mu)):
            raise ValueError(f"repair rate mu must be positive and finite, got {self.mu}")
        if self.stages < 1:
            raise ValueError(f"repair stages must be >= 1, got {self.stages}")

    @classmethod
    def three_hours(cls) -> "RepairPolicy":
        """The paper's fast repair: mu = 1/3."""
        return cls(mu=1.0 / 3.0)

    @classmethod
    def half_day(cls) -> "RepairPolicy":
        """The paper's slow repair: mu = 1/12."""
        return cls(mu=1.0 / 12.0)

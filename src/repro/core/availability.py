"""Availability models of Section 5.2 (reproduces Figure 7).

The reliability chains of :mod:`repro.core.reliability` are augmented with
the paper's repair process: a single transition from every degraded state
back to the all-healthy state at rate ``mu``, "irrespective of the type and
the number of [failed] units".  The repaired chain is irreducible, so the
steady-state availability is

    ``A = 1 - pi_F``

where ``pi`` is the stationary distribution and ``F`` the LC-failed state.
The paper reports A in its "9^x" nines notation (:mod:`repro.core.nines`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.nines import count_nines, nines_notation
from repro.core.parameters import DRAConfig, FailureRates, RepairPolicy
from repro.core.reliability import (
    BDR_WORKING,
    build_bdr_reliability_chain,
    build_dra_reliability_chain,
)
from repro.core.states import AllHealthy, Failed
from repro.markov import CTMC, CTMCBuilder, stationary_distribution

__all__ = [
    "build_bdr_availability_chain",
    "build_dra_availability_chain",
    "bdr_availability",
    "dra_availability",
    "AvailabilityResult",
]


def _with_repair(chain: CTMC, healthy_state: object, repair: RepairPolicy) -> CTMC:
    """Augment ``chain`` with the Section 5.2 repair process.

    ``stages == 1`` (the paper's model) adds one ``state -> healthy``
    transition at rate ``mu`` from every degraded state.  ``stages == k``
    makes the repair duration Erlang-k with the same mean: every degraded
    state is replicated per repair phase ``r`` in ``1..k``; failures move
    within a phase, phase transitions run at ``k mu``, and completing the
    last phase restores the healthy state.  Degraded states are labeled
    ``(s, r)`` in that case.
    """
    mu, k = repair.mu, repair.stages
    b = CTMCBuilder()
    coo = chain.generator.tocoo()
    transitions = [
        (chain.states[i], chain.states[j], q)
        for i, j, q in zip(coo.row, coo.col, coo.data)
        if i != j and q > 0.0
    ]
    if k == 1:
        b.add_states(chain.states)
        for src, dst, q in transitions:
            b.add_transition(src, dst, q)
        for s in chain.states:
            if s != healthy_state:
                b.add_transition(s, healthy_state, mu)
        return b.build()

    def label(state: object, phase: int) -> object:
        return state if state == healthy_state else (state, phase)

    b.add_state(healthy_state)
    rate = k * mu
    for phase in range(1, k + 1):
        for src, dst, q in transitions:
            src_l = label(src, phase)
            # A failure out of the healthy state starts repair phase 1.
            dst_l = label(dst, 1 if src == healthy_state else phase)
            if src == healthy_state and phase > 1:
                continue  # the healthy state exists once
            b.add_transition(src_l, dst_l, q)
        for s in chain.states:
            if s == healthy_state:
                continue
            if phase < k:
                b.add_transition(label(s, phase), label(s, phase + 1), rate)
            else:
                b.add_transition(label(s, phase), healthy_state, rate)
    return b.build()


def _failed_probability(chain: CTMC, pi) -> float:
    """Total stationary mass of the LC-failed condition.

    With Erlang repair the failed state is replicated per repair phase as
    ``(F, r)``; sum over every replica.
    """
    total = 0.0
    for idx, state in enumerate(chain.states):
        base = state[0] if isinstance(state, tuple) and len(state) == 2 else state
        if base == Failed:
            total += float(pi[idx])
    return total


def build_bdr_availability_chain(
    repair: RepairPolicy | None = None, rates: FailureRates | None = None
) -> CTMC:
    """Two-state repairable BDR chain: W <-> F."""
    repair = repair or RepairPolicy()
    return _with_repair(build_bdr_reliability_chain(rates), BDR_WORKING, repair)


def build_dra_availability_chain(
    config: DRAConfig,
    repair: RepairPolicy | None = None,
    rates: FailureRates | None = None,
) -> CTMC:
    """Repairable DRA chain: Figure 5(b) plus repair edges into (0, 0)."""
    repair = repair or RepairPolicy()
    return _with_repair(
        build_dra_reliability_chain(config, rates), AllHealthy, repair
    )


@dataclass(frozen=True)
class AvailabilityResult:
    """Steady-state availability of an LC plus its nines summary."""

    availability: float
    label: str
    repair: RepairPolicy
    config: DRAConfig | None = None
    rates: FailureRates = field(default_factory=FailureRates)

    @property
    def unavailability(self) -> float:
        """``1 - A`` (expected downtime fraction)."""
        return 1.0 - self.availability

    @property
    def nines(self) -> int:
        """Consecutive leading nines of A -- the paper's ``9^x``."""
        return count_nines(self.availability)

    @property
    def notation(self) -> str:
        """Formatted ``9^x`` string as printed in Figure 7."""
        return nines_notation(self.availability)

    @property
    def downtime_minutes_per_year(self) -> float:
        """Expected annual downtime in minutes (8766-hour year)."""
        return self.unavailability * 8766.0 * 60.0


def bdr_availability(
    repair: RepairPolicy | None = None,
    rates: FailureRates | None = None,
    *,
    method: str = "linear",
) -> AvailabilityResult:
    """BDR steady-state availability (analytically ``mu / (mu + lam_lc)``)."""
    repair = repair or RepairPolicy()
    rates = rates or FailureRates()
    chain = build_bdr_availability_chain(repair, rates)
    pi = stationary_distribution(chain, method=method)
    a = 1.0 - _failed_probability(chain, pi)
    return AvailabilityResult(
        availability=a, label="BDR", repair=repair, rates=rates
    )


def dra_availability(
    config: DRAConfig,
    repair: RepairPolicy | None = None,
    rates: FailureRates | None = None,
    *,
    method: str = "linear",
) -> AvailabilityResult:
    """DRA steady-state availability for ``config``."""
    repair = repair or RepairPolicy()
    rates = rates or FailureRates()
    chain = build_dra_availability_chain(config, repair, rates)
    pi = stationary_distribution(chain, method=method)
    a = 1.0 - _failed_probability(chain, pi)
    return AvailabilityResult(
        availability=a,
        label=f"DRA(N={config.n},M={config.m})",
        repair=repair,
        config=config,
        rates=rates,
    )

"""Heterogeneous-load generalization of the Section 5.3 model.

The paper assumes one uniform load ``L`` at every LC.  Real routers run
mixed utilizations, and the paper's own B_prom machinery (Section 4)
already defines how unequal coverage demands share the EIB -- so the
generalization is fully determined by the paper's rules:

* each healthy LC ``i`` offers headroom ``psi_i = c_i (1 - L_i)``;
* each faulty LC ``j`` requires ``L_j c_j``;
* aggregate offered headroom is a shared pool (any healthy LC can cover
  any coverable fault at the analysis level, M = N as in Figure 8), and
  requirements scale back proportionally when the pool or the EIB binds
  -- exactly the ``B_prom`` rule applied to requirements.

With equal loads this reduces to the paper's model (a property test pins
that).  The module answers questions Figure 8 cannot: *which* faulty LC
suffers, and how skew (a few hot cards) changes the degradation story.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.performance import promised_bandwidth

__all__ = ["HeterogeneousPerformanceModel", "HeteroDegradation"]


@dataclass(frozen=True)
class HeteroDegradation:
    """Outcome of one heterogeneous coverage scenario."""

    #: per-faulty-LC delivered bandwidth (Gbps), ordered like ``faulty``
    delivered: np.ndarray
    #: per-faulty-LC required bandwidth (Gbps)
    required: np.ndarray
    faulty: tuple[int, ...]

    @property
    def percent(self) -> np.ndarray:
        """Per-faulty-LC percentage of required bandwidth."""
        with np.errstate(divide="ignore", invalid="ignore"):
            pct = np.where(self.required > 0, 100.0 * self.delivered / self.required, 100.0)
        return pct

    @property
    def aggregate_percent(self) -> float:
        """Total delivered over total required (the router-level view)."""
        total_req = float(self.required.sum())
        if total_req == 0.0:
            return 100.0
        return 100.0 * float(self.delivered.sum()) / total_req


class HeterogeneousPerformanceModel:
    """Per-LC loads and capacities; Figure 8 generalized."""

    def __init__(
        self,
        loads: Sequence[float],
        capacities: Sequence[float] | float = 10.0,
        *,
        b_bus: float | None = None,
    ) -> None:
        self.loads = np.asarray(loads, dtype=np.float64)
        n = self.loads.size
        if n < 2:
            raise ValueError("need at least two linecards")
        if np.any((self.loads < 0.0) | (self.loads >= 1.0)):
            raise ValueError("loads must lie in [0, 1)")
        if np.isscalar(capacities):
            self.capacities = np.full(n, float(capacities))
        else:
            self.capacities = np.asarray(capacities, dtype=np.float64)
            if self.capacities.shape != (n,):
                raise ValueError("capacities must match loads in length")
        if np.any(self.capacities <= 0.0):
            raise ValueError("capacities must be positive")
        self.b_bus = float(self.capacities.sum()) if b_bus is None else float(b_bus)
        if self.b_bus <= 0.0:
            raise ValueError("b_bus must be positive")

    @property
    def n(self) -> int:
        """Number of linecards."""
        return self.loads.size

    def degradation(self, faulty: Iterable[int]) -> HeteroDegradation:
        """Coverage outcome when the LCs in ``faulty`` are down.

        Requirements scale back proportionally (the B_prom rule) against
        two shared constraints: the aggregate healthy headroom and the
        EIB capacity.
        """
        faulty = tuple(sorted(set(faulty)))
        if any(not 0 <= f < self.n for f in faulty):
            raise ValueError(f"faulty indices out of range: {faulty}")
        if len(faulty) >= self.n:
            raise ValueError("at least one LC must stay healthy to cover")
        required = self.loads[list(faulty)] * self.capacities[list(faulty)]
        healthy = [i for i in range(self.n) if i not in faulty]
        pool = float(
            ((1.0 - self.loads[healthy]) * self.capacities[healthy]).sum()
        )
        # Two successive proportional scale-backs commute into one with
        # the binding constraint: B_prom against min(pool, b_bus).
        delivered = promised_bandwidth(required, min(pool, self.b_bus))
        return HeteroDegradation(
            delivered=delivered, required=required, faulty=faulty
        )

    def worst_single_fault(self) -> tuple[int, float]:
        """The faulty LC with the lowest service percentage over all
        single-fault scenarios, with that percentage."""
        worst_lc, worst_pct = -1, float("inf")
        for lc in range(self.n):
            pct = self.degradation([lc]).aggregate_percent
            if pct < worst_pct:
                worst_lc, worst_pct = lc, pct
        return worst_lc, worst_pct

    @classmethod
    def uniform(
        cls, n: int, load: float, c_lc: float = 10.0, b_bus: float | None = None
    ) -> "HeterogeneousPerformanceModel":
        """The paper's uniform case (equivalence is property-tested)."""
        return cls([load] * n, c_lc, b_bus=b_bus)

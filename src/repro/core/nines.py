"""The paper's "9^x" availability notation.

Figure 7 reports availabilities as ``9^x``, meaning *x consecutive 9s after
the decimal point* (e.g. ``9^4`` covers 0.9999 up to but not including
0.99995... -- any value whose decimal expansion starts with exactly four
nines).  ``count_nines`` maps an availability to x; ``from_nines`` gives
the smallest availability with x nines (for building comparison rows).
"""

from __future__ import annotations

import math

__all__ = ["count_nines", "nines_notation", "from_nines"]


def count_nines(availability: float) -> int:
    """Number of consecutive leading '9' digits after the decimal point.

    Counted on the shortest round-trip decimal representation of the
    value -- literally the paper's "x consecutive 9s after the decimal
    point" -- which avoids the boundary artifacts a ``log10`` of the
    float residual would introduce (``1 - 0.99999999`` is not exactly
    ``1e-8`` in binary).  ``A == 1.0`` maps to the double-precision cap
    of 16 nines.

    Examples
    --------
    >>> count_nines(0.99994)
    4
    >>> count_nines(0.9999999974)
    8
    >>> count_nines(0.95)
    1
    >>> count_nines(0.5)
    0
    """
    if not 0.0 <= availability <= 1.0:
        raise ValueError(f"availability must lie in [0, 1], got {availability}")
    if availability == 1.0:
        return 16  # double precision cannot resolve more than ~16 nines
    text = repr(float(availability))
    if "e" in text or "E" in text:
        # Tiny availabilities render in scientific notation; they have no
        # leading nines.  (Values this low never occur in the models, but
        # the function stays total.)
        return max(0, int(math.floor(-math.log10(1.0 - availability))))
    digits = text.split(".", 1)[1] if "." in text else ""
    count = 0
    for ch in digits:
        if ch != "9":
            break
        count += 1
    return count


def nines_notation(availability: float) -> str:
    """Format availability as the paper prints it: ``9^x``.

    Values with no leading nine are printed as plain decimals so degraded
    systems remain readable in the Figure 7 tables.
    """
    x = count_nines(availability)
    if x == 0:
        return f"{availability:.4f}"
    return f"9^{x}"


def from_nines(x: int) -> float:
    """Smallest availability exhibiting ``x`` consecutive nines (``1 - 10^-x``)."""
    if x < 0:
        raise ValueError(f"nines count must be nonnegative, got {x}")
    return 1.0 - 10.0 ** (-x)

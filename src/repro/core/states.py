"""Typed state space of the Figure 5(b) Markov model.

Index conventions (DESIGN.md decision 1; the paper's own text swaps its
indices between definitions, so we fix one):

* ``i`` counts failed covering **PI-unit groups** among the ``N - 2``
  LC_inters (an LC_inter whose PI units *or* bus controller failed can no
  longer cover a PI fault -- the combined rate ``lam_pi`` accounts for
  both).
* ``j`` counts failed covering **PDLUs** among the ``M - 1`` same-protocol
  LCs (again combined with that LC's bus controller via ``lam_pd``).

States:

* :class:`InterZoneState` ``(i, j)`` -- Zone-LC_inter: LCUA healthy, some
  covering resources already lost.  ``(0, 0)`` is the all-healthy state
  :data:`AllHealthy`.
* :class:`UAPIState` ``i`` -- Zone-LCUA after LCUA's PI units failed;
  ``i`` covering PI groups also down, coverage continues via the rest.
* :class:`UAPDState` ``j`` -- Zone-LCUA after LCUA's PDLU failed; ``j``
  covering PDLUs also down.
* :data:`BusDown` (the paper's ``T'``) -- only the EIB or LCUA's own bus
  controller has failed; LCUA still forwards via the switching fabric.
* :data:`Failed` (the paper's ``F``) -- packet transfer through LCUA has
  stopped; the unique absorbing state of the reliability chains.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InterZoneState",
    "UAPIState",
    "UAPDState",
    "BusDown",
    "Failed",
    "AllHealthy",
    "is_operational",
]


@dataclass(frozen=True, slots=True)
class InterZoneState:
    """Zone-LC_inter state: LCUA healthy; ``i`` covering PI groups and
    ``j`` covering PDLUs have failed."""

    i: int
    j: int

    def __post_init__(self) -> None:
        if self.i < 0 or self.j < 0:
            raise ValueError(f"state indices must be nonnegative, got ({self.i}, {self.j})")

    def __str__(self) -> str:
        return f"({self.i},{self.j})"


@dataclass(frozen=True, slots=True)
class UAPIState:
    """Zone-LCUA state after an LCUA PI-unit failure; ``i`` covering PI
    groups have also failed."""

    i: int

    def __post_init__(self) -> None:
        if self.i < 0:
            raise ValueError(f"state index must be nonnegative, got {self.i}")

    def __str__(self) -> str:
        return f"{self.i}_PI"


@dataclass(frozen=True, slots=True)
class UAPDState:
    """Zone-LCUA state after an LCUA PDLU failure; ``j`` covering PDLUs
    have also failed."""

    j: int

    def __post_init__(self) -> None:
        if self.j < 0:
            raise ValueError(f"state index must be nonnegative, got {self.j}")

    def __str__(self) -> str:
        return f"{self.j}_PD"


@dataclass(frozen=True, slots=True)
class _BusDown:
    """Singleton marker for the paper's T' state."""

    def __str__(self) -> str:
        return "T'"


@dataclass(frozen=True, slots=True)
class _Failed:
    """Singleton marker for the paper's F state."""

    def __str__(self) -> str:
        return "F"


#: The paper's ``T'`` state (EIB or LCUA bus controller down, LCUA healthy).
BusDown = _BusDown()

#: The paper's absorbing ``F`` state.
Failed = _Failed()

#: Alias for the no-failure state ``(0, 0)``.
AllHealthy = InterZoneState(0, 0)


def is_operational(state: object) -> bool:
    """True for every state except ``F`` (the paper's definition of an
    operational LC: packets still flow to and from LCUA's ports)."""
    return state != Failed

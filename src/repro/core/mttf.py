"""Mean time to failure of a linecard under BDR and DRA.

The paper plots full R(t) curves; MTTF compresses each curve to a scalar
(the area under it), which makes the DRA-vs-BDR comparison and the
diminishing returns over (M, N) easy to tabulate.  Computed exactly as
the mean absorption time of the Figure 5 chains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import DRAConfig, FailureRates
from repro.core.reliability import (
    BDR_WORKING,
    build_bdr_reliability_chain,
    build_dra_reliability_chain,
)
from repro.core.states import AllHealthy
from repro.markov import mean_time_to_absorption

__all__ = ["MTTFResult", "bdr_mttf", "dra_mttf", "mttf_improvement"]


@dataclass(frozen=True)
class MTTFResult:
    """Mean time to LC failure, in hours."""

    hours: float
    label: str

    @property
    def years(self) -> float:
        """MTTF in (8766-hour) years."""
        return self.hours / 8766.0


def bdr_mttf(rates: FailureRates | None = None) -> MTTFResult:
    """BDR linecard MTTF (analytically ``1 / lam_lc``)."""
    chain = build_bdr_reliability_chain(rates)
    hours = mean_time_to_absorption(chain, BDR_WORKING)
    return MTTFResult(hours=hours, label="BDR")


def dra_mttf(config: DRAConfig, rates: FailureRates | None = None) -> MTTFResult:
    """DRA linecard MTTF for ``config``."""
    chain = build_dra_reliability_chain(config, rates)
    hours = mean_time_to_absorption(chain, AllHealthy)
    return MTTFResult(hours=hours, label=f"DRA(N={config.n},M={config.m})")


def mttf_improvement(
    config: DRAConfig, rates: FailureRates | None = None
) -> float:
    """DRA-over-BDR MTTF ratio for ``config`` (dimensionless, > 1)."""
    return dra_mttf(config, rates).hours / bdr_mttf(rates).hours

"""Performability: Figure 7 meets Figure 8.

The paper analyzes *whether* an LC is served (availability) and *how much
bandwidth* faulty LCs get at a given fault count (Figure 8) separately.
Performability joins them: weight each fault-count state of a repairable
router model by the bandwidth the Section 5.3 model assigns to it, giving
the **expected fraction of required bandwidth delivered to faulty LCs**
-- in steady state and transiently.

Router-level model: ``X_faulty`` follows a birth-death CTMC on
``0..N-1`` (LC_out stays clean, matching Figure 8's premise): state ``k``
jumps to ``k+1`` at ``(N - k) * lam_lc`` and repairs to ``0`` at ``mu``
(the paper's all-at-once repair; a per-LC repair variant is provided for
comparison).

Also exposed: ``expected_degradation`` -- the performability-weighted
version of Figure 8, and ``state_distribution`` for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import FailureRates, RepairPolicy
from repro.core.performance import PerformanceModel
from repro.markov import (
    CTMC,
    CTMCBuilder,
    stationary_distribution,
    transient_distribution,
)

__all__ = ["PerformabilityModel", "PerformabilityResult"]


@dataclass(frozen=True)
class PerformabilityResult:
    """Steady-state performability summary."""

    #: probability of each fault count 0..N-1
    state_probabilities: np.ndarray
    #: expected % of required bandwidth delivered to faulty LCs, taken
    #: over fault states only (state 0 contributes its 100%)
    expected_degradation_percent: float
    #: probability at least one LC is down
    any_fault_probability: float


class PerformabilityModel:
    """Joint fault-count / bandwidth model for one router."""

    def __init__(
        self,
        performance: PerformanceModel,
        repair: RepairPolicy | None = None,
        rates: FailureRates | None = None,
        *,
        repair_style: str = "bulk",
    ) -> None:
        """``repair_style``: ``"bulk"`` repairs every failed LC at once at
        rate ``mu`` (the paper's Section 5.2 process); ``"per-lc"`` repairs
        one LC at a time at rate ``k * mu`` in state ``k``."""
        if repair_style not in ("bulk", "per-lc"):
            raise ValueError(f"unknown repair style {repair_style!r}")
        self.performance = performance
        self.repair = repair or RepairPolicy()
        self.rates = rates or FailureRates()
        self.repair_style = repair_style
        self._chain = self._build_chain()

    @property
    def chain(self) -> CTMC:
        """The fault-count CTMC (states are integers 0..N-1)."""
        return self._chain

    def _build_chain(self) -> CTMC:
        n = self.performance.n
        lam = self.rates.lam_lc
        mu = self.repair.mu
        b = CTMCBuilder()
        for k in range(n - 1):
            b.add_transition(k, k + 1, (n - k) * lam)
        for k in range(1, n):
            if self.repair_style == "bulk":
                b.add_transition(k, 0, mu)
            else:
                b.add_transition(k, k - 1, k * mu)
        return b.build()

    def state_distribution(self) -> np.ndarray:
        """Stationary distribution over fault counts 0..N-1."""
        return stationary_distribution(self._chain)

    def steady_state(self, load: float) -> PerformabilityResult:
        """Steady-state performability at the given uniform ``load``."""
        pi = self.state_distribution()
        rewards = self._rewards_at(load)
        return PerformabilityResult(
            state_probabilities=pi,
            expected_degradation_percent=float(pi @ rewards),
            any_fault_probability=float(1.0 - pi[0]),
        )

    def transient(self, load: float, times: np.ndarray) -> np.ndarray:
        """Expected delivered-bandwidth percentage at each time, starting
        from the all-healthy state.

        Uses the dense expm solver: the fault-count chain has at most N
        states but is evaluated at horizons of up to millions of hours,
        where Krylov stepping (expm_multiply) would take O(||Q|| t) steps.
        """
        dist = transient_distribution(self._chain, times, method="expm")
        return dist @ self._rewards_at(load)

    def _rewards_at(self, load: float) -> np.ndarray:
        n = self.performance.n
        rewards = np.empty(n)
        rewards[0] = 100.0
        for k in range(1, n):
            rewards[k] = self.performance.degradation_percent(k, load)
        return rewards

"""The paper's primary contribution: DRA dependability models.

This subpackage implements Section 5 of the paper exactly:

* :mod:`~repro.core.parameters` -- the component failure rates of Section 5
  and the (N, M) router configuration.
* :mod:`~repro.core.states` -- the typed state space of the Figure 5(b)
  Markov model.
* :mod:`~repro.core.reliability` -- BDR (Fig. 5a) and DRA (Fig. 5b)
  reliability chains and ``R(t)`` evaluation (reproduces Figure 6).
* :mod:`~repro.core.availability` -- repair-augmented chains and
  steady-state availability (reproduces Figure 7).
* :mod:`~repro.core.performance` -- the Section 5.3 bandwidth-degradation
  model (reproduces Figure 8).
* :mod:`~repro.core.nines` -- the paper's "9^x" availability notation.
"""

from repro.core.parameters import FailureRates, DRAConfig, RepairPolicy
from repro.core.states import (
    AllHealthy,
    InterZoneState,
    UAPIState,
    UAPDState,
    BusDown,
    Failed,
)
from repro.core.reliability import (
    build_bdr_reliability_chain,
    build_dra_reliability_chain,
    bdr_reliability,
    dra_reliability,
    ReliabilityResult,
)
from repro.core.availability import (
    build_bdr_availability_chain,
    build_dra_availability_chain,
    bdr_availability,
    dra_availability,
    AvailabilityResult,
)
from repro.core.performance import (
    PerformanceModel,
    bandwidth_to_faulty,
    degradation_series,
)
from repro.core.nines import count_nines, nines_notation, from_nines
from repro.core.mttf import MTTFResult, bdr_mttf, dra_mttf, mttf_improvement
from repro.core.importance import (
    RateImportance,
    reliability_rate_sensitivity,
    unavailability_elasticities,
)
from repro.core.cost import CostModel, CostedDesign, compare_designs
from repro.core.hetero import HeterogeneousPerformanceModel, HeteroDegradation
from repro.core.performability import PerformabilityModel, PerformabilityResult
from repro.core.interval import bdr_interval_availability, dra_interval_availability

__all__ = [
    "FailureRates",
    "DRAConfig",
    "RepairPolicy",
    "AllHealthy",
    "InterZoneState",
    "UAPIState",
    "UAPDState",
    "BusDown",
    "Failed",
    "build_bdr_reliability_chain",
    "build_dra_reliability_chain",
    "bdr_reliability",
    "dra_reliability",
    "ReliabilityResult",
    "build_bdr_availability_chain",
    "build_dra_availability_chain",
    "bdr_availability",
    "dra_availability",
    "AvailabilityResult",
    "PerformanceModel",
    "bandwidth_to_faulty",
    "degradation_series",
    "count_nines",
    "nines_notation",
    "from_nines",
    "MTTFResult",
    "bdr_mttf",
    "dra_mttf",
    "mttf_improvement",
    "RateImportance",
    "unavailability_elasticities",
    "reliability_rate_sensitivity",
    "CostModel",
    "CostedDesign",
    "compare_designs",
    "HeterogeneousPerformanceModel",
    "HeteroDegradation",
    "PerformabilityModel",
    "PerformabilityResult",
    "bdr_interval_availability",
    "dra_interval_availability",
]

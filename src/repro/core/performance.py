"""Performance-degradation model of Section 5.3 (reproduces Figure 8).

With ``X_faulty`` failed linecards out of ``N`` (LC_out assumed fault-free
and every non-faulty LC able to cover, i.e. the paper's M = N lower bound),
each healthy LC offers its headroom

    ``psi = c_lc - L * c_lc``

to the faulty ones.  The bandwidth a faulty LC actually receives is capped
by three quantities:

1. what it needs (``L * c_lc`` -- it cannot use more than its load),
2. an equal share of the aggregate headroom
   (``X_nonfaulty * psi / X_faulty``), and
3. an equal share of the EIB capacity (``B_BUS / X_faulty``), since the sum
   of coverage bandwidth cannot exceed the bus.

Figure 8 plots ``100 * B_faulty / (L * c_lc)`` against ``X_faulty`` for
``N = 6`` and loads 15%..70%.  The paper does not state a numeric
``B_BUS`` and its figure shows no bus-capacity kink, so the default here is
non-binding (``N * c_lc``); the ablation bench sweeps binding values.

This module also hosts :func:`promised_bandwidth` -- the ``B_prom``
scale-back rule of Section 4 -- which the executable router model
(:mod:`repro.router.bandwidth`) reuses so the simulator and the analysis
share one formula.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_LC_CAPACITY_GBPS",
    "PerformanceModel",
    "bandwidth_to_faulty",
    "degradation_series",
    "promised_bandwidth",
]

#: Per-linecard capacity ``c_LC`` in Gb/s.  The paper's Section 5.3
#: evaluation (Figure 8) assumes OC-192-class 10 Gb/s linecards; every
#: ``c_lc`` default in the analysis layer refers back to this constant.
DEFAULT_LC_CAPACITY_GBPS = 10.0


def promised_bandwidth(
    requests: Sequence[float] | np.ndarray, bus_capacity: float
) -> np.ndarray:
    """Section 4's ``B_prom`` allocation over the EIB data lines.

    If the total requested bandwidth fits the bus, every LC gets what it
    asked for; otherwise all requests are scaled back proportionally:
    ``B_prom = (B_LC / B_LCT) * B_BUS``.

    Parameters
    ----------
    requests:
        Per-LC requested bandwidths ``B_LC`` (nonnegative).
    bus_capacity:
        ``B_BUS``, the data-line capacity (positive).

    Returns
    -------
    numpy.ndarray
        Per-LC promised bandwidths, same order as ``requests``.
    """
    req = np.asarray(requests, dtype=np.float64)
    if req.size and req.min() < 0.0:
        raise ValueError("bandwidth requests must be nonnegative")
    if bus_capacity <= 0.0:
        raise ValueError(f"bus capacity must be positive, got {bus_capacity}")
    total = req.sum()
    if total <= bus_capacity:
        return req.copy()
    return req * (bus_capacity / total)


@dataclass(frozen=True)
class PerformanceModel:
    """Router-level parameters of the Section 5.3 analysis.

    Parameters
    ----------
    n:
        Number of linecards ``N`` (the paper's Figure 8 uses 6).
    c_lc:
        Per-LC capacity in Gbps (paper: 10).
    b_bus:
        EIB data-line capacity in Gbps; ``None`` means the non-binding
        default ``n * c_lc``.
    """

    n: int
    c_lc: float = DEFAULT_LC_CAPACITY_GBPS
    b_bus: float | None = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"N must be >= 2, got {self.n}")
        if self.c_lc <= 0.0:
            raise ValueError(f"c_lc must be positive, got {self.c_lc}")
        if self.b_bus is not None and self.b_bus <= 0.0:
            raise ValueError(f"b_bus must be positive, got {self.b_bus}")

    @property
    def bus_capacity(self) -> float:
        """Effective ``B_BUS`` (the non-binding default when unset)."""
        return self.n * self.c_lc if self.b_bus is None else self.b_bus

    def headroom(self, load: float) -> float:
        """``psi``: spare bandwidth one healthy LC offers at ``load``."""
        _check_load(load)
        return self.c_lc * (1.0 - load)

    def required(self, load: float) -> float:
        """Bandwidth a faulty LC needs to carry its own traffic."""
        _check_load(load)
        return self.c_lc * load

    def bandwidth_to_faulty(self, x_faulty: int, load: float) -> float:
        """``B_faulty``: Gbps available to each faulty LC (see module docs)."""
        _check_load(load)
        if not 0 <= x_faulty <= self.n - 1:
            raise ValueError(
                f"x_faulty must lie in [0, N-1] = [0, {self.n - 1}], got {x_faulty}"
            )
        required = self.required(load)
        if x_faulty == 0:
            return required
        x_nonfaulty = self.n - x_faulty
        offered_share = x_nonfaulty * self.headroom(load) / x_faulty
        bus_share = self.bus_capacity / x_faulty
        return min(required, offered_share, bus_share)

    def degradation_percent(self, x_faulty: int, load: float) -> float:
        """Figure 8's y-axis: ``100 * B_faulty / required``."""
        required = self.required(load)
        if required == 0.0:
            return 100.0
        return 100.0 * self.bandwidth_to_faulty(x_faulty, load) / required

    def saturation_point(self, load: float) -> int | None:
        """Smallest ``X_faulty`` at which faulty LCs stop receiving their
        full required bandwidth (Figure 8 dips below 100%), or ``None``
        when coverage holds all the way to ``N - 1`` faults.

        Exact in float arithmetic: ``B_faulty`` is a min of three exact
        expressions, so the comparison needs no tolerance.
        """
        _check_load(load)
        required = self.required(load)
        for x_faulty in range(1, self.n):
            if self.bandwidth_to_faulty(x_faulty, load) < required:
                return x_faulty
        return None


def bandwidth_to_faulty(
    x_faulty: int,
    load: float,
    *,
    n: int,
    c_lc: float = DEFAULT_LC_CAPACITY_GBPS,
    b_bus: float | None = None,
) -> float:
    """Functional wrapper over :meth:`PerformanceModel.bandwidth_to_faulty`."""
    return PerformanceModel(n=n, c_lc=c_lc, b_bus=b_bus).bandwidth_to_faulty(
        x_faulty, load
    )


def degradation_series(
    loads: Iterable[float],
    *,
    n: int = 6,
    c_lc: float = DEFAULT_LC_CAPACITY_GBPS,
    b_bus: float | None = None,
) -> Mapping[float, np.ndarray]:
    """Figure 8 data: for each load, the percentage series over
    ``X_faulty = 1 .. N-1``.

    Returns a dict mapping load -> array of length ``N-1``.
    """
    model = PerformanceModel(n=n, c_lc=c_lc, b_bus=b_bus)
    out: dict[float, np.ndarray] = {}
    for load in loads:
        out[float(load)] = np.array(
            [model.degradation_percent(x, load) for x in range(1, n)]
        )
    return out


def _check_load(load: float) -> None:
    if not 0.0 <= load < 1.0:
        raise ValueError(f"load must lie in [0, 1), got {load}")

"""Cost-effectiveness of DRA versus explicit linecard sparing.

The paper's economic claim -- "significant cost-savings as well as higher
dependability measures" -- is stated but never quantified.  This module
does the arithmetic.  The alternative to DRA that existing routers
actually offer is **1:1 LC sparing per protocol type**: one standby LC
for every protocol the chassis terminates, plus a failover switch.

Model (normalized to the cost of one plain LC = 1.0):

* BDR chassis: ``N`` linecards.
* BDR + sparing: ``N`` linecards + one spare per distinct protocol
  (``P`` protocols) + a failover-switch overhead per spare.
* DRA chassis: ``N`` linecards, each carrying a bus-controller increment,
  plus the one-time EIB upgrade; the PDLU split itself is taken as
  cost-neutral (an FPGA replaces protocol-specific ASIC area -- the paper
  argues it *lowers* development cost, so neutrality is conservative).

Dependability of the sparing alternative: a protocol group with one
spare fails when a second LC of the group fails before the first repair
completes -- a k-out-of-(k+1) repairable group, built here as a small
CTMC and solved exactly for comparison with DRA's availability at equal
(or lower) cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.availability import dra_availability
from repro.core.parameters import DRAConfig, FailureRates, RepairPolicy
from repro.markov import CTMCBuilder, stationary_distribution

__all__ = ["CostModel", "CostedDesign", "compare_designs", "spared_group_availability"]


@dataclass(frozen=True)
class CostModel:
    """Normalized component costs (one plain linecard = 1.0)."""

    lc: float = 1.0
    spare_switch_overhead: float = 0.10  # failover switching per spare
    bus_controller: float = 0.03  # per-LC EIB attachment
    eib_upgrade: float = 0.25  # chassis-wide bus upgrade, one-time

    def bdr_cost(self, n: int) -> float:
        """Plain BDR chassis."""
        return n * self.lc

    def sparing_cost(self, n: int, n_protocols: int) -> float:
        """BDR with one standby LC per protocol type."""
        return n * self.lc + n_protocols * (self.lc + self.spare_switch_overhead)

    def dra_cost(self, n: int) -> float:
        """DRA chassis: per-LC bus controllers plus the EIB upgrade."""
        return n * (self.lc + self.bus_controller) + self.eib_upgrade


def spared_group_availability(
    group_size: int,
    repair: RepairPolicy,
    rates: FailureRates | None = None,
) -> float:
    """Availability of one LC in a 1:``group_size`` spared protocol group.

    States count failed LCs in the group of ``group_size`` active cards
    plus one standby.  Service survives one outstanding failure (the
    spare swaps in); a second concurrent failure takes a served LC down.
    Repair returns the system to fully-spared at rate ``mu`` regardless
    of how many cards are down (matching the paper's repair model).
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    rates = rates or FailureRates()
    lam = rates.lam_lc
    b = CTMCBuilder()
    # State k = number of failed cards (0..group_size+1 capped at 2 --
    # beyond two failures the group is already down and further failures
    # do not change service state before repair).
    b.add_transition(0, 1, (group_size + 1) * lam)
    b.add_transition(1, 2, group_size * lam)
    b.add_transition(1, 0, repair.mu)
    b.add_transition(2, 0, repair.mu)
    chain = b.build()
    pi = stationary_distribution(chain)
    return float(pi[chain.index_of(0)] + pi[chain.index_of(1)])


@dataclass(frozen=True)
class CostedDesign:
    """One design point in the cost-dependability plane."""

    label: str
    cost: float
    availability: float

    @property
    def unavailability(self) -> float:
        """``1 - A``."""
        return 1.0 - self.availability

    @property
    def downtime_minutes_per_year(self) -> float:
        """Expected annual downtime in minutes."""
        return self.unavailability * 8766.0 * 60.0


def compare_designs(
    n: int,
    n_protocols: int,
    repair: RepairPolicy | None = None,
    rates: FailureRates | None = None,
    costs: CostModel | None = None,
) -> list[CostedDesign]:
    """BDR vs 1:1-spared BDR vs DRA at one chassis size.

    The DRA point uses ``M = ceil(N / P)`` (protocols spread evenly).
    """
    repair = repair or RepairPolicy()
    rates = rates or FailureRates()
    costs = costs or CostModel()
    if not 1 <= n_protocols <= n:
        raise ValueError("need 1 <= n_protocols <= n")

    # Plain BDR: an LC is down whenever any of its components is.
    a_bdr = repair.mu / (repair.mu + rates.lam_lc)

    group = n // n_protocols
    a_spared = spared_group_availability(group, repair, rates)

    m = max(2, -(-n // n_protocols))  # ceil; DRA needs at least one peer PDLU
    a_dra = dra_availability(DRAConfig(n=n, m=min(m, n)), repair, rates).availability

    return [
        CostedDesign("BDR", costs.bdr_cost(n), a_bdr),
        CostedDesign(
            f"BDR + 1:{group} sparing", costs.sparing_cost(n, n_protocols), a_spared
        ),
        CostedDesign(f"DRA(N={n},M={min(m, n)})", costs.dra_cost(n), a_dra),
    ]

"""Component-importance analysis for the DRA dependability models.

Answers "which failure rate matters most?" -- the question behind the
paper's observation that *"the number of PI units has a greater impact on
R(t) than the number of PDLU's"*.  Two measures:

* **rate elasticity** of unavailability: the relative change in
  steady-state unavailability per relative change in one component's
  failure rate (computed by central differences on the exact stationary
  solve -- cheap at these chain sizes);
* **reliability sensitivity**: ``dR(t)/d lambda_x`` at a chosen horizon,
  through :func:`repro.markov.sensitivity.transient_sensitivity`.

A rate with elasticity ~1 dominates the measure; ~0 means the measure is
insensitive to that component.  The benches print a tornado table over
all five rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.availability import dra_availability
from repro.core.parameters import DRAConfig, FailureRates, RepairPolicy
from repro.core.reliability import dra_reliability

__all__ = ["RATE_FIELDS", "RateImportance", "unavailability_elasticities",
           "reliability_rate_sensitivity"]

#: The independent component rates (combined rates are derived from these
#: so perturbations stay self-consistent).
RATE_FIELDS = ("lam_lpd", "lam_lpi", "lam_bc", "lam_bus")


def _consistent(rates: FailureRates, field: str, value: float) -> FailureRates:
    """Perturb one atomic rate and rebuild the derived combined rates."""
    atomic = {
        "lam_lpd": rates.lam_lpd,
        "lam_lpi": rates.lam_lpi,
        "lam_bc": rates.lam_bc,
        "lam_bus": rates.lam_bus,
    }
    atomic[field] = value
    return FailureRates(
        lam_lc=atomic["lam_lpd"] + atomic["lam_lpi"],
        lam_lpd=atomic["lam_lpd"],
        lam_lpi=atomic["lam_lpi"],
        lam_bc=atomic["lam_bc"],
        lam_bus=atomic["lam_bus"],
        lam_pd=atomic["lam_lpd"] + atomic["lam_bc"],
        lam_pi=atomic["lam_lpi"] + atomic["lam_bc"],
    )


@dataclass(frozen=True)
class RateImportance:
    """Importance of one component rate."""

    field: str
    base_rate: float
    elasticity: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.field}: elasticity {self.elasticity:+.3f}"


def unavailability_elasticities(
    config: DRAConfig,
    repair: RepairPolicy | None = None,
    rates: FailureRates | None = None,
    *,
    rel_step: float = 1e-3,
) -> list[RateImportance]:
    """Elasticity of steady-state unavailability w.r.t. each atomic rate.

    ``elasticity = (lambda / U) * dU/d lambda`` by central differences;
    results are sorted most-important first.
    """
    repair = repair or RepairPolicy()
    rates = rates or FailureRates()
    out: list[RateImportance] = []
    for field in RATE_FIELDS:
        base = getattr(rates, field)
        h = rel_step * base
        u_hi = 1.0 - dra_availability(
            config, repair, _consistent(rates, field, base + h)
        ).availability
        u_lo = 1.0 - dra_availability(
            config, repair, _consistent(rates, field, base - h)
        ).availability
        u0 = 1.0 - dra_availability(config, repair, rates).availability
        dU = (u_hi - u_lo) / (2.0 * h)
        out.append(
            RateImportance(field=field, base_rate=base, elasticity=base * dU / u0)
        )
    out.sort(key=lambda r: abs(r.elasticity), reverse=True)
    return out


def reliability_rate_sensitivity(
    config: DRAConfig,
    horizon: float,
    rates: FailureRates | None = None,
    *,
    rel_step: float = 1e-3,
) -> dict[str, float]:
    """``dR(horizon)/d lambda_x`` for each atomic rate (central diff)."""
    rates = rates or FailureRates()
    t = np.array([horizon])
    out: dict[str, float] = {}
    for field in RATE_FIELDS:
        base = getattr(rates, field)
        h = rel_step * base
        r_hi = dra_reliability(
            config, t, _consistent(rates, field, base + h)
        ).reliability[0]
        r_lo = dra_reliability(
            config, t, _consistent(rates, field, base - h)
        ).reliability[0]
        out[field] = (r_hi - r_lo) / (2.0 * h)
    return out

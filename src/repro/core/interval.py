"""Interval (mission) availability of a linecard.

The paper reports only steady-state availability; an operator signing an
SLA over a finite window cares about **interval availability** -- the
expected fraction of ``[0, t]`` the LC is serviceable -- and a mission
planner cares about **mission reliability** over a deployment window.
Both drop out of the repairable chains via the Markov reward machinery.
"""

from __future__ import annotations

import numpy as np

from repro.core.availability import (
    build_bdr_availability_chain,
    build_dra_availability_chain,
)
from repro.core.parameters import DRAConfig, FailureRates, RepairPolicy
from repro.core.reliability import BDR_WORKING
from repro.core.states import AllHealthy, Failed
from repro.markov import interval_availability as _interval_availability

__all__ = ["bdr_interval_availability", "dra_interval_availability"]


def bdr_interval_availability(
    times: np.ndarray,
    repair: RepairPolicy | None = None,
    rates: FailureRates | None = None,
) -> np.ndarray:
    """Expected uptime fraction of a BDR linecard over ``[0, t]``.

    Starts at 1.0 (launched healthy) and decays toward the steady-state
    availability.
    """
    chain = build_bdr_availability_chain(repair, rates)
    operational = [s for s in chain.states if s != Failed]
    return _interval_availability(
        chain, operational, times, chain.initial_distribution(BDR_WORKING)
    )


def dra_interval_availability(
    config: DRAConfig,
    times: np.ndarray,
    repair: RepairPolicy | None = None,
    rates: FailureRates | None = None,
) -> np.ndarray:
    """Expected uptime fraction of a DRA linecard over ``[0, t]``."""
    chain = build_dra_availability_chain(config, repair, rates)
    operational = [s for s in chain.states if s != Failed]
    return _interval_availability(
        chain, operational, times, chain.initial_distribution(AllHealthy)
    )

"""Reliability models of Section 5.1 (reproduces Figure 6).

``R(t)`` is the probability that packets can still be transferred to and
from the LC under analysis (LCUA) at every instant up to ``t`` -- i.e. the
probability the absorbing chain has not reached state ``F``.

Two chains are built:

* **BDR** (Figure 5a): a linecard with no coverage; any LC component
  failure is fatal, so ``R(t) = exp(-lam_lc * t)``.
* **DRA** (Figure 5b): the zone-structured chain described in
  :mod:`repro.core.states`, with the transition structure below
  (``P = N - 2`` covering PI pools, ``D = M - 1`` covering PDLUs):

  From Zone-LC_inter state ``(i, j)``:

  - a covering PI group fails at rate ``(P - i) * lam_pi`` -> ``(i+1, j)``.
    At the grid boundary (``i = P - 1``) the ``paper`` variant has *no*
    such transition -- the paper's state list stops at ``i = N - 3``, and
    its own Figure 7 numbers (9^8 for N=3, M=2) are only reproduced when
    pool exhaustion before an LCUA failure is not modeled.  The
    ``extended`` variant adds the exhausted-pool states instead;
  - a covering PDLU fails at rate ``(D - j) * lam_pd`` -> ``(i, j+1)``
    (same boundary handling at ``j = D - 1``);
  - LCUA's PI units fail at ``lam_lpi`` -> ``i_PI``;
  - LCUA's PDLU fails at ``lam_lpd`` -> ``j_PD``;
  - the EIB or LCUA's bus controller fails at ``lam_bus + lam_bc`` -> ``T'``.

  From Zone-LCUA state ``i_PI`` (LCUA PI units down, covered):

  - a covering PI group fails at ``(P - i) * lam_pi`` -> ``(i+1)_PI``
    or ``F`` when the last group is lost;
  - the EIB or LCUA's bus controller fails at ``lam_bus + lam_bc``;
    destination ``T'`` in the ``paper`` variant (the literal "all states
    move to T'" of Section 5.1 -- required to reproduce the Figure 7
    saturation at 9^8 for mu = 1/12) or ``F`` in ``strict``/``extended``
    (see DESIGN.md decision 3).

  ``j_PD`` is symmetric with ``lam_pd`` over ``D`` PDLUs.

  From ``T'``: any LCUA component failure (rate ``lam_lc``) -> ``F``
  (coverage is impossible without the EIB).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.parameters import DRAConfig, FailureRates
from repro.core.states import (
    AllHealthy,
    BusDown,
    Failed,
    InterZoneState,
    UAPDState,
    UAPIState,
)
from repro.markov import CTMC, CTMCBuilder, transient_distribution

__all__ = [
    "build_bdr_reliability_chain",
    "build_dra_reliability_chain",
    "bdr_reliability",
    "dra_reliability",
    "ReliabilityResult",
    "BDR_WORKING",
]

#: Working-state label of the two-state BDR chain.
BDR_WORKING = "W"


def build_bdr_reliability_chain(rates: FailureRates | None = None) -> CTMC:
    """Two-state BDR chain of Figure 5(a): working -> F at ``lam_lc``."""
    rates = rates or FailureRates()
    b = CTMCBuilder()
    b.add_transition(BDR_WORKING, Failed, rates.lam_lc)
    return b.build()


def build_dra_reliability_chain(
    config: DRAConfig, rates: FailureRates | None = None
) -> CTMC:
    """DRA chain of Figure 5(b) for the given (N, M) configuration.

    The state enumeration order is deterministic in ``config`` so that
    perturbed chains (sensitivity analysis) are index-compatible.
    """
    rates = rates or FailureRates()
    b = CTMCBuilder()
    P = config.n_inter_pi  # covering PI groups, N - 2
    D = config.n_inter_pd  # covering PDLUs, M - 1
    extended = config.variant == "extended"
    # Zone-LC_inter grid: the paper's state list stops at i = N - 3 and
    # j = M - 2 (at least one covering unit of each kind left); the
    # extended variant adds the exhausted-pool rows/columns.
    i_max = P if extended else P - 1
    j_max = D if extended else D - 1
    # Where a Zone-LCUA state goes when the EIB / LCUA bus controller
    # fails: the literal paper model diverts to T', the stricter readings
    # absorb to F.
    ua_bus_target = BusDown if config.variant == "paper" else Failed
    lam_t = rates.lam_t_prime

    b.add_state(AllHealthy)

    for i in range(i_max + 1):
        for j in range(j_max + 1):
            s = InterZoneState(i, j)
            # Covering PI group failure (the paper variant drops this
            # transition at the grid boundary; see module docstring).
            if i + 1 <= i_max:
                b.add_transition(s, InterZoneState(i + 1, j), (P - i) * rates.lam_pi)
            # Covering PDLU failure.
            if j + 1 <= j_max:
                b.add_transition(s, InterZoneState(i, j + 1), (D - j) * rates.lam_pd)
            # LCUA PI failure: coverage by the remaining PI groups, if any.
            dst = UAPIState(i) if i <= P - 1 else Failed
            b.add_transition(s, dst, rates.lam_lpi)
            # LCUA PDLU failure: coverage by the remaining same-protocol PDLUs.
            dst = UAPDState(j) if j <= D - 1 else Failed
            b.add_transition(s, dst, rates.lam_lpd)
            # EIB / LCUA bus controller failure while LCUA is healthy.
            b.add_transition(s, BusDown, lam_t)

    for i in range(P):
        s = UAPIState(i)
        dst = UAPIState(i + 1) if i + 1 <= P - 1 else Failed
        b.add_transition(s, dst, (P - i) * rates.lam_pi)
        b.add_transition(s, ua_bus_target, lam_t)

    for j in range(D):
        s = UAPDState(j)
        dst = UAPDState(j + 1) if j + 1 <= D - 1 else Failed
        b.add_transition(s, dst, (D - j) * rates.lam_pd)
        b.add_transition(s, ua_bus_target, lam_t)

    b.add_transition(BusDown, Failed, rates.lam_lc)
    b.add_state(Failed)
    return b.build()


@dataclass(frozen=True)
class ReliabilityResult:
    """A reliability curve: ``reliability[k] = R(times[k])``."""

    times: np.ndarray
    reliability: np.ndarray
    label: str
    config: DRAConfig | None = None
    rates: FailureRates = field(default_factory=FailureRates)

    def at(self, t: float) -> float:
        """``R(t)`` by linear interpolation on the computed grid."""
        return float(np.interp(t, self.times, self.reliability))

    def __post_init__(self) -> None:
        if self.times.shape != self.reliability.shape:
            raise ValueError("times and reliability must have matching shapes")


def bdr_reliability(
    times: np.ndarray,
    rates: FailureRates | None = None,
    *,
    method: str = "expm_multiply",
) -> ReliabilityResult:
    """BDR reliability curve (analytically ``exp(-lam_lc t)``).

    Solved through the Markov machinery rather than the closed form so the
    BDR and DRA numbers share one code path; a unit test pins the solver
    output to the closed form.
    """
    rates = rates or FailureRates()
    times = np.asarray(times, dtype=np.float64)
    chain = build_bdr_reliability_chain(rates)
    pi = transient_distribution(
        chain, times, chain.initial_distribution(BDR_WORKING), method=method
    )
    r = 1.0 - pi[:, chain.index_of(Failed)]
    return ReliabilityResult(times=times, reliability=r, label="BDR", rates=rates)


def dra_reliability(
    config: DRAConfig,
    times: np.ndarray,
    rates: FailureRates | None = None,
    *,
    method: str = "expm_multiply",
) -> ReliabilityResult:
    """DRA reliability curve for ``config`` on the given time grid."""
    rates = rates or FailureRates()
    times = np.asarray(times, dtype=np.float64)
    chain = build_dra_reliability_chain(config, rates)
    pi = transient_distribution(
        chain, times, chain.initial_distribution(AllHealthy), method=method
    )
    r = 1.0 - pi[:, chain.index_of(Failed)]
    label = f"DRA(N={config.n},M={config.m})"
    return ReliabilityResult(
        times=times, reliability=r, label=label, config=config, rates=rates
    )

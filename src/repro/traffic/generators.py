"""Packet sources driving the executable router.

Every source emits :class:`~repro.router.packets.Packet` objects into a
router's :meth:`~repro.router.router.Router.inject` according to its
arrival process:

* :class:`PoissonSource` -- exponential inter-arrivals (the classic open
  workload);
* :class:`CBRSource` -- deterministic constant bit rate;
* :class:`OnOffSource` -- two-state Markov-modulated bursts, matching a
  target long-run utilization while stressing buffers.

Destination addresses are drawn inside the destination LC's /16 of the
:meth:`~repro.router.routing.RouteProcessor.default_full_mesh` topology,
so LFE lookups are real LPM queries, not pass-throughs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.router.packets import Packet
from repro.router.router import Router
from repro.router.routing import ipv4
from repro.traffic.flows import FlowSpec, TrafficMatrix

__all__ = [
    "TrafficSource",
    "PoissonSource",
    "CBRSource",
    "OnOffSource",
    "TraceSource",
    "wire_uniform_load",
]

_BASE_ADDR = ipv4("10.0.0.0")


def _draw_dst_addr(dst_lc: int, rng: np.random.Generator) -> int:
    """A host address inside LC ``dst_lc``'s /16."""
    return _BASE_ADDR + (dst_lc << 16) + int(rng.integers(1, 1 << 16))


@dataclass
class TrafficSource:
    """Base class: one source per flow, started once and self-rescheduling."""

    router: Router
    flow: FlowSpec
    rng: np.random.Generator
    emitted: int = 0
    _stopped: bool = False

    def start(self) -> None:
        """Arm the first arrival."""
        self._schedule_next()

    def stop(self) -> None:
        """Stop emitting after the current pending arrival (if any)."""
        self._stopped = True

    def _schedule_next(self) -> None:
        if self._stopped or self.flow.packets_per_second <= 0.0:
            return
        self.router.engine.schedule_in(
            self._next_gap(), self._emit, label=f"traffic:{self.flow.src_lc}"
        )

    def _emit(self) -> None:
        if self._stopped:
            return
        packet = Packet(
            src_lc=self.flow.src_lc,
            dst_lc=self.flow.dst_lc,
            dst_addr=_draw_dst_addr(self.flow.dst_lc, self.rng),
            size_bytes=self._packet_size(),
            protocol=self.router.linecards[self.flow.src_lc].protocol,
            created_at=self.router.engine.now,
        )
        self.emitted += 1
        self.router.inject(packet)
        self._schedule_next()

    def _packet_size(self) -> int:
        return self.flow.mean_packet_bytes

    def _next_gap(self) -> float:
        raise NotImplementedError


class PoissonSource(TrafficSource):
    """Poisson arrivals at the flow's mean rate; exponential sizes truncated
    to [64, 1500] bytes around the configured mean."""

    def _next_gap(self) -> float:
        return float(self.rng.exponential(1.0 / self.flow.packets_per_second))

    def _packet_size(self) -> int:
        size = self.rng.exponential(self.flow.mean_packet_bytes)
        return int(min(max(size, 64), 1500))


class CBRSource(TrafficSource):
    """Constant bit rate: fixed sizes at fixed intervals."""

    def _next_gap(self) -> float:
        return 1.0 / self.flow.packets_per_second


class OnOffSource(TrafficSource):
    """Two-state burst source.

    While ON, packets arrive at ``burstiness`` times the mean rate; the
    ON/OFF holding times are exponential with the duty cycle chosen so the
    long-run average meets the flow's rate.
    """

    def __init__(
        self,
        router: Router,
        flow: FlowSpec,
        rng: np.random.Generator,
        *,
        burstiness: float = 4.0,
        mean_burst_s: float = 2e-3,
    ) -> None:
        super().__init__(router, flow, rng)
        if burstiness <= 1.0:
            raise ValueError(f"burstiness must exceed 1, got {burstiness}")
        self._burstiness = burstiness
        self._on = False
        self._mean_on = mean_burst_s
        # duty = 1/burstiness so that duty * burst_rate = mean rate.
        self._mean_off = mean_burst_s * (burstiness - 1.0)
        self._state_ends = 0.0

    def _next_gap(self) -> float:
        now = self.router.engine.now
        gap = 0.0
        while True:
            if now + gap >= self._state_ends:
                self._on = not self._on
                hold = self._mean_on if self._on else self._mean_off
                self._state_ends = max(now + gap, self._state_ends) + float(
                    self.rng.exponential(hold)
                )
                if not self._on:
                    gap = self._state_ends - now  # sleep through the OFF period
                    continue
            break
        on_rate = self.flow.packets_per_second * self._burstiness
        return gap + float(self.rng.exponential(1.0 / on_rate))


class TraceSource:
    """Replays an explicit packet trace: ``(time, src, dst, size_bytes)``.

    The deterministic counterpart of the stochastic sources -- tests and
    debugging sessions can script an exact packet sequence (the paper has
    no public traces; this is the hook a user with real captures would
    use).  Destination addresses fall inside the dst LC's /16 so lookups
    remain genuine.
    """

    def __init__(
        self,
        router: Router,
        trace: list[tuple[float, int, int, int]],
        rng: np.random.Generator | None = None,
    ) -> None:
        self.router = router
        self.trace = sorted(trace)
        # address-draw stream derives from the router's seeded registry
        # (the run's SeedSequence.spawn chain), never a fixed seed --
        # two routers with different config seeds must replay a trace
        # with different (but each reproducible) address draws.
        self.rng = rng if rng is not None else router.rng.stream("traffic-trace")
        self.emitted = 0
        for time, src, dst, size in self.trace:
            if time < 0.0 or size <= 0:
                raise ValueError(f"malformed trace entry {(time, src, dst, size)}")
            if src not in router.linecards or dst not in router.linecards:
                raise ValueError(f"trace references unknown LC in {(src, dst)}")

    def start(self) -> None:
        """Schedule every trace entry."""
        for time, src, dst, size in self.trace:
            self.router.engine.schedule(
                time,
                lambda src=src, dst=dst, size=size: self._emit(src, dst, size),
                label="traffic:trace",
            )

    def _emit(self, src: int, dst: int, size: int) -> None:
        packet = Packet(
            src_lc=src,
            dst_lc=dst,
            dst_addr=_draw_dst_addr(dst, self.rng),
            size_bytes=size,
            protocol=self.router.linecards[src].protocol,
            created_at=self.router.engine.now,
        )
        self.emitted += 1
        self.router.inject(packet)


def wire_uniform_load(
    router: Router,
    load: float,
    *,
    mean_packet_bytes: int = 500,
    source_cls: type[TrafficSource] = PoissonSource,
    start: bool = True,
) -> list[TrafficSource]:
    """Attach the paper's uniform workload to ``router``.

    Builds :meth:`TrafficMatrix.uniform` at ``load``, declares the offered
    load on every LC (sizing coverage solicitations), and starts one
    source per flow.  Returns the sources for later ``stop()``.
    """
    matrix = TrafficMatrix.uniform(
        router.config.n_linecards, load, router.config.lc_capacity_bps
    )
    sources: list[TrafficSource] = []
    for lc_id in range(matrix.n):
        router.set_offered_load(lc_id, matrix.offered_at(lc_id))
    for i, flow in enumerate(matrix.flows(mean_packet_bytes)):
        src = source_cls(router, flow, router.rng.stream(f"traffic:{i}"))
        sources.append(src)
        if start:
            src.start()
    return sources

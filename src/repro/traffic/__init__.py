"""Workload generation for the executable router.

* :mod:`~repro.traffic.flows` -- flow descriptors and destination
  matrices (uniform / hotspot), built on the paper's assumption of
  uniform loads at link utilizations between 15% and 70%.
* :mod:`~repro.traffic.generators` -- packet sources: Poisson, constant
  bit-rate, and two-state on/off (bursty) processes targeting a
  configured utilization of the linecard.
"""

from repro.traffic.flows import FlowSpec, TrafficMatrix
from repro.traffic.generators import (
    CBRSource,
    OnOffSource,
    PoissonSource,
    TraceSource,
    TrafficSource,
    wire_uniform_load,
)

__all__ = [
    "FlowSpec",
    "TrafficMatrix",
    "TrafficSource",
    "PoissonSource",
    "CBRSource",
    "OnOffSource",
    "TraceSource",
    "wire_uniform_load",
]

"""Flow descriptors and destination matrices."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FlowSpec", "TrafficMatrix"]


@dataclass(frozen=True)
class FlowSpec:
    """One unidirectional flow between two linecards."""

    src_lc: int
    dst_lc: int
    rate_bps: float
    mean_packet_bytes: int = 500

    def __post_init__(self) -> None:
        if self.rate_bps < 0.0:
            raise ValueError(f"negative rate {self.rate_bps}")
        if self.mean_packet_bytes <= 0:
            raise ValueError(f"invalid packet size {self.mean_packet_bytes}")

    @property
    def packets_per_second(self) -> float:
        """Mean packet rate implied by the byte rate and packet size."""
        return self.rate_bps / (self.mean_packet_bytes * 8.0)


class TrafficMatrix:
    """An ``n x n`` demand matrix (bps from LC ``i`` to LC ``j``).

    The diagonal is zero: a router does not hairpin traffic to the
    arriving linecard in this model.
    """

    def __init__(self, demands: np.ndarray) -> None:
        demands = np.asarray(demands, dtype=np.float64)
        if demands.ndim != 2 or demands.shape[0] != demands.shape[1]:
            raise ValueError(f"demand matrix must be square, got {demands.shape}")
        if demands.min() < 0.0:
            raise ValueError("demands must be nonnegative")
        if np.any(np.diag(demands) != 0.0):
            raise ValueError("self-directed demands are not allowed")
        self._d = demands

    @classmethod
    def uniform(cls, n: int, load: float, capacity_bps: float = 10e9) -> "TrafficMatrix":
        """The paper's workload: every LC offers ``load * capacity``,
        spread evenly over the other ``n - 1`` LCs."""
        if not 0.0 <= load < 1.0:
            raise ValueError(f"load must lie in [0, 1), got {load}")
        per_pair = load * capacity_bps / (n - 1)
        d = np.full((n, n), per_pair)
        np.fill_diagonal(d, 0.0)
        return cls(d)

    @classmethod
    def hotspot(
        cls,
        n: int,
        load: float,
        hot_lc: int,
        hot_fraction: float = 0.5,
        capacity_bps: float = 10e9,
    ) -> "TrafficMatrix":
        """Uniform base load with ``hot_fraction`` of every LC's traffic
        aimed at one destination (stress case for the fabric port and for
        coverage of that LC)."""
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must lie in [0, 1], got {hot_fraction}")
        if not 0 <= hot_lc < n:
            raise ValueError(f"hot_lc {hot_lc} out of range")
        total = load * capacity_bps
        d = np.zeros((n, n))
        for src in range(n):
            others = [j for j in range(n) if j != src]
            cold = [j for j in others if j != hot_lc]
            if src == hot_lc:
                for j in others:
                    d[src, j] = total / len(others)
                continue
            d[src, hot_lc] = total * hot_fraction
            for j in cold:
                d[src, j] = total * (1.0 - hot_fraction) / len(cold)
        return cls(d)

    @property
    def n(self) -> int:
        """Number of linecards."""
        return self._d.shape[0]

    def demand(self, src: int, dst: int) -> float:
        """Offered bps from ``src`` to ``dst``."""
        return float(self._d[src, dst])

    def offered_at(self, src: int) -> float:
        """Total bps entering at ``src``."""
        return float(self._d[src].sum())

    def flows(self, mean_packet_bytes: int = 500) -> list[FlowSpec]:
        """All nonzero entries as flow specs."""
        out = []
        for src in range(self.n):
            for dst in range(self.n):
                rate = self._d[src, dst]
                if rate > 0.0:
                    out.append(FlowSpec(src, dst, rate, mean_packet_bytes))
        return out

    def as_array(self) -> np.ndarray:
        """A copy of the demand matrix."""
        return self._d.copy()

#!/usr/bin/env python
"""DRA applied to a large metro switch (the paper's closing remark).

"The DRA design can also be applied to large-scale metro switches, which
have a router-like LC-based architecture."  This example works that idea
through end to end for a 16-slot metro chassis terminating four L2
protocols (4 linecards each):

1. dependability of one linecard (M = 4, N = 16) against the paper's
   router configurations,
2. economics against 1:1 sparing (which needs four spare LCs here -- one
   per protocol -- so DRA's advantage widens),
3. behavioural check on the executable router with the 4-protocol mix
   and a PDLU fault, confirming protocol-constrained coverage, and
4. graceful degradation (Figure 8 style) at metro load levels.

Run:
    python examples/metro_switch.py
"""

import numpy as np

from repro.obs.logging_setup import example_logger

from repro.core import (
    DRAConfig,
    RepairPolicy,
    compare_designs,
    dra_availability,
    dra_reliability,
    mttf_improvement,
)
from repro.core.performance import PerformanceModel
from repro.router import ComponentKind, Router, RouterConfig
from repro.router.packets import Protocol
from repro.traffic import wire_uniform_load

log = example_logger("metro_switch")

N_SLOTS = 16
PROTOCOLS = (
    Protocol.ETHERNET,
    Protocol.SONET_POS,
    Protocol.ATM,
    Protocol.FRAME_RELAY,
)


def main() -> None:
    cfg = DRAConfig(n=N_SLOTS, m=N_SLOTS // len(PROTOCOLS))
    repair = RepairPolicy.half_day()

    log.info(f"Metro switch: {N_SLOTS} slots, {len(PROTOCOLS)} protocols "
          f"({cfg.m} linecards each), repairs within half a day\n")

    # 1. Dependability.
    t = np.array([40_000.0, 100_000.0])
    rel = dra_reliability(cfg, t)
    avail = dra_availability(cfg, repair)
    log.info("Linecard dependability:")
    log.info(f"  R(40,000 h) = {rel.reliability[0]:.4f}, "
          f"R(100,000 h) = {rel.reliability[1]:.4f}")
    log.info(f"  steady-state availability {avail.notation} "
          f"(~{avail.downtime_minutes_per_year * 60:.2f} s downtime/yr)")
    log.info(f"  MTTF improvement over an unprotected card: "
          f"{mttf_improvement(cfg):.2f}x\n")

    # 2. Economics.
    log.info("Cost vs availability (LC cost = 1.0):")
    for d in compare_designs(N_SLOTS, len(PROTOCOLS), repair):
        log.info(f"  {d.label:<24} cost {d.cost:6.2f}   A = {d.availability:.12f}")
    log.info("")

    # 3. Executable check with the protocol mix.
    router = Router(
        RouterConfig(
            n_linecards=N_SLOTS,
            protocols=PROTOCOLS,
            eib_data_bps=40e9,
            seed=11,
        )
    )
    wire_uniform_load(router, 0.25)
    router.run(until=0.0005)
    victim = 1  # a SONET card
    router.inject_fault(victim, ComponentKind.PDLU)
    router.run(until=0.002)
    stream = router.protocol.stream(("ingress", victim, ComponentKind.PDLU))
    coverer = stream.covering_lc if stream else None
    log.info("Executable-model check (PDLU fault on a SONET card):")
    log.info(f"  delivery ratio {router.stats.delivery_ratio:.2%}, "
          f"covered deliveries {router.stats.covered_deliveries}")
    if coverer is not None:
        log.info(f"  covering LC = {coverer} "
              f"({router.linecards[coverer].protocol.value}) -- protocol match "
              f"{'OK' if router.linecards[coverer].protocol is PROTOCOLS[1] else 'VIOLATION'}")
    log.info("")

    # 4. Graceful degradation at metro loads.
    model = PerformanceModel(n=N_SLOTS)
    log.info("Bandwidth available to faulty LCs (% of required):")
    log.info(f"{'X_faulty':>9} {'L=25%':>8} {'L=50%':>8} {'L=70%':>8}")
    for x in (1, 2, 4, 8, 12, 15):
        log.info(
            f"{x:>9} {model.degradation_percent(x, 0.25):>7.1f}% "
            f"{model.degradation_percent(x, 0.50):>7.1f}% "
            f"{model.degradation_percent(x, 0.70):>7.1f}%"
        )
    log.info(
        "\nReading: at metro scale the bigger covering pool keeps full"
        "\nservice deeper into multi-failure scenarios than the N=6 router"
        "\nof Figure 8, while 1:1 sparing costs four extra linecards."
    )


if __name__ == "__main__":
    main()

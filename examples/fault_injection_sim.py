#!/usr/bin/env python
"""Fault-injection showdown: a DRA router versus a BDR router.

Runs the *executable* router model (the substrate the paper only
describes) through an identical fault sequence on both architectures:

1. warm up with the paper's uniform workload,
2. fail LC0's SRU (BDR loses the whole linecard; DRA detours over the
   EIB through a covering LC),
3. additionally fail LC3's PDLU,
4. repair everything and confirm traffic returns to the fabric path.

Prints a timeline of delivery ratios plus the DRA coverage diagnostics
(streams established, packets detoured, remote lookups).

Run:
    python examples/fault_injection_sim.py
"""

from repro.obs.logging_setup import example_logger
from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.traffic import wire_uniform_load

log = example_logger("fault_injection_sim")

LOAD = 0.3
N_LC = 6

PHASES = [
    ("healthy warmup", 0.002, None),
    ("LC0 SRU failed", 0.006, ("fail", 0, ComponentKind.SRU)),
    ("LC3 PDLU also failed", 0.010, ("fail", 3, ComponentKind.PDLU)),
    ("all repaired", 0.014, ("repair", None, None)),
]


def apply_event(router: Router, event) -> None:
    action, lc, kind = event
    if action == "fail":
        if router.mode is RouterMode.BDR and kind is ComponentKind.PDLU:
            kind = ComponentKind.SRU  # BDR cards fuse PD logic into PI units
        router.inject_fault(lc, kind)
    else:
        for lc_id, card in router.linecards.items():
            for unit in card.units():
                if not unit.healthy:
                    router.repair_fault(lc_id, unit.kind)


def run(mode: RouterMode) -> None:
    router = Router(RouterConfig(n_linecards=N_LC, mode=mode, seed=42))
    wire_uniform_load(router, LOAD)
    log.info(f"\n--- {mode.value.upper()} router, N={N_LC}, uniform load {LOAD:.0%} ---")
    prev_offered = prev_delivered = 0
    for label, until, event in PHASES:
        if event is not None:
            apply_event(router, event)
        router.run(until=until)
        offered = router.stats.offered - prev_offered
        delivered = router.stats.delivered - prev_delivered
        prev_offered, prev_delivered = router.stats.offered, router.stats.delivered
        ratio = delivered / offered if offered else 1.0
        log.info(f"  {label:<24} delivery ratio {ratio:7.2%}")
    log.info("  totals:")
    for line in router.stats.summary().splitlines():
        log.info(f"    {line}")


def main() -> None:
    run(RouterMode.DRA)
    run(RouterMode.BDR)
    log.info(
        "\nThe DRA router keeps near-100% delivery through both faults by"
        "\nchanneling traffic over the EIB; the BDR router silently drops"
        "\neverything to or from a linecard with any failed component."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Fault-injection showdown: a DRA router versus a BDR router.

Runs the *executable* router model (the substrate the paper only
describes) through an identical fault sequence on both architectures:

1. warm up with the paper's uniform workload,
2. fail LC0's SRU (BDR loses the whole linecard; DRA detours over the
   EIB through a covering LC),
3. additionally fail LC3's PDLU,
4. repair everything and confirm traffic returns to the fabric path.

Then it re-runs the DRA router with the EIB *fault-detection layer*
enabled (``docs/chaos.md``) under three further scenarios:

5. a crash fault observed through per-LC fault views -- the timeline
   shows the detection latency as a dip of dropped packets before the
   self-test fires and coverage engages (the "oracle gap"),
6. a transient fault that self-clears before the views even matter,
7. a fail-slow SRU (degraded rate, not dead): nothing is dropped and
   nothing is detected -- the unit is slow, which per-unit self-tests
   cannot see; only latency suffers.

Prints a timeline of delivery ratios plus the DRA coverage diagnostics
(streams established, packets detoured, remote lookups, detections).

Run:
    python examples/fault_injection_sim.py
"""

from repro.chaos.detection import DetectionConfig
from repro.obs.logging_setup import example_logger
from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.traffic import wire_uniform_load

log = example_logger("fault_injection_sim")

LOAD = 0.3
N_LC = 6

PHASES = [
    ("healthy warmup", 0.002, None),
    ("LC0 SRU failed", 0.006, ("fail", 0, ComponentKind.SRU)),
    ("LC3 PDLU also failed", 0.010, ("fail", 3, ComponentKind.PDLU)),
    ("all repaired", 0.014, ("repair", None, None)),
]


def apply_event(router: Router, event) -> None:
    action, lc, kind = event
    if action == "fail":
        if router.mode is RouterMode.BDR and kind is ComponentKind.PDLU:
            kind = ComponentKind.SRU  # BDR cards fuse PD logic into PI units
        router.inject_fault(lc, kind)
    else:
        for lc_id, card in router.linecards.items():
            for unit in card.units():
                if not unit.healthy:
                    router.repair_fault(lc_id, unit.kind)


def phase_stats(router: Router, prev: tuple[int, int, int]) -> tuple:
    offered = router.stats.offered - prev[0]
    delivered = router.stats.delivered - prev[1]
    dropped = router.stats.dropped - prev[2]
    now = (router.stats.offered, router.stats.delivered, router.stats.dropped)
    ratio = delivered / offered if offered else 1.0
    return now, ratio, dropped


def run(mode: RouterMode) -> None:
    router = Router(RouterConfig(n_linecards=N_LC, mode=mode, seed=42))
    wire_uniform_load(router, LOAD)
    log.info(f"\n--- {mode.value.upper()} router, N={N_LC}, uniform load {LOAD:.0%} ---")
    prev = (0, 0, 0)
    for label, until, event in PHASES:
        if event is not None:
            apply_event(router, event)
        router.run(until=until)
        prev, ratio, _ = phase_stats(router, prev)
        log.info(f"  {label:<24} delivery ratio {ratio:7.2%}")
    log.info("  totals:")
    for line in router.stats.summary().splitlines():
        log.info(f"    {line}")


def run_with_detection() -> None:
    """Crash fault seen through the detection layer: the oracle gap."""
    cfg = DetectionConfig(detection_latency_s=150e-6, selftest_period_s=50e-6)
    router = Router(RouterConfig(n_linecards=N_LC, mode=RouterMode.DRA, seed=42))
    detector = router.enable_detection(cfg)
    wire_uniform_load(router, LOAD)
    log.info(
        f"\n--- DRA + detection layer (latency {cfg.detection_latency_s * 1e6:.0f} us,"
        f" self-test every {cfg.selftest_period_s * 1e6:.0f} us) ---"
    )
    prev = (0, 0, 0)
    router.run(until=0.002)
    prev, ratio, _ = phase_stats(router, prev)
    log.info(f"  {'healthy warmup':<28} delivery {ratio:7.2%}")

    router.inject_fault(0, ComponentKind.SRU)
    onset = router.engine.now
    # Sample the gap in 100 us slices: stale views keep planning onto
    # the dead SRU until a self-test older than the latency floor fires.
    t = onset
    while not detector.detections() and t < onset + 2e-3:
        t += 100e-6
        router.run(until=t)
        prev, ratio, dropped = phase_stats(router, prev)
        log.info(
            f"  {'fault undetected (stale views)':<28} delivery {ratio:7.2%}"
            f"  dropped {dropped}"
        )
    det = detector.detections()[0]
    log.info(
        f"  -> detected by LC{det.observer_lc} self-test "
        f"{(det.time - onset) * 1e6:.0f} us after onset; coverage engages"
    )
    router.run(until=t + 2e-3)
    prev, ratio, dropped = phase_stats(router, prev)
    log.info(
        f"  {'after detection (covered)':<28} delivery {ratio:7.2%}"
        f"  dropped {dropped}"
    )
    router.repair_fault(0, ComponentKind.SRU)
    router.run(until=t + 4e-3)
    prev, ratio, _ = phase_stats(router, prev)
    log.info(f"  {'repaired (views cleared)':<28} delivery {ratio:7.2%}")


def run_transient() -> None:
    """A transient fault self-clears; coverage bridges the blip."""
    router = Router(RouterConfig(n_linecards=N_LC, mode=RouterMode.DRA, seed=43))
    detector = router.enable_detection(DetectionConfig(detection_latency_s=50e-6))
    wire_uniform_load(router, LOAD)
    log.info("\n--- DRA + detection: transient fault (auto-clears) ---")
    prev = (0, 0, 0)
    router.run(until=0.002)
    prev, ratio, _ = phase_stats(router, prev)
    log.info(f"  {'healthy warmup':<28} delivery {ratio:7.2%}")
    router.inject_fault(2, ComponentKind.LFE)
    router.run(until=0.0025)
    prev, ratio, dropped = phase_stats(router, prev)
    log.info(
        f"  {'transient LFE fault':<28} delivery {ratio:7.2%}  dropped {dropped}"
        f"  detections {len(detector.detections())}"
    )
    router.repair_fault(2, ComponentKind.LFE)  # the fault clears itself
    router.run(until=0.0045)
    prev, ratio, _ = phase_stats(router, prev)
    log.info(f"  {'cleared (no repair crew)':<28} delivery {ratio:7.2%}")


def run_fail_slow() -> None:
    """A fail-slow SRU: everything delivered, latency degrades."""
    router = Router(RouterConfig(n_linecards=N_LC, mode=RouterMode.DRA, seed=44))
    detector = router.enable_detection()
    wire_uniform_load(router, LOAD)
    log.info("\n--- DRA + detection: fail-slow SRU (8x service delay) ---")
    prev = (0, 0, 0)
    router.run(until=0.002)
    prev, ratio, _ = phase_stats(router, prev)
    base_lat = router.stats.latency.mean
    log.info(f"  {'healthy warmup':<28} delivery {ratio:7.2%}"
             f"  mean latency {base_lat * 1e6:6.1f} us")
    sru = router.linecards[0].unit(ComponentKind.SRU)
    sru.degrade(8.0)
    router.run(until=0.006)
    prev, ratio, dropped = phase_stats(router, prev)
    slow_lat = router.stats.latency.mean
    log.info(
        f"  {'LC0 SRU degraded 8x':<28} delivery {ratio:7.2%}  dropped {dropped}"
        f"  mean latency {slow_lat * 1e6:6.1f} us"
    )
    log.info(
        f"  -> detections {len(detector.detections())}: the unit is slow,"
        " not dead -- self-tests see a healthy SRU, so no coverage engages"
        " and only latency pays"
    )
    sru.restore_speed()
    router.run(until=0.010)
    prev, ratio, _ = phase_stats(router, prev)
    log.info(f"  {'restored':<28} delivery {ratio:7.2%}")


def main() -> None:
    run(RouterMode.DRA)
    run(RouterMode.BDR)
    log.info(
        "\nThe DRA router keeps near-100% delivery through both faults by"
        "\nchanneling traffic over the EIB; the BDR router silently drops"
        "\neverything to or from a linecard with any failed component."
    )
    run_with_detection()
    run_transient()
    run_fail_slow()
    log.info(
        "\nWith detection enabled the fault map is no longer an oracle:"
        "\ncoverage starts only after a self-test finds the fault and FLT_N"
        "\nreaches the other linecards -- the drops inside that window are"
        "\nthe price of the paper's fault-handling time."
    )


if __name__ == "__main__":
    main()

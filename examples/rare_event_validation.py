#!/usr/bin/env python
"""Verifying nine nines by simulation: rare-event Monte Carlo.

The paper's Figure 7 reports availabilities like 9^9 -- an unavailability
of under 1e-9.  A naive simulation would need on the order of 1e11
failure/repair cycles to *observe* a single LC outage at that level; this
example first demonstrates that futility, then applies balanced failure
biasing (importance sampling over regenerative cycles) to verify the
exact stationary results in seconds.

Run:
    python examples/rare_event_validation.py
"""

from repro.obs.logging_setup import example_logger

import numpy as np

from repro.core import DRAConfig, RepairPolicy, dra_availability
from repro.core.availability import build_dra_availability_chain
from repro.core.states import Failed
from repro.montecarlo import (
    sample_trajectory,
    unavailability_importance_sampling,
)
from repro.runtime import Stopwatch


log = example_logger("rare_event_validation")

def naive_attempt(chain, horizon_hours: float, rng) -> float:
    """Plain trajectory sampling: count downtime (it will find none)."""
    traj = sample_trajectory(chain, horizon_hours, rng)
    failed = chain.index_of(Failed)
    entry = traj.times
    exit_ = np.append(traj.times[1:], horizon_hours)
    return float(
        sum(t1 - t0 for s, t0, t1 in zip(traj.states, entry, exit_) if s == failed)
    )


def main() -> None:
    cfg = DRAConfig(n=9, m=4)
    repair = RepairPolicy.three_hours()
    chain = build_dra_availability_chain(cfg, repair)
    exact_u = 1.0 - dra_availability(cfg, repair).availability
    log.info(f"Configuration: DRA N={cfg.n}, M={cfg.m}, mu=1/3")
    log.info(f"Exact unavailability (stationary solve): {exact_u:.3e}\n")

    rng = np.random.default_rng(0)
    horizon = 1_000_000.0  # over a century of simulated operation
    with Stopwatch() as sw:
        downtime = naive_attempt(chain, horizon, rng)
    log.info(
        f"Naive simulation of {horizon:.0f} hours "
        f"({horizon / 8766:.0f} years): observed downtime = {downtime:.1f} h "
        f"({sw.elapsed:.1f}s)"
    )
    log.info(
        "  -> expected downtime at 1e-9 unavailability is ~0.001 h per"
        " century;\n     the naive estimator returns 0 almost surely."
        " It cannot check Figure 7.\n"
    )

    with Stopwatch() as sw:
        res = unavailability_importance_sampling(
            chain, Failed, n_cycles=40_000, rng=np.random.default_rng(1)
        )
    elapsed = sw.elapsed
    log.info("Balanced failure biasing over 40,000 regenerative cycles:")
    log.info(f"  estimate      {res.unavailability:.3e}  (exact {exact_u:.3e})")
    log.info(f"  std error     {res.std_error:.1e}")
    log.info(f"  rare-state hit rate under biasing: {res.hit_fraction:.1%}")
    log.info(f"  wall time     {elapsed:.1f}s")
    log.info(f"  consistent with exact at 5 sigma: {res.consistent_with(exact_u)}")

    log.info("\nAcross the paper's quoted configurations:")
    log.info(f"{'config':>14} {'mu':>6} {'exact':>11} {'IS estimate':>12} {'rel err':>8}")
    for (n, m), rp, label in [
        ((3, 2), RepairPolicy.three_hours(), "1/3"),
        ((3, 2), RepairPolicy.half_day(), "1/12"),
        ((9, 4), RepairPolicy.half_day(), "1/12"),
    ]:
        c = DRAConfig(n=n, m=m)
        ch = build_dra_availability_chain(c, rp)
        exact = 1.0 - dra_availability(c, rp).availability
        est = unavailability_importance_sampling(
            ch, Failed, 30_000, np.random.default_rng(2)
        )
        rel = abs(est.unavailability - exact) / exact
        log.info(
            f"{f'N={n},M={m}':>14} {label:>6} {exact:>11.3e} "
            f"{est.unavailability:>12.3e} {rel:>7.1%}"
        )


if __name__ == "__main__":
    main()

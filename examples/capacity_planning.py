#!/usr/bin/env python
"""Capacity planning with the DRA models: a what-if study.

An operator question the paper's models can answer directly: *given a
target availability SLA and a repair turnaround, how many linecards (and
how many per protocol) does a DRA router need?*  This example sweeps
(N, M) for both repair policies, finds the cheapest configuration meeting
each nines target, and shows the marginal value of faster repair.

Run:
    python examples/capacity_planning.py
"""

from repro.obs.logging_setup import example_logger
from repro.core import DRAConfig, RepairPolicy, bdr_availability, dra_availability


log = example_logger("capacity_planning")

def cheapest_config(target_nines: int, repair: RepairPolicy) -> DRAConfig | None:
    """Smallest-N (then smallest-M) configuration meeting the target."""
    for n in range(3, 13):
        for m in range(2, n + 1):
            cfg = DRAConfig(n=n, m=m)
            if dra_availability(cfg, repair).nines >= target_nines:
                return cfg
    return None


def main() -> None:
    policies = [
        ("3-hour repair (mu=1/3)", RepairPolicy.three_hours()),
        ("half-day repair (mu=1/12)", RepairPolicy.half_day()),
    ]

    log.info("Baseline (BDR, no linecard coverage):")
    for label, rp in policies:
        res = bdr_availability(rp)
        log.info(
            f"  {label:<28} {res.notation:>5}  "
            f"(~{res.downtime_minutes_per_year:.1f} min downtime/yr)"
        )

    log.info("\nCheapest DRA configuration per availability target:")
    log.info(f"{'target':>8} {'3-hour repair':>16} {'half-day repair':>17}")
    for target in (5, 6, 7, 8, 9):
        row = []
        for _, rp in policies:
            cfg = cheapest_config(target, rp)
            row.append(f"N={cfg.n},M={cfg.m}" if cfg else "unreachable")
        log.info(f"{'9^' + str(target):>8} {row[0]:>16} {row[1]:>17}")

    log.info("\nDowntime of the paper's flagship configuration (N=9, M=4):")
    for label, rp in policies:
        res = dra_availability(DRAConfig(n=9, m=4), rp)
        log.info(
            f"  {label:<28} {res.notation:>5}  "
            f"(~{res.downtime_minutes_per_year * 60:.2f} s downtime/yr)"
        )

    log.info(
        "\nReading: a single covering linecard already buys four orders of"
        "\nmagnitude over BDR; beyond M=4 the EIB itself (not the covering"
        "\npool) limits availability, which is why the paper reports"
        "\nsaturation at 9^9 / 9^8."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""EIB protocol trace: watch the Section 4 machinery work.

Instruments the control channel of a small DRA router, injects an SRU
fault, and prints every control packet (REQ_D solicitation, the winning
REP_D, REL_D on repair) plus the arbiter counter state as logical paths
come and go -- the counter dance of the paper's Figure 4.

Run:
    python examples/protocol_trace.py
"""

from repro.router import ComponentKind, Router, RouterConfig
from repro.router.packets import ControlPacket, Packet, Protocol
from repro.router.routing import ipv4


def main() -> None:
    router = Router(RouterConfig(n_linecards=4, seed=7))
    router.set_offered_load(0, 2e9)

    # Tap the control lines: print every broadcast with its tier fields.
    control = router.eib.control
    original_deliver = control._deliver

    def tap(packet: ControlPacket, sender_lc: int) -> None:
        t_us = router.engine.now * 1e6
        fields = [f"{packet.kind.value} from LC{sender_lc}"]
        if packet.rec_lc is not None:
            fields.append(f"to LC{packet.rec_lc}")
        if packet.data_rate:
            fields.append(f"rate {packet.data_rate / 1e9:.1f} Gbps")
        if packet.faulty_component is not None:
            fields.append(f"fault {packet.faulty_component.value}")
        if packet.protocol is not None:
            fields.append(f"protocol {packet.protocol.value}")
        print(f"  [{t_us:9.2f} us] ctl: " + ", ".join(fields))
        original_deliver(packet, sender_lc)

    control._deliver = tap

    def show_arbiter(note: str) -> None:
        arb = router.eib.arbiter
        holders = {lc: arb.counters(lc).ctr_id for lc in router.linecards
                   if arb.counters(lc).ctr_id is not None}
        print(
            f"  arbiter[{note}]: beta={arb.beta} round_ctr={arb.round_counter} "
            f"ids={holders} turns={arb.turns_taken}"
        )

    def send_packet(src: int, dst: int) -> Packet:
        pkt = Packet(
            src_lc=src,
            dst_lc=dst,
            dst_addr=ipv4("10.0.0.0") + (dst << 16) + 1,
            size_bytes=800,
            protocol=Protocol.ETHERNET,
            created_at=router.engine.now,
        )
        router.inject(pkt)
        return pkt

    print("1. Fail LC0's SRU and offer a packet (triggers REQ_D/REP_D):")
    router.inject_fault(0, ComponentKind.SRU)
    pkt = send_packet(0, 1)
    router.run(until=0.001)
    show_arbiter("after coverage stream setup")
    print(f"  packet path: {' -> '.join(pkt.path)}")

    print("\n2. Fail LC2's LFE and offer a packet (lookup over REQ_L/REP_L):")
    router.inject_fault(2, ComponentKind.LFE)
    pkt2 = send_packet(2, 3)
    router.run(until=0.002)
    print(f"  packet path: {' -> '.join(pkt2.path)}")

    print("\n3. Repair LC0's SRU (REL_D releases the logical path):")
    router.repair_fault(0, ComponentKind.SRU)
    router.run(until=0.003)
    show_arbiter("after release")

    s = router.stats
    print(
        f"\ndelivered={s.delivered} covered={s.covered_deliveries} "
        f"remote_lookups={s.remote_lookups} "
        f"control packets sent={control.sent} collisions={control.collisions}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""EIB protocol trace: watch the Section 4 machinery work.

Runs a small DRA router under the structured tracer
(:mod:`repro.obs.trace`), injects an SRU fault, and renders every
``bus.ctl.deliver`` event (REQ_D solicitation, the winning REP_D, REL_D
on repair) plus the arbiter counter state as logical paths come and go
-- the counter dance of the paper's Figure 4.  The same events reach a
file via ``python -m repro fig8 --trace out.jsonl``; here we keep them
in memory and pretty-print as each stage settles.

Run:
    python examples/protocol_trace.py
"""

from repro.obs import Tracer, tracing
from repro.obs.logging_setup import example_logger
from repro.router import ComponentKind, Router, RouterConfig
from repro.router.packets import Packet, Protocol
from repro.router.routing import ipv4

log = example_logger("protocol_trace")


def main() -> None:
    router = Router(RouterConfig(n_linecards=4, seed=7))
    router.set_offered_load(0, 2e9)
    control = router.eib.control

    with tracing(Tracer()) as tracer:
        shown = 0

        def show_control() -> None:
            """Render control-packet deliveries since the last call."""
            nonlocal shown
            for ev in tracer.events[shown:]:
                if ev.kind != "bus.ctl.deliver":
                    continue
                d = ev.data
                fields = [f"{d['packet']} from LC{d['sender_lc']}"]
                if d["rec_lc"] is not None:
                    fields.append(f"to LC{d['rec_lc']}")
                if d["data_rate"]:
                    fields.append(f"rate {d['data_rate'] / 1e9:.1f} Gbps")
                if d["fault"] is not None:
                    fields.append(f"fault {d['fault']}")
                if d["protocol"] is not None:
                    fields.append(f"protocol {d['protocol']}")
                log.info("  [%9.2f us] ctl: %s", ev.t * 1e6, ", ".join(fields))
            shown = len(tracer.events)

        def show_arbiter(note: str) -> None:
            arb = router.eib.arbiter
            holders = {lc: arb.counters(lc).ctr_id for lc in router.linecards
                       if arb.counters(lc).ctr_id is not None}
            log.info(
                "  arbiter[%s]: beta=%s round_ctr=%s ids=%s turns=%s",
                note, arb.beta, arb.round_counter, holders, arb.turns_taken,
            )

        def send_packet(src: int, dst: int) -> Packet:
            pkt = Packet(
                src_lc=src,
                dst_lc=dst,
                dst_addr=ipv4("10.0.0.0") + (dst << 16) + 1,
                size_bytes=800,
                protocol=Protocol.ETHERNET,
                created_at=router.engine.now,
            )
            router.inject(pkt)
            return pkt

        log.info("1. Fail LC0's SRU and offer a packet (triggers REQ_D/REP_D):")
        router.inject_fault(0, ComponentKind.SRU)
        pkt = send_packet(0, 1)
        router.run(until=0.001)
        show_control()
        show_arbiter("after coverage stream setup")
        log.info("  packet path: %s", " -> ".join(pkt.path))

        log.info("")
        log.info("2. Fail LC2's LFE and offer a packet (lookup over REQ_L/REP_L):")
        router.inject_fault(2, ComponentKind.LFE)
        pkt2 = send_packet(2, 3)
        router.run(until=0.002)
        show_control()
        log.info("  packet path: %s", " -> ".join(pkt2.path))

        log.info("")
        log.info("3. Repair LC0's SRU (REL_D releases the logical path):")
        router.repair_fault(0, ComponentKind.SRU)
        router.run(until=0.003)
        show_control()
        show_arbiter("after release")

    s = router.stats
    log.info(
        "\ndelivered=%s covered=%s remote_lookups=%s "
        "control packets sent=%s collisions=%s",
        s.delivered, s.covered_deliveries, s.remote_lookups,
        control.sent, control.collisions,
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the paper's three headline results in ~40 lines.

Builds the DRA and BDR dependability models with the paper's failure
rates and prints (1) the Figure 6 reliability comparison, (2) the
Figure 7 availability nines, and (3) a Figure 8 degradation row.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.obs.logging_setup import example_logger

from repro.core import (
    DRAConfig,
    RepairPolicy,
    bdr_availability,
    bdr_reliability,
    dra_availability,
    dra_reliability,
)
from repro.core.performance import PerformanceModel


log = example_logger("quickstart")

def main() -> None:
    # --- Reliability (Figure 6) ------------------------------------------
    hours = np.array([10_000.0, 40_000.0, 100_000.0])
    bdr = bdr_reliability(hours)
    dra_small = dra_reliability(DRAConfig(n=3, m=2), hours)  # one covering LC
    dra_big = dra_reliability(DRAConfig(n=9, m=4), hours)

    log.info("LC reliability R(t):")
    log.info(f"{'t (hours)':>12} {'BDR':>8} {'DRA 3/2':>9} {'DRA 9/4':>9}")
    for k, t in enumerate(hours):
        log.info(
            f"{t:>12.0f} {bdr.reliability[k]:>8.4f} "
            f"{dra_small.reliability[k]:>9.4f} {dra_big.reliability[k]:>9.4f}"
        )

    # --- Availability (Figure 7) ------------------------------------------
    log.info("\nSteady-state availability (paper notation):")
    for rp, label in ((RepairPolicy.three_hours(), "mu=1/3"),
                      (RepairPolicy.half_day(), "mu=1/12")):
        row = [
            f"BDR {bdr_availability(rp).notation}",
            f"DRA(3,2) {dra_availability(DRAConfig(n=3, m=2), rp).notation}",
            f"DRA(9,4) {dra_availability(DRAConfig(n=9, m=4), rp).notation}",
        ]
        log.info(f"  {label:>8}: " + "   ".join(row))

    # --- Performance under faults (Figure 8) -------------------------------
    model = PerformanceModel(n=6)
    log.info("\nBandwidth available to faulty LCs (N=6, % of required):")
    log.info(f"{'X_faulty':>9} {'L=15%':>8} {'L=50%':>8} {'L=70%':>8}")
    for x in range(1, 6):
        log.info(
            f"{x:>9} {model.degradation_percent(x, 0.15):>7.1f}% "
            f"{model.degradation_percent(x, 0.50):>7.1f}% "
            f"{model.degradation_percent(x, 0.70):>7.1f}%"
        )


if __name__ == "__main__":
    main()

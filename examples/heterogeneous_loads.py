#!/usr/bin/env python
"""Beyond Figure 8: degradation under skewed high loads.

The paper's performance analysis assumes one uniform load at every
linecard.  This example studies a busy router with a realistic mix --
two hot cards, two warm, two cool -- three ways:

1. the heterogeneous analytic model (which single fault hurts most?),
2. performability (expected delivered fraction over the router's life), and
3. the executable router under a hotspot traffic matrix with a fault on
   a hot card, cross-checking the analytic expectation.

Run:
    python examples/heterogeneous_loads.py
"""

import numpy as np

from repro.obs.logging_setup import example_logger

from repro.core.hetero import HeterogeneousPerformanceModel
from repro.core.parameters import RepairPolicy
from repro.core.performability import PerformabilityModel
from repro.core.performance import PerformanceModel
from repro.router import ComponentKind, Router, RouterConfig
from repro.traffic import TrafficMatrix
from repro.traffic.generators import PoissonSource

log = example_logger("heterogeneous_loads")

#: Analytic study: a small, hot chassis where the headroom pool binds.
HOT_LOADS = (0.90, 0.90, 0.70, 0.70)
#: DES study: a larger mix (the DES covers each fault with ONE LC, the
#: analysis pools headroom across all of them -- its stated lower bound).
LOADS = (0.70, 0.70, 0.45, 0.45, 0.35, 0.35)


def analytic_study() -> None:
    model = HeterogeneousPerformanceModel(HOT_LOADS)
    log.info("Analytic single-fault outcomes (hot chassis, loads: %s ):",
             ", ".join(f"{l:.0%}" for l in HOT_LOADS))
    log.info(f"{'faulty LC':>10} {'load':>6} {'required':>9} {'delivered':>10} {'service':>8}")
    for lc in range(len(HOT_LOADS)):
        d = model.degradation([lc])
        log.info(
            f"{lc:>10} {HOT_LOADS[lc]:>6.0%} {d.required[0]:>8.1f}G "
            f"{d.delivered[0]:>9.1f}G {d.aggregate_percent:>7.1f}%"
        )
    worst_lc, worst_pct = model.worst_single_fault()
    log.info(f"  worst single fault: LC{worst_lc} ({HOT_LOADS[worst_lc]:.0%} load) "
          f"at {worst_pct:.1f}% of required -- losing a *cooler* card is"
          "\n  worse than losing the hottest one: the binding quantity is the"
          "\n  headroom of the survivors, not the faulty card's own demand.\n")

    log.info("Double faults on the two hot cards vs two cool cards:")
    hot = model.degradation([0, 1])
    cool = model.degradation([2, 3])
    log.info(f"  hot pair : {hot.aggregate_percent:6.1f}% of required")
    log.info(f"  cool pair: {cool.aggregate_percent:6.1f}% of required\n")


def performability_study() -> None:
    perf = PerformabilityModel(PerformanceModel(n=6), RepairPolicy.half_day())
    res = perf.steady_state(0.65)  # the mean of the skewed loads
    log.info("Performability at the mean load (65%, mu=1/12):")
    log.info(f"  P(any LC down)            {res.any_fault_probability:.2e}")
    shortfall = 100.0 - res.expected_degradation_percent
    log.info(f"  expected delivery shortfall {shortfall:.2e}% of required\n")


def des_study() -> None:
    router = Router(RouterConfig(n_linecards=6, seed=31))
    matrix = TrafficMatrix(_skewed_demands())
    for lc in range(6):
        router.set_offered_load(lc, matrix.offered_at(lc))
    for i, flow in enumerate(matrix.flows(500)):
        PoissonSource(router, flow, router.rng.stream(f"t{i}")).start()
    router.run(until=0.001)
    router.inject_fault(0, ComponentKind.SRU)  # a hot card fails
    router.run(until=0.005)
    log.info("Executable router, hot card (70% load) SRU fault:")
    log.info(f"  delivery ratio      {router.stats.delivery_ratio:.2%}")
    log.info(f"  covered deliveries  {router.stats.covered_deliveries}")
    util = router.linecards[1].sru.utilization(router.engine.now)
    log.info(f"  surviving hot card SRU utilization {util:.0%}")
    log.info(
        "  note: the DES covers each fault with ONE LC (a 7 Gbps stream"
        "\n  needs one card with 7 Gbps of headroom), while the Section 5.3"
        "\n  analysis pools headroom across all survivors -- the paper calls"
        "\n  its own figure a lower bound; at this load skew the single-"
        "\n  coverer constraint is what actually binds."
    )


def _skewed_demands() -> np.ndarray:
    n = len(LOADS)
    d = np.zeros((n, n))
    for src, load in enumerate(LOADS):
        total = load * 10e9
        for dst in range(n):
            if dst != src:
                d[src, dst] = total / (n - 1)
    return d


def main() -> None:
    analytic_study()
    performability_study()
    des_study()


if __name__ == "__main__":
    main()

"""docs/cli.md must cover the full parser surface (the CI freshness gate).

Introspects :func:`repro.cli.build_parser` -- the single source of truth
for the CLI -- and fails when a subcommand or flag exists that
``docs/cli.md`` never mentions.  New CLI surface therefore cannot merge
without documentation; see docs/cli.md's header note.
"""

import argparse
from pathlib import Path

import pytest

from repro.cli import build_parser

DOCS = Path(__file__).resolve().parent.parent / "docs" / "cli.md"


def _subparsers(parser: argparse.ArgumentParser) -> dict[str, argparse.ArgumentParser]:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("parser has no subcommands")


@pytest.fixture(scope="module")
def cli_doc() -> str:
    return DOCS.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def commands() -> dict[str, argparse.ArgumentParser]:
    return _subparsers(build_parser())


def test_every_subcommand_has_a_runnable_example(cli_doc, commands):
    missing = [
        name for name in commands if f"python -m repro {name}" not in cli_doc
    ]
    assert not missing, (
        f"docs/cli.md has no 'python -m repro <cmd>' example for: "
        f"{', '.join(sorted(missing))}"
    )


def test_every_flag_is_mentioned(cli_doc, commands):
    missing = []
    for name, sub in sorted(commands.items()):
        for action in sub._actions:
            for opt in action.option_strings:
                if opt in ("-h", "--help"):
                    continue
                if opt not in cli_doc:
                    missing.append(f"{name} {opt}")
    assert not missing, (
        f"docs/cli.md never mentions: {', '.join(missing)}"
    )


def test_every_positional_is_mentioned(cli_doc, commands):
    missing = []
    for name, sub in sorted(commands.items()):
        for action in sub._actions:
            if action.option_strings or isinstance(
                action, argparse._SubParsersAction
            ):
                continue
            if action.dest.upper() not in cli_doc and action.dest not in cli_doc:
                missing.append(f"{name} {action.dest}")
    assert not missing, f"docs/cli.md never mentions positionals: {missing}"


def test_every_flag_has_help_text(commands):
    # DRA401 enforces this at the AST layer; this is the runtime
    # cross-check over the assembled parser, catching dynamic surface.
    missing = [
        f"{name} {action.option_strings or action.dest}"
        for name, sub in sorted(commands.items())
        for action in sub._actions
        if not action.help
    ]
    assert not missing, f"parser actions without help: {missing}"

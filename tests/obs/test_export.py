"""Prometheus text-format exporter: mapping rules and determinism."""

from repro.obs import MetricsRegistry, render_prometheus, write_prometheus


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("bus.ctl.sent").inc(5)
    reg.gauge("solver.stationary.residual").set(0.25)
    h = reg.histogram("incident.mttr_s", bounds=(1.0, 2.0))
    for v in (0.5, 1.5, 1.6, 3.0):
        h.observe(v)
    return reg


class TestRenderPrometheus:
    def test_counter_line(self):
        out = render_prometheus(_registry())
        assert "# TYPE repro_bus_ctl_sent counter" in out
        assert "\nrepro_bus_ctl_sent 5\n" in out

    def test_help_text_comes_from_schema(self):
        out = render_prometheus(_registry())
        assert (
            "# HELP repro_bus_ctl_sent counter: control broadcasts attempted"
            in out
        )

    def test_gauge_with_envelope(self):
        reg = MetricsRegistry()
        g = reg.gauge("bus.lp.open")
        g.set(3.0)
        g.set(1.0)
        out = render_prometheus(reg)
        assert "repro_bus_lp_open 1\n" in out
        assert "repro_bus_lp_open_min 1\n" in out
        assert "repro_bus_lp_open_max 3\n" in out

    def test_histogram_cumulative_buckets(self):
        out = render_prometheus(_registry())
        assert '\nrepro_incident_mttr_s_bucket{le="1"} 1\n' in out
        assert 'repro_incident_mttr_s_bucket{le="2"} 3\n' in out
        assert 'repro_incident_mttr_s_bucket{le="+Inf"} 4\n' in out
        assert "repro_incident_mttr_s_sum 6.6\n" in out
        assert "repro_incident_mttr_s_count 4\n" in out

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_deterministic_bytes(self):
        assert render_prometheus(_registry()) == render_prometheus(_registry())

    def test_write_prometheus_round_trips(self, tmp_path):
        path = tmp_path / "metrics.prom"
        reg = _registry()
        write_prometheus(reg, str(path))
        assert path.read_text(encoding="utf-8") == render_prometheus(reg)

"""The central trace/metric name registry and the strict trace guard."""

from __future__ import annotations

import re

from repro.cli import main
from repro.obs import (
    METRIC_FAMILIES,
    METRIC_NAMES,
    TRACE_EVENT_KINDS,
    is_metric_name,
    is_trace_kind,
    metric_family,
    tracing,
    unknown_trace_kinds,
)

_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


class TestRegistryShape:
    def test_trace_kinds_are_dotted_lowercase_with_descriptions(self):
        for kind, desc in TRACE_EVENT_KINDS.items():
            assert _NAME.match(kind), kind
            assert desc.strip()

    def test_metric_names_are_dotted_lowercase_with_descriptions(self):
        for name, desc in METRIC_NAMES.items():
            assert _NAME.match(name), name
            assert desc.strip()

    def test_family_prefixes_end_with_a_dot(self):
        for prefix in METRIC_FAMILIES:
            assert prefix.endswith("."), prefix
            # every family extends a dotted namespace, not a bare word
            assert _NAME.match(prefix[:-1]), prefix

    def test_known_instrumentation_is_registered(self):
        # spot-check the emit sites the simulator actually uses
        for kind in ("sim.fire", "bus.ctl.deliver", "validate.suite"):
            assert is_trace_kind(kind)
        for name in ("bus.ctl.sent", "solver.stationary.solves", "lint.files"):
            assert is_metric_name(name)


class TestLookups:
    def test_unknown_kind_rejected(self):
        assert not is_trace_kind("made.up")

    def test_family_prefix_match(self):
        assert metric_family("lint.findings.DRA101") == "lint.findings."
        assert metric_family("bus.ctl.sent.req_b") == "bus.ctl.sent."
        assert metric_family("unrelated.name") is None
        assert is_metric_name("lint.findings.DRA101")

    def test_unknown_trace_kinds_sorted_distinct(self):
        kinds = ["demo.b", "sim.fire", "demo.a", "demo.b"]
        assert unknown_trace_kinds(kinds) == ["demo.a", "demo.b"]


class TestStrictTraceGuard:
    def _write_trace(self, path, kinds):
        with tracing(str(path)) as t:
            for i, kind in enumerate(kinds):
                t.emit(kind, t=float(i))

    def test_registered_kinds_pass_strict(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(path, ["sim.fire", "bus.ctl.deliver"])
        assert main(["trace", str(path), "--strict"]) == 0
        assert "warning" not in capsys.readouterr().err

    def test_unknown_kind_warns_without_strict(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(path, ["demo.a"])
        assert main(["trace", str(path)]) == 0
        assert "demo.a" in capsys.readouterr().err

    def test_unknown_kind_fails_strict(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(path, ["sim.fire", "demo.a"])
        assert main(["trace", str(path), "--strict"]) == 1
        err = capsys.readouterr().err
        assert "demo.a" in err and "strict" in err

"""Per-LC health scorecards: aggregation rules and gauge emission."""

import pytest

from repro.obs import build_scorecards, collecting
from repro.obs.spans import IncidentSpan


def _span(fid, lc, mode="crash", **phases):
    return IncidentSpan(
        fault_id=fid,
        lc=lc,
        component="sru",
        mode=mode,
        injected=phases.pop("injected", 0.0),
        **phases,
    )


@pytest.fixture
def spans():
    return [
        _span(
            0,
            1,
            injected=0.0,
            first_local_detect=1e-5,
            coverage_active=2e-5,
            repaired=1e-4,
        ),
        _span(1, 1, mode="intermittent", injected=2e-4, repaired=2.5e-4),
        _span(2, None, injected=1e-4),  # open EIB fault
    ]


class TestScorecards:
    def test_grouping_and_counts(self, spans):
        cards = build_scorecards(spans)
        assert list(cards) == ["1", "eib"]
        assert cards["1"]["faults"] == 2
        assert cards["1"]["by_mode"] == {"crash": 1, "intermittent": 1}
        assert cards["eib"]["faults"] == 1
        assert cards["eib"]["open"] == 1

    def test_flap_rate_is_intermittent_fraction(self, spans):
        cards = build_scorecards(spans)
        assert cards["1"]["flap_rate"] == pytest.approx(0.5)
        assert cards["eib"]["flap_rate"] == 0.0

    def test_mean_detection_latency_over_detected_only(self, spans):
        cards = build_scorecards(spans)
        assert cards["1"]["mean_detection_latency_s"] == pytest.approx(1e-5)
        assert cards["eib"]["mean_detection_latency_s"] is None
        assert cards["1"]["undetected"] == 1

    def test_coverage_duty_cycle_fraction_of_window(self, spans):
        # window = [0, 2.5e-4]; LC 1 covered from 2e-5 to its repair 1e-4
        cards = build_scorecards(spans)
        expected = (1e-4 - 2e-5) / 2.5e-4
        assert cards["1"]["coverage_duty_cycle"] == pytest.approx(expected)
        assert cards["eib"]["coverage_duty_cycle"] == 0.0

    def test_open_coverage_extends_to_window_end(self):
        spans = [
            _span(0, 2, injected=0.0, coverage_active=1e-5),
            _span(1, 3, injected=0.0, repaired=1e-4),
        ]
        cards = build_scorecards(spans)
        assert cards["2"]["coverage_duty_cycle"] == pytest.approx(
            (1e-4 - 1e-5) / 1e-4
        )

    def test_empty_spans_yield_empty_cards(self):
        assert build_scorecards([]) == {}

    def test_gauges_emitted_under_family_prefix(self, spans):
        with collecting() as reg:
            build_scorecards(spans)
        names = reg.names()
        assert "health.lc.1.faults" in names
        assert "health.lc.1.flap_rate" in names
        assert "health.lc.eib.coverage_duty_cycle" in names
        assert all(n.startswith("health.lc.") for n in names)
        assert reg.gauge("health.lc.1.faults").last == 2.0

    def test_deterministic(self, spans):
        import json

        a = json.dumps(build_scorecards(spans), sort_keys=True)
        b = json.dumps(build_scorecards(list(spans)), sort_keys=True)
        assert a == b

"""Incident spans: campaign-pinned 1:1 fault accounting plus edge cases.

The pinned test replays every schedule of an 8-seed chaos campaign under
an in-memory tracer and asserts the tentpole acceptance criterion: every
injected fault folds to exactly one span, and each span's causal phase
timeline respects the lifecycle partial order.  Edge cases cover the
three ways the nominal order breaks: a repair racing the FLT_N
broadcast, a fault that is never detected (coverage factor 0), and an
intermittent unit whose flapping must yield one span per activation.
"""

import pytest

from repro.chaos.campaign import CampaignConfig, _replay_for_trace
from repro.chaos.detection import DetectionConfig
from repro.obs import SpanBuilder, TraceEvent, build_incident_report, tracing
from repro.router import ComponentKind, Router, RouterConfig, RouterMode

CFG = CampaignConfig(seeds=8, duration_s=0.002, drain_s=0.012)


def assert_monotone(span) -> None:
    """The lifecycle partial order (NOT a total order: repair can race
    detection, so only injection-anchored and detect-chained inequalities
    may be asserted)."""
    p = span.phase_times()
    for phase in (
        "first_local_detect",
        "first_remote_view",
        "plan_issued",
        "coverage_active",
        "repaired",
        "views_converged",
    ):
        if p[phase] is not None:
            assert p[phase] >= p["injected"], (phase, p)
    if p["first_remote_view"] is not None and p["first_local_detect"] is not None:
        assert p["first_remote_view"] >= p["first_local_detect"]
    if p["views_converged"] is not None:
        assert p["repaired"] is not None
        assert p["views_converged"] >= p["repaired"]


class TestCampaignPin:
    def test_every_injected_fault_folds_to_exactly_one_span(self):
        total = 0
        for idx in range(CFG.seeds):
            with tracing() as tracer:
                _replay_for_trace(CFG, idx)
            injected = sorted(
                {
                    ev.data["fault_id"]
                    for ev in tracer.events
                    if ev.kind == "fault.injected"
                }
            )
            spans = SpanBuilder().feed_all(tracer.events).spans()
            assert [s.fault_id for s in spans] == injected
            for span in spans:
                assert_monotone(span)
                assert span.component
                assert span.mode
            total += len(spans)
        assert total > 0, "campaign injected no faults; pin is vacuous"

    def test_report_accounts_for_all_spans(self):
        with tracing() as tracer:
            _replay_for_trace(CFG, 0)
        spans = SpanBuilder().feed_all(tracer.events).spans()
        report = build_incident_report(spans, source="pin")
        assert report["schema"] == "repro-incidents"
        assert report["version"] == 1
        assert report["totals"]["spans"] == len(spans)
        assert sum(report["totals"]["by_mode"].values()) == len(spans)
        assert sum(report["totals"]["by_component"].values()) == len(spans)
        import json

        a = json.dumps(report, sort_keys=True)
        spans2 = SpanBuilder().feed_all(tracer.events).spans()
        b = json.dumps(build_incident_report(spans2, source="pin"), sort_keys=True)
        assert a == b  # folding is a pure function of the trace


def _detected_router(**detection) -> Router:
    router = Router(RouterConfig(n_linecards=4, mode=RouterMode.DRA, seed=7))
    router.enable_detection(DetectionConfig(**detection))
    return router


class TestEdgeCases:
    def test_repair_racing_flt_n_keeps_partial_order(self):
        # Repair long before the self-test can see the fault: the span
        # closes with repaired < (never) first_local_detect.
        router = _detected_router(detection_latency_s=10e-6)
        with tracing() as tracer:
            router.run(until=1e-5)
            fid = router.inject_fault(1, ComponentKind.LFE)
            router.run(until=1.2e-5)  # < detection_latency after onset
            router.repair_fault(1, ComponentKind.LFE)
            router.run(until=1e-3)
        spans = SpanBuilder().feed_all(tracer.events).spans()
        span = {s.fault_id: s for s in spans}[fid]
        assert span.repaired is not None
        assert span.first_local_detect is None or (
            span.repaired < span.first_local_detect
        )
        assert_monotone(span)

    def test_never_detected_fault_has_only_inject_and_repair(self):
        # coverage = 0: the per-fault coverage draw marks every fault
        # undetectable, so no view ever learns it.
        router = _detected_router(coverage=0.0)
        with tracing() as tracer:
            router.run(until=1e-5)
            fid = router.inject_fault(2, ComponentKind.LFE)
            router.run(until=5e-4)
            router.repair_fault(2, ComponentKind.LFE)
            router.run(until=1e-3)
        spans = SpanBuilder().feed_all(tracer.events).spans()
        span = {s.fault_id: s for s in spans}[fid]
        assert not span.detected
        assert span.first_local_detect is None
        assert span.first_remote_view is None
        assert span.repaired is not None
        # views never diverged, so they converge at the repair itself
        assert span.views_converged == span.repaired
        assert span.detection_latency_s is None
        assert span.mttr_s == pytest.approx(span.repaired - span.injected)

    def test_intermittent_flapping_one_span_per_activation(self):
        router = _detected_router()
        fids = []
        with tracing() as tracer:
            t = 1e-5
            for _ in range(3):  # three fail/clear episodes of one unit
                router.run(until=t)
                fids.append(
                    router.inject_fault(
                        1, ComponentKind.PDLU, mode="intermittent"
                    )
                )
                router.run(until=t + 2e-4)
                router.repair_fault(1, ComponentKind.PDLU)
                t += 4e-4
            router.run(until=t)
        assert len(set(fids)) == 3  # each activation minted a fresh id
        spans = SpanBuilder().feed_all(tracer.events).spans()
        flap_spans = [s for s in spans if s.fault_id in fids]
        assert len(flap_spans) == 3
        for span in flap_spans:
            assert span.mode == "intermittent"
            assert span.repaired is not None
            assert_monotone(span)

    def test_open_span_when_fault_outlives_trace(self):
        router = _detected_router()
        with tracing() as tracer:
            router.run(until=1e-5)
            fid = router.inject_fault(3, ComponentKind.LFE)
            router.run(until=1e-3)
        span = {s.fault_id: s for s in SpanBuilder().feed_all(tracer.events).spans()}[
            fid
        ]
        assert span.open
        assert span.repaired is None and span.views_converged is None
        assert span.mttr_s is None

    def test_windowed_trace_ignores_unknown_fault_ids(self):
        # A trace cut after the injection: phase events referencing a
        # fault_id with no fault.injected record must not crash or
        # fabricate spans.
        events = [
            TraceEvent(seq=0, kind="detect.local_detect", t=1.0, data={"fault_id": 9}),
            TraceEvent(seq=1, kind="fault.repaired", t=2.0, data={"fault_id": 9}),
        ]
        assert SpanBuilder().feed_all(events).spans() == []

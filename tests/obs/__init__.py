"""Observability subsystem tests."""

"""Tracer tests: emission, JSONL round-trip, schema validation, hooks."""

import pytest

from repro.obs import trace
from repro.obs.trace import TraceEvent, Tracer, read_trace, tracing


class TestTracer:
    def test_emit_keeps_events_in_memory(self):
        t = Tracer()
        t.emit("demo.a", t=1.0, x=1)
        t.emit("demo.b")
        assert [e.kind for e in t.events] == ["demo.a", "demo.b"]
        assert t.events[0].seq == 0 and t.events[1].seq == 1
        assert t.events[0].data == {"x": 1}
        assert t.events[1].t is None
        assert t.emitted == 2

    def test_file_tracer_streams_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path)) as t:
            t.emit("demo.a", t=0.5, n=3)
            t.emit("demo.b", flag=True)
            assert t.events == []  # file tracers stay O(1) in memory
        events = read_trace(str(path))
        assert [e.kind for e in events] == ["demo.a", "demo.b"]
        assert events[0].t == 0.5 and events[0].data == {"n": 3}
        assert events[1].data == {"flag": True}

    def test_json_round_trip(self):
        ev = TraceEvent(seq=7, kind="bus.ctl.deliver", t=1e-5, data={"lc": 2})
        assert TraceEvent.from_json(ev.to_json()) == ev

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"v": 99, "seq": 0, "kind": "x", "data": {}}',
            '{"v": 1, "seq": "zero", "kind": "x", "data": {}}',
            '{"v": 1, "seq": 0, "kind": "", "data": {}}',
            '{"v": 1, "seq": 0, "kind": "x", "t": "late", "data": {}}',
            '{"v": 1, "seq": 0, "kind": "x", "data": [1]}',
        ],
    )
    def test_schema_violations_rejected(self, line):
        with pytest.raises(ValueError):
            TraceEvent.from_json(line)

    def test_read_trace_names_offending_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = TraceEvent(seq=0, kind="ok").to_json()
        path.write_text(good + "\n{broken\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_trace(str(path))


class TestGlobalHook:
    def test_tracing_activates_and_restores(self):
        assert trace.get_tracer() is None
        with tracing() as t:
            assert trace.get_tracer() is t
            t.emit("demo.inside")
        assert trace.get_tracer() is None
        assert t.events[0].kind == "demo.inside"

    def test_tracing_nests(self):
        with tracing() as outer:
            with tracing() as inner:
                assert trace.get_tracer() is inner
            assert trace.get_tracer() is outer
        assert outer is not inner

    def test_tracing_accepts_existing_tracer(self, tmp_path):
        t = Tracer()
        with tracing(t) as active:
            assert active is t
        t.emit("demo.after")  # not closed: caller owns it
        assert t.emitted == 1


class TestIterTrace:
    def test_streaming_matches_read_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path)) as t:
            for i in range(5):
                t.emit("demo.stream", t=float(i), i=i)
        from repro.obs.trace import iter_trace

        streamed = list(iter_trace(str(path)))
        assert streamed == read_trace(str(path))
        assert [e.data["i"] for e in streamed] == list(range(5))

    def test_is_a_lazy_generator(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            TraceEvent(seq=0, kind="ok").to_json() + "\n{broken\n"
        )
        from repro.obs.trace import iter_trace

        it = iter_trace(str(path))
        assert next(it).kind == "ok"  # first line parses before the bad one
        with pytest.raises(ValueError, match=r":2"):
            next(it)


# -- property-based JSON round-trip ----------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: JSON-scalar payload values an emit site can pass (no NaN/inf: JSON
#: serialization of non-finite floats is not round-trippable).
_payload_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, allow_subnormal=False),
    st.text(max_size=40),
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=5),
)

_events = st.builds(
    TraceEvent,
    seq=st.integers(min_value=0, max_value=2**53),
    kind=st.text(min_size=1, max_size=60),
    t=st.one_of(
        st.none(),
        st.floats(allow_nan=False, allow_infinity=False, allow_subnormal=False),
    ),
    data=st.dictionaries(st.text(min_size=1, max_size=20), _payload_values, max_size=6),
)


class TestJsonRoundTripProperty:
    @given(ev=_events)
    @settings(max_examples=200, deadline=None)
    def test_to_json_from_json_is_identity(self, ev):
        assert TraceEvent.from_json(ev.to_json()) == ev

    @given(evs=st.lists(_events, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_file_round_trip_preserves_order(self, evs, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "prop.jsonl"
        path.write_text("".join(ev.to_json() + "\n" for ev in evs))
        assert read_trace(str(path)) == evs

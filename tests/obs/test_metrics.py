"""Metrics registry tests: counters/gauges/histograms and exact merge."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    collecting,
)


class TestMetricTypes:
    def test_counter_inc_and_merge(self):
        a = MetricsRegistry()
        a.counter("hits").inc()
        a.counter("hits").inc(2.0)
        b = MetricsRegistry()
        b.counter("hits").inc(4.0)
        a.merge(b)
        assert a.counter("hits").value == 7.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_gauge_tracks_envelope(self):
        g = GaugeMetric()
        for v in (3.0, -1.0, 2.0):
            g.set(v)
        assert g.last == 2.0
        assert g.min_value == -1.0 and g.max_value == 3.0
        assert g.updates == 3

    def test_gauge_merge_ignores_untouched(self):
        g = GaugeMetric()
        g.set(5.0)
        g.merge(GaugeMetric())  # no updates: keep our last/min/max
        assert g.last == 5.0 and g.updates == 1

    def test_histogram_buckets_and_mean(self):
        h = HistogramMetric(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.mean == pytest.approx(55.5 / 3)
        assert h.min_value == 0.5 and h.max_value == 50.0

    def test_histogram_merge_requires_matching_bounds(self):
        h = HistogramMetric(bounds=(1.0,))
        with pytest.raises(ValueError):
            h.merge(HistogramMetric(bounds=(2.0,)))

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")


class TestSnapshotReduction:
    def _worker(self, values):
        reg = MetricsRegistry()
        for v in values:
            reg.counter("n").inc()
            reg.gauge("g").set(v)
            reg.histogram("h", bounds=(1.0, 2.0)).observe(v)
        return reg.snapshot()

    def test_snapshot_round_trip(self):
        snap = self._worker([0.5, 1.5])
        reg = MetricsRegistry()
        reg.merge_snapshot(snap)
        assert reg.snapshot() == snap

    def test_merge_in_chunk_order_is_grouping_independent(self):
        # Same chunks, different pool groupings -> identical totals; this
        # is the property metered_parallel_map relies on.
        chunks = [[0.5], [1.5, 2.5], [0.1, 3.0]]
        serial = MetricsRegistry()
        for c in chunks:
            serial.merge_snapshot(self._worker(c))
        grouped = MetricsRegistry()
        grouped.merge_snapshot(self._worker(chunks[0]))
        regrouped = MetricsRegistry()
        regrouped.merge_snapshot(self._worker(chunks[1]))
        regrouped.merge_snapshot(self._worker(chunks[2]))
        grouped.merge(regrouped)
        assert grouped.snapshot() == serial.snapshot()
        assert serial.counter("n").value == 5.0
        assert serial.gauge("g").min_value == 0.1
        assert serial.histogram("h", (1.0, 2.0)).counts == [2, 1, 2]

    def test_unknown_snapshot_version_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot({"v": 99, "metrics": {}})


class TestGlobalHook:
    def test_collecting_activates_and_restores(self):
        assert metrics.get_registry() is None
        with collecting() as reg:
            assert metrics.get_registry() is reg
        assert metrics.get_registry() is None

    def test_format_table_lists_metrics(self):
        reg = MetricsRegistry()
        reg.counter("bus.ctl.collisions").inc(3)
        reg.gauge("solver.residual").set(1e-15)
        table = reg.format_table()
        assert "bus.ctl.collisions" in table and "counter" in table
        assert "solver.residual" in table and "gauge" in table


class TestHistogramQuantiles:
    def test_exact_at_extremes(self):
        h = HistogramMetric(bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 2.0, 5.0, 50.0, 200.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.5  # observed min, exactly
        assert h.quantile(1.0) == 200.0  # observed max, exactly

    def test_interpolates_within_covering_bucket(self):
        h = HistogramMetric(bounds=(10.0,))
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        # all four samples in the first bucket [min=1, bound-clamped max=4]
        q = h.quantile(0.5)
        assert 1.0 <= q <= 4.0

    def test_none_before_any_sample_and_range_checked(self):
        h = HistogramMetric()
        assert h.quantile(0.5) is None
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_single_bucket_degenerate_returns_bucket_floor(self):
        h = HistogramMetric(bounds=(1.0, 2.0))
        h.observe(1.5)
        h.observe(1.5)
        assert h.quantile(0.5) == 1.5  # min == max collapses the bucket

    def test_snapshot_carries_derived_percentiles(self):
        h = HistogramMetric()
        for v in (1e-6, 1e-4, 1e-2):
            h.observe(v)
        snap = h.snapshot()
        assert {"p50", "p95", "p99"} <= set(snap)
        assert snap["p50"] is not None

    def test_merge_ignores_derived_keys_and_stays_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1e-6, 1e-3):
            a.histogram("incident.mttr_s").observe(v)
        for v in (1e-2, 1e-1):
            b.histogram("incident.mttr_s").observe(v)
        a.merge_snapshot(b.snapshot())
        merged = a.histogram("incident.mttr_s")
        direct = HistogramMetric()
        for v in (1e-6, 1e-3, 1e-2, 1e-1):
            direct.observe(v)
        assert merged.snapshot() == direct.snapshot()

    def test_grouping_independent_estimates(self):
        values = [10.0 ** (i % 7 - 6) for i in range(50)]
        whole = HistogramMetric()
        for v in values:
            whole.observe(v)
        left, right = HistogramMetric(), HistogramMetric()
        for i, v in enumerate(values):
            (left if i % 2 else right).observe(v)
        left.merge(right)
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == whole.quantile(q)

    def test_format_table_shows_percentiles(self):
        reg = MetricsRegistry()
        for v in (1e-5, 1e-4, 1e-3):
            reg.histogram("incident.detection_latency_s").observe(v)
        table = reg.format_table()
        assert "p50=" in table and "p95=" in table and "p99=" in table

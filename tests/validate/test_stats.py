"""Unit tests for the statistical layer of the validation harness."""

import math

import numpy as np
import pytest

from repro.core import DRAConfig, RepairPolicy
from repro.core.availability import build_dra_availability_chain
from repro.validate import (
    DEFAULT_Z,
    FLOAT_EPS,
    ConfidenceInterval,
    assert_distribution_rows,
    assert_mc_fraction_consistent,
    assert_mc_mean_consistent,
    assert_probability_vector,
    assert_solvers_agree,
    assert_stationary_residual,
    distribution_atol,
    mean_interval,
    sample_mean_interval,
    tost_interval,
    wilson_interval,
)


class TestConfidenceInterval:
    def test_contains_is_inclusive(self):
        ci = ConfidenceInterval(lo=0.2, hi=0.4, z=4.0, method="normal")
        assert ci.contains(0.2) and ci.contains(0.4) and ci.contains(0.3)
        assert not ci.contains(0.19999) and not ci.contains(0.40001)

    def test_overlap_is_symmetric(self):
        a = ConfidenceInterval(lo=0.0, hi=1.0, z=4.0, method="normal")
        b = ConfidenceInterval(lo=0.5, hi=2.0, z=4.0, method="normal")
        c = ConfidenceInterval(lo=1.5, hi=2.0, z=4.0, method="normal")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(lo=1.0, hi=0.0, z=4.0, method="normal")


class TestWilson:
    def test_matches_textbook_value(self):
        # 45/100 at z=1.96: the classic worked example.
        ci = wilson_interval(45, 100, z=1.96)
        assert ci.lo == pytest.approx(0.3557, abs=2e-3)
        assert ci.hi == pytest.approx(0.5476, abs=2e-3)

    def test_never_collapses_at_zero_successes(self):
        # The rare-event edge: p_hat = 0 still yields a usable interval,
        # unlike the Wald construction.
        ci = wilson_interval(0, 1000)
        assert ci.lo == 0.0
        assert 0.0 < ci.hi < 0.03

    def test_stays_inside_unit_interval(self):
        ci = wilson_interval(1000, 1000)
        assert ci.hi == 1.0 and ci.lo > 0.97

    def test_shrinks_with_n(self):
        wide = wilson_interval(10, 20)
        narrow = wilson_interval(10_000, 20_000)
        assert narrow.width < wide.width / 10

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 4, z=0.0)


class TestMeanIntervals:
    def test_mean_interval_halfwidth(self):
        ci = mean_interval(10.0, 0.5, z=4.0)
        assert ci.lo == pytest.approx(8.0) and ci.hi == pytest.approx(12.0)

    def test_sample_mean_interval_matches_direct_computation(self):
        rng = np.random.default_rng(7)
        x = rng.exponential(3.0, size=500)
        ci = sample_mean_interval(float(x.sum()), float((x * x).sum()), x.size)
        se = x.std(ddof=1) / math.sqrt(x.size)
        assert ci.lo == pytest.approx(x.mean() - DEFAULT_Z * se, rel=1e-12)
        assert ci.hi == pytest.approx(x.mean() + DEFAULT_Z * se, rel=1e-12)

    def test_sample_mean_interval_needs_two_samples(self):
        with pytest.raises(ValueError):
            sample_mean_interval(1.0, 1.0, 1)

    def test_negative_std_error_rejected(self):
        with pytest.raises(ValueError):
            mean_interval(0.0, -1.0)


class TestTost:
    def test_bound_is_exact_not_asymptotic(self):
        ci = tost_interval(4.0e9, 6.0e6)
        assert ci.contains(4.0e9 + 6.0e6)
        assert not ci.contains(4.0e9 + 6.0e6 + 1.0)
        assert ci.method == "tost"

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            tost_interval(1.0, -1.0)


class TestSolverTolerances:
    def test_distribution_atol_scales_with_state_count(self):
        assert distribution_atol(100) == pytest.approx(
            100 * 64.0 * FLOAT_EPS
        )
        assert distribution_atol(0) == distribution_atol(1)

    def test_probability_vector_accepts_rounded_distribution(self):
        v = np.full(1000, 1e-3)
        assert_probability_vector(v)

    def test_probability_vector_rejects_real_mass_defect(self):
        with pytest.raises(AssertionError, match="sums to"):
            assert_probability_vector([0.5, 0.4999])
        with pytest.raises(AssertionError, match="outside"):
            assert_probability_vector([1.1, -0.1])

    def test_distribution_rows_reports_offending_row(self):
        rows = np.array([[0.5, 0.5], [0.7, 0.2]])
        with pytest.raises(AssertionError, match=r"\[1\]"):
            assert_distribution_rows(rows)

    def test_stationary_residual_accepts_true_solution(self):
        from repro.markov import stationary_distribution

        chain = build_dra_availability_chain(
            DRAConfig(n=3, m=2), RepairPolicy.three_hours()
        )
        pi = stationary_distribution(chain)
        assert_stationary_residual(pi, chain)

    def test_stationary_residual_rejects_wrong_vector(self):
        chain = build_dra_availability_chain(
            DRAConfig(n=3, m=2), RepairPolicy.three_hours()
        )
        uniform = np.full(chain.n_states, 1.0 / chain.n_states)
        with pytest.raises(AssertionError, match="conditioning budget"):
            assert_stationary_residual(uniform, chain)

    def test_solvers_agree_uses_advertised_budget(self):
        assert_solvers_agree([1.0, 2.0], [1.0, 2.0 + 1e-12], budget=1e-11)
        with pytest.raises(AssertionError, match="advertised"):
            assert_solvers_agree([1.0], [1.001], budget=1e-6)
        with pytest.raises(ValueError):
            assert_solvers_agree([1.0], [1.0], budget=0.0)


class TestMcConsistency:
    def test_mean_consistency(self):
        assert_mc_mean_consistent(10.0, 0.5, 11.0)
        with pytest.raises(AssertionError, match="outside"):
            assert_mc_mean_consistent(10.0, 0.5, 13.0)

    def test_fraction_consistency(self):
        assert_mc_fraction_consistent(480, 1000, 0.5)
        with pytest.raises(AssertionError, match="Wilson"):
            assert_mc_fraction_consistent(480, 1000, 0.9)

"""Planner v2 dominance pair: adaptive must not underperform static."""

import numpy as np

from repro.validate.pairs import (
    PAIRS,
    _pair_coverage_policy_dominance,
    suite_pairs,
)


class TestRegistration:
    def test_registered_with_smoke_and_full_budgets(self):
        spec = PAIRS["coverage.policy_dominance"]
        assert spec.stochastic
        assert spec.samples["smoke"] == 400
        assert spec.samples["full"] == 1_200

    def test_rides_in_smoke_suite(self):
        names = {s.name for s in suite_pairs("smoke")}
        assert "coverage.policy_dominance" in names


class TestDominance:
    def test_adaptive_dominates_static_under_multi_fault(self):
        res = _pair_coverage_policy_dominance(
            80, np.random.default_rng(0), {}, 1.96
        )
        assert res["passed"]
        d = res["detail"]
        # The scenario is only a pin if it actually separates the two
        # policies: the mid-window SRU fault must cost the static plan
        # real deliveries that the adaptive plan recovers.
        assert d["delivered_adaptive"] > d["delivered_static"]
        assert res["empirical"] >= res["analytic"]

    def test_deterministic_given_seeded_rng(self):
        a = _pair_coverage_policy_dominance(40, np.random.default_rng(7), {}, 1.96)
        b = _pair_coverage_policy_dominance(40, np.random.default_rng(7), {}, 1.96)
        assert a == b

"""The harness's own self-test: a deliberately wrong analytic model
must make the suite FAIL.

Perturbations scale *analytic-side* parameters only; the empirical
estimators keep sampling the untouched model, so sim and analysis
genuinely diverge and a harness that cannot catch the divergence is
broken (silent tolerances, dead comparisons, swapped sides).
"""

import pytest

from repro.validate.engine import ESCALATION_FACTOR, run_suite
from repro.validate.pairs import PAIRS


class TestPerturbationSelfTest:
    def test_scaled_ctmc_rate_fails_the_suite(self):
        # The headline acceptance criterion: scale one CTMC failure rate
        # by 1.5x and the MTTF pair must flag the disagreement.
        report = run_suite("tiny", seed=0, perturb={"lam_lpi": 1.5})
        assert report["passed"] is False
        assert "mttf.lc" in report["failed"]

    def test_failure_survives_escalation(self):
        # A genuine model error persists through the 4x re-run (which
        # exists to absorb statistical flakes, not real divergence).
        report = run_suite("tiny", seed=0, perturb={"lam_lpi": 1.5})
        rec = next(r for r in report["pairs"] if r["pair"] == "mttf.lc")
        assert rec["escalated"] is True and rec["passed"] is False
        base = PAIRS["mttf.lc"].budget("tiny")
        assert rec["n"] == ESCALATION_FACTOR * base

    def test_bus_bandwidth_perturbation_fails_tost_pair(self):
        # The deterministic DES pair has its own perturbation axis: a
        # wrong B_bus breaks both the promise check and the Section 5.3
        # share algebra.
        report = run_suite("tiny", seed=0, perturb={"b_bus": 0.5})
        assert report["passed"] is False
        assert "bandwidth.share" in report["failed"]
        rec = next(
            r for r in report["pairs"] if r["pair"] == "bandwidth.share"
        )
        # Deterministic pairs are never escalated — re-measuring the
        # same DES yields the same bytes.
        assert rec["escalated"] is False

    def test_unperturbed_suite_passes(self):
        assert run_suite("tiny", seed=0, perturb={})["passed"] is True

    @pytest.mark.parametrize("factor", [1.0])
    def test_identity_perturbation_is_a_noop(self, factor):
        base = run_suite("tiny", seed=0)
        scaled = run_suite("tiny", seed=0, perturb={"lam_lpi": factor})
        assert [r["empirical"] for r in base["pairs"]] == [
            r["empirical"] for r in scaled["pairs"]
        ]
        assert [r["analytic"] for r in base["pairs"]] == [
            r["analytic"] for r in scaled["pairs"]
        ]

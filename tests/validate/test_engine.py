"""Suite-runner tests: determinism contract, schema, observability."""

import json

import pytest

from repro.obs import collecting, tracing
from repro.validate.engine import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    render_report,
    report_to_json,
    run_suite,
)
from repro.validate.pairs import PAIRS, SUITES, suite_pairs


class TestRegistry:
    def test_suites_nest(self):
        # Every pair of a smaller tier rides along in every larger one.
        previous: set[str] = set()
        for suite in SUITES:
            names = {spec.name for spec in suite_pairs(suite)}
            assert previous <= names
            previous = names

    def test_suite_order_is_sorted_names(self):
        # The seed-spawn order — part of the determinism contract.
        for suite in SUITES:
            names = [spec.name for spec in suite_pairs(suite)]
            assert names == sorted(names)

    def test_full_suite_covers_every_pair(self):
        assert {spec.name for spec in suite_pairs("full")} == set(PAIRS)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            suite_pairs("bogus")


class TestSeedMatrix:
    """Tier-1 determinism gate: the JSON report is byte-identical across
    job counts for every seed — ``--jobs`` schedules work, it never
    changes a byte of output."""

    @pytest.mark.parametrize("seed", [0, 1, 12345])
    def test_tiny_suite_byte_identical_across_jobs(self, seed):
        serial = report_to_json(run_suite("tiny", seed=seed, jobs=1))
        fanned = report_to_json(run_suite("tiny", seed=seed, jobs=2))
        assert serial == fanned

    def test_different_seeds_draw_different_samples(self):
        a = run_suite("tiny", seed=0)
        b = run_suite("tiny", seed=1)
        emp = {r["pair"]: r["empirical"] for r in a["pairs"]}
        emp_b = {r["pair"]: r["empirical"] for r in b["pairs"]}
        # The stochastic pair must move with the seed; the deterministic
        # DES pair must not.
        assert emp["mttf.lc"] != emp_b["mttf.lc"]
        assert emp["bandwidth.share"] == emp_b["bandwidth.share"]


class TestReport:
    def test_schema_versioned_and_json_round_trips(self):
        report = run_suite("tiny", seed=0)
        assert report["schema"] == REPORT_SCHEMA
        assert report["v"] == REPORT_SCHEMA_VERSION
        assert report["passed"] is True and report["failed"] == []
        assert report["n_pairs"] == len(report["pairs"]) == 2
        assert json.loads(report_to_json(report)) == report

    def test_result_records_are_json_scalars(self):
        report = run_suite("tiny", seed=0)
        for rec in report["pairs"]:
            for key in ("analytic", "empirical", "ci_lo", "ci_hi"):
                assert isinstance(rec[key], float)
            assert isinstance(rec["n"], int)
            assert rec["ci_lo"] <= rec["ci_hi"]
            assert rec["method"] in ("wilson", "normal", "tost")

    def test_render_report_table(self):
        report = run_suite("tiny", seed=0)
        text = render_report(report)
        assert "2/2 pairs agree" in text
        assert "mttf.lc" in text and "bandwidth.share" in text
        assert "FAIL" not in text


class TestObservability:
    def test_metrics_counters(self):
        with collecting() as reg:
            run_suite("tiny", seed=0, jobs=1)
        metrics = reg.snapshot()["metrics"]
        assert metrics["validate.pairs.evaluated"]["value"] == 2
        assert "validate.pairs.failed" not in metrics

    def test_trace_events(self, tmp_path):
        path = tmp_path / "v.jsonl"
        with tracing(str(path)):
            run_suite("tiny", seed=0, jobs=1)
        from repro.obs import read_trace

        kinds = [ev.kind for ev in read_trace(str(path))]
        assert kinds.count("validate.pair") == 2
        assert kinds.count("validate.suite") == 1

"""Unit tests for the CTMC core object."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov import CTMC, CTMCBuilder
from repro.markov.ctmc import CTMCValidationError


def make_chain() -> CTMC:
    b = CTMCBuilder()
    b.add_transition("a", "b", 1.0)
    b.add_transition("b", "a", 2.0)
    b.add_transition("b", "c", 0.5)
    b.add_state("c")
    return b.build()


class TestConstruction:
    def test_states_in_registration_order(self):
        chain = make_chain()
        assert chain.states == ("a", "b", "c")

    def test_index_roundtrip(self):
        chain = make_chain()
        for i, s in enumerate(chain.states):
            assert chain.index_of(s) == i

    def test_contains(self):
        chain = make_chain()
        assert "a" in chain and "z" not in chain

    def test_len(self):
        assert len(make_chain()) == 3

    def test_duplicate_states_rejected(self):
        with pytest.raises(CTMCValidationError, match="duplicate"):
            CTMC(["a", "a"], np.zeros((2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CTMCValidationError, match="shape"):
            CTMC(["a", "b"], np.zeros((3, 3)))

    def test_negative_offdiagonal_rejected(self):
        Q = np.array([[1.0, -1.0], [0.0, 0.0]])
        with pytest.raises(CTMCValidationError, match="negative"):
            CTMC(["a", "b"], Q)

    def test_nonzero_rowsum_rejected(self):
        Q = np.array([[-1.0, 2.0], [0.0, 0.0]])
        with pytest.raises(CTMCValidationError, match="sums to"):
            CTMC(["a", "b"], Q)

    def test_accepts_sparse_input(self):
        Q = sp.csr_matrix(np.array([[-1.0, 1.0], [2.0, -2.0]]))
        chain = CTMC(["a", "b"], Q)
        assert chain.n_states == 2


class TestDerivedQuantities:
    def test_rate_lookup(self):
        chain = make_chain()
        assert chain.rate("a", "b") == 1.0
        assert chain.rate("b", "c") == 0.5
        assert chain.rate("a", "c") == 0.0

    def test_exit_rates(self):
        chain = make_chain()
        np.testing.assert_allclose(chain.exit_rates(), [1.0, 2.5, 0.0])

    def test_max_exit_rate(self):
        assert make_chain().max_exit_rate() == 2.5

    def test_absorbing_states(self):
        assert make_chain().absorbing_states() == ("c",)

    def test_embedded_jump_matrix_rows_stochastic(self):
        P = make_chain().embedded_jump_matrix()
        np.testing.assert_allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_embedded_jump_probabilities(self):
        P = make_chain().embedded_jump_matrix().toarray()
        assert P[1, 0] == pytest.approx(2.0 / 2.5)
        assert P[1, 2] == pytest.approx(0.5 / 2.5)
        assert P[2, 2] == 1.0  # absorbing self-loop

    def test_uniformized_matrix_stochastic(self):
        P, lam = make_chain().uniformized_matrix()
        assert lam >= 2.5
        np.testing.assert_allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)
        assert P.toarray().min() >= 0.0

    def test_uniformized_rate_too_small_rejected(self):
        with pytest.raises(ValueError, match="below max exit rate"):
            make_chain().uniformized_matrix(rate=1.0)


class TestInitialDistribution:
    def test_default_mass_on_first(self):
        pi0 = make_chain().initial_distribution()
        np.testing.assert_allclose(pi0, [1.0, 0.0, 0.0])

    def test_single_state(self):
        pi0 = make_chain().initial_distribution("b")
        np.testing.assert_allclose(pi0, [0.0, 1.0, 0.0])

    def test_mapping_normalized(self):
        pi0 = make_chain().initial_distribution({"a": 1.0, "b": 3.0})
        np.testing.assert_allclose(pi0, [0.25, 0.75, 0.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            make_chain().initial_distribution({"a": -1.0})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            make_chain().initial_distribution({"a": 0.0})


class TestProbabilityOf:
    def test_vector(self):
        chain = make_chain()
        dist = np.array([0.2, 0.3, 0.5])
        assert chain.probability_of(dist, ["a", "c"]) == pytest.approx(0.7)

    def test_matrix(self):
        chain = make_chain()
        dist = np.array([[0.2, 0.3, 0.5], [0.1, 0.1, 0.8]])
        out = chain.probability_of(dist, ["c"])
        np.testing.assert_allclose(out, [0.5, 0.8])


class TestRestriction:
    def test_restricted_chain_is_valid(self):
        chain = make_chain()
        sub = chain.restricted_to(["a", "b"])
        assert sub.states == ("a", "b")
        assert sub.rate("a", "b") == 1.0
        assert sub.rate("b", "a") == 2.0

    def test_restriction_drops_escaping_mass(self):
        chain = make_chain()
        sub = chain.restricted_to(["a", "b"])
        # b's exit rate shrinks from 2.5 to 2.0: the 0.5 to c is dropped.
        np.testing.assert_allclose(sub.exit_rates(), [1.0, 2.0])

"""Uniformization tests: truncation point and agreement with expm."""

import numpy as np
import pytest

from repro.markov import CTMCBuilder, transient_distribution, uniformized_distribution
from repro.markov.uniformization import poisson_truncation_point
from repro.validate import (
    assert_distribution_rows,
    assert_solvers_agree,
    distribution_atol,
)


class TestTruncationPoint:
    def test_zero_rate_time(self):
        assert poisson_truncation_point(0.0, 1e-12) == 0

    def test_tail_below_tolerance(self):
        from scipy import stats

        for rt in (0.5, 5.0, 50.0):
            k = poisson_truncation_point(rt, 1e-10)
            assert stats.poisson.sf(k, rt) <= 1e-10

    def test_grows_with_rate_time(self):
        assert poisson_truncation_point(100.0, 1e-10) > poisson_truncation_point(
            1.0, 1e-10
        )


class TestAgreement:
    # budget for sim-vs-expm agreement: uniformization's advertised
    # Poisson-tail truncation (1e-12) plus the float rounding of the
    # dense expm path.
    def test_matches_expm_on_two_state(self, two_state_chain):
        t = np.linspace(0.0, 10.0, 11)
        a = uniformized_distribution(two_state_chain, t)
        b = transient_distribution(two_state_chain, t, method="expm")
        assert_solvers_agree(
            a, b, budget=1e-12 + distribution_atol(2),
            label="uniformization vs expm",
        )

    def test_matches_expm_on_absorbing(self, absorbing_chain):
        t = np.array([0.0, 2.0, 8.0, 30.0])
        a = uniformized_distribution(absorbing_chain, t)
        b = transient_distribution(absorbing_chain, t, method="expm")
        assert_solvers_agree(
            a, b, budget=1e-12 + distribution_atol(3),
            label="uniformization vs expm",
        )

    def test_rows_are_distributions(self, absorbing_chain):
        t = np.linspace(0.0, 30.0, 7)
        pi = uniformized_distribution(absorbing_chain, t)
        assert_distribution_rows(pi, label="uniformization")

    def test_explicit_rate_accepted(self, two_state_chain):
        t = np.array([1.0])
        a = uniformized_distribution(two_state_chain, t, rate=10.0)
        b = uniformized_distribution(two_state_chain, t)
        # two truncations, one per uniformization rate
        assert_solvers_agree(a, b, budget=2e-12, label="rate override")

    def test_zero_transition_chain(self):
        b = CTMCBuilder()
        b.add_state("frozen")
        pi = uniformized_distribution(b.build(), np.array([0.0, 5.0]))
        np.testing.assert_allclose(pi, [[1.0], [1.0]])


class TestValidation:
    def test_negative_times_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="nonnegative"):
            uniformized_distribution(two_state_chain, np.array([-1.0]))

    def test_empty_times(self, two_state_chain):
        out = uniformized_distribution(two_state_chain, np.array([]))
        assert out.shape == (0, 2)

"""Absorbing-chain analysis tests."""

import numpy as np
import pytest

from repro.markov import (
    CTMCBuilder,
    absorption_probabilities,
    mean_time_to_absorption,
    phase_type_cdf,
    transient_distribution,
)
from repro.markov.absorbing import split_transient_absorbing


def competing_risks(lam1: float, lam2: float):
    """One transient state, two absorbing states."""
    b = CTMCBuilder()
    b.add_transition("alive", "death1", lam1)
    b.add_transition("alive", "death2", lam2)
    return b.build()


class TestSplit:
    def test_default_detection(self, absorbing_chain):
        t_idx, a_idx = split_transient_absorbing(absorbing_chain)
        assert [absorbing_chain.states[i] for i in a_idx] == ["dead"]
        assert len(t_idx) == 2

    def test_no_absorbing_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="no absorbing"):
            split_transient_absorbing(two_state_chain)

    def test_explicit_absorbing_set(self, absorbing_chain):
        t_idx, a_idx = split_transient_absorbing(absorbing_chain, ["dead"])
        assert len(a_idx) == 1


class TestAbsorptionProbabilities:
    def test_competing_risks_proportions(self):
        chain = competing_risks(1.0, 3.0)
        B = absorption_probabilities(chain)
        np.testing.assert_allclose(B[0], [0.25, 0.75])

    def test_rows_sum_to_one_when_absorption_certain(self, absorbing_chain):
        B = absorption_probabilities(absorbing_chain)
        np.testing.assert_allclose(B.sum(axis=1), 1.0, atol=1e-12)


class TestMTTA:
    def test_single_exponential(self):
        b = CTMCBuilder()
        b.add_transition("up", "down", 0.25)
        assert mean_time_to_absorption(b.build()) == pytest.approx(4.0)

    def test_repairable_before_death(self, absorbing_chain):
        # good -> degraded at 0.5; degraded -> good at 1.0, -> dead at 0.25.
        # E[T_good] = 1/0.5 + E[T_degraded]
        # E[T_degraded] = 1/1.25 + (1.0/1.25) E[T_good]  =>  solve exactly.
        e_deg = (1 / 1.25 + (1.0 / 1.25) * 2.0) / (1 - (1.0 / 1.25) * 1.0)
        # e_good = 2 + e_deg
        expected = 2.0 + e_deg
        assert mean_time_to_absorption(absorbing_chain) == pytest.approx(expected)

    def test_starting_state_label(self, absorbing_chain):
        m_good = mean_time_to_absorption(absorbing_chain, "good")
        m_deg = mean_time_to_absorption(absorbing_chain, "degraded")
        assert m_good > m_deg > 0.0

    def test_initial_distribution_array(self, absorbing_chain):
        pi0 = absorbing_chain.initial_distribution({"good": 0.5, "degraded": 0.5})
        m = mean_time_to_absorption(absorbing_chain, pi0)
        m_good = mean_time_to_absorption(absorbing_chain, "good")
        m_deg = mean_time_to_absorption(absorbing_chain, "degraded")
        assert m == pytest.approx(0.5 * m_good + 0.5 * m_deg)


class TestPhaseTypeCDF:
    def test_matches_transient_failure_mass(self, absorbing_chain):
        t = np.array([0.0, 1.0, 4.0, 16.0])
        cdf = phase_type_cdf(absorbing_chain, t)
        pi = transient_distribution(absorbing_chain, t)
        dead = absorbing_chain.index_of("dead")
        np.testing.assert_allclose(cdf, pi[:, dead], atol=1e-8)

    def test_monotone_nondecreasing(self, absorbing_chain):
        t = np.linspace(0.0, 50.0, 26)
        cdf = phase_type_cdf(absorbing_chain, t)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_exponential_cdf(self):
        b = CTMCBuilder()
        b.add_transition("up", "down", 0.5)
        t = np.array([0.0, 1.0, 3.0])
        cdf = phase_type_cdf(b.build(), t)
        np.testing.assert_allclose(cdf, 1.0 - np.exp(-0.5 * t), rtol=1e-8)

"""DTMC tests."""

import numpy as np
import pytest

from repro.markov import CTMCBuilder, stationary_distribution
from repro.markov.dtmc import DTMC


def two_state(p=0.3, q=0.8):
    return DTMC(["a", "b"], np.array([[1 - p, p], [q, 1 - q]]))


class TestConstruction:
    def test_valid(self):
        d = two_state()
        assert d.n_states == 2
        assert d.probability("a", "b") == pytest.approx(0.3)

    def test_non_stochastic_rejected(self):
        with pytest.raises(ValueError, match="sums to"):
            DTMC(["a", "b"], np.array([[0.5, 0.4], [0.0, 1.0]]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            DTMC(["a", "b"], np.array([[1.5, -0.5], [0.0, 1.0]]))

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DTMC(["a", "a"], np.eye(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            DTMC(["a"], np.eye(2))


class TestFromCTMC:
    def make_ctmc(self):
        b = CTMCBuilder()
        b.add_transition("up", "down", 0.2)
        b.add_transition("down", "up", 2.0)
        return b.build()

    def test_embedded_chain(self):
        d = DTMC.embedded_from(self.make_ctmc())
        assert d.probability("up", "down") == pytest.approx(1.0)
        assert d.probability("down", "up") == pytest.approx(1.0)

    def test_uniformized_stationary_matches_ctmc(self):
        chain = self.make_ctmc()
        d = DTMC.uniformized_from(chain)
        np.testing.assert_allclose(
            d.stationary(), stationary_distribution(chain), atol=1e-9
        )


class TestEvolution:
    def test_step_zero_identity(self):
        d = two_state()
        dist = np.array([0.7, 0.3])
        np.testing.assert_allclose(d.step(dist, 0), dist)

    def test_step_matches_matrix_power(self):
        d = two_state()
        dist = np.array([1.0, 0.0])
        P = d.transition_matrix.toarray()
        np.testing.assert_allclose(d.step(dist, 5), dist @ np.linalg.matrix_power(P, 5))

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            two_state().step(np.array([1.0, 0.0]), -1)

    def test_stationary_balance(self):
        d = two_state()
        pi = d.stationary()
        np.testing.assert_allclose(pi @ d.transition_matrix.toarray(), pi, atol=1e-10)
        # Closed form: pi_a = q / (p + q).
        assert pi[0] == pytest.approx(0.8 / 1.1)

    def test_stationary_periodic_chain(self):
        """The lazy-chain trick converges even for a period-2 chain."""
        d = DTMC([0, 1], np.array([[0.0, 1.0], [1.0, 0.0]]))
        np.testing.assert_allclose(d.stationary(), [0.5, 0.5], atol=1e-9)

    def test_single_state(self):
        d = DTMC(["x"], np.array([[1.0]]))
        np.testing.assert_allclose(d.stationary(), [1.0])


class TestAbsorbing:
    def gambler(self):
        # 0 and 3 absorbing; fair coin between.
        P = np.array(
            [
                [1.0, 0.0, 0.0, 0.0],
                [0.5, 0.0, 0.5, 0.0],
                [0.0, 0.5, 0.0, 0.5],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        return DTMC([0, 1, 2, 3], P)

    def test_absorbing_detection(self):
        assert self.gambler().absorbing_states() == (0, 3)

    def test_fundamental_matrix_visits(self):
        N, transient = self.gambler().fundamental_matrix()
        assert transient == [1, 2]
        # Classic gambler's ruin: N = [[4/3, 2/3], [2/3, 4/3]].
        np.testing.assert_allclose(N, [[4 / 3, 2 / 3], [2 / 3, 4 / 3]], atol=1e-12)

    def test_expected_steps(self):
        steps = self.gambler().expected_steps_to_absorption()
        assert steps[1] == pytest.approx(2.0)
        assert steps[2] == pytest.approx(2.0)
        assert steps[0] == 0.0

    def test_no_absorbing_rejected(self):
        with pytest.raises(ValueError, match="no absorbing"):
            two_state().fundamental_matrix()

"""Transient solver tests: closed forms and cross-method agreement."""

import numpy as np
import pytest

from repro.markov import CTMCBuilder, transient_distribution
from repro.markov.transient import TRANSIENT_METHODS
from repro.validate import assert_distribution_rows, assert_solvers_agree


def pure_death(lam: float):
    b = CTMCBuilder()
    b.add_transition("up", "down", lam)
    return b.build()


class TestClosedForms:
    @pytest.mark.parametrize("method", TRANSIENT_METHODS)
    def test_exponential_decay(self, method):
        lam = 0.3
        chain = pure_death(lam)
        t = np.array([0.0, 1.0, 2.0, 5.0])
        pi = transient_distribution(chain, t, method=method)
        np.testing.assert_allclose(pi[:, 0], np.exp(-lam * t), rtol=1e-6)

    @pytest.mark.parametrize("method", TRANSIENT_METHODS)
    def test_two_state_equilibrium(self, method, two_state_chain):
        # pi_up(inf) = mu / (mu + lam) with lam = 0.2, mu = 2.0.
        pi = transient_distribution(two_state_chain, np.array([200.0]), method=method)
        assert pi[0, 0] == pytest.approx(2.0 / 2.2, rel=1e-6)

    def test_initial_condition_respected(self, two_state_chain):
        pi0 = two_state_chain.initial_distribution("down")
        pi = transient_distribution(two_state_chain, np.array([0.0]), pi0)
        np.testing.assert_allclose(pi[0], [0.0, 1.0])


class TestCrossMethod:
    def test_methods_agree_on_stiff_chain(self):
        # Rates spanning 6 orders of magnitude, like the dependability models.
        b = CTMCBuilder()
        b.add_transition("a", "b", 2e-5)
        b.add_transition("b", "c", 1e-5)
        b.add_transition("b", "a", 1.0 / 3.0)
        b.add_state("c")
        chain = b.build()
        t = np.array([100.0, 10_000.0, 100_000.0])
        base = transient_distribution(chain, t, method="expm_multiply")
        for method in ("expm", "ode"):
            other = transient_distribution(chain, t, method=method)
            # budget: the ODE path advertises rtol=1e-10/atol=1e-12 on
            # probabilities <= 1; the expm paths are far below that.
            assert_solvers_agree(
                other, base, budget=1e-10 + 1e-12,
                label=f"{method} vs expm_multiply",
            )


class TestRowProperties:
    @pytest.mark.parametrize("method", TRANSIENT_METHODS)
    def test_rows_are_distributions(self, method, absorbing_chain):
        t = np.linspace(0.0, 20.0, 7)
        pi = transient_distribution(absorbing_chain, t, method=method)
        assert_distribution_rows(pi, label=method)

    def test_unsorted_and_repeated_times(self, absorbing_chain):
        t = np.array([5.0, 1.0, 5.0, 0.0])
        pi = transient_distribution(absorbing_chain, t)
        np.testing.assert_allclose(pi[0], pi[2], atol=1e-12)
        np.testing.assert_allclose(pi[3], [1.0, 0.0, 0.0], atol=1e-12)


class TestValidation:
    def test_negative_time_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="nonnegative"):
            transient_distribution(two_state_chain, np.array([-1.0]))

    def test_bad_initial_shape_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="shape"):
            transient_distribution(two_state_chain, np.array([1.0]), np.ones(3) / 3)

    def test_unnormalized_initial_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="sums to"):
            transient_distribution(
                two_state_chain, np.array([1.0]), np.array([0.5, 0.2])
            )

    def test_unknown_method_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="unknown method"):
            transient_distribution(two_state_chain, np.array([1.0]), method="magic")

    def test_2d_times_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="one-dimensional"):
            transient_distribution(two_state_chain, np.ones((2, 2)))

    def test_empty_times(self, two_state_chain):
        out = transient_distribution(two_state_chain, np.array([]))
        assert out.shape == (0, 2)

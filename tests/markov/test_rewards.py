"""Markov reward-model tests."""

import numpy as np
import pytest

from repro.markov import (
    CTMCBuilder,
    accumulated_reward,
    instantaneous_reward,
    interval_availability,
    reward_vector,
    stationary_distribution,
)


class TestRewardVector:
    def test_mapping_and_default(self, two_state_chain):
        r = reward_vector(two_state_chain, {"down": 5.0}, default=1.0)
        np.testing.assert_allclose(r, [1.0, 5.0])

    def test_unknown_state_rejected(self, two_state_chain):
        with pytest.raises(KeyError):
            reward_vector(two_state_chain, {"nope": 1.0})


class TestInstantaneousReward:
    def test_matches_distribution_dot_product(self, two_state_chain):
        r = reward_vector(two_state_chain, {"up": 1.0})
        out = instantaneous_reward(two_state_chain, r, np.array([0.0, 100.0]))
        assert out[0] == pytest.approx(1.0)
        pi_inf = stationary_distribution(two_state_chain)
        assert out[1] == pytest.approx(pi_inf[0], rel=1e-6)

    def test_shape_validation(self, two_state_chain):
        with pytest.raises(ValueError, match="shape"):
            instantaneous_reward(two_state_chain, np.ones(3), np.array([1.0]))


class TestAccumulatedReward:
    def test_constant_reward_is_time(self, two_state_chain):
        r = np.ones(2)
        t = np.array([0.0, 3.0, 10.0])
        acc = accumulated_reward(two_state_chain, r, t)
        np.testing.assert_allclose(acc, t, rtol=1e-8)

    def test_pure_death_uptime_closed_form(self):
        # up -> down at rate lam; E[uptime in [0,t]] = (1 - e^{-lam t}) / lam.
        lam = 0.5
        b = CTMCBuilder()
        b.add_transition("up", "down", lam)
        chain = b.build()
        r = reward_vector(chain, {"up": 1.0})
        t = np.array([1.0, 4.0, 20.0])
        acc = accumulated_reward(chain, r, t)
        np.testing.assert_allclose(acc, (1 - np.exp(-lam * t)) / lam, rtol=1e-7)

    def test_monotone_for_nonnegative_rewards(self, absorbing_chain):
        r = reward_vector(absorbing_chain, {"good": 2.0, "degraded": 1.0})
        t = np.linspace(0.0, 30.0, 7)
        acc = accumulated_reward(absorbing_chain, r, t)
        assert np.all(np.diff(acc) >= -1e-12)

    def test_negative_time_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="nonnegative"):
            accumulated_reward(two_state_chain, np.ones(2), np.array([-1.0]))


class TestIntervalAvailability:
    def test_starts_at_one_converges_to_stationary(self, two_state_chain):
        t = np.array([0.0, 1e4])
        ia = interval_availability(two_state_chain, ["up"], t)
        assert ia[0] == pytest.approx(1.0)
        pi_inf = stationary_distribution(two_state_chain)
        assert ia[1] == pytest.approx(pi_inf[0], rel=1e-4)

    def test_interval_availability_exceeds_point_availability_early(
        self, two_state_chain
    ):
        """A system starting healthy has spent most of a short window up,
        so interval availability decays more slowly than pi_up(t)."""
        from repro.markov import transient_distribution

        t = np.array([2.0])
        ia = interval_availability(two_state_chain, ["up"], t)[0]
        point = transient_distribution(two_state_chain, t)[0, 0]
        assert ia > point

    def test_bounded(self, absorbing_chain):
        t = np.linspace(0.0, 50.0, 6)
        ia = interval_availability(absorbing_chain, ["good", "degraded"], t)
        assert np.all((0.0 <= ia) & (ia <= 1.0))

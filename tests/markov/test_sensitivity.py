"""Sensitivity estimator tests: finite differences vs the forward ODE."""

import numpy as np
import pytest

from repro.markov import CTMCBuilder, transient_sensitivity
from repro.markov.sensitivity import forward_sensitivity


def decay_chain(lam: float):
    b = CTMCBuilder()
    b.add_transition("up", "down", lam)
    return b.build()


class TestFiniteDifference:
    def test_exponential_derivative(self):
        # pi_up(t) = exp(-lam t)  =>  d pi_up / d lam = -t exp(-lam t).
        lam = 0.3
        t = np.array([0.5, 1.0, 2.0])
        s = transient_sensitivity(decay_chain, lam, t)
        np.testing.assert_allclose(s[:, 0], -t * np.exp(-lam * t), rtol=1e-4)

    def test_probability_conservation(self):
        # Rows of the sensitivity must sum to zero (total mass is constant).
        s = transient_sensitivity(decay_chain, 0.3, np.array([1.0, 5.0]))
        np.testing.assert_allclose(s.sum(axis=1), 0.0, atol=1e-8)

    def test_reordered_states_rejected(self):
        calls = []

        def factory(theta):
            b = CTMCBuilder()
            if calls:
                b.add_transition("down", "up", theta)
            else:
                b.add_transition("up", "down", theta)
            calls.append(theta)
            return b.build()

        with pytest.raises(ValueError, match="ordering"):
            transient_sensitivity(factory, 0.5, np.array([1.0]))


class TestForwardODE:
    def test_matches_finite_difference(self):
        lam = 0.3
        t = np.array([0.5, 1.0, 2.0])
        chain = decay_chain(lam)
        dQ = np.array([[-1.0, 1.0], [0.0, 0.0]])  # dQ/dlam
        s_ode = forward_sensitivity(chain, dQ, t)
        s_fd = transient_sensitivity(decay_chain, lam, t)
        np.testing.assert_allclose(s_ode, s_fd, rtol=1e-3, atol=1e-8)

    def test_shape_validation(self):
        chain = decay_chain(0.3)
        with pytest.raises(ValueError, match="shape"):
            forward_sensitivity(chain, np.zeros((3, 3)), np.array([1.0]))

    def test_zero_horizon(self):
        chain = decay_chain(0.3)
        s = forward_sensitivity(chain, np.zeros((2, 2)), np.array([0.0]))
        np.testing.assert_allclose(s, 0.0)

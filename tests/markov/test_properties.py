"""Property-based tests over random chains (hypothesis).

Tolerances come from :mod:`repro.validate` -- derived from machine
epsilon, problem size and the solvers' advertised error bounds rather
than hand-picked epsilons.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    stationary_distribution,
    transient_distribution,
    uniformized_distribution,
)
from repro.validate import (
    assert_distribution_rows,
    assert_probability_vector,
    assert_solvers_agree,
    assert_stationary_residual,
    distribution_atol,
)
from tests.conftest import irreducible_chains


@settings(max_examples=40, deadline=None)
@given(chain=irreducible_chains(), t=st.floats(min_value=0.0, max_value=50.0))
def test_transient_rows_are_distributions(chain, t):
    pi = transient_distribution(chain, np.array([t]))
    assert_distribution_rows(pi, label="transient")


@settings(max_examples=25, deadline=None)
@given(chain=irreducible_chains(), t=st.floats(min_value=0.0, max_value=20.0))
def test_uniformization_agrees_with_expm(chain, t):
    times = np.array([t])
    a = uniformized_distribution(chain, times)
    b = transient_distribution(chain, times, method="expm")
    # budget: uniformization's Poisson-tail truncation (1e-12) plus the
    # accumulated rounding of the dense expm path
    assert_solvers_agree(
        a, b, budget=1e-12 + distribution_atol(chain.n_states),
        label="uniformization vs expm",
    )


@settings(max_examples=30, deadline=None)
@given(chain=irreducible_chains())
def test_stationary_satisfies_balance(chain):
    pi = stationary_distribution(chain)
    assert_probability_vector(pi, label="stationary")
    assert_stationary_residual(pi, chain)


@settings(max_examples=15, deadline=None)
@given(chain=irreducible_chains(), t=st.floats(min_value=2e6, max_value=4e6))
def test_transient_converges_to_stationary(chain, t):
    """At long horizons the transient solution approaches the stationary
    distribution.  A ring of up to 8 states with rates as low as 1e-3 has
    a spectral gap as small as ~rate/n^2 ~ 1.5e-5, so the horizon must be
    in the millions; dense expm (scaling-and-squaring) costs the same at
    any ``t``, where Krylov stepping would grind."""
    pi_t = transient_distribution(chain, np.array([t]), method="expm")
    pi_inf = stationary_distribution(chain)
    np.testing.assert_allclose(pi_t[0], pi_inf, atol=1e-2)


@settings(max_examples=25, deadline=None)
@given(chain=irreducible_chains())
def test_embedded_chain_is_stochastic(chain):
    P = chain.embedded_jump_matrix()
    assert_distribution_rows(P.toarray(), label="embedded jump matrix")

"""First-passage analysis tests."""

import pytest

from repro.markov import (
    CTMCBuilder,
    expected_first_passage_times,
    hitting_probabilities,
    mean_time_to_absorption,
)


class TestExpectedFirstPassage:
    def test_target_states_are_zero(self, absorbing_chain):
        m = expected_first_passage_times(absorbing_chain, ["dead"])
        assert m["dead"] == 0.0

    def test_matches_mtta_for_absorbing_target(self, absorbing_chain):
        m = expected_first_passage_times(absorbing_chain, ["dead"])
        assert m["good"] == pytest.approx(mean_time_to_absorption(absorbing_chain, "good"))

    def test_exponential_closed_form(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 0.25)
        m = expected_first_passage_times(b.build(), ["b"])
        assert m["a"] == pytest.approx(4.0)

    def test_unreachable_target_is_inf(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 1.0)
        b.add_state("island")
        m = expected_first_passage_times(b.build(), ["b"])
        assert m["island"] == float("inf")

    def test_passage_through_cycle(self, two_state_chain):
        # up -> down at 0.2: E[T] = 5.
        m = expected_first_passage_times(two_state_chain, ["down"])
        assert m["up"] == pytest.approx(5.0)

    def test_empty_target_rejected(self, two_state_chain):
        with pytest.raises(ValueError):
            expected_first_passage_times(two_state_chain, [])


class TestHittingProbabilities:
    def test_certain_hit_in_irreducible_chain(self, two_state_chain):
        h = hitting_probabilities(two_state_chain, ["down"])
        assert h["up"] == pytest.approx(1.0)
        assert h["down"] == 1.0

    def test_competing_absorption(self):
        b = CTMCBuilder()
        b.add_transition("alive", "win", 3.0)
        b.add_transition("alive", "lose", 1.0)
        h = hitting_probabilities(b.build(), ["win"])
        assert h["alive"] == pytest.approx(0.75)
        assert h["lose"] == pytest.approx(0.0)  # absorbing elsewhere

    def test_multi_step(self):
        b = CTMCBuilder()
        b.add_transition("s", "mid", 1.0)
        b.add_transition("mid", "win", 1.0)
        b.add_transition("mid", "lose", 1.0)
        h = hitting_probabilities(b.build(), ["win"])
        assert h["s"] == pytest.approx(0.5)

    def test_probabilities_bounded(self, absorbing_chain):
        h = hitting_probabilities(absorbing_chain, ["dead"])
        assert all(0.0 <= v <= 1.0 for v in h.values())

    def test_empty_target_rejected(self, two_state_chain):
        with pytest.raises(ValueError):
            hitting_probabilities(two_state_chain, [])

"""Stationary solver tests: closed forms, cross-method, irreducibility."""

import numpy as np
import pytest

from repro.markov import CTMCBuilder, stationary_distribution
from repro.markov.stationary import STATIONARY_METHODS, is_irreducible
from repro.validate import (
    assert_solvers_agree,
    assert_stationary_residual,
    distribution_atol,
)


class TestClosedForm:
    @pytest.mark.parametrize("method", STATIONARY_METHODS)
    def test_two_state_balance(self, method, two_state_chain):
        pi = stationary_distribution(two_state_chain, method=method)
        np.testing.assert_allclose(pi, [2.0 / 2.2, 0.2 / 2.2], rtol=1e-9)

    @pytest.mark.parametrize("method", STATIONARY_METHODS)
    def test_symmetric_ring_uniform(self, method):
        b = CTMCBuilder()
        n = 5
        for i in range(n):
            b.add_transition(i, (i + 1) % n, 1.0)
            b.add_transition((i + 1) % n, i, 1.0)
        pi = stationary_distribution(b.build(), method=method)
        # budget: all three methods resolve this perfectly conditioned
        # chain to a handful of ulps; the power method's stopping
        # tolerance (1e-13 per step) dominates.
        assert_solvers_agree(
            pi, np.full(n, 1.0 / n),
            budget=1e-13 + distribution_atol(n),
            label=method,
        )


class TestCrossMethod:
    def test_methods_agree_on_stiff_chain(self):
        b = CTMCBuilder()
        b.add_transition("ok", "bad", 2e-5)
        b.add_transition("bad", "dead", 1e-4)
        b.add_transition("bad", "ok", 1.0 / 3.0)
        b.add_transition("dead", "ok", 1.0 / 3.0)
        chain = b.build()
        base = stationary_distribution(chain, method="linear")
        for method in ("nullspace", "power"):
            np.testing.assert_allclose(
                stationary_distribution(chain, method=method), base, rtol=1e-5
            )

    def test_balance_residual_tiny(self, two_state_chain):
        pi = stationary_distribution(two_state_chain)
        assert_stationary_residual(pi, two_state_chain)


class TestIrreducibility:
    def test_detects_reducible(self, absorbing_chain):
        assert not is_irreducible(absorbing_chain)
        with pytest.raises(ValueError, match="irreducible"):
            stationary_distribution(absorbing_chain)

    def test_detects_irreducible(self, two_state_chain):
        assert is_irreducible(two_state_chain)

    def test_single_state_chain(self):
        b = CTMCBuilder()
        b.add_state("only")
        pi = stationary_distribution(b.build())
        np.testing.assert_allclose(pi, [1.0])

    def test_unknown_method_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="unknown method"):
            stationary_distribution(two_state_chain, method="magic")

"""Unit tests for CTMCBuilder."""

import pytest

from repro.markov import CTMCBuilder


class TestBuilder:
    def test_states_registered_in_order(self):
        b = CTMCBuilder()
        b.add_transition("x", "y", 1.0)
        b.add_state("z")
        assert b.build().states == ("x", "y", "z")

    def test_add_state_idempotent(self):
        b = CTMCBuilder()
        b.add_state("x")
        b.add_state("x")
        assert b.n_states == 1

    def test_add_states_bulk(self):
        b = CTMCBuilder()
        b.add_states(["a", "b", "c"])
        assert b.n_states == 3

    def test_parallel_edges_accumulate(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 1.0)
        b.add_transition("a", "b", 0.5)
        assert b.build().rate("a", "b") == pytest.approx(1.5)

    def test_zero_rate_dropped(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 0.0)
        assert b.n_transitions == 0
        assert b.n_states == 2  # states still registered

    def test_negative_rate_rejected(self):
        b = CTMCBuilder()
        with pytest.raises(ValueError, match="negative"):
            b.add_transition("a", "b", -1.0)

    def test_self_loop_rejected(self):
        b = CTMCBuilder()
        with pytest.raises(ValueError, match="self-loop"):
            b.add_transition("a", "a", 1.0)

    def test_transitions_listing(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 1.0)
        b.add_transition("b", "a", 2.0)
        assert set(b.transitions()) == {("a", "b", 1.0), ("b", "a", 2.0)}

    def test_generator_diagonal(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 1.0)
        b.add_transition("a", "c", 2.0)
        chain = b.build()
        Q = chain.generator.toarray()
        assert Q[0, 0] == pytest.approx(-3.0)

    def test_builder_reusable_after_build(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 1.0)
        c1 = b.build()
        b.add_transition("b", "a", 2.0)
        c2 = b.build()
        assert c1.rate("b", "a") == 0.0
        assert c2.rate("b", "a") == 2.0

    def test_to_networkx(self):
        b = CTMCBuilder()
        b.add_transition("a", "b", 1.5)
        g = b.to_networkx()
        assert g.edges["a", "b"]["rate"] == 1.5
        assert set(g.nodes) == {"a", "b"}

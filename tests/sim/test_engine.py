"""Simulation-kernel tests."""

import pytest

from repro.sim import Engine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule(3.0, lambda: fired.append(3))
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(2.0, lambda: fired.append(2))
        eng.run()
        assert fired == [1, 2, 3]

    def test_ties_broken_by_priority_then_insertion(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append("late"), priority=5)
        eng.schedule(1.0, lambda: fired.append("a"))
        eng.schedule(1.0, lambda: fired.append("b"))
        eng.run()
        assert fired == ["a", "b", "late"]

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(2.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [2.5]
        assert eng.now == 2.5

    def test_schedule_in_relative(self):
        eng = Engine()
        seen = []
        eng.schedule_in(1.0, lambda: eng.schedule_in(2.0, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [3.0]

    def test_scheduling_in_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError, match="before current time"):
            eng.schedule(1.0, lambda: None)

    def test_scheduling_at_now_allowed(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: eng.schedule(1.0, lambda: fired.append(eng.now)))
        eng.run()
        assert fired == [1.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            Engine().schedule_in(-1.0, lambda: None)


class TestRunControl:
    def test_run_until_stops_clock_exactly(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(10.0, lambda: fired.append(10))
        eng.run(until=5.0)
        assert fired == [1]
        assert eng.now == 5.0
        eng.run()
        assert fired == [1, 10]

    def test_event_at_until_boundary_fires(self):
        eng = Engine()
        fired = []
        eng.schedule(5.0, lambda: fired.append(5))
        eng.run(until=5.0)
        assert fired == [5]

    def test_max_events_guard(self):
        eng = Engine()

        def storm():
            eng.schedule_in(0.0, storm, label="storm")

        eng.schedule(0.0, storm)
        with pytest.raises(SimulationError, match="event storm"):
            eng.run(max_events=100)

    def test_reentrant_run_rejected(self):
        eng = Engine()

        def recurse():
            eng.run()

        eng.schedule(1.0, recurse)
        with pytest.raises(SimulationError, match="re-entrant"):
            eng.run()

    def test_step(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(2.0, lambda: fired.append(2))
        assert eng.step()
        assert fired == [1]
        assert eng.step()
        assert not eng.step()

    def test_events_processed_counter(self):
        eng = Engine()
        for k in range(5):
            eng.schedule(float(k), lambda: None)
        eng.run()
        assert eng.events_processed == 5


class TestErrorText:
    """The guard-rail messages are operator-facing; pin their contents."""

    def test_max_events_message_names_limit_time_and_culprit(self):
        eng = Engine()

        def storm():
            eng.schedule_in(0.0, storm, label="storm")

        eng.schedule(0.0, storm, label="storm")
        with pytest.raises(SimulationError) as excinfo:
            eng.run(max_events=50)
        message = str(excinfo.value)
        assert "exceeded max_events=50" in message
        assert "t=0.0" in message
        assert "'storm'" in message
        assert "likely an event storm" in message

    def test_reentrant_message_and_recovery(self):
        eng = Engine()
        seen = []

        def recurse():
            with pytest.raises(
                SimulationError, match=r"already running \(re-entrant run call\)"
            ):
                eng.run()
            seen.append("caught")

        eng.schedule(1.0, recurse)
        eng.run()
        assert seen == ["caught"]
        # The guard must not leave the engine wedged: a fresh run works.
        eng.schedule(2.0, lambda: seen.append("after"))
        eng.run()
        assert seen == ["caught", "after"]

    def test_run_resumes_after_event_storm_error(self):
        eng = Engine()
        for k in range(5):
            eng.schedule(float(k), lambda: None)
        with pytest.raises(SimulationError, match="event storm"):
            eng.run(max_events=2)
        eng.run()  # drains the remaining three events
        assert eng.events_processed == 5


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        fired = []
        handle = eng.schedule(1.0, lambda: fired.append("no"))
        eng.schedule(2.0, lambda: fired.append("yes"))
        handle.cancel()
        eng.run()
        assert fired == ["yes"]

    def test_cancel_idempotent(self):
        eng = Engine()
        handle = eng.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_peek_time_skips_cancelled(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        h.cancel()
        assert eng.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Engine().peek_time() is None

    def test_handle_exposes_metadata(self):
        eng = Engine()
        h = eng.schedule(4.0, lambda: None, label="thing")
        assert h.time == 4.0
        assert h.label == "thing"
        assert not h.cancelled

"""RNG registry tests."""

import pytest

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=7).stream("x")
        b = RngRegistry(seed=7).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        reg = RngRegistry(seed=7)
        a = reg.stream("x").random()
        b = reg.stream("y").random()
        assert a != b

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random()
        b = RngRegistry(seed=2).stream("x").random()
        assert a != b

    def test_stream_cached(self):
        reg = RngRegistry(seed=3)
        assert reg.stream("x") is reg.stream("x")

    def test_order_independent_keying(self):
        """Requesting streams in different orders yields identical streams."""
        r1 = RngRegistry(seed=9)
        r2 = RngRegistry(seed=9)
        _ = r1.stream("a")
        v1 = r1.stream("b").random()
        v2 = r2.stream("b").random()  # "b" requested first here
        assert v1 == v2

    def test_fork(self):
        base = RngRegistry(seed=10)
        forked = base.fork(5)
        assert forked.seed == 15
        assert forked.stream("x").random() != base.stream("x").random()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            RngRegistry(seed=-1)

"""CLI smoke tests (everything short of the slow validate run)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_fig6(self, capsys):
        assert main(["fig6", "--points", "0,40000", "--configs", "3:2"]) == 0
        out = capsys.readouterr().out
        assert "BDR" in out and "DRA(N=3,M=2)" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--configs", "3:2"]) == 0
        assert "9^8" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--loads", "0.7"]) == 0
        assert "%" in capsys.readouterr().out

    def test_fig8_with_bound_bus(self, capsys):
        assert main(["fig8", "--loads", "0.7", "--b-bus", "5"]) == 0

    def test_mttf(self, capsys):
        assert main(["mttf", "--configs", "9:4"]) == 0
        assert "DRA(N=9,M=4)" in capsys.readouterr().out

    def test_cost(self, capsys):
        assert main(["cost", "--n", "6", "--protocols", "2"]) == 0
        assert "sparing" in capsys.readouterr().out

    def test_importance(self, capsys):
        assert main(["importance", "--n", "5", "--m", "3"]) == 0
        assert "lam_lpi" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig7.csv"
        assert main(["fig7", "--configs", "3:2", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "label,x,value" in csv_path.read_text()

    def test_validate_quick(self, capsys):
        assert main(["validate", "--cycles", "6000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "MISMATCH" not in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_fig6_variant_flag(self, capsys):
        assert main(["fig6", "--configs", "3:2", "--points", "40000",
                     "--variant", "extended"]) == 0
        out = capsys.readouterr().out
        assert "DRA(N=3,M=2)" in out

    def test_fig6_invalid_variant_exits(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--variant", "bogus"])

"""CLI smoke tests (everything short of the slow validate run)."""

import json

import pytest

from repro.cli import main
from repro.obs import get_tracer, read_trace, tracing


class TestCLI:
    def test_fig6(self, capsys):
        assert main(["fig6", "--points", "0,40000", "--configs", "3:2"]) == 0
        out = capsys.readouterr().out
        assert "BDR" in out and "DRA(N=3,M=2)" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--configs", "3:2"]) == 0
        assert "9^8" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--loads", "0.7"]) == 0
        assert "%" in capsys.readouterr().out

    def test_fig8_with_bound_bus(self, capsys):
        assert main(["fig8", "--loads", "0.7", "--b-bus", "5"]) == 0

    def test_mttf(self, capsys):
        assert main(["mttf", "--configs", "9:4"]) == 0
        assert "DRA(N=9,M=4)" in capsys.readouterr().out

    def test_cost(self, capsys):
        assert main(["cost", "--n", "6", "--protocols", "2"]) == 0
        assert "sparing" in capsys.readouterr().out

    def test_importance(self, capsys):
        assert main(["importance", "--n", "5", "--m", "3"]) == 0
        assert "lam_lpi" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig7.csv"
        assert main(["fig7", "--configs", "3:2", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "label,x,value" in csv_path.read_text()

    def test_validate_quick(self, tmp_path, capsys):
        out_json = tmp_path / "BENCH_validate.json"
        assert main(["validate", "--suite", "tiny",
                     "--json-out", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "pairs agree" in out and "FAIL" not in out
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == "repro-validate" and payload["v"] == 1
        assert payload["passed"] is True
        assert payload["n_pairs"] == len(payload["pairs"]) >= 2

    def test_validate_perturbed_model_fails(self, capsys):
        # The acceptance criterion: a deliberately wrong analytic model
        # (one CTMC rate scaled 1.5x) must make the suite FAIL.
        assert main(["validate", "--suite", "tiny", "--json-out", "",
                     "--perturb", "lam_lpi=1.5"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "mttf.lc" in out

    def test_validate_rejects_unknown_perturb_param(self):
        with pytest.raises(SystemExit):
            main(["validate", "--suite", "tiny", "--json-out", "",
                  "--perturb", "bogus=2.0"])

    def test_report(self, capsys):
        assert main(["report"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_fig6_variant_flag(self, capsys):
        assert main(["fig6", "--configs", "3:2", "--points", "40000",
                     "--variant", "extended"]) == 0
        out = capsys.readouterr().out
        assert "DRA(N=3,M=2)" in out

    def test_fig6_invalid_variant_exits(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--variant", "bogus"])


class TestRuntimeFlags:
    """The --jobs/--seed/--cache wiring added with repro.runtime."""

    def test_fig6_jobs(self, capsys):
        assert main(["fig6", "--points", "0,40000", "--configs", "3:2",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "BDR" in out and "DRA(N=3,M=2)" in out

    def test_fig7_cache_warm_run_identical(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig7", "--configs", "3:2", "--cache"]) == 0
        cold = capsys.readouterr().out
        assert main(["fig7", "--configs", "3:2", "--cache"]) == 0
        assert capsys.readouterr().out == cold
        assert any(tmp_path.glob("*/*.pkl"))

    def test_validate_jobs_byte_identical(self, tmp_path, capsys):
        # The acceptance criterion: same --seed => byte-identical JSON
        # report whatever --jobs says.
        serial_json = tmp_path / "serial.json"
        fanned_json = tmp_path / "fanned.json"
        assert main(["validate", "--suite", "tiny", "--seed", "3",
                     "--jobs", "1", "--json-out", str(serial_json)]) == 0
        serial = capsys.readouterr().out
        assert main(["validate", "--suite", "tiny", "--seed", "3",
                     "--jobs", "4", "--json-out", str(fanned_json)]) == 0
        assert capsys.readouterr().out == serial
        assert serial_json.read_bytes() == fanned_json.read_bytes()
        assert "pairs agree" in serial and "FAIL" not in serial

    def test_bench_smoke(self, tmp_path, capsys):
        out_json = tmp_path / "BENCH_runtime.json"
        assert main(["bench", "--target", "mc", "--trials", "20000",
                     "--jobs-list", "1,2", "--json-out", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "results identical across jobs: yes" in out
        assert "trials/s" in out and "speedup" in out

    def test_bench_fig6_smoke(self, tmp_path, capsys):
        assert main(["bench", "--target", "fig6", "--jobs-list", "1",
                     "--json-out", str(tmp_path / "b.json")]) == 0
        assert "points/s" in capsys.readouterr().out

    def test_bench_writes_schema_versioned_json(self, tmp_path, capsys):
        out_json = tmp_path / "BENCH_runtime.json"
        assert main(["bench", "--target", "mc", "--trials", "20000",
                     "--jobs-list", "1,2", "--json-out", str(out_json)]) == 0
        assert f"wrote {out_json}" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == "repro-bench" and payload["v"] == 1
        assert payload["target"] == "mc" and payload["unit"] == "trials"
        assert [s["jobs"] for s in payload["stages"]] == [1, 2]
        for stage in payload["stages"]:
            assert stage["wall_s"] > 0.0
            assert stage["items"] == 20000
            assert stage["throughput_per_s"] > 0.0
        assert payload["stages"][0]["speedup_vs_first"] == 1.0

    def test_bench_json_disabled_by_empty_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--target", "fig6", "--jobs-list", "1",
                     "--json-out", ""]) == 0
        assert not (tmp_path / "BENCH_runtime.json").exists()

    def test_report_runtime_section(self, capsys):
        assert main(["report", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Runtime — wall time per stage" in out
        assert "reliability sweep (Figure 6)" in out

    def test_report_cache_stats_line(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["report", "--cache"]) == 0
        assert "miss(es)" in capsys.readouterr().out

    def test_report_observability_section(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Observability — collected metrics" in out
        assert "solver.stationary.solves" in out


class TestTracing:
    """The --trace flag and the trace subcommand."""

    def test_fig8_trace_covers_every_event_family(self, tmp_path, capsys):
        # The PR acceptance criterion: one fig8 run yields control-packet,
        # collision, coverage-case and solver events.
        path = tmp_path / "t.jsonl"
        assert main(["fig8", "--n", "4", "--trace", str(path)]) == 0
        kinds = {ev.kind for ev in read_trace(str(path))}
        assert "bus.ctl.deliver" in kinds
        assert "bus.ctl.collision" in kinds
        assert "coverage.plan" in kinds
        assert "solver.uniformization" in kinds
        assert "solver.stationary" in kinds
        coverage = next(ev for ev in read_trace(str(path))
                        if ev.kind == "coverage.plan")
        assert any(tag.startswith("case") for tag in coverage.data["cases"])

    def test_trace_subcommand_summarizes(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["fig8", "--n", "4", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schema v1 ok" in out
        assert "bus.ctl.deliver" in out and "sim-time span" in out

    def test_trace_subcommand_kind_filter_and_json(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        with tracing(str(path)) as t:
            t.emit("demo.a", t=0.0)
            t.emit("demo.a", t=1.0)
            t.emit("other.b", t=2.0)
        assert main(["trace", str(path), "--kind", "demo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 2
        assert payload["kinds"] == {"demo.a": 2}
        assert payload["time_span_s"] == [0.0, 1.0]

    def test_trace_subcommand_limit_prints_events(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        with tracing(str(path)) as t:
            for i in range(5):
                t.emit("demo.a", t=float(i), i=i)
        assert main(["trace", str(path), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count('"kind":"demo.a"') == 2

    def test_trace_subcommand_schema_guard_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 99, "seq": 0, "kind": "x", "data": {}}\n')
        assert main(["trace", str(path)]) == 1
        assert "trace error" in capsys.readouterr().err

    def test_trace_flag_on_analytic_subcommand(self, tmp_path, capsys):
        # Any subcommand accepts --trace; a run with no instrumented
        # activity still yields a valid (possibly empty) trace file.
        path = tmp_path / "mttf.jsonl"
        assert main(["mttf", "--configs", "3:2", "--trace", str(path)]) == 0
        assert path.exists()
        read_trace(str(path))  # schema-valid

    def test_validate_trace_events(self, tmp_path, capsys):
        path = tmp_path / "v.jsonl"
        assert main(["validate", "--suite", "tiny", "--json-out", "",
                     "--trace", str(path)]) == 0
        kinds = [ev.kind for ev in read_trace(str(path))]
        assert kinds.count("validate.suite") == 1
        assert kinds.count("validate.pair") == 2

    def test_tracer_deactivated_after_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert main(["mttf", "--configs", "3:2", "--trace", str(path)]) == 0
        assert get_tracer() is None


class TestChaosCommand:
    """The chaos subcommand: campaign gate + JSON report + fork-safe trace."""

    def test_chaos_runs_clean_and_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.json"
        assert main([
            "chaos", "--seeds", "2", "--duration", "0.002",
            "--json-out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "invariant violations: 0" in out
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro-chaos"
        assert report["totals"]["violations"] == 0
        assert len(report["schedules"]) == 2

    def test_chaos_trace_flag_fork_safe(self, tmp_path, capsys):
        trace_path = tmp_path / "chaos.jsonl"
        assert main([
            "chaos", "--seeds", "2", "--duration", "0.002", "--jobs", "2",
            "--trace", str(trace_path),
        ]) == 0
        events = read_trace(str(trace_path))
        assert events  # schedule 0 re-ran in-process under the tracer
        assert get_tracer() is None  # tracer torn down cleanly


class TestIncidentsCommand:
    """The incidents subcommand: fold traces into repro-incidents v1."""

    @pytest.fixture
    def chaos_trace(self, tmp_path):
        path = tmp_path / "chaos.jsonl"
        assert main([
            "chaos", "--seeds", "2", "--duration", "0.002",
            "--trace", str(path),
        ]) == 0
        return str(path)

    def test_incidents_summarizes_and_writes_json(
        self, chaos_trace, tmp_path, capsys
    ):
        capsys.readouterr()
        out_json = tmp_path / "incidents.json"
        assert main([
            "incidents", chaos_trace, "--json-out", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "incident span(s)" in out
        report = json.loads(out_json.read_text())
        assert report["schema"] == "repro-incidents"
        assert report["version"] == 1
        assert report["totals"]["spans"] == len(report["spans"])
        assert report["totals"]["spans"] > 0
        assert "health" in report

    def test_incidents_byte_identical_across_jobs(
        self, chaos_trace, tmp_path, capsys
    ):
        serial = tmp_path / "serial.json"
        fanned = tmp_path / "fanned.json"
        assert main(["incidents", chaos_trace, chaos_trace,
                     "--jobs", "1", "--json-out", str(serial)]) == 0
        assert main(["incidents", chaos_trace, chaos_trace,
                     "--jobs", "4", "--json-out", str(fanned)]) == 0
        assert serial.read_bytes() == fanned.read_bytes()
        multi = json.loads(serial.read_text())
        assert multi["schema"] == "repro-incidents"
        assert len(multi["reports"]) == 2

    def test_incidents_metrics_out_writes_prometheus(
        self, chaos_trace, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.prom"
        assert main([
            "incidents", chaos_trace, "--metrics-out", str(metrics_path),
        ]) == 0
        text = metrics_path.read_text(encoding="utf-8")
        assert "repro_incident_spans" in text
        assert "# TYPE repro_incident_mttr_s histogram" in text
        assert "repro_health_lc_" in text
        assert f"wrote metrics {metrics_path}" in capsys.readouterr().err

    def test_incidents_missing_file_fails(self, tmp_path, capsys):
        assert main(["incidents", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

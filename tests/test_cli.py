"""CLI smoke tests (everything short of the slow validate run)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_fig6(self, capsys):
        assert main(["fig6", "--points", "0,40000", "--configs", "3:2"]) == 0
        out = capsys.readouterr().out
        assert "BDR" in out and "DRA(N=3,M=2)" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--configs", "3:2"]) == 0
        assert "9^8" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--loads", "0.7"]) == 0
        assert "%" in capsys.readouterr().out

    def test_fig8_with_bound_bus(self, capsys):
        assert main(["fig8", "--loads", "0.7", "--b-bus", "5"]) == 0

    def test_mttf(self, capsys):
        assert main(["mttf", "--configs", "9:4"]) == 0
        assert "DRA(N=9,M=4)" in capsys.readouterr().out

    def test_cost(self, capsys):
        assert main(["cost", "--n", "6", "--protocols", "2"]) == 0
        assert "sparing" in capsys.readouterr().out

    def test_importance(self, capsys):
        assert main(["importance", "--n", "5", "--m", "3"]) == 0
        assert "lam_lpi" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig7.csv"
        assert main(["fig7", "--configs", "3:2", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "label,x,value" in csv_path.read_text()

    def test_validate_quick(self, capsys):
        assert main(["validate", "--cycles", "6000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "MISMATCH" not in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_fig6_variant_flag(self, capsys):
        assert main(["fig6", "--configs", "3:2", "--points", "40000",
                     "--variant", "extended"]) == 0
        out = capsys.readouterr().out
        assert "DRA(N=3,M=2)" in out

    def test_fig6_invalid_variant_exits(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--variant", "bogus"])


class TestRuntimeFlags:
    """The --jobs/--seed/--cache wiring added with repro.runtime."""

    def test_fig6_jobs(self, capsys):
        assert main(["fig6", "--points", "0,40000", "--configs", "3:2",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "BDR" in out and "DRA(N=3,M=2)" in out

    def test_fig7_cache_warm_run_identical(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig7", "--configs", "3:2", "--cache"]) == 0
        cold = capsys.readouterr().out
        assert main(["fig7", "--configs", "3:2", "--cache"]) == 0
        assert capsys.readouterr().out == cold
        assert any(tmp_path.glob("*/*.pkl"))

    def test_validate_jobs_byte_identical(self, capsys):
        # The acceptance criterion: same --seed => byte-identical output
        # whatever --jobs says.
        assert main(["validate", "--cycles", "4000", "--seed", "3",
                     "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["validate", "--cycles", "4000", "--seed", "3",
                     "--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial
        assert "OK" in serial and "MISMATCH" not in serial

    def test_bench_smoke(self, capsys):
        assert main(["bench", "--target", "mc", "--trials", "20000",
                     "--jobs-list", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "results identical across jobs: yes" in out
        assert "trials/s" in out and "speedup" in out

    def test_bench_fig6_smoke(self, capsys):
        assert main(["bench", "--target", "fig6", "--jobs-list", "1"]) == 0
        assert "points/s" in capsys.readouterr().out

    def test_report_runtime_section(self, capsys):
        assert main(["report", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Runtime — wall time per stage" in out
        assert "reliability sweep (Figure 6)" in out

    def test_report_cache_stats_line(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["report", "--cache"]) == 0
        assert "miss(es)" in capsys.readouterr().out

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.parameters import DRAConfig, FailureRates
from repro.markov import CTMC, CTMCBuilder


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for MC tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_state_chain() -> CTMC:
    """The classic repairable unit: up <-> down."""
    b = CTMCBuilder()
    b.add_transition("up", "down", 0.2)
    b.add_transition("down", "up", 2.0)
    return b.build()


@pytest.fixture
def absorbing_chain() -> CTMC:
    """A three-state chain with one absorbing failure state."""
    b = CTMCBuilder()
    b.add_transition("good", "degraded", 0.5)
    b.add_transition("degraded", "good", 1.0)
    b.add_transition("degraded", "dead", 0.25)
    b.add_state("dead")
    return b.build()


# -- hypothesis strategies ---------------------------------------------------

#: Small random irreducible-ish CTMCs: a ring backbone guarantees strong
#: connectivity, plus random extra edges.
@st.composite
def irreducible_chains(draw) -> CTMC:
    n = draw(st.integers(min_value=2, max_value=8))
    rates = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    n_extra = draw(st.integers(min_value=0, max_value=2 * n))
    extras = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
            ),
            min_size=n_extra,
            max_size=n_extra,
        )
    )
    b = CTMCBuilder()
    for i in range(n):
        b.add_transition(i, (i + 1) % n, rates[i])
    for src, dst, rate in extras:
        if src != dst:
            b.add_transition(src, dst, rate)
    return b.build()


@st.composite
def dra_configs(draw) -> DRAConfig:
    n = draw(st.integers(min_value=3, max_value=10))
    m = draw(st.integers(min_value=2, max_value=n))
    variant = draw(st.sampled_from(DRAConfig.VARIANTS))
    return DRAConfig(n=n, m=m, variant=variant)


@st.composite
def failure_rates(draw) -> FailureRates:
    """Consistent rate sets: draw the atomic rates, derive the combined."""
    lam_lpd = draw(st.floats(min_value=1e-8, max_value=1e-3, allow_nan=False))
    lam_lpi = draw(st.floats(min_value=1e-8, max_value=1e-3, allow_nan=False))
    lam_bc = draw(st.floats(min_value=1e-9, max_value=1e-4, allow_nan=False))
    lam_bus = draw(st.floats(min_value=1e-9, max_value=1e-4, allow_nan=False))
    return FailureRates(
        lam_lc=lam_lpd + lam_lpi,
        lam_lpd=lam_lpd,
        lam_lpi=lam_lpi,
        lam_bc=lam_bc,
        lam_bus=lam_bus,
        lam_pd=lam_lpd + lam_bc,
        lam_pi=lam_lpi + lam_bc,
    )

"""Cross-validation: every independent computation path must agree.

These tests are the reproduction's safety net.  The same quantity is
computed through (1) the sparse transient solver, (2) dense expm,
(3) uniformization, (4) the phase-type CDF of the absorbing chain,
(5) CTMC trajectory sampling, and (6) the structure-function Monte Carlo
-- all six must coincide.
"""

import numpy as np
import pytest

from repro.core import DRAConfig, RepairPolicy, dra_availability, dra_reliability
from repro.core.availability import build_dra_availability_chain
from repro.core.reliability import build_dra_reliability_chain
from repro.core.states import AllHealthy, Failed
from repro.markov import (
    phase_type_cdf,
    transient_distribution,
    uniformized_distribution,
)
from repro.montecarlo import (
    empirical_availability,
    empirical_state_probabilities,
    structure_function_reliability,
)

CFG = DRAConfig(n=6, m=3)
TIMES = np.array([5_000.0, 40_000.0, 90_000.0])


class TestSolverAgreement:
    def test_all_transient_methods_agree(self):
        chain = build_dra_reliability_chain(CFG)
        pi0 = chain.initial_distribution(AllHealthy)
        a = transient_distribution(chain, TIMES, pi0, method="expm_multiply")
        b = transient_distribution(chain, TIMES, pi0, method="expm")
        c = transient_distribution(chain, TIMES, pi0, method="ode")
        d = uniformized_distribution(chain, TIMES, pi0)
        np.testing.assert_allclose(b, a, atol=1e-8)
        np.testing.assert_allclose(c, a, atol=1e-6)
        np.testing.assert_allclose(d, a, atol=1e-8)

    def test_reliability_equals_phase_type_survival(self):
        chain = build_dra_reliability_chain(CFG)
        pi0 = chain.initial_distribution(AllHealthy)
        r_transient = dra_reliability(CFG, TIMES).reliability
        r_phase = 1.0 - phase_type_cdf(chain, TIMES, pi0)
        np.testing.assert_allclose(r_phase, r_transient, atol=1e-8)


class TestMonteCarloAgreement:
    def test_trajectory_sampling_matches_reliability(self, rng):
        chain = build_dra_reliability_chain(CFG)
        n = 3000
        emp = empirical_state_probabilities(
            chain, TIMES, n, rng, initial_state=chain.index_of(AllHealthy)
        )
        exact = dra_reliability(CFG, TIMES).reliability
        emp_rel = 1.0 - emp[:, chain.index_of(Failed)]
        se = np.sqrt(exact * (1.0 - exact) / n) + 1e-9
        assert np.all(np.abs(emp_rel - exact) < 5 * se)

    def test_structure_function_matches_extended_chain(self, rng):
        cfg = DRAConfig(n=6, m=3, variant="extended")
        exact = dra_reliability(cfg, TIMES).reliability
        mc = structure_function_reliability(cfg, TIMES, 150_000, rng)
        assert mc.within(exact, z=4.5)

    def test_availability_mc_matches_stationary(self, rng):
        """Trajectory time-averages agree with the stationary solve.

        Uses repair-dominant accelerated rates so downtime mass is
        observable within a modest horizon.
        """
        from repro.core.parameters import FailureRates

        rates = FailureRates().scaled(3000.0)  # ~6e-2/h LC failure rate
        cfg = DRAConfig(n=4, m=2)
        rp = RepairPolicy(mu=1.0)
        chain = build_dra_availability_chain(cfg, rp, rates)
        exact = dra_availability(cfg, rp, rates).availability
        est, se = empirical_availability(
            chain,
            chain.index_of(Failed),
            horizon=3_000.0,
            n_samples=40,
            rng=rng,
        )
        assert est == pytest.approx(exact, abs=max(6 * se, 2e-3))

"""Property-based fuzzing of the executable router.

Drives random fault/repair/traffic sequences against the DES and checks
the global invariants that must hold regardless of the scenario:

* conservation: offered == delivered + dropped + in-flight (bounded);
* the arbiter's mirrored counters stay coherent;
* committed coverage capacity never exceeds any LC's line rate;
* the engine never wedges (time advances, queues drain once sources stop);
* a BDR router under the same seed never out-delivers DRA.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.router import ComponentKind, Router, RouterConfig, RouterMode
from repro.traffic import wire_uniform_load

FAULT_KINDS = [
    ComponentKind.PIU,
    ComponentKind.PDLU,
    ComponentKind.SRU,
    ComponentKind.LFE,
    ComponentKind.BUS_CONTROLLER,
]


@st.composite
def fault_scripts(draw):
    """A short random schedule of fault and repair actions."""
    n_events = draw(st.integers(min_value=0, max_value=8))
    events = []
    for _ in range(n_events):
        events.append(
            (
                draw(st.integers(min_value=0, max_value=3)),  # LC
                draw(st.integers(min_value=0, max_value=len(FAULT_KINDS) - 1)),
                draw(st.booleans()),  # True: fail, False: repair
            )
        )
    return events


def run_script(mode: RouterMode, script, seed: int) -> Router:
    router = Router(RouterConfig(n_linecards=4, mode=mode, seed=seed))
    wire_uniform_load(router, 0.25)
    t = 0.0005
    for lc, kind_idx, is_fail in script:
        router.run(until=t)
        kind = FAULT_KINDS[kind_idx]
        if mode is RouterMode.BDR and kind in (
            ComponentKind.PDLU,
            ComponentKind.BUS_CONTROLLER,
        ):
            kind = ComponentKind.SRU  # BDR cards lack these units
        unit = router.linecards[lc].unit(kind)
        if is_fail and unit.healthy:
            router.inject_fault(lc, kind)
        elif not is_fail and not unit.healthy:
            router.repair_fault(lc, kind)
        t += 0.0005
    router.run(until=t + 0.002)
    return router


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=fault_scripts(), seed=st.integers(min_value=0, max_value=50))
def test_dra_invariants_under_random_faults(script, seed):
    router = run_script(RouterMode.DRA, script, seed)
    s = router.stats
    # Conservation: every offered packet is delivered, dropped, or still
    # in flight (in-flight bounded by what could arrive in the last window).
    in_flight = s.offered - s.delivered - s.dropped
    assert 0 <= in_flight < 2000
    # Arbiter coherence survives arbitrary stream churn.
    router.eib.arbiter.check_coherence()
    # Capacity accounting never overcommits a linecard.
    for lc in router.linecards.values():
        assert lc.committed_bps <= lc.capacity_bps * (1.0 + 1e-6)
    # Time advanced.
    assert router.engine.now > 0.0


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=fault_scripts(), seed=st.integers(min_value=0, max_value=20))
def test_dra_never_worse_than_bdr(script, seed):
    """Coverage can only help: under any identical fault script, the DRA
    router's delivery ratio is at least BDR's (small DES slack allowed
    for packets caught mid-flight by a fault)."""
    dra = run_script(RouterMode.DRA, script, seed)
    bdr = run_script(RouterMode.BDR, script, seed)
    assert dra.stats.delivery_ratio >= bdr.stats.delivery_ratio - 0.02


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100))
def test_healthy_router_lossless(seed):
    router = Router(RouterConfig(n_linecards=4, seed=seed))
    sources = wire_uniform_load(router, 0.25)
    router.run(until=0.003)
    for src in sources:
        src.stop()
    router.run(until=0.01)  # drain
    s = router.stats
    assert s.dropped == 0
    assert s.delivered == s.offered

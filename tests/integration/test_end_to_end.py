"""End-to-end DES scenarios: DRA vs BDR under faults and load."""

import numpy as np
import pytest

from repro.router import ComponentKind, FaultInjector, Router, RouterConfig, RouterMode
from repro.router.packets import Protocol
from repro.traffic import wire_uniform_load


def run_scenario(mode, fault_kind=None, *, n=6, load=0.3, seed=2,
                 horizon=0.004, fault_at=0.001):
    router = Router(RouterConfig(n_linecards=n, mode=mode, seed=seed))
    wire_uniform_load(router, load)
    if fault_kind is not None:
        router.run(until=fault_at)
        router.inject_fault(0, fault_kind)
    router.run(until=horizon)
    return router


class TestHealthyBaseline:
    @pytest.mark.parametrize("mode", [RouterMode.DRA, RouterMode.BDR])
    def test_near_lossless_delivery(self, mode):
        r = run_scenario(mode)
        # Only in-flight packets at the horizon are undelivered.
        assert r.stats.delivered >= r.stats.offered * 0.99
        assert r.stats.dropped == 0

    def test_all_destinations_served(self):
        r = run_scenario(RouterMode.DRA)
        assert set(r.stats.delivered_by_lc) == set(range(6))


class TestCoverageAdvantage:
    """The paper's headline behaviour: DRA keeps delivering through an LC
    component fault that takes a BDR linecard entirely offline."""

    @pytest.mark.parametrize(
        "kind", [ComponentKind.SRU, ComponentKind.PDLU, ComponentKind.LFE]
    )
    def test_dra_delivers_through_fault(self, kind):
        r = run_scenario(RouterMode.DRA, kind)
        assert r.stats.delivery_ratio > 0.99
        if kind is ComponentKind.LFE:
            assert r.stats.remote_lookups > 0
        else:
            assert r.stats.covered_deliveries > 0
            assert r.stats.streams_established > 0

    def test_bdr_loses_the_lc(self):
        r = run_scenario(RouterMode.BDR, ComponentKind.SRU)
        # LC0's share of traffic (both directions) is lost: 2/N of flows.
        assert r.stats.delivery_ratio < 0.90
        assert r.stats.drops["bdr_ingress_lc_down"] > 0
        assert r.stats.drops["bdr_egress_lc_down"] > 0

    def test_dra_beats_bdr_under_identical_fault(self):
        dra = run_scenario(RouterMode.DRA, ComponentKind.SRU)
        bdr = run_scenario(RouterMode.BDR, ComponentKind.SRU)
        assert dra.stats.delivery_ratio > bdr.stats.delivery_ratio + 0.05


class TestMixedProtocolRouter:
    def test_pdlu_coverage_respects_protocol(self):
        router = Router(
            RouterConfig(
                n_linecards=6,
                protocols=(Protocol.ETHERNET, Protocol.SONET_POS),
                seed=3,
            )
        )
        wire_uniform_load(router, 0.3)
        router.run(until=0.001)
        router.inject_fault(0, ComponentKind.PDLU)  # LC0: Ethernet
        router.run(until=0.006)
        assert router.stats.delivery_ratio > 0.99
        stream = router.protocol.stream(("ingress", 0, ComponentKind.PDLU))
        assert stream is not None
        assert router.linecards[stream.covering_lc].protocol is Protocol.ETHERNET


class TestEIBLoss:
    def test_eib_failure_degrades_dra_to_bdr_for_faulty_lc(self):
        r = run_scenario(RouterMode.DRA, ComponentKind.SRU, horizon=0.003)
        r.fail_eib()
        r.run(until=0.006)
        assert r.stats.drops["no_coverage"] > 0

    def test_healthy_lcs_unaffected_by_eib_loss(self):
        router = Router(RouterConfig(n_linecards=4, seed=5))
        wire_uniform_load(router, 0.3)
        router.run(until=0.002)
        router.fail_eib()
        before = router.stats.delivered
        router.run(until=0.006)
        # Traffic between healthy LCs flows via the fabric regardless.
        assert router.stats.delivered > before
        assert router.stats.dropped == 0


class TestRandomFaultStorm:
    def test_dra_survives_accelerated_fault_injection(self):
        """Many random component faults with repairs: the router must keep
        a high delivery ratio and never crash or wedge."""
        router = Router(RouterConfig(n_linecards=6, seed=7))
        wire_uniform_load(router, 0.2)
        injector = FaultInjector.accelerated(
            router, np.random.default_rng(11), accel=5e7, repair_rate=2000.0
        )
        injector.start()
        router.run(until=0.012)
        assert len(injector.failures()) >= 2
        assert router.stats.delivery_ratio > 0.7
        # The event loop drained normally (no stuck transfers).
        assert router.stats.offered > 1000


class TestFigure8Shape:
    def test_covered_throughput_tracks_bandwidth_model(self):
        """With one faulty LC at moderate load the DES delivers nearly all
        of the faulty LC's traffic -- the Fig. 8 'X_faulty = 1' point."""
        r = run_scenario(RouterMode.DRA, ComponentKind.SRU, load=0.3)
        # Traffic originating at LC0 after the fault keeps flowing over
        # the EIB; delivery stays near 100% as the model predicts at
        # L = 0.3, X_faulty = 1 (100% of required bandwidth available).
        assert r.stats.delivery_ratio > 0.99

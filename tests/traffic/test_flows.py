"""Traffic-matrix and flow tests."""

import numpy as np
import pytest

from repro.traffic import FlowSpec, TrafficMatrix


class TestFlowSpec:
    def test_packet_rate(self):
        f = FlowSpec(0, 1, rate_bps=4e6, mean_packet_bytes=500)
        assert f.packets_per_second == pytest.approx(1000.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FlowSpec(0, 1, rate_bps=-1.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FlowSpec(0, 1, rate_bps=1.0, mean_packet_bytes=0)


class TestUniformMatrix:
    def test_offered_load_per_lc(self):
        m = TrafficMatrix.uniform(6, 0.3, capacity_bps=10e9)
        for lc in range(6):
            assert m.offered_at(lc) == pytest.approx(3e9)

    def test_diagonal_zero(self):
        m = TrafficMatrix.uniform(4, 0.5)
        for i in range(4):
            assert m.demand(i, i) == 0.0

    def test_even_split(self):
        m = TrafficMatrix.uniform(4, 0.3, capacity_bps=9e9)
        assert m.demand(0, 1) == pytest.approx(0.9e9)
        assert m.demand(0, 2) == m.demand(0, 3)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            TrafficMatrix.uniform(4, 1.0)

    def test_flows_enumeration(self):
        m = TrafficMatrix.uniform(3, 0.3)
        flows = m.flows()
        assert len(flows) == 6  # n(n-1)
        assert all(f.rate_bps > 0 for f in flows)


class TestHotspotMatrix:
    def test_hot_destination_dominates(self):
        m = TrafficMatrix.hotspot(5, 0.4, hot_lc=2, hot_fraction=0.6)
        for src in range(5):
            if src == 2:
                continue
            cold = [m.demand(src, j) for j in range(5) if j not in (src, 2)]
            assert m.demand(src, 2) > max(cold)

    def test_total_load_preserved(self):
        m = TrafficMatrix.hotspot(5, 0.4, hot_lc=2, capacity_bps=10e9)
        for src in range(5):
            assert m.offered_at(src) == pytest.approx(4e9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TrafficMatrix.hotspot(4, 0.3, hot_lc=9)
        with pytest.raises(ValueError):
            TrafficMatrix.hotspot(4, 0.3, hot_lc=0, hot_fraction=1.5)


class TestValidation:
    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            TrafficMatrix(np.zeros((2, 3)))

    def test_negative_rejected(self):
        d = np.zeros((3, 3))
        d[0, 1] = -1.0
        with pytest.raises(ValueError, match="nonnegative"):
            TrafficMatrix(d)

    def test_self_demand_rejected(self):
        d = np.zeros((3, 3))
        d[1, 1] = 5.0
        with pytest.raises(ValueError, match="self-directed"):
            TrafficMatrix(d)

    def test_as_array_is_copy(self):
        m = TrafficMatrix.uniform(3, 0.2)
        arr = m.as_array()
        arr[0, 1] = 0.0
        assert m.demand(0, 1) > 0.0
